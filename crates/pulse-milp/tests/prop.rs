//! Property tests for the LP/MILP solvers: feasibility of returned
//! solutions and optimality against brute force on random instances.

use proptest::prelude::*;
use pulse_milp::{Constraint, LinearProgram, LpResult, MilpProblem, MilpResult, Relation};

/// A random bounded LP: maximize a non-negative objective over a box with
/// a few extra ≤ constraints — always feasible (origin) and bounded.
fn arb_bounded_lp() -> impl Strategy<Value = LinearProgram> {
    (1usize..5).prop_flat_map(|n| {
        let obj = proptest::collection::vec(0.0f64..10.0, n..=n);
        let extra = proptest::collection::vec(
            (proptest::collection::vec(0.0f64..3.0, n..=n), 1.0f64..20.0),
            0..4,
        );
        (obj, extra).prop_map(move |(objective, extra)| {
            let mut constraints: Vec<Constraint> = (0..n)
                .map(|j| {
                    let mut c = vec![0.0; n];
                    c[j] = 1.0;
                    Constraint::new(c, Relation::Le, 5.0)
                })
                .collect();
            for (coeffs, rhs) in extra {
                constraints.push(Constraint::new(coeffs, Relation::Le, rhs));
            }
            LinearProgram {
                n_vars: n,
                objective,
                constraints,
            }
        })
    })
}

fn check_feasible(lp: &LinearProgram, x: &[f64]) -> bool {
    if x.iter().any(|&v| v < -1e-7) {
        return false;
    }
    lp.constraints.iter().all(|c| {
        let lhs: f64 = c.coeffs.iter().zip(x).map(|(a, v)| a * v).sum();
        match c.rel {
            Relation::Le => lhs <= c.rhs + 1e-6,
            Relation::Ge => lhs >= c.rhs - 1e-6,
            Relation::Eq => (lhs - c.rhs).abs() <= 1e-6,
        }
    })
}

proptest! {
    #[test]
    fn simplex_solutions_are_feasible(lp in arb_bounded_lp()) {
        match lp.solve() {
            LpResult::Optimal { x, objective } => {
                prop_assert!(check_feasible(&lp, &x));
                let recomputed: f64 = lp.objective.iter().zip(&x).map(|(c, v)| c * v).sum();
                prop_assert!((objective - recomputed).abs() < 1e-6);
                // The origin is feasible with objective 0; optimum ≥ 0.
                prop_assert!(objective >= -1e-9);
            }
            other => prop_assert!(false, "bounded feasible LP returned {other:?}"),
        }
    }

    #[test]
    fn simplex_optimum_dominates_random_feasible_points(
        lp in arb_bounded_lp(),
        samples in proptest::collection::vec(proptest::collection::vec(0.0f64..5.0, 5), 1..10),
    ) {
        if let LpResult::Optimal { objective, .. } = lp.solve() {
            for s in samples {
                let x = &s[..lp.n_vars];
                if check_feasible(&lp, x) {
                    let val: f64 = lp.objective.iter().zip(x).map(|(c, v)| c * v).sum();
                    prop_assert!(val <= objective + 1e-6,
                        "feasible point {val} beats 'optimum' {objective}");
                }
            }
        }
    }

    #[test]
    fn milp_matches_brute_force_binary_knapsack(
        n in 2usize..7,
        profit_seed in proptest::collection::vec(1u32..20, 7),
        weight_seed in proptest::collection::vec(1u32..9, 7),
        cap_frac in 0.2f64..0.9,
    ) {
        let profits: Vec<f64> = profit_seed[..n].iter().map(|&p| p as f64).collect();
        let weights: Vec<f64> = weight_seed[..n].iter().map(|&w| w as f64).collect();
        let cap = weights.iter().sum::<f64>() * cap_frac;
        let mut constraints = vec![Constraint::new(weights.clone(), Relation::Le, cap)];
        for j in 0..n {
            let mut c = vec![0.0; n];
            c[j] = 1.0;
            constraints.push(Constraint::new(c, Relation::Le, 1.0));
        }
        let p = MilpProblem {
            lp: LinearProgram { n_vars: n, objective: profits.clone(), constraints },
            integer_vars: (0..n).collect(),
        };
        let milp_opt = match p.solve() {
            MilpResult::Optimal { x, objective } => {
                // Integrality of the returned point.
                for xj in x.iter().take(n) {
                    prop_assert!((xj - xj.round()).abs() < 1e-6);
                }
                objective
            }
            other => { prop_assert!(false, "unexpected {other:?}"); unreachable!() }
        };
        let mut brute = 0.0f64;
        for mask in 0u32..(1 << n) {
            let w: f64 = (0..n).filter(|&j| mask >> j & 1 == 1).map(|j| weights[j]).sum();
            if w <= cap + 1e-9 {
                let v: f64 = (0..n).filter(|&j| mask >> j & 1 == 1).map(|j| profits[j]).sum();
                brute = brute.max(v);
            }
        }
        prop_assert!((milp_opt - brute).abs() < 1e-6, "milp {milp_opt} vs brute {brute}");
    }
}

//! # pulse-milp — a from-scratch MILP solver and the paper's Figure 9 baseline
//!
//! The paper compares PULSE's greedy downgrade loop against a Mixed Integer
//! Linear Programming formulation: "the objective is to maximize overall
//! utility value subject to a strict memory budget constraint … MILP
//! simultaneously evaluates all selected models and their variants". A
//! commercial solver cannot be vendored, so this crate implements the whole
//! stack:
//!
//! * [`simplex`] — a dense two-phase primal simplex method (Bland's rule,
//!   so it cannot cycle) solving `max cᵀx, Ax {≤,=,≥} b, x ≥ 0`;
//! * [`milp`] — branch-and-bound over the LP relaxation with best-bound
//!   pruning;
//! * [`model`] — the peak-downgrade problem as a multiple-choice knapsack
//!   (one binary per (model, level) decision, exactly one level per model,
//!   total memory within the budget, maximize Σ utility), plus an exact
//!   dynamic-programming solver used to cross-check branch-and-bound, and
//!   [`model::MilpDowngrader`], the drop-in alternative to
//!   [`pulse_core::global::flatten_peak`] that the Figure 9 experiment
//!   benchmarks.
//!
//! ```
//! use pulse_milp::simplex::{Constraint, LinearProgram, LpResult, Relation};
//!
//! // max 3x + 5y  s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18
//! let lp = LinearProgram {
//!     n_vars: 2,
//!     objective: vec![3.0, 5.0],
//!     constraints: vec![
//!         Constraint::new(vec![1.0, 0.0], Relation::Le, 4.0),
//!         Constraint::new(vec![0.0, 2.0], Relation::Le, 12.0),
//!         Constraint::new(vec![3.0, 2.0], Relation::Le, 18.0),
//!     ],
//! };
//! match lp.solve() {
//!     LpResult::Optimal { x, objective } => {
//!         assert!((objective - 36.0).abs() < 1e-9);
//!         assert!((x[0] - 2.0).abs() < 1e-9 && (x[1] - 6.0).abs() < 1e-9);
//!     }
//!     other => panic!("{other:?}"),
//! }
//! ```

pub mod milp;
pub mod model;
pub mod simplex;

pub use milp::{MilpProblem, MilpResult};
pub use model::MilpDowngrader;
pub use simplex::{Constraint, LinearProgram, LpResult, Relation};

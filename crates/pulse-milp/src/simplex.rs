//! Dense two-phase primal simplex.
//!
//! Solves `max cᵀx` subject to mixed `≤ / = / ≥` constraints and `x ≥ 0`.
//! Classic tableau formulation: slack variables for `≤`, surplus +
//! artificial for `≥`, artificial for `=`; phase 1 drives the artificials
//! out (infeasible if it cannot), phase 2 optimizes the real objective.
//! Bland's smallest-index pivoting rule guarantees termination (no cycling)
//! at the cost of a few extra pivots — the problem sizes here (tens of
//! variables) make that irrelevant.

/// Constraint relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `a·x ≤ b`
    Le,
    /// `a·x = b`
    Eq,
    /// `a·x ≥ b`
    Ge,
}

/// One linear constraint `coeffs · x  rel  rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Coefficients, one per structural variable.
    pub coeffs: Vec<f64>,
    /// Relation.
    pub rel: Relation,
    /// Right-hand side.
    pub rhs: f64,
}

impl Constraint {
    /// Construct a constraint.
    pub fn new(coeffs: Vec<f64>, rel: Relation, rhs: f64) -> Self {
        Self { coeffs, rel, rhs }
    }
}

/// A linear program in `max cᵀx, x ≥ 0` form.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearProgram {
    /// Number of structural variables.
    pub n_vars: usize,
    /// Objective coefficients (maximized).
    pub objective: Vec<f64>,
    /// Constraints.
    pub constraints: Vec<Constraint>,
}

/// Outcome of an LP solve.
#[derive(Debug, Clone, PartialEq)]
pub enum LpResult {
    /// A finite optimum.
    Optimal {
        /// Optimal structural variable values.
        x: Vec<f64>,
        /// Optimal objective value.
        objective: f64,
    },
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded above on the feasible region.
    Unbounded,
}

impl LpResult {
    /// The optimal objective, if any.
    pub fn objective(&self) -> Option<f64> {
        match self {
            LpResult::Optimal { objective, .. } => Some(*objective),
            _ => None,
        }
    }
}

const EPS: f64 = 1e-9;

impl LinearProgram {
    /// Solve by two-phase simplex.
    pub fn solve(&self) -> LpResult {
        assert_eq!(self.objective.len(), self.n_vars, "objective length");
        for c in &self.constraints {
            assert_eq!(c.coeffs.len(), self.n_vars, "constraint width");
        }
        Tableau::build(self).solve()
    }
}

/// Internal tableau. Column layout: structural | slack/surplus | artificial
/// | rhs. One row per constraint plus an implicit objective handled through
/// reduced costs.
struct Tableau {
    rows: Vec<Vec<f64>>,
    /// Basis variable (column index) of each constraint row.
    basis: Vec<usize>,
    /// Structural objective of the original program.
    struct_obj: Vec<f64>,
    n_struct: usize,
    n_total: usize,
    artificial_start: usize,
}

enum Phase {
    Optimal(f64),
    Unbounded,
}

fn normalized_rel(c: &Constraint) -> Relation {
    if c.rhs < 0.0 {
        match c.rel {
            Relation::Le => Relation::Ge,
            Relation::Ge => Relation::Le,
            Relation::Eq => Relation::Eq,
        }
    } else {
        c.rel
    }
}

impl Tableau {
    fn build(lp: &LinearProgram) -> Self {
        let m = lp.constraints.len();
        let mut n_slack = 0;
        let mut n_art = 0;
        for c in &lp.constraints {
            match normalized_rel(c) {
                Relation::Le => n_slack += 1,
                Relation::Ge => {
                    n_slack += 1;
                    n_art += 1;
                }
                Relation::Eq => n_art += 1,
            }
        }
        let n_struct = lp.n_vars;
        let slack_start = n_struct;
        let artificial_start = slack_start + n_slack;
        let n_total = artificial_start + n_art;

        let mut rows = vec![vec![0.0; n_total + 1]; m];
        let mut basis = vec![usize::MAX; m];
        let mut s = 0; // next slack column
        let mut a = 0; // next artificial column
        for (i, c) in lp.constraints.iter().enumerate() {
            let sign = if c.rhs < 0.0 { -1.0 } else { 1.0 };
            for (j, &coef) in c.coeffs.iter().enumerate() {
                rows[i][j] = sign * coef;
            }
            rows[i][n_total] = sign * c.rhs;
            match normalized_rel(c) {
                Relation::Le => {
                    rows[i][slack_start + s] = 1.0;
                    basis[i] = slack_start + s;
                    s += 1;
                }
                Relation::Ge => {
                    rows[i][slack_start + s] = -1.0;
                    s += 1;
                    rows[i][artificial_start + a] = 1.0;
                    basis[i] = artificial_start + a;
                    a += 1;
                }
                Relation::Eq => {
                    rows[i][artificial_start + a] = 1.0;
                    basis[i] = artificial_start + a;
                    a += 1;
                }
            }
        }
        Self {
            rows,
            basis,
            struct_obj: lp.objective.clone(),
            n_struct,
            n_total,
            artificial_start,
        }
    }

    fn solve(mut self) -> LpResult {
        // Phase 1: maximize −Σ artificials; feasible iff the optimum is 0.
        if self.artificial_start < self.n_total {
            let mut obj = vec![0.0; self.n_total];
            for o in obj.iter_mut().skip(self.artificial_start) {
                *o = -1.0;
            }
            match self.optimize(&obj) {
                Phase::Unbounded => unreachable!("phase-1 objective is bounded above by 0"),
                Phase::Optimal(value) => {
                    if value < -1e-6 {
                        return LpResult::Infeasible;
                    }
                }
            }
            // Drive any artificial still basic (at level 0) out where possible.
            for i in 0..self.rows.len() {
                if self.basis[i] >= self.artificial_start {
                    if let Some(j) =
                        (0..self.artificial_start).find(|&j| self.rows[i][j].abs() > EPS)
                    {
                        self.pivot(i, j);
                    }
                    // Otherwise the row is redundant; the artificial stays at
                    // level 0 and its column is barred from re-entering below.
                }
            }
        }
        // Phase 2: the real objective; artificials get −∞ profit so they
        // never re-enter.
        let mut obj = vec![0.0; self.n_total];
        obj[..self.n_struct].copy_from_slice(&self.struct_obj);
        for o in obj.iter_mut().skip(self.artificial_start) {
            *o = -1e18;
        }
        match self.optimize(&obj) {
            Phase::Unbounded => LpResult::Unbounded,
            Phase::Optimal(_) => {
                let mut x = vec![0.0; self.n_struct];
                for (i, &b) in self.basis.iter().enumerate() {
                    if b < self.n_struct {
                        x[b] = self.rows[i][self.n_total];
                    }
                }
                let objective = self.struct_obj.iter().zip(&x).map(|(c, v)| c * v).sum();
                LpResult::Optimal { x, objective }
            }
        }
    }

    /// Maximize `obj` (length `n_total`) from the current basis.
    #[allow(clippy::needless_range_loop)] // dual index sets over the tableau
    fn optimize(&mut self, obj: &[f64]) -> Phase {
        loop {
            let cb: Vec<f64> = self.basis.iter().map(|&b| obj[b]).collect();
            // Entering column: Bland — smallest index with positive reduced
            // profit c_j − z_j.
            let mut entering = None;
            for j in 0..self.n_total {
                if self.basis.contains(&j) {
                    continue;
                }
                let zj: f64 = (0..self.rows.len()).map(|i| cb[i] * self.rows[i][j]).sum();
                if obj[j] - zj > 1e-7 {
                    entering = Some(j);
                    break;
                }
            }
            let Some(j) = entering else {
                let value: f64 = (0..self.rows.len())
                    .map(|i| cb[i] * self.rows[i][self.n_total])
                    .sum();
                return Phase::Optimal(value);
            };
            // Leaving row: min ratio; ties by smallest basis index (Bland).
            let mut leave: Option<(usize, f64)> = None;
            for i in 0..self.rows.len() {
                let aij = self.rows[i][j];
                if aij > EPS {
                    let ratio = self.rows[i][self.n_total] / aij;
                    let better = match leave {
                        None => true,
                        Some((li, lr)) => {
                            ratio < lr - EPS
                                || ((ratio - lr).abs() <= EPS && self.basis[i] < self.basis[li])
                        }
                    };
                    if better {
                        leave = Some((i, ratio));
                    }
                }
            }
            let Some((i, _)) = leave else {
                return Phase::Unbounded;
            };
            self.pivot(i, j);
        }
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let p = self.rows[row][col];
        debug_assert!(p.abs() > EPS, "pivot on (near-)zero element");
        for v in self.rows[row].iter_mut() {
            *v /= p;
        }
        for i in 0..self.rows.len() {
            if i != row {
                let f = self.rows[i][col];
                if f.abs() > EPS {
                    for j in 0..=self.n_total {
                        self.rows[i][j] -= f * self.rows[row][j];
                    }
                }
            }
        }
        self.basis[row] = col;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opt(lp: &LinearProgram) -> (Vec<f64>, f64) {
        match lp.solve() {
            LpResult::Optimal { x, objective } => (x, objective),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn textbook_le_program() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → (2, 6), 36.
        let lp = LinearProgram {
            n_vars: 2,
            objective: vec![3.0, 5.0],
            constraints: vec![
                Constraint::new(vec![1.0, 0.0], Relation::Le, 4.0),
                Constraint::new(vec![0.0, 2.0], Relation::Le, 12.0),
                Constraint::new(vec![3.0, 2.0], Relation::Le, 18.0),
            ],
        };
        let (x, v) = opt(&lp);
        assert!((v - 36.0).abs() < 1e-9);
        assert!((x[0] - 2.0).abs() < 1e-9 && (x[1] - 6.0).abs() < 1e-9);
    }

    #[test]
    fn ge_constraints_need_phase_one() {
        // max −x − y s.t. x + y ≥ 4, x ≤ 10, y ≤ 10 → cost-minimal at x+y=4.
        let lp = LinearProgram {
            n_vars: 2,
            objective: vec![-1.0, -1.0],
            constraints: vec![
                Constraint::new(vec![1.0, 1.0], Relation::Ge, 4.0),
                Constraint::new(vec![1.0, 0.0], Relation::Le, 10.0),
                Constraint::new(vec![0.0, 1.0], Relation::Le, 10.0),
            ],
        };
        let (x, v) = opt(&lp);
        assert!((v + 4.0).abs() < 1e-9);
        assert!((x[0] + x[1] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn equality_constraints() {
        // max x + 2y s.t. x + y = 5, y ≤ 3 → (2, 3), 8.
        let lp = LinearProgram {
            n_vars: 2,
            objective: vec![1.0, 2.0],
            constraints: vec![
                Constraint::new(vec![1.0, 1.0], Relation::Eq, 5.0),
                Constraint::new(vec![0.0, 1.0], Relation::Le, 3.0),
            ],
        };
        let (x, v) = opt(&lp);
        assert!((v - 8.0).abs() < 1e-9);
        assert!((x[0] - 2.0).abs() < 1e-9 && (x[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_detected() {
        // x ≥ 5 and x ≤ 3.
        let lp = LinearProgram {
            n_vars: 1,
            objective: vec![1.0],
            constraints: vec![
                Constraint::new(vec![1.0], Relation::Ge, 5.0),
                Constraint::new(vec![1.0], Relation::Le, 3.0),
            ],
        };
        assert_eq!(lp.solve(), LpResult::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        // max x with no upper bound.
        let lp = LinearProgram {
            n_vars: 1,
            objective: vec![1.0],
            constraints: vec![Constraint::new(vec![1.0], Relation::Ge, 0.0)],
        };
        assert_eq!(lp.solve(), LpResult::Unbounded);
    }

    #[test]
    fn negative_rhs_is_normalized() {
        // −x ≤ −2  ⇔  x ≥ 2; max −x → x = 2.
        let lp = LinearProgram {
            n_vars: 1,
            objective: vec![-1.0],
            constraints: vec![Constraint::new(vec![-1.0], Relation::Le, -2.0)],
        };
        let (x, v) = opt(&lp);
        assert!((x[0] - 2.0).abs() < 1e-9);
        assert!((v + 2.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_program_terminates() {
        // A classic degenerate vertex; Bland's rule must not cycle.
        let lp = LinearProgram {
            n_vars: 3,
            objective: vec![10.0, -57.0, -9.0],
            constraints: vec![
                Constraint::new(vec![0.5, -5.5, -2.5], Relation::Le, 0.0),
                Constraint::new(vec![0.5, -1.5, -0.5], Relation::Le, 0.0),
                Constraint::new(vec![1.0, 0.0, 0.0], Relation::Le, 1.0),
            ],
        };
        let (_, v) = opt(&lp);
        assert!((v - 1.0).abs() < 1e-6, "got {v}");
    }

    #[test]
    fn knapsack_relaxation() {
        // max 6a + 10b + 12c s.t. a + 2b + 3c ≤ 5, each ≤ 1 → a=1, b=1, c=2/3.
        let lp = LinearProgram {
            n_vars: 3,
            objective: vec![6.0, 10.0, 12.0],
            constraints: vec![
                Constraint::new(vec![1.0, 2.0, 3.0], Relation::Le, 5.0),
                Constraint::new(vec![1.0, 0.0, 0.0], Relation::Le, 1.0),
                Constraint::new(vec![0.0, 1.0, 0.0], Relation::Le, 1.0),
                Constraint::new(vec![0.0, 0.0, 1.0], Relation::Le, 1.0),
            ],
        };
        let (x, v) = opt(&lp);
        assert!((v - 24.0).abs() < 1e-9);
        assert!((x[2] - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn zero_constraint_program() {
        // max 0 subject to x ≤ 1: any feasible point, objective 0.
        let lp = LinearProgram {
            n_vars: 1,
            objective: vec![0.0],
            constraints: vec![Constraint::new(vec![1.0], Relation::Le, 1.0)],
        };
        let (_, v) = opt(&lp);
        assert_eq!(v, 0.0);
    }

    #[test]
    fn redundant_equalities_are_handled() {
        // x + y = 2 stated twice (redundant row keeps an artificial basic
        // at level 0 — must still solve).
        let lp = LinearProgram {
            n_vars: 2,
            objective: vec![1.0, 0.0],
            constraints: vec![
                Constraint::new(vec![1.0, 1.0], Relation::Eq, 2.0),
                Constraint::new(vec![1.0, 1.0], Relation::Eq, 2.0),
            ],
        };
        let (x, v) = opt(&lp);
        assert!((v - 2.0).abs() < 1e-9);
        assert!((x[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "objective length")]
    fn mismatched_objective_rejected() {
        LinearProgram {
            n_vars: 2,
            objective: vec![1.0],
            constraints: vec![],
        }
        .solve();
    }
}

//! Branch-and-bound over the simplex relaxation.
//!
//! Depth-first search on fractional integer variables with best-bound
//! pruning: a node whose LP relaxation cannot beat the incumbent is cut.
//! Branching adds `x ≤ ⌊v⌋` / `x ≥ ⌈v⌉` bound constraints. A node budget
//! guards against pathological instances (the peak-downgrade models here
//! are small: tens of binaries).

use crate::simplex::{Constraint, LinearProgram, LpResult, Relation};

/// A mixed-integer program: an LP plus a set of integrality requirements.
#[derive(Debug, Clone, PartialEq)]
pub struct MilpProblem {
    /// The relaxation.
    pub lp: LinearProgram,
    /// Indices of variables required to be integral.
    pub integer_vars: Vec<usize>,
}

/// Outcome of a MILP solve.
#[derive(Debug, Clone, PartialEq)]
pub enum MilpResult {
    /// A finite integral optimum.
    Optimal {
        /// Optimal variable values (integral on `integer_vars` up to 1e-6).
        x: Vec<f64>,
        /// Optimal objective value.
        objective: f64,
    },
    /// No integral feasible point exists.
    Infeasible,
    /// The relaxation is unbounded (the integral problem may be too).
    Unbounded,
    /// The node budget was exhausted before proving optimality; the best
    /// incumbent found (if any) is returned.
    NodeLimit {
        /// Best integral solution found, if any.
        incumbent: Option<(Vec<f64>, f64)>,
    },
}

const INT_EPS: f64 = 1e-6;

/// Statistics from a solve (for the overhead experiment).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// LP relaxations solved.
    pub nodes: u64,
}

impl MilpProblem {
    /// Solve with the default node budget (100 000).
    pub fn solve(&self) -> MilpResult {
        self.solve_with_limit(100_000).0
    }

    /// Solve with an explicit node budget, returning search statistics.
    pub fn solve_with_limit(&self, max_nodes: u64) -> (MilpResult, SolveStats) {
        self.solve_with_incumbent(max_nodes, None)
    }

    /// Solve with a warm-start incumbent: a known feasible integral point
    /// and its objective, used to prune from the first node. The incumbent
    /// is *trusted* (the caller guarantees feasibility); a wrong incumbent
    /// can only make the result worse, never infeasible, because it is
    /// returned solely when no better point is found.
    pub fn solve_with_incumbent(
        &self,
        max_nodes: u64,
        incumbent: Option<(Vec<f64>, f64)>,
    ) -> (MilpResult, SolveStats) {
        let mut best: Option<(Vec<f64>, f64)> = incumbent;
        let mut stats = SolveStats::default();
        let mut stack: Vec<Vec<Constraint>> = vec![Vec::new()];
        let mut saw_unbounded_root = false;

        while let Some(extra) = stack.pop() {
            if stats.nodes >= max_nodes {
                return (MilpResult::NodeLimit { incumbent: best }, stats);
            }
            stats.nodes += 1;
            let mut lp = self.lp.clone();
            lp.constraints.extend(extra.iter().cloned());
            match lp.solve() {
                LpResult::Infeasible => continue,
                LpResult::Unbounded => {
                    if extra.is_empty() {
                        saw_unbounded_root = true;
                        break;
                    }
                    // A bounded-below branch of an unbounded parent: treat as
                    // unexplorable (cannot rank); conservatively stop.
                    saw_unbounded_root = true;
                    break;
                }
                LpResult::Optimal { x, objective } => {
                    // Bound: can this node beat the incumbent?
                    if let Some((_, inc)) = &best {
                        if objective <= inc + INT_EPS {
                            continue;
                        }
                    }
                    // Find a fractional integer variable.
                    let frac = self
                        .integer_vars
                        .iter()
                        .copied()
                        .find(|&j| (x[j] - x[j].round()).abs() > INT_EPS);
                    match frac {
                        None => {
                            // Integral — new incumbent.
                            let better = best.as_ref().is_none_or(|(_, inc)| objective > *inc);
                            if better {
                                best = Some((x, objective));
                            }
                        }
                        Some(j) => {
                            let v = x[j];
                            let mut up = extra.clone();
                            let mut coeffs = vec![0.0; self.lp.n_vars];
                            coeffs[j] = 1.0;
                            up.push(Constraint::new(coeffs.clone(), Relation::Ge, v.ceil()));
                            let mut down = extra;
                            down.push(Constraint::new(coeffs, Relation::Le, v.floor()));
                            // DFS: explore the "down" branch first (often
                            // tighter for knapsack-like models).
                            stack.push(up);
                            stack.push(down);
                        }
                    }
                }
            }
        }

        let result = if saw_unbounded_root {
            MilpResult::Unbounded
        } else {
            match best {
                Some((x, objective)) => MilpResult::Optimal { x, objective },
                None => MilpResult::Infeasible,
            }
        };
        (result, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opt(p: &MilpProblem) -> (Vec<f64>, f64) {
        match p.solve() {
            MilpResult::Optimal { x, objective } => (x, objective),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    fn binary_bounds(n: usize) -> Vec<Constraint> {
        (0..n)
            .map(|j| {
                let mut c = vec![0.0; n];
                c[j] = 1.0;
                Constraint::new(c, Relation::Le, 1.0)
            })
            .collect()
    }

    #[test]
    fn knapsack_integral_beats_relaxation_rounding() {
        // max 6a + 10b + 12c s.t. a + 2b + 3c ≤ 5, binaries.
        // Relaxation gives 24 with c fractional; integral optimum is 22
        // (b + c) — not the greedy-by-ratio rounding (a + b = 16).
        let mut constraints = vec![Constraint::new(vec![1.0, 2.0, 3.0], Relation::Le, 5.0)];
        constraints.extend(binary_bounds(3));
        let p = MilpProblem {
            lp: LinearProgram {
                n_vars: 3,
                objective: vec![6.0, 10.0, 12.0],
                constraints,
            },
            integer_vars: vec![0, 1, 2],
        };
        let (x, v) = opt(&p);
        assert!((v - 22.0).abs() < 1e-6, "got {v}");
        assert!(x[1].round() == 1.0 && x[2].round() == 1.0);
    }

    #[test]
    fn matches_brute_force_on_random_knapsacks() {
        // Deterministic pseudo-random instances; exhaustive check.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for trial in 0..20 {
            let n = 8;
            let profits: Vec<f64> = (0..n).map(|_| (next() * 20.0).round() + 1.0).collect();
            let weights: Vec<f64> = (0..n).map(|_| (next() * 9.0).round() + 1.0).collect();
            let cap = weights.iter().sum::<f64>() * 0.5;
            let mut constraints = vec![Constraint::new(weights.clone(), Relation::Le, cap)];
            constraints.extend(binary_bounds(n));
            let p = MilpProblem {
                lp: LinearProgram {
                    n_vars: n,
                    objective: profits.clone(),
                    constraints,
                },
                integer_vars: (0..n).collect(),
            };
            let (_, v) = opt(&p);
            // Brute force.
            let mut bf = 0.0f64;
            for mask in 0u32..(1 << n) {
                let w: f64 = (0..n)
                    .filter(|&j| mask >> j & 1 == 1)
                    .map(|j| weights[j])
                    .sum();
                if w <= cap + 1e-9 {
                    let pr: f64 = (0..n)
                        .filter(|&j| mask >> j & 1 == 1)
                        .map(|j| profits[j])
                        .sum();
                    bf = bf.max(pr);
                }
            }
            assert!(
                (v - bf).abs() < 1e-6,
                "trial {trial}: milp {v} vs brute {bf}"
            );
        }
    }

    #[test]
    fn multiple_choice_constraint() {
        // Pick exactly one of {a,b,c}: max 3a + 5b + 2c, a+b+c = 1.
        let mut constraints = vec![Constraint::new(vec![1.0, 1.0, 1.0], Relation::Eq, 1.0)];
        constraints.extend(binary_bounds(3));
        let p = MilpProblem {
            lp: LinearProgram {
                n_vars: 3,
                objective: vec![3.0, 5.0, 2.0],
                constraints,
            },
            integer_vars: vec![0, 1, 2],
        };
        let (x, v) = opt(&p);
        assert!((v - 5.0).abs() < 1e-6);
        assert!((x[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_integral_problem() {
        // 0.5 ≤ x ≤ 0.7 has no integer point.
        let p = MilpProblem {
            lp: LinearProgram {
                n_vars: 1,
                objective: vec![1.0],
                constraints: vec![
                    Constraint::new(vec![1.0], Relation::Ge, 0.5),
                    Constraint::new(vec![1.0], Relation::Le, 0.7),
                ],
            },
            integer_vars: vec![0],
        };
        assert_eq!(p.solve(), MilpResult::Infeasible);
    }

    #[test]
    fn unbounded_relaxation_reported() {
        let p = MilpProblem {
            lp: LinearProgram {
                n_vars: 1,
                objective: vec![1.0],
                constraints: vec![Constraint::new(vec![1.0], Relation::Ge, 0.0)],
            },
            integer_vars: vec![0],
        };
        assert_eq!(p.solve(), MilpResult::Unbounded);
    }

    #[test]
    fn already_integral_relaxation_needs_one_node() {
        let p = MilpProblem {
            lp: LinearProgram {
                n_vars: 1,
                objective: vec![1.0],
                constraints: vec![Constraint::new(vec![1.0], Relation::Le, 3.0)],
            },
            integer_vars: vec![0],
        };
        let (res, stats) = p.solve_with_limit(10);
        assert!(matches!(res, MilpResult::Optimal { .. }));
        assert_eq!(stats.nodes, 1);
    }

    #[test]
    fn node_limit_returns_incumbent_or_none() {
        let mut constraints = vec![Constraint::new(vec![1.0, 2.0, 3.0, 4.0], Relation::Le, 5.0)];
        constraints.extend(binary_bounds(4));
        let p = MilpProblem {
            lp: LinearProgram {
                n_vars: 4,
                objective: vec![6.0, 10.0, 12.0, 9.0],
                constraints,
            },
            integer_vars: vec![0, 1, 2, 3],
        };
        let (res, _) = p.solve_with_limit(1);
        assert!(matches!(res, MilpResult::NodeLimit { .. }));
    }

    #[test]
    fn warm_start_prunes_without_changing_the_optimum() {
        let mut constraints = vec![Constraint::new(
            vec![1.0, 2.0, 3.0, 4.0, 2.0, 5.0],
            Relation::Le,
            8.0,
        )];
        constraints.extend(binary_bounds(6));
        let p = MilpProblem {
            lp: LinearProgram {
                n_vars: 6,
                objective: vec![6.0, 10.0, 12.0, 9.0, 7.0, 11.0],
                constraints,
            },
            integer_vars: (0..6).collect(),
        };
        let (cold_res, cold_stats) = p.solve_with_limit(100_000);
        // Greedy-by-ratio incumbent: items 0 (6/1), 1 (10/2), 4 (7/2) fit
        // weight 5 ≤ 8 → objective 23.
        let incumbent = (vec![1.0, 1.0, 0.0, 0.0, 1.0, 0.0], 23.0);
        let (warm_res, warm_stats) = p.solve_with_incumbent(100_000, Some(incumbent));
        let obj = |r: &MilpResult| match r {
            MilpResult::Optimal { objective, .. } => *objective,
            other => panic!("{other:?}"),
        };
        assert!((obj(&cold_res) - obj(&warm_res)).abs() < 1e-6);
        assert!(
            warm_stats.nodes <= cold_stats.nodes,
            "warm {} > cold {}",
            warm_stats.nodes,
            cold_stats.nodes
        );
    }

    #[test]
    fn incumbent_is_returned_when_nothing_beats_it() {
        // Feasible region only contains x = 0 (objective 0), but the caller
        // injects an (externally known) incumbent with value 5: since no LP
        // node beats 5, the incumbent comes back unchanged.
        let p = MilpProblem {
            lp: LinearProgram {
                n_vars: 1,
                objective: vec![1.0],
                constraints: vec![Constraint::new(vec![1.0], Relation::Le, 0.0)],
            },
            integer_vars: vec![0],
        };
        let (res, _) = p.solve_with_incumbent(100, Some((vec![9.0], 5.0)));
        match res {
            MilpResult::Optimal { objective, .. } => assert_eq!(objective, 5.0),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn continuous_vars_stay_fractional() {
        // y continuous: max x + y, x + y ≤ 1.5, x binary → x=1, y=0.5.
        let mut constraints = vec![Constraint::new(vec![1.0, 1.0], Relation::Le, 1.5)];
        constraints.push(Constraint::new(vec![1.0, 0.0], Relation::Le, 1.0));
        let p = MilpProblem {
            lp: LinearProgram {
                n_vars: 2,
                objective: vec![1.0, 1.0],
                constraints,
            },
            integer_vars: vec![0],
        };
        let (x, v) = opt(&p);
        assert!((v - 1.5).abs() < 1e-6);
        assert!((x[0] - 1.0).abs() < 1e-6);
        assert!((x[1] - 0.5).abs() < 1e-6);
    }
}

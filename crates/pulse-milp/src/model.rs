//! The peak-downgrade problem as a MILP (the Figure 9 baseline).
//!
//! During a detected peak the platform must choose, for every kept-alive
//! model, a level — keep the current variant, downgrade to any lower rung,
//! or evict — such that total keep-alive memory fits the flatten target,
//! maximizing total utility `Uv = Ai + Pr + Ip` (eviction has utility 0).
//! PULSE solves this greedily (Algorithm 2); this module formulates it as a
//! multiple-choice knapsack and solves it exactly with the branch-and-bound
//! MILP solver, plus an independent dynamic-programming solver used to
//! cross-check the MILP in tests.
//!
//! The paper's finding (Figure 9): MILP's solution quality is *not* better
//! in practice — it "tends to favor lower-quality models due to lack of
//! iterative adaptability" — and its overhead is orders of magnitude higher,
//! which is why PULSE ships the greedy loop.

use crate::milp::{MilpProblem, MilpResult, SolveStats};
use crate::simplex::{Constraint, LinearProgram, Relation};
use pulse_core::global::AliveModel;
use pulse_core::priority::PriorityStructure;
use pulse_core::probability::Probability;
use pulse_core::utility::utility_value;
use pulse_models::{ModelFamily, VariantId};

/// The chosen level for one alive model: keep some variant, or evict.
pub type Level = Option<VariantId>;

/// An exact solution of the peak-downgrade problem.
#[derive(Debug, Clone, PartialEq)]
pub struct DowngradePlan {
    /// `levels[i]` is the decision for `alive[i]`.
    pub levels: Vec<Level>,
    /// Total utility of the plan.
    pub utility: f64,
    /// Total keep-alive memory of the plan, MB.
    pub memory_mb: f64,
    /// Branch-and-bound statistics (zero for the DP solver).
    pub stats: SolveStats,
}

/// Exact solver for the peak-downgrade multiple-choice knapsack.
#[derive(Debug, Clone, Copy, Default)]
pub struct MilpDowngrader;

/// The per-(model, level) utility: `Ai + Pr + Ip` of *keeping* the model at
/// `level` (the same terms Algorithm 2 scores), 0 for eviction.
fn level_utility(fam: &ModelFamily, level: VariantId, pr: f64, ip: f64) -> f64 {
    utility_value(
        fam.accuracy_improvement(level),
        Probability::saturating(pr),
        Probability::saturating(ip),
    )
}

impl MilpDowngrader {
    /// Build the MILP: one binary per (model, level) including an implicit
    /// eviction level (no variable needed: evicting contributes nothing to
    /// either the objective or the memory constraint, so `Σ_l x_{i,l} ≤ 1`
    /// encodes it).
    pub fn build_problem(
        alive: &[AliveModel],
        families: &[ModelFamily],
        priority: &PriorityStructure,
        target_kam_mb: f64,
    ) -> (MilpProblem, Vec<(usize, VariantId)>) {
        let pr = priority.normalized();
        // Variable registry: (alive index, level).
        let mut vars: Vec<(usize, VariantId)> = Vec::new();
        for (i, m) in alive.iter().enumerate() {
            for level in 0..=m.variant {
                vars.push((i, level));
            }
        }
        let n = vars.len();
        let mut objective = vec![0.0; n];
        let mut memory = vec![0.0; n];
        for (j, &(i, level)) in vars.iter().enumerate() {
            let m = &alive[i];
            let fam = &families[m.func];
            objective[j] = level_utility(fam, level, pr[m.func], m.invocation_probability);
            memory[j] = fam.variant(level).memory_mb;
        }
        let mut constraints = vec![Constraint::new(
            memory,
            Relation::Le,
            target_kam_mb.max(0.0),
        )];
        // One level (or eviction) per model.
        for i in 0..alive.len() {
            let coeffs: Vec<f64> = vars
                .iter()
                .map(|&(k, _)| if k == i { 1.0 } else { 0.0 })
                .collect();
            constraints.push(Constraint::new(coeffs, Relation::Le, 1.0));
        }
        // Binary bounds.
        for j in 0..n {
            let mut coeffs = vec![0.0; n];
            coeffs[j] = 1.0;
            constraints.push(Constraint::new(coeffs, Relation::Le, 1.0));
        }
        (
            MilpProblem {
                lp: LinearProgram {
                    n_vars: n,
                    objective,
                    constraints,
                },
                integer_vars: (0..n).collect(),
            },
            vars,
        )
    }

    /// Solve exactly via branch-and-bound.
    pub fn solve(
        &self,
        alive: &[AliveModel],
        families: &[ModelFamily],
        priority: &PriorityStructure,
        target_kam_mb: f64,
    ) -> DowngradePlan {
        let (problem, vars) = Self::build_problem(alive, families, priority, target_kam_mb);
        let (result, stats) = problem.solve_with_limit(200_000);
        let x = match result {
            MilpResult::Optimal { x, .. } => x,
            MilpResult::NodeLimit {
                incumbent: Some((x, _)),
            } => x,
            // Eviction of everything is always feasible (target ≥ 0), so
            // Infeasible/Unbounded cannot occur; fall back to all-evict.
            _ => vec![0.0; vars.len()],
        };
        let mut levels: Vec<Level> = vec![None; alive.len()];
        for (j, &(i, level)) in vars.iter().enumerate() {
            if x[j] > 0.5 {
                levels[i] = Some(level);
            }
        }
        Self::plan_from_levels(levels, alive, families, priority, stats)
    }

    /// Independent exact solver: dynamic programming over integer MB
    /// capacities. Used to cross-check branch-and-bound.
    pub fn solve_dp(
        &self,
        alive: &[AliveModel],
        families: &[ModelFamily],
        priority: &PriorityStructure,
        target_kam_mb: f64,
    ) -> DowngradePlan {
        let pr = priority.normalized();
        let cap = target_kam_mb.max(0.0).floor() as usize;
        // dp[w] = (best utility with capacity w, chosen levels bitstate)
        // Track choices with a per-item table for reconstruction.
        let n = alive.len();
        let mut dp = vec![0.0f64; cap + 1];
        let mut choice: Vec<Vec<Level>> = vec![vec![None; cap + 1]; n];
        for (i, m) in alive.iter().enumerate() {
            let fam = &families[m.func];
            let mut next = dp.clone(); // eviction: same utility, no memory
            for level in 0..=m.variant {
                let w = fam.variant(level).memory_mb.ceil() as usize;
                let u = level_utility(fam, level, pr[m.func], m.invocation_probability);
                if w > cap {
                    continue;
                }
                for c in w..=cap {
                    let cand = dp[c - w] + u;
                    if cand > next[c] {
                        next[c] = cand;
                        choice[i][c] = Some(level);
                    }
                }
            }
            // Re-derive choices so reconstruction is consistent: where next
            // improved over eviction, the stored level applies.
            dp = next;
        }
        // Reconstruct.
        let mut levels: Vec<Level> = vec![None; n];
        let mut c = cap;
        // Walk items backwards re-running the recurrence decision.
        let mut dp_prev_stack: Vec<Vec<f64>> = Vec::with_capacity(n);
        {
            // Recompute the per-item prefix tables for reconstruction.
            let mut cur = vec![0.0f64; cap + 1];
            dp_prev_stack.push(cur.clone());
            for m in alive.iter() {
                let fam = &families[m.func];
                let mut next = cur.clone();
                for level in 0..=m.variant {
                    let w = fam.variant(level).memory_mb.ceil() as usize;
                    let u = level_utility(fam, level, pr[m.func], m.invocation_probability);
                    if w > cap {
                        continue;
                    }
                    for cc in w..=cap {
                        let cand = cur[cc - w] + u;
                        if cand > next[cc] {
                            next[cc] = cand;
                        }
                    }
                }
                cur = next;
                dp_prev_stack.push(cur.clone());
            }
        }
        for i in (0..n).rev() {
            let prev = &dp_prev_stack[i];
            let cur = &dp_prev_stack[i + 1];
            let m = &alive[i];
            let fam = &families[m.func];
            let mut picked: Level = None;
            if (cur[c] - prev[c]).abs() > 1e-12 {
                // Some level was taken; find one consistent with the values.
                for level in 0..=m.variant {
                    let w = fam.variant(level).memory_mb.ceil() as usize;
                    let u = level_utility(fam, level, pr[m.func], m.invocation_probability);
                    if w <= c && (prev[c - w] + u - cur[c]).abs() < 1e-9 {
                        picked = Some(level);
                        c -= w;
                        break;
                    }
                }
            }
            levels[i] = picked;
        }
        Self::plan_from_levels(levels, alive, families, priority, SolveStats::default())
    }

    fn plan_from_levels(
        levels: Vec<Level>,
        alive: &[AliveModel],
        families: &[ModelFamily],
        priority: &PriorityStructure,
        stats: SolveStats,
    ) -> DowngradePlan {
        let pr = priority.normalized();
        let mut utility = 0.0;
        let mut memory_mb = 0.0;
        for (i, lvl) in levels.iter().enumerate() {
            if let Some(level) = lvl {
                let m = &alive[i];
                let fam = &families[m.func];
                utility += level_utility(fam, *level, pr[m.func], m.invocation_probability);
                memory_mb += fam.variant(*level).memory_mb;
            }
        }
        DowngradePlan {
            levels,
            utility,
            memory_mb,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pulse_models::zoo;

    fn alive_all_highest(fams: &[ModelFamily]) -> Vec<AliveModel> {
        fams.iter()
            .enumerate()
            .map(|(func, f)| AliveModel {
                func,
                variant: f.highest_id(),
                invocation_probability: 0.3,
            })
            .collect()
    }

    fn total_highest_mem(fams: &[ModelFamily]) -> f64 {
        fams.iter().map(|f| f.highest().memory_mb).sum()
    }

    #[test]
    fn generous_budget_keeps_everything_alive() {
        let fams = vec![zoo::gpt(), zoo::bert(), zoo::yolo()];
        let alive = alive_all_highest(&fams);
        let pr = PriorityStructure::new(3);
        let plan = MilpDowngrader.solve(&alive, &fams, &pr, total_highest_mem(&fams) + 1.0);
        // Nothing needs to be evicted with a generous budget…
        assert!(plan.levels.iter().all(|l| l.is_some()));
        assert!(plan.memory_mb <= total_highest_mem(&fams) + 1.0);
        // …but MILP does NOT keep the highest rungs: because `Ai` of the
        // lowest rung is the model's full accuracy, the objective favors
        // downgrading — the exact "MILP tends to favor lower-quality models"
        // artifact the paper reports in Figure 9(b).
        assert_eq!(plan.levels[0], Some(0), "GPT parked at its lowest rung");
    }

    #[test]
    fn zero_budget_evicts_everything() {
        let fams = vec![zoo::bert(), zoo::yolo()];
        let alive = alive_all_highest(&fams);
        let pr = PriorityStructure::new(2);
        let plan = MilpDowngrader.solve(&alive, &fams, &pr, 0.0);
        assert!(plan.levels.iter().all(|l| l.is_none()));
        assert_eq!(plan.memory_mb, 0.0);
        assert_eq!(plan.utility, 0.0);
    }

    #[test]
    fn plan_respects_budget() {
        let fams = vec![zoo::gpt(), zoo::bert(), zoo::densenet(), zoo::yolo()];
        let alive = alive_all_highest(&fams);
        let pr = PriorityStructure::new(4);
        let target = total_highest_mem(&fams) * 0.5;
        let plan = MilpDowngrader.solve(&alive, &fams, &pr, target);
        assert!(
            plan.memory_mb <= target + 1e-6,
            "{} > {target}",
            plan.memory_mb
        );
        assert!(plan.utility > 0.0);
    }

    #[test]
    fn milp_matches_dp_on_varied_budgets() {
        let fams = vec![zoo::gpt(), zoo::bert(), zoo::densenet()];
        let alive = alive_all_highest(&fams);
        let mut pr = PriorityStructure::new(3);
        pr.bump(1);
        pr.bump(1);
        pr.bump(2);
        let total = total_highest_mem(&fams);
        for frac in [0.15, 0.3, 0.5, 0.75, 0.95] {
            let target = total * frac;
            let bb = MilpDowngrader.solve(&alive, &fams, &pr, target);
            let dp = MilpDowngrader.solve_dp(&alive, &fams, &pr, target);
            // DP discretizes memory to whole MB (ceil weights, floor
            // capacity), so it solves a tighter knapsack: never better than
            // B&B, and on these (non-knife-edge) budgets it matches closely.
            assert!(
                dp.utility <= bb.utility + 1e-9,
                "frac {frac}: dp {} > bb {}",
                dp.utility,
                bb.utility
            );
            assert!(
                bb.utility - dp.utility < 0.05,
                "frac {frac}: bb {} vs dp {}",
                bb.utility,
                dp.utility
            );
            assert!(bb.memory_mb <= target + 1e-6);
            assert!(dp.memory_mb <= target + 1e-6);
        }
    }

    #[test]
    fn milp_beats_or_matches_greedy_utility() {
        use pulse_core::global::flatten_peak;
        let fams = vec![zoo::gpt(), zoo::bert(), zoo::densenet(), zoo::yolo()];
        let alive = alive_all_highest(&fams);
        let total = total_highest_mem(&fams);
        let target = total * 0.45;

        // Greedy (Algorithm 2).
        let mut greedy_alive = alive.clone();
        let mut pr_greedy = PriorityStructure::new(4);
        flatten_peak(&mut greedy_alive, &fams, &mut pr_greedy, total, target);
        let pr_fresh = PriorityStructure::new(4);
        let greedy_utility: f64 = greedy_alive
            .iter()
            .map(|m| {
                level_utility(
                    &fams[m.func],
                    m.variant,
                    pr_fresh.normalized()[m.func],
                    m.invocation_probability,
                )
            })
            .sum();

        // Exact.
        let plan = MilpDowngrader.solve(&alive, &fams, &pr_fresh, target);
        assert!(
            plan.utility >= greedy_utility - 1e-9,
            "milp {} < greedy {}",
            plan.utility,
            greedy_utility
        );
    }

    #[test]
    fn high_ip_models_survive() {
        let fams = vec![zoo::gpt(), zoo::gpt()];
        let mut alive = alive_all_highest(&fams);
        alive[0].invocation_probability = 1.0;
        alive[1].invocation_probability = 0.0;
        let pr = PriorityStructure::new(2);
        // Budget fits exactly one GPT-Large.
        let target = fams[0].highest().memory_mb + 1.0;
        let plan = MilpDowngrader.solve(&alive, &fams, &pr, target);
        // The high-probability model keeps a bigger footprint than the other.
        let mem =
            |lvl: &Level, fam: &ModelFamily| lvl.map(|l| fam.variant(l).memory_mb).unwrap_or(0.0);
        assert!(mem(&plan.levels[0], &fams[0]) >= mem(&plan.levels[1], &fams[1]));
    }

    #[test]
    fn dp_zero_capacity() {
        let fams = vec![zoo::bert()];
        let alive = alive_all_highest(&fams);
        let pr = PriorityStructure::new(1);
        let plan = MilpDowngrader.solve_dp(&alive, &fams, &pr, 0.0);
        assert_eq!(plan.levels, vec![None]);
    }

    #[test]
    fn empty_alive_set() {
        let fams: Vec<ModelFamily> = vec![];
        let pr = PriorityStructure::new(0);
        let plan = MilpDowngrader.solve(&[], &fams, &pr, 100.0);
        assert!(plan.levels.is_empty());
        assert_eq!(plan.utility, 0.0);
    }
}

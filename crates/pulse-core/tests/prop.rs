//! Property tests for the policy core.

#![allow(clippy::float_cmp)] // property assertions compare exact reconstructions

use proptest::prelude::*;
use pulse_core::engine::PulseEngine;
use pulse_core::individual::KeepAliveSchedule;
use pulse_core::peak::PeakDetector;
use pulse_core::probability::Probability;
use pulse_core::thresholds::{CustomThresholds, ThresholdScheme};
use pulse_core::types::{PulseConfig, SchemeKind};
use pulse_models::zoo;

proptest! {
    /// Schedule lookups are consistent between offset/absolute addressing
    /// and iteration.
    #[test]
    fn schedule_addressing_consistency(
        invoked_at in 0u64..10_000,
        plan in proptest::collection::vec(0usize..4, 0..20),
    ) {
        let s = KeepAliveSchedule::new(invoked_at, plan.clone());
        prop_assert_eq!(s.window() as usize, plan.len());
        for (m, &v) in plan.iter().enumerate() {
            let offset = m as u64 + 1;
            prop_assert_eq!(s.variant_at_offset(offset), Some(v));
            prop_assert_eq!(s.variant_at(invoked_at + offset), Some(v));
        }
        prop_assert_eq!(s.variant_at(invoked_at), None);
        prop_assert_eq!(s.variant_at(invoked_at + plan.len() as u64 + 1), None);
        let collected: Vec<_> = s.iter().map(|(_, v)| v).collect();
        prop_assert_eq!(collected, plan);
    }

    /// The engine's schedules always cover the full window with valid
    /// variants, regardless of history shape.
    #[test]
    fn engine_schedules_are_total_and_valid(
        gaps in proptest::collection::vec(1u64..40, 1..50),
        scheme in prop_oneof![Just(SchemeKind::T1), Just(SchemeKind::T2)],
        local_window in 1u32..200,
    ) {
        let cfg = PulseConfig { scheme, local_window, ..Default::default() };
        let mut e = PulseEngine::new(vec![zoo::gpt()], cfg);
        let mut t = 0u64;
        e.record_invocation(0, t);
        for g in gaps {
            t += g;
            e.record_invocation(0, t);
        }
        let s = e.schedule_after_invocation(0, t);
        prop_assert_eq!(s.window(), 10);
        for m in 1..=10u64 {
            let v = s.variant_at_offset(m).expect("window covered");
            prop_assert!(v < 3, "variant {v} out of GPT's ladder");
        }
    }

    /// Invocation probability is always a probability and zero before any
    /// history exists.
    #[test]
    fn invocation_probability_in_unit_interval(
        gaps in proptest::collection::vec(1u64..30, 0..40),
        query_offset in 0u64..40,
    ) {
        let mut e = PulseEngine::new(vec![zoo::bert()], PulseConfig::default());
        let mut t = 0u64;
        if gaps.is_empty() {
            prop_assert_eq!(e.invocation_probability_at(0, query_offset), 0.0);
            return Ok(());
        }
        e.record_invocation(0, t);
        for g in &gaps {
            t += g;
            e.record_invocation(0, t);
        }
        let p = e.invocation_probability_at(0, t + query_offset);
        prop_assert!((0.0..=1.0).contains(&p), "p = {p}");
    }

    /// `prior_kam` returns either a value present in history, a local
    /// average of history, or infinity — never something below the minimum
    /// or above the maximum of the non-zero history.
    #[test]
    fn prior_kam_is_anchored_in_history(
        history in proptest::collection::vec(0.0f64..1e5, 0..100),
        first in any::<bool>(),
        window in 1usize..30,
    ) {
        let d = PeakDetector::new(0.1, window);
        let prior = d.prior_kam(&history, first);
        if prior.is_finite() {
            let nonzero: Vec<f64> = history.iter().copied().filter(|&x| x > 0.0).collect();
            if first {
                // Average-of-window or last-nonzero: bounded by history range
                // (allow the all-zero tail average case → prior can be less
                // than min(nonzero) only when it came from averaging zeros,
                // which the avg>0 guard excludes; the tail average still
                // mixes zeros, so the lower bound is 0).
                let hi = history.iter().copied().fold(0.0f64, f64::max);
                prop_assert!(prior <= hi + 1e-9);
                prop_assert!(prior >= 0.0);
            } else {
                prop_assert_eq!(prior, *history.last().unwrap());
            }
            let _ = nonzero;
        } else {
            // Infinity only when nothing usable exists.
            prop_assert!(first || history.is_empty());
        }
    }

    /// Flatten targets never flag themselves as peaks (fixed-point sanity
    /// across thresholds).
    #[test]
    fn flatten_target_is_never_a_peak(km in 0.0f64..1.0, prior in 0.0f64..1e6) {
        let d = PeakDetector::new(km, 10);
        prop_assert!(!d.is_peak(d.flatten_target(prior), prior));
    }

    /// The O(1)-amortized online inter-arrival model is observationally
    /// identical to the reference model for arbitrary arrival sequences,
    /// window sizes, and query times.
    #[test]
    fn online_model_matches_reference(
        gaps in proptest::collection::vec(1u64..60, 0..80),
        local_window in 1u32..100,
        query_offsets in proptest::collection::vec(0u64..300, 1..5),
    ) {
        use pulse_core::interarrival::InterArrivalModel;
        use pulse_core::online::OnlineInterArrival;

        let mut online = OnlineInterArrival::new(10, local_window);
        let mut reference = InterArrivalModel::new();
        let mut t = 0u64;
        if !gaps.is_empty() {
            online.record(t);
            reference.record(t);
            for &g in &gaps {
                t += g;
                online.record(t);
                reference.record(t);
            }
        }
        let mut offsets = query_offsets;
        offsets.sort_unstable(); // the online clock is monotone
        for off in offsets {
            let now = t + off;
            let a = online.probabilities(now);
            let b = reference.probabilities(now, local_window, 10);
            for k in 0..=10u64 {
                prop_assert!(
                    (a.at(k) - b.at(k)).abs() < 1e-12,
                    "gap {k} at now {now}: online {} vs reference {}",
                    a.at(k), b.at(k)
                );
            }
        }
    }

    /// `Probability` is closed under its combinators: arbitrary chains of
    /// `average`, `and`, and `complement` over validated inputs never escape
    /// `[0, 1]` (the invariant the policy math relies on everywhere).
    #[test]
    fn probability_arithmetic_never_escapes_unit_interval(
        seed in 0.0f64..=1.0,
        ops in proptest::collection::vec((0u8..3, 0.0f64..=1.0), 0..64),
    ) {
        let mut p = Probability::new(seed).unwrap();
        for (op, operand) in ops {
            let q = Probability::new(operand).unwrap();
            p = match op {
                0 => p.average(q),
                1 => p.and(q),
                _ => p.complement(),
            };
            prop_assert!((0.0..=1.0).contains(&p.value()), "escaped: {p}");
        }
    }

    /// `saturating` is total: any f64 (including NaN and infinities) maps
    /// into `[0, 1]`.
    #[test]
    fn probability_saturating_is_total(
        x in prop_oneof![
            Just(f64::NAN),
            Just(f64::INFINITY),
            Just(f64::NEG_INFINITY),
            -1e12f64..1e12,
        ],
    ) {
        let p = Probability::saturating(x);
        prop_assert!((0.0..=1.0).contains(&p.value()), "{x} -> {p}");
    }

    /// `CustomThresholds::new` accepts exactly the strictly-increasing
    /// ladders inside the open interval `(0, 1)` and rejects everything else
    /// with a typed error — never a panic.
    #[test]
    fn custom_thresholds_accept_iff_strictly_increasing(
        cuts in proptest::collection::vec(0.0f64..=1.0, 1..8),
    ) {
        let valid = cuts.windows(2).all(|w| w[0] < w[1])
            && cuts.iter().all(|&t| t > 0.0 && t < 1.0);
        match CustomThresholds::new(cuts.clone()) {
            Ok(scheme) => {
                prop_assert!(valid, "accepted invalid ladder {cuts:?}");
                // A valid ladder must produce monotone in-range selections.
                let n = cuts.len() + 1;
                let mut last = 0;
                for i in 0..=50 {
                    let p = Probability::new(f64::from(i) / 50.0).unwrap();
                    let v = scheme.select(p, n);
                    prop_assert!(v < n);
                    prop_assert!(v >= last, "selection not monotone in p");
                    last = v;
                }
            }
            Err(_) => prop_assert!(!valid, "rejected valid {cuts:?}"),
        }
    }

    /// Non-monotone ladders are always rejected (directed generator: shuffle
    /// guarantees at least one inversion whenever duplicates exist or order
    /// is broken).
    #[test]
    fn custom_thresholds_reject_non_monotone(
        a in 0.0f64..=1.0,
        rest in proptest::collection::vec(0.0f64..=1.0, 1..6),
    ) {
        // Construct a ladder with a guaranteed non-increase: repeat `a`.
        let mut cuts = vec![a, a];
        cuts.extend(rest);
        prop_assert!(CustomThresholds::new(cuts).is_err());
    }
}

//! Greedy probability-threshold schemes (Section III-A, Figure 10).
//!
//! Given the invocation probability `p` for a minute of the keep-alive window
//! and a family with `N` quality variants, a threshold scheme picks which
//! variant to keep alive during that minute. Both schemes follow the paper's
//! "general principle of keeping alive the variant with the highest accuracy
//! at higher invocation probabilities".
//!
//! Probabilities arrive as the validated [`Probability`] newtype, so the
//! schemes never see NaN or out-of-range input; each `select` additionally
//! debug-asserts its postcondition (the chosen index lies on the ladder).

use crate::convert::{count_to_f64, floor_index};
use crate::probability::Probability;
use pulse_models::VariantId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Maps an invocation probability to the quality variant to keep alive.
pub trait ThresholdScheme {
    /// Select a variant index in `0..n_variants` for probability `p`.
    /// Index 0 is the lowest-accuracy variant.
    fn select(&self, p: Probability, n_variants: usize) -> VariantId;

    /// Scheme name for reports.
    fn name(&self) -> &'static str;

    /// The thresholds this scheme induces for `n_variants` variants
    /// (boundaries between adjacent bands), for documentation and plots.
    fn thresholds(&self, n_variants: usize) -> Vec<f64>;
}

/// Postcondition shared by every scheme: the selected rung is on the ladder.
#[inline]
fn check_selection(v: VariantId, n_variants: usize) -> VariantId {
    debug_assert!(
        v < n_variants,
        "scheme selected rung {v} outside ladder of {n_variants}"
    );
    v
}

/// **T1** — the scheme of the paper's main design: divide `[0, 1]` into `N`
/// equal areas with `N − 1` thresholds at `1/N, 2/N, …, (N−1)/N`; the lowest
/// area keeps the lowest-accuracy variant alive, the highest area the
/// highest-accuracy variant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchemeT1;

impl ThresholdScheme for SchemeT1 {
    fn select(&self, p: Probability, n_variants: usize) -> VariantId {
        assert!(n_variants >= 1, "a family has at least one variant");
        let n = count_to_f64(n_variants);
        check_selection(floor_index(p.value() * n).min(n_variants - 1), n_variants)
    }

    fn name(&self) -> &'static str {
        "T1"
    }

    fn thresholds(&self, n_variants: usize) -> Vec<f64> {
        (1..n_variants)
            .map(|k| count_to_f64(k) / count_to_f64(n_variants))
            .collect()
    }
}

/// **T2** — the ablation scheme of Figure 10: the lowest-accuracy variant is
/// reserved for probability exactly 0; probabilities in `(0, 1]` are divided
/// into `N − 1` equal areas over the remaining variants (`N − 2` thresholds).
/// With a single-variant family it degenerates to always choosing variant 0.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchemeT2;

impl ThresholdScheme for SchemeT2 {
    fn select(&self, p: Probability, n_variants: usize) -> VariantId {
        assert!(n_variants >= 1, "a family has at least one variant");
        if p.is_zero() || n_variants == 1 {
            return 0;
        }
        if n_variants == 2 {
            return 1;
        }
        let bands = count_to_f64(n_variants - 1);
        check_selection(
            1 + floor_index(p.value() * bands).min(n_variants - 2),
            n_variants,
        )
    }

    fn name(&self) -> &'static str {
        "T2"
    }

    fn thresholds(&self, n_variants: usize) -> Vec<f64> {
        if n_variants <= 2 {
            return Vec::new();
        }
        (1..n_variants - 1)
            .map(|k| count_to_f64(k) / count_to_f64(n_variants - 1))
            .collect()
    }
}

/// Error returned by [`CustomThresholds::new`] for invalid band boundaries.
#[derive(Debug, Clone, PartialEq)]
pub enum ThresholdError {
    /// Adjacent thresholds are not strictly increasing.
    NotIncreasing {
        /// The offending pair, in input order.
        pair: (f64, f64),
    },
    /// A threshold lies outside the open interval `(0, 1)` (or is NaN).
    OutOfRange {
        /// The rejected value.
        value: f64,
    },
}

impl fmt::Display for ThresholdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NotIncreasing { pair: (a, b) } => {
                write!(f, "thresholds must be strictly increasing: {a} !< {b}")
            }
            Self::OutOfRange { value } => {
                write!(f, "thresholds must lie strictly inside (0, 1): {value}")
            }
        }
    }
}

impl std::error::Error for ThresholdError {}

/// **Custom thresholds** — the paper notes "the greedy optimization can be
/// tuned by the provider based on available resources and specific needs";
/// this scheme lets a provider place the band boundaries explicitly.
/// With thresholds `t_1 < t_2 < … < t_k`, probability `p` selects the
/// variant index `#{i : p > t_i}`, clamped to the family's ladder. A family
/// with fewer than `k + 1` variants simply tops out at its highest rung.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CustomThresholds {
    thresholds: Vec<f64>,
}

impl CustomThresholds {
    /// Build from explicit band boundaries. Rejects thresholds that are not
    /// strictly increasing or that fall outside the open interval `(0, 1)`.
    pub fn new(thresholds: Vec<f64>) -> Result<Self, ThresholdError> {
        for w in thresholds.windows(2) {
            if w[0] >= w[1] {
                return Err(ThresholdError::NotIncreasing { pair: (w[0], w[1]) });
            }
        }
        for &t in &thresholds {
            if !(t > 0.0 && t < 1.0) {
                return Err(ThresholdError::OutOfRange { value: t });
            }
        }
        Ok(Self { thresholds })
    }

    /// A scheme biased toward cheap variants: the top rung is reserved for
    /// near-certain invocations (`p > hi`), the bottom for `p ≤ lo`.
    /// Rejects `lo`/`hi` that do not satisfy `0 < lo < hi < 1`.
    pub fn conservative(lo: f64, hi: f64) -> Result<Self, ThresholdError> {
        Self::new(vec![lo, hi])
    }
}

impl ThresholdScheme for CustomThresholds {
    fn select(&self, p: Probability, n_variants: usize) -> VariantId {
        assert!(n_variants >= 1, "a family has at least one variant");
        check_selection(
            self.thresholds
                .iter()
                .filter(|&&t| p.value() > t)
                .count()
                .min(n_variants - 1),
            n_variants,
        )
    }

    fn name(&self) -> &'static str {
        "custom"
    }

    fn thresholds(&self, n_variants: usize) -> Vec<f64> {
        self.thresholds
            .iter()
            .copied()
            .take(n_variants.saturating_sub(1))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    #[test]
    fn t1_three_variants_bands() {
        let s = SchemeT1;
        // thresholds at 1/3 and 2/3
        assert_eq!(s.select(p(0.0), 3), 0);
        assert_eq!(s.select(p(0.2), 3), 0);
        assert_eq!(s.select(p(1.0 / 3.0 + 1e-9), 3), 1);
        assert_eq!(s.select(p(0.5), 3), 1);
        assert_eq!(s.select(p(2.0 / 3.0 + 1e-9), 3), 2);
        assert_eq!(s.select(p(1.0), 3), 2);
    }

    #[test]
    fn t1_two_variants_bands() {
        let s = SchemeT1;
        assert_eq!(s.select(p(0.49), 2), 0);
        assert_eq!(s.select(p(0.51), 2), 1);
    }

    #[test]
    fn t1_single_variant_always_zero() {
        let s = SchemeT1;
        for v in [0.0, 0.3, 1.0] {
            assert_eq!(s.select(p(v), 1), 0);
        }
    }

    #[test]
    fn t1_threshold_count_is_n_minus_1() {
        assert_eq!(SchemeT1.thresholds(3), vec![1.0 / 3.0, 2.0 / 3.0]);
        assert_eq!(SchemeT1.thresholds(2).len(), 1);
        assert!(SchemeT1.thresholds(1).is_empty());
    }

    #[test]
    fn t2_zero_probability_reserves_lowest() {
        let s = SchemeT2;
        assert_eq!(s.select(Probability::ZERO, 3), 0);
        // Any nonzero probability skips the lowest variant.
        assert_eq!(s.select(p(1e-6), 3), 1);
    }

    #[test]
    fn t2_three_variants_bands() {
        let s = SchemeT2;
        // (0,1] split into 2 areas; threshold at 1/2.
        assert_eq!(s.select(p(0.3), 3), 1);
        assert_eq!(s.select(p(0.6), 3), 2);
        assert_eq!(s.select(p(1.0), 3), 2);
    }

    #[test]
    fn t2_threshold_count_is_n_minus_2() {
        assert_eq!(SchemeT2.thresholds(3).len(), 1);
        assert_eq!(SchemeT2.thresholds(4).len(), 2);
        assert!(SchemeT2.thresholds(2).is_empty());
    }

    #[test]
    fn t2_two_variants() {
        let s = SchemeT2;
        assert_eq!(s.select(Probability::ZERO, 2), 0);
        assert_eq!(s.select(p(0.2), 2), 1);
        assert_eq!(s.select(p(1.0), 2), 1);
    }

    #[test]
    fn both_schemes_monotone_in_probability() {
        for n in 1..=5usize {
            for scheme in [&SchemeT1 as &dyn ThresholdScheme, &SchemeT2] {
                let mut prev = 0usize;
                for i in 0..=100u32 {
                    let prob = p(f64::from(i) / 100.0);
                    let v = scheme.select(prob, n);
                    assert!(
                        v >= prev,
                        "{} not monotone at p={prob}, n={n}",
                        scheme.name()
                    );
                    assert!(v < n);
                    prev = v;
                }
            }
        }
    }

    #[test]
    fn max_probability_selects_highest() {
        for n in 1..=5usize {
            assert_eq!(SchemeT1.select(Probability::ONE, n), n - 1);
            assert_eq!(SchemeT2.select(Probability::ONE, n), n - 1);
        }
    }

    #[test]
    fn custom_scheme_respects_explicit_bands() {
        let s = CustomThresholds::new(vec![0.25, 0.9]).unwrap();
        assert_eq!(s.select(p(0.1), 3), 0);
        assert_eq!(s.select(p(0.25), 3), 0); // boundary stays in lower band
        assert_eq!(s.select(p(0.5), 3), 1);
        assert_eq!(s.select(p(0.95), 3), 2);
    }

    #[test]
    fn custom_scheme_clamps_to_small_ladders() {
        let s = CustomThresholds::new(vec![0.2, 0.4, 0.6, 0.8]).unwrap();
        assert_eq!(s.select(p(0.99), 2), 1);
        assert_eq!(s.select(p(0.5), 2), 1);
        assert_eq!(s.select(p(0.1), 2), 0);
    }

    #[test]
    fn conservative_scheme_reserves_top_rung() {
        let s = CustomThresholds::conservative(0.3, 0.95).unwrap();
        assert_eq!(s.select(p(0.9), 3), 1);
        assert_eq!(s.select(p(0.96), 3), 2);
    }

    #[test]
    fn custom_scheme_is_monotone() {
        let s = CustomThresholds::new(vec![0.1, 0.5, 0.7]).unwrap();
        let mut prev = 0;
        for i in 0..=100u32 {
            let v = s.select(p(f64::from(i) / 100.0), 4);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn unsorted_custom_thresholds_rejected() {
        let err = CustomThresholds::new(vec![0.5, 0.3]).unwrap_err();
        assert_eq!(err, ThresholdError::NotIncreasing { pair: (0.5, 0.3) });
        assert!(err.to_string().contains("strictly increasing"));
    }

    #[test]
    fn out_of_range_custom_thresholds_rejected() {
        let err = CustomThresholds::new(vec![0.0, 0.5]).unwrap_err();
        assert_eq!(err, ThresholdError::OutOfRange { value: 0.0 });
        assert!(err.to_string().contains("inside (0, 1)"));
        assert!(CustomThresholds::new(vec![0.5, 1.0]).is_err());
        assert!(CustomThresholds::new(vec![f64::NAN]).is_err());
    }

    #[test]
    fn equal_custom_thresholds_rejected() {
        assert!(CustomThresholds::new(vec![0.4, 0.4]).is_err());
    }

    #[test]
    fn custom_thresholds_report_truncates_to_ladder() {
        let s = CustomThresholds::new(vec![0.2, 0.4, 0.6]).unwrap();
        assert_eq!(s.thresholds(3), vec![0.2, 0.4]);
        assert_eq!(s.thresholds(10), vec![0.2, 0.4, 0.6]);
    }
}

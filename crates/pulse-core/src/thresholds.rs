//! Greedy probability-threshold schemes (Section III-A, Figure 10).
//!
//! Given the invocation probability `p` for a minute of the keep-alive window
//! and a family with `N` quality variants, a threshold scheme picks which
//! variant to keep alive during that minute. Both schemes follow the paper's
//! "general principle of keeping alive the variant with the highest accuracy
//! at higher invocation probabilities".

use pulse_models::VariantId;
use serde::{Deserialize, Serialize};

/// Maps an invocation probability to the quality variant to keep alive.
pub trait ThresholdScheme {
    /// Select a variant index in `0..n_variants` for probability `p ∈ [0,1]`.
    /// Index 0 is the lowest-accuracy variant.
    fn select(&self, p: f64, n_variants: usize) -> VariantId;

    /// Scheme name for reports.
    fn name(&self) -> &'static str;

    /// The thresholds this scheme induces for `n_variants` variants
    /// (boundaries between adjacent bands), for documentation and plots.
    fn thresholds(&self, n_variants: usize) -> Vec<f64>;
}

fn check_p(p: f64) {
    debug_assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
}

/// **T1** — the scheme of the paper's main design: divide `[0, 1]` into `N`
/// equal areas with `N − 1` thresholds at `1/N, 2/N, …, (N−1)/N`; the lowest
/// area keeps the lowest-accuracy variant alive, the highest area the
/// highest-accuracy variant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchemeT1;

impl ThresholdScheme for SchemeT1 {
    fn select(&self, p: f64, n_variants: usize) -> VariantId {
        assert!(n_variants >= 1, "a family has at least one variant");
        check_p(p);
        let n = n_variants as f64;
        ((p * n).floor() as usize).min(n_variants - 1)
    }

    fn name(&self) -> &'static str {
        "T1"
    }

    fn thresholds(&self, n_variants: usize) -> Vec<f64> {
        (1..n_variants)
            .map(|k| k as f64 / n_variants as f64)
            .collect()
    }
}

/// **T2** — the ablation scheme of Figure 10: the lowest-accuracy variant is
/// reserved for probability exactly 0; probabilities in `(0, 1]` are divided
/// into `N − 1` equal areas over the remaining variants (`N − 2` thresholds).
/// With a single-variant family it degenerates to always choosing variant 0.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchemeT2;

impl ThresholdScheme for SchemeT2 {
    fn select(&self, p: f64, n_variants: usize) -> VariantId {
        assert!(n_variants >= 1, "a family has at least one variant");
        check_p(p);
        if p == 0.0 || n_variants == 1 {
            return 0;
        }
        if n_variants == 2 {
            return 1;
        }
        let bands = (n_variants - 1) as f64;
        1 + ((p * bands).floor() as usize).min(n_variants - 2)
    }

    fn name(&self) -> &'static str {
        "T2"
    }

    fn thresholds(&self, n_variants: usize) -> Vec<f64> {
        if n_variants <= 2 {
            return Vec::new();
        }
        (1..n_variants - 1)
            .map(|k| k as f64 / (n_variants - 1) as f64)
            .collect()
    }
}

/// **Custom thresholds** — the paper notes "the greedy optimization can be
/// tuned by the provider based on available resources and specific needs";
/// this scheme lets a provider place the band boundaries explicitly.
/// With thresholds `t_1 < t_2 < … < t_k`, probability `p` selects the
/// variant index `#{i : p > t_i}`, clamped to the family's ladder. A family
/// with fewer than `k + 1` variants simply tops out at its highest rung.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CustomThresholds {
    thresholds: Vec<f64>,
}

impl CustomThresholds {
    /// Build from explicit band boundaries.
    ///
    /// # Panics
    /// Panics unless the thresholds are strictly increasing and within
    /// `(0, 1)`.
    pub fn new(thresholds: Vec<f64>) -> Self {
        for w in thresholds.windows(2) {
            assert!(w[0] < w[1], "thresholds must be strictly increasing");
        }
        for &t in &thresholds {
            assert!(
                (0.0..1.0).contains(&t) && t > 0.0,
                "thresholds must lie strictly inside (0, 1)"
            );
        }
        Self { thresholds }
    }

    /// A scheme biased toward cheap variants: the top rung is reserved for
    /// near-certain invocations (`p > hi`), the bottom for `p ≤ lo`.
    pub fn conservative(lo: f64, hi: f64) -> Self {
        Self::new(vec![lo, hi])
    }
}

impl ThresholdScheme for CustomThresholds {
    fn select(&self, p: f64, n_variants: usize) -> VariantId {
        assert!(n_variants >= 1, "a family has at least one variant");
        check_p(p);
        self.thresholds
            .iter()
            .filter(|&&t| p > t)
            .count()
            .min(n_variants - 1)
    }

    fn name(&self) -> &'static str {
        "custom"
    }

    fn thresholds(&self, n_variants: usize) -> Vec<f64> {
        self.thresholds
            .iter()
            .copied()
            .take(n_variants.saturating_sub(1))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t1_three_variants_bands() {
        let s = SchemeT1;
        // thresholds at 1/3 and 2/3
        assert_eq!(s.select(0.0, 3), 0);
        assert_eq!(s.select(0.2, 3), 0);
        assert_eq!(s.select(1.0 / 3.0 + 1e-9, 3), 1);
        assert_eq!(s.select(0.5, 3), 1);
        assert_eq!(s.select(2.0 / 3.0 + 1e-9, 3), 2);
        assert_eq!(s.select(1.0, 3), 2);
    }

    #[test]
    fn t1_two_variants_bands() {
        let s = SchemeT1;
        assert_eq!(s.select(0.49, 2), 0);
        assert_eq!(s.select(0.51, 2), 1);
    }

    #[test]
    fn t1_single_variant_always_zero() {
        let s = SchemeT1;
        for p in [0.0, 0.3, 1.0] {
            assert_eq!(s.select(p, 1), 0);
        }
    }

    #[test]
    fn t1_threshold_count_is_n_minus_1() {
        assert_eq!(SchemeT1.thresholds(3), vec![1.0 / 3.0, 2.0 / 3.0]);
        assert_eq!(SchemeT1.thresholds(2).len(), 1);
        assert!(SchemeT1.thresholds(1).is_empty());
    }

    #[test]
    fn t2_zero_probability_reserves_lowest() {
        let s = SchemeT2;
        assert_eq!(s.select(0.0, 3), 0);
        // Any nonzero probability skips the lowest variant.
        assert_eq!(s.select(1e-6, 3), 1);
    }

    #[test]
    fn t2_three_variants_bands() {
        let s = SchemeT2;
        // (0,1] split into 2 areas; threshold at 1/2.
        assert_eq!(s.select(0.3, 3), 1);
        assert_eq!(s.select(0.6, 3), 2);
        assert_eq!(s.select(1.0, 3), 2);
    }

    #[test]
    fn t2_threshold_count_is_n_minus_2() {
        assert_eq!(SchemeT2.thresholds(3).len(), 1);
        assert_eq!(SchemeT2.thresholds(4).len(), 2);
        assert!(SchemeT2.thresholds(2).is_empty());
    }

    #[test]
    fn t2_two_variants() {
        let s = SchemeT2;
        assert_eq!(s.select(0.0, 2), 0);
        assert_eq!(s.select(0.2, 2), 1);
        assert_eq!(s.select(1.0, 2), 1);
    }

    #[test]
    fn both_schemes_monotone_in_probability() {
        for n in 1..=5usize {
            for scheme in [&SchemeT1 as &dyn ThresholdScheme, &SchemeT2] {
                let mut prev = 0usize;
                for i in 0..=100 {
                    let p = i as f64 / 100.0;
                    let v = scheme.select(p, n);
                    assert!(v >= prev, "{} not monotone at p={p}, n={n}", scheme.name());
                    assert!(v < n);
                    prev = v;
                }
            }
        }
    }

    #[test]
    fn max_probability_selects_highest() {
        for n in 1..=5usize {
            assert_eq!(SchemeT1.select(1.0, n), n - 1);
            assert_eq!(SchemeT2.select(1.0, n), n - 1);
        }
    }

    #[test]
    fn custom_scheme_respects_explicit_bands() {
        let s = CustomThresholds::new(vec![0.25, 0.9]);
        assert_eq!(s.select(0.1, 3), 0);
        assert_eq!(s.select(0.25, 3), 0); // boundary stays in lower band
        assert_eq!(s.select(0.5, 3), 1);
        assert_eq!(s.select(0.95, 3), 2);
    }

    #[test]
    fn custom_scheme_clamps_to_small_ladders() {
        let s = CustomThresholds::new(vec![0.2, 0.4, 0.6, 0.8]);
        assert_eq!(s.select(0.99, 2), 1);
        assert_eq!(s.select(0.5, 2), 1);
        assert_eq!(s.select(0.1, 2), 0);
    }

    #[test]
    fn conservative_scheme_reserves_top_rung() {
        let s = CustomThresholds::conservative(0.3, 0.95);
        assert_eq!(s.select(0.9, 3), 1);
        assert_eq!(s.select(0.96, 3), 2);
    }

    #[test]
    fn custom_scheme_is_monotone() {
        let s = CustomThresholds::new(vec![0.1, 0.5, 0.7]);
        let mut prev = 0;
        for i in 0..=100 {
            let v = s.select(i as f64 / 100.0, 4);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_custom_thresholds_rejected() {
        CustomThresholds::new(vec![0.5, 0.3]);
    }

    #[test]
    #[should_panic(expected = "inside (0, 1)")]
    fn out_of_range_custom_thresholds_rejected() {
        CustomThresholds::new(vec![0.0, 0.5]);
    }

    #[test]
    fn custom_thresholds_report_truncates_to_ladder() {
        let s = CustomThresholds::new(vec![0.2, 0.4, 0.6]);
        assert_eq!(s.thresholds(3), vec![0.2, 0.4]);
        assert_eq!(s.thresholds(10), vec![0.2, 0.4, 0.6]);
    }
}

//! Utility value of a keep-alive decision (Section III-B, Equation 2).
//!
//! During a peak, every model currently kept alive is scored:
//!
//! ```text
//! Uv = Ai + Pr + Ip
//! ```
//!
//! * `Ai` — accuracy improvement of the chosen variant over the next-lower
//!   variant (or, at the lowest variant, that variant's accuracy in decimal
//!   form), see [`pulse_models::ModelFamily::accuracy_improvement`];
//! * `Pr` — the model's normalized downgrade priority (Equation 1), carried
//!   as a validated [`Probability`]-typed unit-interval value;
//! * `Ip` — the probability of invocation derived in the individual
//!   optimization, likewise a [`Probability`].
//!
//! Each component lies in `[0, 1]` and they are *equally weighted* "to ensure
//! a balanced assessment and prevent bias". The model with the lowest `Uv`
//! is downgraded first.

use crate::probability::Probability;
use pulse_models::{ModelFamily, VariantId};

/// Equation 2: `Uv = Ai + Pr + Ip`.
///
/// `Pr` and `Ip` are unit-interval by type; `Ai` (an accuracy delta, not a
/// probability) is debug-asserted into the paper's stated `[0, 1]` range.
#[inline]
pub fn utility_value(ai: f64, pr: Probability, ip: Probability) -> f64 {
    debug_assert!((0.0..=1.0).contains(&ai), "Ai out of range: {ai}");
    let uv = ai + pr.value() + ip.value();
    debug_assert!((0.0..=3.0).contains(&uv), "Uv out of range: {uv}");
    uv
}

/// Convenience: compute `Uv` for keeping `variant` of `family` alive, given
/// the normalized priority and invocation probability.
pub fn utility_for(
    family: &ModelFamily,
    variant: VariantId,
    pr: Probability,
    ip: Probability,
) -> f64 {
    utility_value(family.accuracy_improvement(variant), pr, ip)
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests compare exact constructed values
mod tests {
    use super::*;
    use pulse_models::zoo;

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    #[test]
    fn utility_is_sum_of_components() {
        assert!((utility_value(0.2, p(0.3), p(0.4)) - 0.9).abs() < 1e-12);
        assert_eq!(
            utility_value(0.0, Probability::ZERO, Probability::ZERO),
            0.0
        );
        assert_eq!(utility_value(1.0, Probability::ONE, Probability::ONE), 3.0);
    }

    #[test]
    fn utility_range_is_zero_to_three() {
        for ai in [0.0, 0.5, 1.0] {
            for pr in [0.0, 0.5, 1.0] {
                for ip in [0.0, 0.5, 1.0] {
                    let uv = utility_value(ai, p(pr), p(ip));
                    assert!((0.0..=3.0).contains(&uv));
                }
            }
        }
    }

    #[test]
    fn lowest_variant_uses_own_accuracy_as_ai() {
        // The paper's YOLO example: lowest variant accuracy 56.8 % ⇒ Ai = 0.568.
        let yolo = zoo::yolo();
        let uv = utility_for(&yolo, 0, Probability::ZERO, Probability::ZERO);
        assert!((uv - 0.568).abs() < 1e-9);
    }

    #[test]
    fn gpt_bias_without_priority_component() {
        // The motivating bias: GPT's lowest accuracy (87.65 %) beats YOLO's
        // (56.8 %) on Ai alone, so GPT would never be downgraded first...
        let gpt = zoo::gpt();
        let yolo = zoo::yolo();
        let zero = Probability::ZERO;
        assert!(utility_for(&gpt, 0, zero, zero) > utility_for(&yolo, 0, zero, zero));
        // ...until the priority structure compensates.
        assert!(utility_for(&gpt, 0, zero, zero) < utility_for(&yolo, 0, Probability::ONE, zero));
    }

    #[test]
    fn interior_variant_ai_is_step_gain() {
        let gpt = zoo::gpt();
        // GPT-Large over GPT-Medium: 93.45 − 92.35 = 1.10 points = 0.011.
        let uv = utility_for(&gpt, 2, Probability::ZERO, Probability::ZERO);
        assert!((uv - 0.011).abs() < 1e-9);
    }

    #[test]
    fn higher_invocation_probability_protects_model() {
        let bert = zoo::bert();
        let zero = Probability::ZERO;
        assert!(utility_for(&bert, 1, zero, p(0.9)) > utility_for(&bert, 1, zero, p(0.1)));
    }
}

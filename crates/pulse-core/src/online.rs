//! An incremental inter-arrival model with O(1) amortized updates.
//!
//! [`crate::interarrival::InterArrivalModel`] recomputes both gap
//! distributions from the raw arrival log on every query — O(history) per
//! invocation, which dominates PULSE's per-invocation overhead on
//! long-running functions (see the `individual` Criterion bench). This
//! module maintains the same two distributions incrementally:
//!
//! * the **global** gap counts grow monotonically — O(1) per arrival;
//! * the **local-window** counts follow a sliding window over a deque of
//!   recent arrivals — O(1) amortized per arrival + eviction, provided the
//!   clock only moves forward (which simulation and production both
//!   guarantee).
//!
//! The observable behaviour is bit-identical to the reference model; the
//! `prop` test suite and the unit tests below enforce the equivalence.

use crate::convert::{gap_to_index, u64_to_f64, window_to_len};
use crate::interarrival::GapProbabilities;
use crate::probability::Probability;
use crate::types::Minute;
use std::collections::VecDeque;

/// Gap-count accumulator over a bounded support plus an out-of-window total.
#[derive(Debug, Clone, Default)]
struct GapCounts {
    /// `counts[g]` for gaps `g ≤ window`; index 0 unused.
    counts: Vec<u64>,
    /// Total gaps including those beyond the window (the probability
    /// denominator).
    total: u64,
}

impl GapCounts {
    fn new(window: u32) -> Self {
        Self {
            counts: vec![0; window_to_len(window) + 1],
            total: 0,
        }
    }

    fn add(&mut self, gap: u64) {
        self.total += 1;
        if let Some(c) = self.counts.get_mut(gap_to_index(gap)) {
            *c += 1;
        }
    }

    fn remove(&mut self, gap: u64) {
        debug_assert!(self.total > 0);
        self.total -= 1;
        if let Some(c) = self.counts.get_mut(gap_to_index(gap)) {
            debug_assert!(*c > 0);
            *c -= 1;
        }
    }

    fn probabilities(&self, window: u32) -> GapProbabilities {
        if self.total == 0 {
            return GapProbabilities::zeros(window);
        }
        // c <= total by construction, so each ratio is a valid probability.
        GapProbabilities::from_probabilities(
            self.counts
                .iter()
                .map(|&c| Probability::from_invariant(u64_to_f64(c) / u64_to_f64(self.total)))
                .collect(),
        )
    }
}

/// Incremental equivalent of [`crate::interarrival::InterArrivalModel`].
#[derive(Debug, Clone)]
pub struct OnlineInterArrival {
    /// Keep-alive window (max representable gap), minutes.
    window: u32,
    /// Sliding local-window length, minutes.
    local_window: u32,
    global: GapCounts,
    local: GapCounts,
    /// Arrivals currently inside the local window, ascending.
    recent: VecDeque<Minute>,
    last_arrival: Option<Minute>,
    /// High-water mark of the clock (queries/evictions must be monotone).
    now: Minute,
}

impl OnlineInterArrival {
    /// New model for a `window`-minute keep-alive period and a
    /// `local_window`-minute sliding window.
    pub fn new(window: u32, local_window: u32) -> Self {
        assert!(window >= 1 && local_window >= 1);
        Self {
            window,
            local_window,
            global: GapCounts::new(window),
            local: GapCounts::new(window),
            recent: VecDeque::new(),
            last_arrival: None,
            now: 0,
        }
    }

    /// Number of distinct arrival minutes recorded (global).
    pub fn arrivals(&self) -> u64 {
        self.global.total + u64::from(self.last_arrival.is_some())
    }

    /// Most recent arrival.
    pub fn last_arrival(&self) -> Option<Minute> {
        self.last_arrival
    }

    /// Record an arrival at minute `t` (monotone, duplicates collapse).
    pub fn record(&mut self, t: Minute) {
        if let Some(last) = self.last_arrival {
            assert!(t >= last, "arrivals must be recorded in time order");
            if t == last {
                return;
            }
            let gap = t - last;
            self.global.add(gap);
        }
        self.advance_to(t);
        // Local gap: between the new arrival and the previous one, counted
        // only when the previous arrival is still inside the window at the
        // *current* clock — eviction handles the rest lazily.
        if let Some(&prev) = self.recent.back() {
            self.local.add(t - prev);
        }
        self.recent.push_back(t);
        self.last_arrival = Some(t);
    }

    /// Advance the clock, evicting arrivals (and their leading gaps) that
    /// fell out of the local window `[now − local_window, now]`.
    pub fn advance_to(&mut self, now: Minute) {
        assert!(now >= self.now, "the clock only moves forward");
        self.now = now;
        let from = now.saturating_sub(u64::from(self.local_window));
        while let Some(&oldest) = self.recent.front() {
            if oldest >= from {
                break;
            }
            self.recent.pop_front();
            if let Some(&next) = self.recent.front() {
                self.local.remove(next - oldest);
            }
        }
    }

    /// The combined estimate at minute `now`: average of the local-window
    /// and global distributions, with single-sided fallback — exactly
    /// [`crate::interarrival::InterArrivalModel::probabilities`].
    pub fn probabilities(&mut self, now: Minute) -> GapProbabilities {
        self.advance_to(now);
        let local = self.local.probabilities(self.window);
        let global = self.global.probabilities(self.window);
        GapProbabilities::combine(&local, &global, self.window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interarrival::InterArrivalModel;

    fn both(arrivals: &[Minute], local_window: u32) -> (OnlineInterArrival, InterArrivalModel) {
        let mut online = OnlineInterArrival::new(10, local_window);
        let mut reference = InterArrivalModel::new();
        for &t in arrivals {
            online.record(t);
            reference.record(t);
        }
        (online, reference)
    }

    fn assert_equivalent(arrivals: &[Minute], local_window: u32, now: Minute) {
        let (mut online, reference) = both(arrivals, local_window);
        let a = online.probabilities(now);
        let b = reference.probabilities(now, local_window, 10);
        for k in 0..=10u64 {
            assert!(
                (a.at(k) - b.at(k)).abs() < 1e-12,
                "gap {k}: online {} vs reference {} (arrivals {arrivals:?}, lw {local_window}, now {now})",
                a.at(k),
                b.at(k)
            );
        }
    }

    #[test]
    fn matches_reference_on_steady_cadence() {
        let arrivals: Vec<Minute> = (0..50).map(|i| i * 4).collect();
        assert_equivalent(&arrivals, 60, 196);
    }

    #[test]
    fn matches_reference_on_regime_change() {
        // Gap 3 early, gap 7 late: the local window must forget the early
        // regime as `now` advances.
        let mut arrivals = vec![0u64];
        let mut t = 0;
        for _ in 0..20 {
            t += 3;
            arrivals.push(t);
        }
        for _ in 0..20 {
            t += 7;
            arrivals.push(t);
        }
        for now in [t, t + 30, t + 200] {
            assert_equivalent(&arrivals, 40, now);
        }
    }

    #[test]
    fn matches_reference_with_sparse_history() {
        assert_equivalent(&[5], 60, 100);
        assert_equivalent(&[], 60, 100);
        assert_equivalent(&[0, 500], 60, 600);
    }

    #[test]
    fn matches_reference_with_tiny_window() {
        let arrivals: Vec<Minute> = vec![0, 2, 4, 9, 11, 12, 20, 21, 30];
        for lw in [1u32, 2, 5, 9] {
            assert_equivalent(&arrivals, lw, 30);
            assert_equivalent(&arrivals, lw, 35);
        }
    }

    #[test]
    fn duplicates_collapse_like_reference() {
        let (mut online, reference) = both(&[3, 3, 3, 8, 8, 12], 60);
        let a = online.probabilities(12);
        let b = reference.probabilities(12, 60, 10);
        for k in 0..=10u64 {
            assert!((a.at(k) - b.at(k)).abs() < 1e-12);
        }
        assert_eq!(online.last_arrival(), Some(12));
    }

    #[test]
    fn queries_are_monotone_safe() {
        let mut m = OnlineInterArrival::new(10, 20);
        for t in [0u64, 5, 10, 15] {
            m.record(t);
        }
        let _ = m.probabilities(20);
        let _ = m.probabilities(50);
        // After everything left the window, only the global term remains.
        let p = m.probabilities(500);
        assert!((p.at(5) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "clock only moves forward")]
    fn clock_rewind_rejected() {
        let mut m = OnlineInterArrival::new(10, 20);
        m.record(50);
        let _ = m.probabilities(60);
        let _ = m.probabilities(10);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_arrival_rejected() {
        let mut m = OnlineInterArrival::new(10, 20);
        m.record(50);
        m.record(10);
    }
}

//! The `Probability` newtype: an `f64` proven to lie in `[0, 1]`.
//!
//! Every probability PULSE manipulates — gap probabilities from the
//! inter-arrival model, the `Ip` term of Equation 2, the normalized
//! downgrade priority — is semantically a value in `[0, 1]`, but carrying
//! them as bare `f64` means every consumer must re-derive (or silently
//! assume) that bound. This module moves the check to the boundary:
//!
//! * [`Probability::new`] validates untrusted input and returns a typed
//!   error;
//! * [`Probability::saturating`] clamps caller-supplied values where the
//!   policy's documented behaviour is "treat out-of-range as the nearest
//!   valid probability" (e.g. `AliveModel::invocation_probability`);
//! * `Probability::from_invariant` (crate-internal) is for values the
//!   surrounding algorithm already guarantees are in range — it
//!   `debug_assert!`s the guarantee and clamps in release builds so a
//!   violated invariant degrades instead of propagating garbage;
//! * the arithmetic combinators ([`Probability::average`],
//!   [`Probability::and`], [`Probability::complement`]) debug-assert their
//!   results, so invariant breakage is caught where it happens.
//!
//! The `pulse-audit` `probability` rule requires the probability-bearing
//! modules (`interarrival`, `thresholds`, `utility`) to route their values
//! through this type.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Error returned by [`Probability::new`] for values outside `[0, 1]` (or
/// NaN).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbabilityError {
    /// The rejected value.
    pub value: f64,
}

impl fmt::Display for ProbabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "probability out of range [0, 1]: {}", self.value)
    }
}

impl std::error::Error for ProbabilityError {}

/// A probability: an `f64` guaranteed finite and within `[0, 1]`.
#[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Probability(f64);

impl Probability {
    /// Probability 0.
    pub const ZERO: Self = Self(0.0);
    /// Probability 1.
    pub const ONE: Self = Self(1.0);

    /// Validate `p`; reject NaN and anything outside `[0, 1]`.
    pub fn new(p: f64) -> Result<Self, ProbabilityError> {
        if (0.0..=1.0).contains(&p) {
            Ok(Self(p))
        } else {
            Err(ProbabilityError { value: p })
        }
    }

    /// Clamp `p` into `[0, 1]`; NaN maps to 0. For caller-supplied values
    /// whose documented handling is saturation (e.g. the `Ip` field a
    /// platform fills into `AliveModel`).
    pub fn saturating(p: f64) -> Self {
        if p.is_nan() {
            return Self::ZERO;
        }
        Self(p.clamp(0.0, 1.0))
    }

    /// For values an algorithm invariant already guarantees are in range:
    /// debug-asserts the guarantee, clamps in release builds.
    pub(crate) fn from_invariant(p: f64) -> Self {
        debug_assert!(
            (0.0..=1.0).contains(&p),
            "probability invariant violated: {p}"
        );
        Self::saturating(p)
    }

    /// The inner value, in `[0, 1]`.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// True for probability exactly 0 — the distinguished value both the
    /// inter-arrival model ("uninformed") and scheme T2 ("reserve the lowest
    /// variant for p = 0") branch on. This is the one sanctioned exact float
    /// comparison on probabilities: 0.0 is produced literally, never by
    /// rounding.
    #[inline]
    #[allow(clippy::float_cmp)]
    pub fn is_zero(self) -> bool {
        // audit:allow(float-cmp): exact zero is assigned (never computed), so the sentinel compares exactly by design
        self.0 == 0.0
    }

    /// `1 − p`.
    pub fn complement(self) -> Self {
        let r = 1.0 - self.0;
        debug_assert!((0.0..=1.0).contains(&r));
        Self(r)
    }

    /// `(p + q) / 2` — the paper's local/global combination rule.
    pub fn average(self, other: Self) -> Self {
        let r = (self.0 + other.0) / 2.0;
        debug_assert!((0.0..=1.0).contains(&r), "average escaped [0,1]: {r}");
        Self(r)
    }

    /// `p · q` — joint probability of independent events.
    pub fn and(self, other: Self) -> Self {
        let r = self.0 * other.0;
        debug_assert!((0.0..=1.0).contains(&r), "product escaped [0,1]: {r}");
        Self(r)
    }
}

impl From<Probability> for f64 {
    fn from(p: Probability) -> f64 {
        p.value()
    }
}

impl fmt::Display for Probability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests compare exact constructed values
mod tests {
    use super::*;

    #[test]
    fn new_accepts_unit_interval_only() {
        assert!(Probability::new(0.0).is_ok());
        assert!(Probability::new(1.0).is_ok());
        assert!(Probability::new(0.5).is_ok());
        assert!(Probability::new(-1e-12).is_err());
        assert!(Probability::new(1.0 + 1e-12).is_err());
        assert!(Probability::new(f64::NAN).is_err());
        assert!(Probability::new(f64::INFINITY).is_err());
    }

    #[test]
    fn saturating_clamps_and_maps_nan_to_zero() {
        assert_eq!(Probability::saturating(-3.0), Probability::ZERO);
        assert_eq!(Probability::saturating(7.0), Probability::ONE);
        assert_eq!(Probability::saturating(f64::NAN), Probability::ZERO);
        assert_eq!(Probability::saturating(0.25).value(), 0.25);
    }

    #[test]
    fn is_zero_only_at_exact_zero() {
        assert!(Probability::ZERO.is_zero());
        assert!(!Probability::new(1e-300).unwrap().is_zero());
        assert!(!Probability::ONE.is_zero());
    }

    #[test]
    fn combinators_stay_in_range() {
        let a = Probability::new(0.3).unwrap();
        let b = Probability::new(0.8).unwrap();
        assert!((a.average(b).value() - 0.55).abs() < 1e-12);
        assert!((a.and(b).value() - 0.24).abs() < 1e-12);
        assert!((a.complement().value() - 0.7).abs() < 1e-12);
        assert_eq!(Probability::ONE.complement(), Probability::ZERO);
    }

    #[test]
    fn ordering_follows_inner_value() {
        let a = Probability::new(0.2).unwrap();
        let b = Probability::new(0.9).unwrap();
        assert!(a < b);
        assert!(b <= Probability::ONE);
    }

    #[test]
    fn error_displays_value() {
        let e = Probability::new(2.0).unwrap_err();
        assert!(e.to_string().contains("2"));
    }
}

//! Individual (function-centric) optimization (Section III-A).
//!
//! After every invocation, PULSE plans the next `keepalive_minutes` minutes
//! for that function: for each minute offset `m`, the estimated probability
//! of an inter-arrival gap of exactly `m` minutes is pushed through the
//! threshold scheme to pick the quality variant to keep alive during that
//! minute. Two properties the paper relies on:
//!
//! * there is *always* a container alive during the window — "PULSE ensures
//!   that at least the container with low-quality model is kept alive every
//!   10 minutes after an invocation, preventing cold starts" — so an
//!   uninformed probability simply yields variant 0;
//! * higher probability minutes get higher-accuracy variants (the monotone
//!   threshold principle).

use crate::convert::{gap_to_index, len_to_u32, len_to_u64, window_to_len};
use crate::interarrival::GapProbabilities;
use crate::schedule::Slot;
use crate::thresholds::ThresholdScheme;
use crate::types::Minute;
use pulse_models::VariantId;
use serde::{Deserialize, Serialize};

/// The per-minute variant plan for one keep-alive window following an
/// invocation at [`Self::invoked_at`]. Offset `m` (1-based) covers the
/// wall-clock minute `invoked_at + m`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeepAliveSchedule {
    /// Minute of the invocation this schedule follows.
    pub invoked_at: Minute,
    /// `plan[m-1]` is the variant kept alive during minute `invoked_at + m`.
    plan: Vec<VariantId>,
}

impl KeepAliveSchedule {
    /// Build from an explicit plan (offset 1 first).
    pub fn new(invoked_at: Minute, plan: Vec<VariantId>) -> Self {
        Self { invoked_at, plan }
    }

    /// Build from typed slots (offset 1 first) — the supported way to plan
    /// windows with dead minutes (see [`crate::schedule::Slot::Hole`]).
    pub fn from_slots(invoked_at: Minute, slots: impl IntoIterator<Item = Slot>) -> Self {
        Self {
            invoked_at,
            plan: slots.into_iter().map(Slot::into_raw).collect(),
        }
    }

    /// Schedule that keeps `variant` alive for the whole window — the shape
    /// of the fixed OpenWhisk policy and of the all-low/all-high baselines.
    pub fn constant(invoked_at: Minute, variant: VariantId, window: u32) -> Self {
        Self {
            invoked_at,
            plan: vec![variant; window_to_len(window)],
        }
    }

    /// Window length in minutes.
    pub fn window(&self) -> u32 {
        len_to_u32(self.plan.len())
    }

    /// Variant kept alive at minute-offset `m` (1-based), `None` outside the
    /// window.
    pub fn variant_at_offset(&self, m: u64) -> Option<VariantId> {
        if m == 0 {
            return None;
        }
        self.plan.get(gap_to_index(m - 1)).copied()
    }

    /// Variant kept alive at absolute minute `t`, `None` outside the window.
    pub fn variant_at(&self, t: Minute) -> Option<VariantId> {
        t.checked_sub(self.invoked_at)
            .and_then(|m| self.variant_at_offset(m))
    }

    /// Typed slot at minute-offset `m` (1-based), `None` outside the window.
    /// Unlike [`Self::variant_at_offset`], holes come back as
    /// [`Slot::Hole`] instead of the raw sentinel.
    pub fn slot_at_offset(&self, m: u64) -> Option<Slot> {
        self.variant_at_offset(m).map(Slot::from_raw)
    }

    /// Typed slot at absolute minute `t`, `None` outside the window.
    pub fn slot_at(&self, t: Minute) -> Option<Slot> {
        self.variant_at(t).map(Slot::from_raw)
    }

    /// Last minute covered by the window.
    pub fn expires_at(&self) -> Minute {
        self.invoked_at + len_to_u64(self.plan.len())
    }

    /// Iterate `(absolute minute, variant)` pairs of the plan.
    pub fn iter(&self) -> impl Iterator<Item = (Minute, VariantId)> + '_ {
        self.plan
            .iter()
            .enumerate()
            .map(move |(i, &v)| (self.invoked_at + 1 + len_to_u64(i), v))
    }

    /// Mutable access for the global optimizer's downgrades: replace the
    /// variant at absolute minute `t` (no-op outside the window).
    pub fn set_variant_at(&mut self, t: Minute, v: VariantId) {
        if let Some(m) = t.checked_sub(self.invoked_at) {
            if m >= 1 {
                if let Some(slot) = self.plan.get_mut(gap_to_index(m - 1)) {
                    *slot = v;
                }
            }
        }
    }

    /// Replace the typed slot at absolute minute `t` (no-op outside the
    /// window) — [`crate::schedule::ScheduleLedger`]'s write path.
    pub fn set_slot_at(&mut self, t: Minute, slot: Slot) {
        self.set_variant_at(t, slot.into_raw());
    }
}

/// The function-centric optimizer: probabilities → per-minute variant plan.
#[derive(Debug, Clone, Copy)]
pub struct IndividualOptimizer {
    /// Keep-alive window length, minutes.
    pub window: u32,
}

impl IndividualOptimizer {
    /// Optimizer for a `window`-minute keep-alive period.
    pub fn new(window: u32) -> Self {
        assert!(window >= 1);
        Self { window }
    }

    /// Plan the window after an invocation at `invoked_at`, given the gap
    /// probabilities and the family's variant count.
    pub fn schedule(
        &self,
        invoked_at: Minute,
        probs: &GapProbabilities,
        n_variants: usize,
        scheme: &dyn ThresholdScheme,
    ) -> KeepAliveSchedule {
        let plan = (1..=u64::from(self.window))
            .map(|m| scheme.select(probs.prob(m), n_variants))
            .collect();
        KeepAliveSchedule::new(invoked_at, plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interarrival::InterArrivalModel;
    use crate::thresholds::{SchemeT1, SchemeT2};

    fn probs_for(arrivals: &[Minute], now: Minute) -> GapProbabilities {
        let mut m = InterArrivalModel::new();
        for &t in arrivals {
            m.record(t);
        }
        m.probabilities(now, 60, 10)
    }

    #[test]
    fn tight_cadence_warms_high_variant_at_the_right_minute() {
        let probs = probs_for(&[0, 2, 4, 6, 8, 10], 10);
        let opt = IndividualOptimizer::new(10);
        let s = opt.schedule(10, &probs, 3, &SchemeT1);
        // P(gap=2)=1 → highest variant at offset 2; all other offsets have
        // probability 0 → lowest variant (but still alive).
        assert_eq!(s.variant_at_offset(2), Some(2));
        for m in [1u64, 3, 4, 5, 6, 7, 8, 9, 10] {
            assert_eq!(s.variant_at_offset(m), Some(0), "offset {m}");
        }
    }

    #[test]
    fn uninformed_history_keeps_lowest_variant_alive_everywhere() {
        let probs = GapProbabilities::zeros(10);
        let s = IndividualOptimizer::new(10).schedule(50, &probs, 3, &SchemeT1);
        for m in 1..=10u64 {
            assert_eq!(s.variant_at_offset(m), Some(0));
        }
        assert_eq!(s.window(), 10);
    }

    #[test]
    fn absolute_minute_lookup() {
        let probs = GapProbabilities::zeros(10);
        let s = IndividualOptimizer::new(10).schedule(100, &probs, 2, &SchemeT1);
        assert_eq!(s.variant_at(100), None); // invocation minute itself
        assert_eq!(s.variant_at(101), Some(0));
        assert_eq!(s.variant_at(110), Some(0));
        assert_eq!(s.variant_at(111), None);
        assert_eq!(s.variant_at(99), None);
        assert_eq!(s.expires_at(), 110);
    }

    #[test]
    fn mixed_probabilities_produce_mixed_plan() {
        // Gaps {3,100,3,100,3}: P(3)=0.6. Evaluated at now=400, the local
        // window is empty, so the global distribution is used alone.
        let probs = probs_for(&[0, 3, 103, 106, 206, 209], 400);
        let s = IndividualOptimizer::new(10).schedule(400, &probs, 3, &SchemeT1);
        // P(3) = 0.6 → middle variant at offset 3 (band [1/3, 2/3)).
        assert_eq!(s.variant_at_offset(3), Some(1));
        assert_eq!(s.variant_at_offset(1), Some(0));
    }

    #[test]
    fn t2_uninformed_also_keeps_lowest() {
        let probs = GapProbabilities::zeros(10);
        let s = IndividualOptimizer::new(10).schedule(0, &probs, 3, &SchemeT2);
        for m in 1..=10u64 {
            assert_eq!(s.variant_at_offset(m), Some(0));
        }
    }

    #[test]
    fn constant_schedule_matches_fixed_policy_shape() {
        let s = KeepAliveSchedule::constant(7, 2, 10);
        assert_eq!(s.window(), 10);
        for m in 1..=10u64 {
            assert_eq!(s.variant_at_offset(m), Some(2));
        }
        assert_eq!(s.iter().count(), 10);
    }

    #[test]
    fn set_variant_at_mutates_only_in_window() {
        let mut s = KeepAliveSchedule::constant(10, 2, 5);
        s.set_variant_at(12, 0);
        assert_eq!(s.variant_at(12), Some(0));
        assert_eq!(s.variant_at(13), Some(2));
        // Out-of-window writes are ignored.
        s.set_variant_at(10, 0);
        s.set_variant_at(16, 0);
        s.set_variant_at(3, 0);
        assert_eq!(s.variant_at(11), Some(2));
    }

    #[test]
    fn iter_yields_absolute_minutes() {
        let s = KeepAliveSchedule::new(20, vec![0, 1, 2]);
        let got: Vec<_> = s.iter().collect();
        assert_eq!(got, vec![(21, 0), (22, 1), (23, 2)]);
    }

    #[test]
    fn window_of_one_minute() {
        let probs = GapProbabilities::zeros(1);
        let s = IndividualOptimizer::new(1).schedule(0, &probs, 3, &SchemeT1);
        assert_eq!(s.window(), 1);
        assert_eq!(s.variant_at_offset(1), Some(0));
        assert_eq!(s.variant_at_offset(2), None);
    }
}

//! The schedule ledger: the one place that owns keep-alive slot semantics.
//!
//! Every engine in the workspace — the minute-resolution simulator
//! (`pulse-sim`), the event-driven runtime (`pulse-runtime`), and any future
//! online/sharded serving mode — accounts the same way: *which variant each
//! function's schedule holds at each minute* determines billing, downgrade
//! application (Algorithm 2) and warm/cold outcomes. This module extracts
//! that shared substrate so it is implemented once:
//!
//! * [`Slot`] — a typed per-minute slot: [`Slot::Alive`] with a variant, or
//!   [`Slot::Hole`] (a planned-but-dead minute, used by oracle and
//!   forecast-integrated policies that keep containers alive at
//!   non-contiguous minutes). The raw encoding inside
//!   [`KeepAliveSchedule`]'s plan vector is the [`HOLE`] sentinel; `Slot` is
//!   the only supported way to produce or consume it.
//! * [`ScheduleLedger`] — the per-function schedule table with the footprint
//!   and billing queries ([`ScheduleLedger::alive_variant_at`],
//!   [`ScheduleLedger::keep_alive_mb_at`],
//!   [`ScheduleLedger::keepalive_cost_usd_at`]) and the single
//!   downgrade/eviction routine ([`ScheduleLedger::apply_downgrade`],
//!   [`ScheduleLedger::apply_eviction`]) that engines previously hand-rolled.
//!
//! # Downgrade semantics
//!
//! Algorithm 2 downgrades are decisions for the peak minute `t` ("for every
//! time period t classified as peak"): [`ScheduleLedger::apply_downgrade`]
//! clamps minute `t` of the schedule only — if the demand is still peaked at
//! `t + 1`, the detector fires again there. The clamp never *raises* a slot:
//! a minute already at or below the requested rung (or a hole) is left
//! untouched, so repeated downgrade actions against the same minute are
//! monotone — the slot can only move down the ladder within the window.
//! [`ScheduleLedger::apply_eviction`] punches a [`Slot::Hole`] at minute `t`.

use crate::global::{AliveModel, DowngradeAction};
use crate::individual::KeepAliveSchedule;
use crate::types::{FuncId, Minute};
use pulse_models::{CostModel, ModelFamily, VariantId};

/// Raw in-plan marker for a "dead" minute inside a schedule: the container
/// is not alive even though the plan covers the minute. This is the storage
/// encoding of [`Slot::Hole`]; code outside this module should use [`Slot`]
/// rather than comparing against the sentinel (the `variant-sentinel` audit
/// rule enforces this).
pub const HOLE: VariantId = usize::MAX;

/// One minute of a keep-alive plan, typed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Slot {
    /// A container holding `VariantId` is kept alive during the minute.
    Alive(VariantId),
    /// The plan covers the minute but keeps nothing alive (oracle /
    /// forecast policies warm non-contiguous minutes).
    Hole,
}

impl Slot {
    /// Decode a raw plan entry ([`HOLE`] ⇒ [`Slot::Hole`]).
    pub fn from_raw(raw: VariantId) -> Self {
        if raw == HOLE {
            Slot::Hole
        } else {
            Slot::Alive(raw)
        }
    }

    /// Encode for plan storage ([`Slot::Hole`] ⇒ [`HOLE`]).
    pub fn into_raw(self) -> VariantId {
        match self {
            Slot::Alive(v) => v,
            Slot::Hole => HOLE,
        }
    }

    /// The kept-alive variant, `None` for a hole.
    pub fn alive(self) -> Option<VariantId> {
        match self {
            Slot::Alive(v) => Some(v),
            Slot::Hole => None,
        }
    }

    /// Whether this slot keeps nothing alive.
    pub fn is_hole(self) -> bool {
        matches!(self, Slot::Hole)
    }
}

/// The alive set and total keep-alive footprint of one minute, computed in
/// one pass so cross-function optimization and billing agree by
/// construction.
#[derive(Debug, Clone, PartialEq)]
pub struct MinuteFootprint {
    /// Kept-alive models at the minute, in function order, with
    /// `invocation_probability` zeroed (the policy fills it in).
    pub alive: Vec<AliveModel>,
    /// Total keep-alive memory at the minute, MB. Summed in ascending
    /// function order — engines bill from this exact value, so the addition
    /// order is part of the bit-identity contract.
    pub total_mb: f64,
}

/// Per-function keep-alive schedules plus the footprint/billing/downgrade
/// semantics shared by every engine.
///
/// The ledger holds at most one schedule per function (each invocation
/// replaces the function's plan, exactly as the paper's individual
/// optimization prescribes) and answers minute-indexed queries against it.
#[derive(Debug, Clone, Default)]
pub struct ScheduleLedger {
    schedules: Vec<Option<KeepAliveSchedule>>,
}

impl ScheduleLedger {
    /// An empty ledger for `n_functions` functions.
    pub fn new(n_functions: usize) -> Self {
        Self {
            schedules: vec![None; n_functions],
        }
    }

    /// Number of functions tracked.
    pub fn n_functions(&self) -> usize {
        self.schedules.len()
    }

    /// The current schedule of `f`, if any.
    pub fn schedule(&self, f: FuncId) -> Option<&KeepAliveSchedule> {
        self.schedules.get(f).and_then(Option::as_ref)
    }

    /// Replace `f`'s plan (the policy's response to an invocation).
    pub fn replace(&mut self, f: FuncId, schedule: KeepAliveSchedule) {
        if let Some(slot) = self.schedules.get_mut(f) {
            *slot = Some(schedule);
        }
    }

    /// Drop `f`'s plan entirely (nothing kept alive until the next
    /// invocation).
    pub fn clear(&mut self, f: FuncId) {
        if let Some(slot) = self.schedules.get_mut(f) {
            *slot = None;
        }
    }

    /// The typed slot of `f` at minute `t`: [`Slot::Hole`] when the plan has
    /// a hole there, does not cover `t`, or does not exist. ("Expired" and
    /// "planned dead" are deliberately indistinguishable here — neither
    /// keeps anything alive, neither bills.)
    pub fn slot_at(&self, f: FuncId, t: Minute) -> Slot {
        self.schedule(f)
            .and_then(|s| s.slot_at(t))
            .unwrap_or(Slot::Hole)
    }

    /// Alive variant of `f` at minute `t` per its schedule (`None` when
    /// expired, absent, or a hole).
    pub fn alive_variant_at(&self, f: FuncId, t: Minute) -> Option<VariantId> {
        self.slot_at(f, t).alive()
    }

    /// Total keep-alive memory (MB) at minute `t`, summed in ascending
    /// function order.
    pub fn keep_alive_mb_at(&self, families: &[ModelFamily], t: Minute) -> f64 {
        (0..self.schedules.len())
            .filter_map(|f| {
                self.alive_variant_at(f, t)
                    .map(|v| families[f].variant(v).memory_mb)
            })
            .sum()
    }

    /// The alive set and footprint of minute `t` in one pass (the shape the
    /// cross-function adjustment and capacity-enforcement stages consume).
    pub fn minute_footprint(&self, families: &[ModelFamily], t: Minute) -> MinuteFootprint {
        let mut alive = Vec::new();
        let mut total_mb = 0.0f64;
        for (f, fam) in families.iter().enumerate().take(self.schedules.len()) {
            if let Some(v) = self.alive_variant_at(f, t) {
                total_mb += fam.variant(v).memory_mb;
                alive.push(AliveModel {
                    func: f,
                    variant: v,
                    invocation_probability: 0.0,
                });
            }
        }
        MinuteFootprint { alive, total_mb }
    }

    /// GB-s metering: the keep-alive cost (USD) billed for minute `t` under
    /// `cost`, from the post-adjustment schedule footprint.
    pub fn keepalive_cost_usd_at(
        &self,
        families: &[ModelFamily],
        cost: &CostModel,
        t: Minute,
    ) -> f64 {
        cost.keepalive_cost_usd_per_minutes(self.keep_alive_mb_at(families, t), 1.0)
    }

    /// Apply Algorithm 2's downgrade to minute `t` of `f`'s schedule: clamp
    /// the slot to `to` iff it is currently alive *above* `to`. Holes,
    /// expired plans and slots already at or below the rung are untouched
    /// (the persistent-downgrade rule: a downgraded slot can never be
    /// re-raised by a later, weaker action). Returns whether the slot moved.
    pub fn apply_downgrade(&mut self, f: FuncId, t: Minute, to: VariantId) -> bool {
        let clamp = matches!(self.slot_at(f, t), Slot::Alive(v) if v > to);
        if clamp {
            if let Some(s) = self.schedules.get_mut(f).and_then(Option::as_mut) {
                s.set_slot_at(t, Slot::Alive(to));
            }
        }
        clamp
    }

    /// Apply an eviction to minute `t` of `f`'s schedule: punch a hole (the
    /// next invocation during `t` cold-starts). A no-op outside the window.
    /// Returns whether the slot actually changed (it was alive at `t`) —
    /// the event hook observability layers key off.
    pub fn apply_eviction(&mut self, f: FuncId, t: Minute) -> bool {
        let was_alive = matches!(self.slot_at(f, t), Slot::Alive(_));
        if was_alive {
            if let Some(s) = self.schedules.get_mut(f).and_then(Option::as_mut) {
                s.set_slot_at(t, Slot::Hole);
            }
        }
        was_alive
    }

    /// Apply one cross-function action to minute `t`. Returns whether the
    /// targeted slot actually moved (downgrades of holes/expired/already-
    /// lower slots and evictions of non-alive slots are ignored), so
    /// engines can report applied-vs-ignored actions faithfully.
    pub fn apply_action(&mut self, t: Minute, action: &DowngradeAction) -> bool {
        match *action {
            DowngradeAction::Downgrade { func, to, .. } => self.apply_downgrade(func, t, to),
            DowngradeAction::Evict { func, .. } => self.apply_eviction(func, t),
        }
    }

    /// Apply a batch of cross-function actions to minute `t`, in order.
    /// Returns how many actions moved a slot.
    pub fn apply_actions(&mut self, t: Minute, actions: &[DowngradeAction]) -> usize {
        actions.iter().filter(|a| self.apply_action(t, a)).count()
    }
}

/// Algorithm 1's `t == 1` branch applies at the first minute of a keep-alive
/// period — i.e. the minute right after an invocation started a new period,
/// or the minute at which keep-alive demand resumes after an idle stretch.
/// There the prior keep-alive memory is the local-window average (or the
/// last non-zero level after inactivity), not the previous minute, so
/// routine schedule renewals are judged against the steady level rather
/// than minute-to-minute jitter. Both engines derive the flag identically
/// through this helper.
pub fn begins_keepalive_period(
    invoked_last_minute: bool,
    current_kam_mb: f64,
    demand_history: &[f64],
) -> bool {
    invoked_last_minute || (current_kam_mb > 0.0 && demand_history.last().is_none_or(|&m| m <= 0.0))
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests compare exact constructed values
mod tests {
    use super::*;
    use pulse_models::zoo;

    fn two_fn_ledger() -> (ScheduleLedger, Vec<ModelFamily>) {
        let fams = vec![zoo::gpt(), zoo::bert()];
        let mut ledger = ScheduleLedger::new(2);
        // f0: gpt-large (variant 2) minutes 1..=10; f1: bert-large minutes 1..=5.
        ledger.replace(0, KeepAliveSchedule::constant(0, 2, 10));
        ledger.replace(1, KeepAliveSchedule::constant(0, 1, 5));
        (ledger, fams)
    }

    #[test]
    fn slot_round_trips_through_raw() {
        assert_eq!(Slot::from_raw(HOLE), Slot::Hole);
        assert_eq!(Slot::from_raw(3), Slot::Alive(3));
        assert_eq!(Slot::Hole.into_raw(), HOLE);
        assert_eq!(Slot::Alive(7).into_raw(), 7);
        assert_eq!(Slot::Alive(2).alive(), Some(2));
        assert_eq!(Slot::Hole.alive(), None);
        assert!(Slot::Hole.is_hole());
        assert!(!Slot::Alive(0).is_hole());
    }

    #[test]
    fn alive_variant_filters_holes_and_expiry() {
        let (mut ledger, _) = two_fn_ledger();
        assert_eq!(ledger.alive_variant_at(0, 5), Some(2));
        assert_eq!(ledger.alive_variant_at(0, 0), None, "invocation minute");
        assert_eq!(ledger.alive_variant_at(0, 11), None, "expired");
        assert_eq!(ledger.alive_variant_at(1, 6), None, "short window");
        ledger.apply_eviction(0, 5);
        assert_eq!(ledger.alive_variant_at(0, 5), None, "hole");
        assert_eq!(ledger.slot_at(0, 5), Slot::Hole);
        assert_eq!(ledger.alive_variant_at(0, 6), Some(2), "hole is per-minute");
    }

    #[test]
    fn footprint_matches_per_function_sum() {
        let (ledger, fams) = two_fn_ledger();
        let mb = fams[0].variant(2).memory_mb + fams[1].variant(1).memory_mb;
        assert_eq!(ledger.keep_alive_mb_at(&fams, 3), mb);
        let fp = ledger.minute_footprint(&fams, 3);
        assert_eq!(fp.total_mb, mb);
        assert_eq!(fp.alive.len(), 2);
        assert_eq!(fp.alive[0].func, 0);
        assert_eq!(fp.alive[1].variant, 1);
        // Minute 7: only f0 still covered.
        assert_eq!(
            ledger.keep_alive_mb_at(&fams, 7),
            fams[0].variant(2).memory_mb
        );
    }

    #[test]
    fn metering_matches_cost_model() {
        let (ledger, fams) = two_fn_ledger();
        let cost = CostModel::aws_lambda();
        let expect = cost.keepalive_cost_usd_per_minutes(ledger.keep_alive_mb_at(&fams, 2), 1.0);
        assert_eq!(ledger.keepalive_cost_usd_at(&fams, &cost, 2), expect);
        assert_eq!(ledger.keepalive_cost_usd_at(&fams, &cost, 500), 0.0);
    }

    #[test]
    fn downgrade_clamps_only_above_and_only_at_t() {
        let (mut ledger, _) = two_fn_ledger();
        assert!(ledger.apply_downgrade(0, 4, 1));
        assert_eq!(ledger.alive_variant_at(0, 4), Some(1));
        assert_eq!(ledger.alive_variant_at(0, 3), Some(2), "t-1 untouched");
        assert_eq!(ledger.alive_variant_at(0, 5), Some(2), "t+1 untouched");
        // A weaker (higher-rung) action can never re-raise the slot.
        assert!(!ledger.apply_downgrade(0, 4, 1));
        assert!(ledger.apply_downgrade(0, 4, 0));
        assert!(!ledger.apply_downgrade(0, 4, 2));
        assert_eq!(ledger.alive_variant_at(0, 4), Some(0));
    }

    #[test]
    fn downgrade_ignores_holes_expired_and_unknown_functions() {
        let (mut ledger, _) = two_fn_ledger();
        ledger.apply_eviction(1, 2);
        assert!(!ledger.apply_downgrade(1, 2, 0), "hole stays a hole");
        assert_eq!(ledger.slot_at(1, 2), Slot::Hole);
        assert!(!ledger.apply_downgrade(1, 40, 0), "expired");
        assert!(!ledger.apply_downgrade(99, 2, 0), "unknown function");
        ledger.apply_eviction(99, 2); // must not panic
    }

    #[test]
    fn action_hooks_report_applied_vs_ignored() {
        let (mut ledger, _) = two_fn_ledger();
        // Eviction of an alive slot applies; of a hole/expired slot, not.
        assert!(ledger.apply_eviction(0, 5));
        assert!(!ledger.apply_eviction(0, 5), "already a hole");
        assert!(!ledger.apply_eviction(0, 40), "expired");
        assert!(!ledger.apply_eviction(99, 2), "unknown function");
        // The batch count matches per-action results: downgrade f0@3
        // applies, a repeat is ignored, the eviction of f1@3 applies.
        let actions = vec![
            DowngradeAction::Downgrade {
                func: 0,
                from: 2,
                to: 0,
            },
            DowngradeAction::Downgrade {
                func: 0,
                from: 2,
                to: 1,
            },
            DowngradeAction::Evict { func: 1, from: 1 },
        ];
        assert_eq!(ledger.apply_actions(3, &actions), 2);
    }

    #[test]
    fn apply_actions_matches_manual_application() {
        let (mut a, _) = two_fn_ledger();
        let (mut b, _) = two_fn_ledger();
        let actions = vec![
            DowngradeAction::Downgrade {
                func: 0,
                from: 2,
                to: 0,
            },
            DowngradeAction::Evict { func: 1, from: 1 },
        ];
        a.apply_actions(3, &actions);
        b.apply_downgrade(0, 3, 0);
        b.apply_eviction(1, 3);
        for f in 0..2 {
            for t in 0..12 {
                assert_eq!(a.slot_at(f, t), b.slot_at(f, t), "f={f} t={t}");
            }
        }
    }

    #[test]
    fn replace_and_clear() {
        let (mut ledger, _) = two_fn_ledger();
        assert!(ledger.schedule(0).is_some());
        ledger.clear(0);
        assert!(ledger.schedule(0).is_none());
        assert_eq!(ledger.alive_variant_at(0, 3), None);
        ledger.replace(0, KeepAliveSchedule::constant(2, 0, 3));
        assert_eq!(ledger.alive_variant_at(0, 3), Some(0));
        assert_eq!(ledger.n_functions(), 2);
    }

    #[test]
    fn period_start_detection() {
        // An invocation last minute always starts a period.
        assert!(begins_keepalive_period(true, 0.0, &[]));
        // Demand resuming after zero history starts a period.
        assert!(begins_keepalive_period(false, 10.0, &[5.0, 0.0]));
        assert!(begins_keepalive_period(false, 10.0, &[]));
        // Steady demand does not.
        assert!(!begins_keepalive_period(false, 10.0, &[5.0]));
        // No demand at all does not.
        assert!(!begins_keepalive_period(false, 0.0, &[0.0]));
    }
}

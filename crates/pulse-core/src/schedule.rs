//! The schedule ledger: the one place that owns keep-alive slot semantics.
//!
//! Every engine in the workspace — the minute-resolution simulator
//! (`pulse-sim`), the event-driven runtime (`pulse-runtime`), and any future
//! online/sharded serving mode — accounts the same way: *which variant each
//! function's schedule holds at each minute* determines billing, downgrade
//! application (Algorithm 2) and warm/cold outcomes. This module extracts
//! that shared substrate so it is implemented once:
//!
//! * [`Slot`] — a typed per-minute slot: [`Slot::Alive`] with a variant, or
//!   [`Slot::Hole`] (a planned-but-dead minute, used by oracle and
//!   forecast-integrated policies that keep containers alive at
//!   non-contiguous minutes). The raw encoding inside
//!   [`KeepAliveSchedule`]'s plan vector is the [`HOLE`] sentinel; `Slot` is
//!   the only supported way to produce or consume it.
//! * [`ScheduleLedger`] — the per-function schedule table with the footprint
//!   and billing queries ([`ScheduleLedger::alive_variant_at`],
//!   [`ScheduleLedger::keep_alive_mb_at`],
//!   [`ScheduleLedger::keepalive_cost_usd_at`]) and the single
//!   downgrade/eviction routine ([`ScheduleLedger::apply_downgrade`],
//!   [`ScheduleLedger::apply_eviction`]) that engines previously hand-rolled.
//!
//! # Downgrade semantics
//!
//! Algorithm 2 downgrades are decisions for the peak minute `t` ("for every
//! time period t classified as peak"): [`ScheduleLedger::apply_downgrade`]
//! clamps minute `t` of the schedule only — if the demand is still peaked at
//! `t + 1`, the detector fires again there. The clamp never *raises* a slot:
//! a minute already at or below the requested rung (or a hole) is left
//! untouched, so repeated downgrade actions against the same minute are
//! monotone — the slot can only move down the ladder within the window.
//! [`ScheduleLedger::apply_eviction`] punches a [`Slot::Hole`] at minute `t`.
//!
//! # Incremental maintenance
//!
//! A ledger built with [`ScheduleLedger::for_families`] additionally keeps a
//! per-minute index of its alive sets so the per-minute hot path is
//! sub-linear in total function count:
//!
//! * every mutation ([`ScheduleLedger::replace`], [`ScheduleLedger::clear`],
//!   [`ScheduleLedger::apply_downgrade`], [`ScheduleLedger::apply_eviction`])
//!   updates a **running keep-alive MB total** per minute by delta and
//!   records the function in a **dirty set**;
//! * reads ([`ScheduleLedger::metered_kam_mb`],
//!   [`ScheduleLedger::fill_minute_footprint`],
//!   [`ScheduleLedger::patch_minute_footprint`]) **pin** the total of a
//!   mutated minute by re-summing its (small) alive set in ascending
//!   function order — the exact operand sequence of
//!   [`ScheduleLedger::keep_alive_mb_at`] — so billed values stay
//!   bit-identical to the legacy full sweep while costing `O(alive)` instead
//!   of `O(n_functions)`. The delta-maintained running value is kept only as
//!   a monitor ([`ScheduleLedger::running_kam_mb_at`]) and as a debug
//!   cross-check against the pin.
//!
//! Ledgers built with [`ScheduleLedger::new`] have no index and answer every
//! query through the legacy full-sweep path, so existing callers and
//! snapshots are unaffected.

use crate::global::{AliveModel, DowngradeAction};
use crate::individual::KeepAliveSchedule;
use crate::types::{FuncId, Minute};
use pulse_models::{CostModel, ModelFamily, VariantId};
use std::collections::BTreeMap;

/// Raw in-plan marker for a "dead" minute inside a schedule: the container
/// is not alive even though the plan covers the minute. This is the storage
/// encoding of [`Slot::Hole`]; code outside this module should use [`Slot`]
/// rather than comparing against the sentinel (the `variant-sentinel` audit
/// rule enforces this).
pub const HOLE: VariantId = usize::MAX;

/// One minute of a keep-alive plan, typed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Slot {
    /// A container holding `VariantId` is kept alive during the minute.
    Alive(VariantId),
    /// The plan covers the minute but keeps nothing alive (oracle /
    /// forecast policies warm non-contiguous minutes).
    Hole,
}

impl Slot {
    /// Decode a raw plan entry ([`HOLE`] ⇒ [`Slot::Hole`]).
    pub fn from_raw(raw: VariantId) -> Self {
        if raw == HOLE {
            Slot::Hole
        } else {
            Slot::Alive(raw)
        }
    }

    /// Encode for plan storage ([`Slot::Hole`] ⇒ [`HOLE`]).
    pub fn into_raw(self) -> VariantId {
        match self {
            Slot::Alive(v) => v,
            Slot::Hole => HOLE,
        }
    }

    /// The kept-alive variant, `None` for a hole.
    pub fn alive(self) -> Option<VariantId> {
        match self {
            Slot::Alive(v) => Some(v),
            Slot::Hole => None,
        }
    }

    /// Whether this slot keeps nothing alive.
    pub fn is_hole(self) -> bool {
        matches!(self, Slot::Hole)
    }
}

/// The alive set and total keep-alive footprint of one minute, computed in
/// one pass so cross-function optimization and billing agree by
/// construction.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MinuteFootprint {
    /// Kept-alive models at the minute, in function order, with
    /// `invocation_probability` zeroed (the policy fills it in).
    pub alive: Vec<AliveModel>,
    /// Total keep-alive memory at the minute, MB. Summed in ascending
    /// function order — engines bill from this exact value, so the addition
    /// order is part of the bit-identity contract.
    pub total_mb: f64,
}

/// One minute of the incremental index: the alive set plus a running total.
#[derive(Debug, Clone, Default)]
struct MinuteState {
    /// Alive functions at the minute, ascending — mirror of what the legacy
    /// full sweep would visit.
    funcs: Vec<FuncId>,
    /// Keep-alive MB at the minute. Between mutations and pins this is the
    /// delta-maintained running value; once pinned (and while `dirty` is
    /// false) it is the exact ascending-order sum.
    running_mb: f64,
    /// Whether `running_mb` has been updated by delta since the last pin
    /// (deltas are not bit-identical to re-summing, so billed reads re-pin).
    dirty: bool,
}

/// The incremental side-structure of a [`ScheduleLedger::for_families`]
/// ledger: per-minute alive sets with delta-maintained totals, plus the
/// dirty-function set engines use to patch footprints in place.
#[derive(Debug, Clone, Default)]
struct LedgerIndex {
    /// Memory ladders snapshotted at construction (`mem[f][v]`), used for
    /// delta updates where no `families` slice is in scope.
    mem: Vec<Vec<f64>>,
    /// Live minute states, keyed by minute. Only minutes with at least one
    /// alive function are present.
    states: BTreeMap<Minute, MinuteState>,
    /// Minutes below this have been retired ([`ScheduleLedger::retire_minutes_before`]);
    /// queries against them fall back to the legacy sweep.
    retired_before: Minute,
    /// Functions mutated since the last footprint fill/patch, deduplicated.
    dirty: Vec<FuncId>,
    /// Membership mask for `dirty` (indexed by function).
    dirty_mark: Vec<bool>,
}

impl LedgerIndex {
    fn for_families(families: &[ModelFamily]) -> Self {
        Self {
            mem: families
                .iter()
                .map(|fam| {
                    (0..fam.n_variants())
                        .map(|v| fam.variant(v).memory_mb)
                        .collect()
                })
                .collect(),
            states: BTreeMap::new(),
            retired_before: 0,
            dirty: Vec::new(),
            dirty_mark: vec![false; families.len()],
        }
    }

    fn mark_dirty(&mut self, f: FuncId) {
        if let Some(mark) = self.dirty_mark.get_mut(f) {
            if !*mark {
                *mark = true;
                self.dirty.push(f);
            }
        }
    }

    fn clear_dirty(&mut self) {
        for f in self.dirty.drain(..) {
            self.dirty_mark[f] = false;
        }
    }

    /// Remove every alive minute of `sched` (for function `f`) from the index.
    fn remove_schedule(&mut self, f: FuncId, sched: &KeepAliveSchedule) {
        for (t, raw) in sched.iter() {
            let Some(v) = Slot::from_raw(raw).alive() else {
                continue;
            };
            if t < self.retired_before {
                continue;
            }
            let Some(state) = self.states.get_mut(&t) else {
                debug_assert!(false, "indexed minute {t} missing on removal");
                continue;
            };
            if let Ok(i) = state.funcs.binary_search(&f) {
                state.funcs.remove(i);
                state.running_mb -= self.mem[f][v];
                state.dirty = true;
            } else {
                debug_assert!(false, "function {f} missing from indexed minute {t}");
            }
            if state.funcs.is_empty() {
                self.states.remove(&t);
            }
        }
    }

    /// Add every alive minute of `sched` (for function `f`) to the index.
    fn add_schedule(&mut self, f: FuncId, sched: &KeepAliveSchedule) {
        for (t, raw) in sched.iter() {
            let Some(v) = Slot::from_raw(raw).alive() else {
                continue;
            };
            if t < self.retired_before {
                continue;
            }
            let state = self.states.entry(t).or_default();
            if let Err(i) = state.funcs.binary_search(&f) {
                state.funcs.insert(i, f);
                state.running_mb += self.mem[f][v];
                state.dirty = true;
            } else {
                debug_assert!(false, "function {f} already in indexed minute {t}");
            }
        }
    }

    fn on_downgrade(&mut self, f: FuncId, t: Minute, from: VariantId, to: VariantId) {
        self.mark_dirty(f);
        if t < self.retired_before {
            return;
        }
        if let Some(state) = self.states.get_mut(&t) {
            state.running_mb += self.mem[f][to] - self.mem[f][from];
            state.dirty = true;
        } else {
            debug_assert!(false, "downgraded minute {t} not indexed");
        }
    }

    fn on_evict(&mut self, f: FuncId, t: Minute, from: VariantId) {
        self.mark_dirty(f);
        if t < self.retired_before {
            return;
        }
        let Some(state) = self.states.get_mut(&t) else {
            debug_assert!(false, "evicted minute {t} not indexed");
            return;
        };
        if let Ok(i) = state.funcs.binary_search(&f) {
            state.funcs.remove(i);
            state.running_mb -= self.mem[f][from];
            state.dirty = true;
        } else {
            debug_assert!(false, "evicted function {f} not in indexed minute {t}");
        }
        if state.funcs.is_empty() {
            self.states.remove(&t);
        }
    }
}

/// Alive variant lookup usable while the index is mutably borrowed (free
/// function over the schedule table instead of a `&self` method).
fn variant_of(schedules: &[Option<KeepAliveSchedule>], f: FuncId, t: Minute) -> Option<VariantId> {
    schedules
        .get(f)
        .and_then(Option::as_ref)
        .and_then(|s| s.slot_at(t))
        .and_then(Slot::alive)
}

/// Per-function keep-alive schedules plus the footprint/billing/downgrade
/// semantics shared by every engine.
///
/// The ledger holds at most one schedule per function (each invocation
/// replaces the function's plan, exactly as the paper's individual
/// optimization prescribes) and answers minute-indexed queries against it.
#[derive(Debug, Clone, Default)]
pub struct ScheduleLedger {
    schedules: Vec<Option<KeepAliveSchedule>>,
    /// Incremental per-minute index; `None` for [`Self::new`] ledgers, which
    /// answer every query through the legacy full-sweep path.
    index: Option<LedgerIndex>,
}

impl ScheduleLedger {
    /// An empty ledger for `n_functions` functions (legacy full-sweep
    /// queries only; see [`Self::for_families`] for the incremental form).
    pub fn new(n_functions: usize) -> Self {
        Self {
            schedules: vec![None; n_functions],
            index: None,
        }
    }

    /// An empty ledger for `families.len()` functions with the incremental
    /// per-minute index enabled: mutations maintain per-minute alive sets,
    /// running totals, and a dirty-function set, making
    /// [`Self::metered_kam_mb`] / [`Self::fill_minute_footprint`] /
    /// [`Self::patch_minute_footprint`] sub-linear in total function count.
    /// Every `&self` query behaves exactly as on a [`Self::new`] ledger.
    ///
    /// The same `families` slice must be passed to all queries (as the
    /// legacy API already requires).
    pub fn for_families(families: &[ModelFamily]) -> Self {
        Self {
            schedules: vec![None; families.len()],
            index: Some(LedgerIndex::for_families(families)),
        }
    }

    /// Whether this ledger maintains the incremental per-minute index.
    pub fn is_incremental(&self) -> bool {
        self.index.is_some()
    }

    /// Number of functions tracked.
    pub fn n_functions(&self) -> usize {
        self.schedules.len()
    }

    /// The current schedule of `f`, if any.
    pub fn schedule(&self, f: FuncId) -> Option<&KeepAliveSchedule> {
        self.schedules.get(f).and_then(Option::as_ref)
    }

    /// Replace `f`'s plan (the policy's response to an invocation).
    pub fn replace(&mut self, f: FuncId, schedule: KeepAliveSchedule) {
        let Some(slot) = self.schedules.get_mut(f) else {
            return;
        };
        let old = slot.replace(schedule);
        if let Some(ix) = self.index.as_mut() {
            if let Some(old) = &old {
                ix.remove_schedule(f, old);
            }
            if let Some(new) = self.schedules[f].as_ref() {
                ix.add_schedule(f, new);
            }
            ix.mark_dirty(f);
        }
    }

    /// Drop `f`'s plan entirely (nothing kept alive until the next
    /// invocation).
    pub fn clear(&mut self, f: FuncId) {
        let Some(slot) = self.schedules.get_mut(f) else {
            return;
        };
        let old = slot.take();
        if let Some(ix) = self.index.as_mut() {
            if let Some(old) = &old {
                ix.remove_schedule(f, old);
                ix.mark_dirty(f);
            }
        }
    }

    /// The typed slot of `f` at minute `t`: [`Slot::Hole`] when the plan has
    /// a hole there, does not cover `t`, or does not exist. ("Expired" and
    /// "planned dead" are deliberately indistinguishable here — neither
    /// keeps anything alive, neither bills.)
    pub fn slot_at(&self, f: FuncId, t: Minute) -> Slot {
        self.schedule(f)
            .and_then(|s| s.slot_at(t))
            .unwrap_or(Slot::Hole)
    }

    /// Alive variant of `f` at minute `t` per its schedule (`None` when
    /// expired, absent, or a hole).
    pub fn alive_variant_at(&self, f: FuncId, t: Minute) -> Option<VariantId> {
        self.slot_at(f, t).alive()
    }

    /// Total keep-alive memory (MB) at minute `t`, summed in ascending
    /// function order.
    pub fn keep_alive_mb_at(&self, families: &[ModelFamily], t: Minute) -> f64 {
        (0..self.schedules.len())
            .filter_map(|f| {
                self.alive_variant_at(f, t)
                    .map(|v| families[f].variant(v).memory_mb)
            })
            .sum()
    }

    /// The alive set and footprint of minute `t` in one pass (the shape the
    /// cross-function adjustment and capacity-enforcement stages consume).
    pub fn minute_footprint(&self, families: &[ModelFamily], t: Minute) -> MinuteFootprint {
        let mut alive = Vec::new();
        let mut total_mb = 0.0f64;
        for (f, fam) in families.iter().enumerate().take(self.schedules.len()) {
            if let Some(v) = self.alive_variant_at(f, t) {
                total_mb += fam.variant(v).memory_mb;
                alive.push(AliveModel {
                    func: f,
                    variant: v,
                    invocation_probability: 0.0,
                });
            }
        }
        MinuteFootprint { alive, total_mb }
    }

    /// GB-s metering: the keep-alive cost (USD) billed for minute `t` under
    /// `cost`, from the post-adjustment schedule footprint.
    pub fn keepalive_cost_usd_at(
        &self,
        families: &[ModelFamily],
        cost: &CostModel,
        t: Minute,
    ) -> f64 {
        cost.keepalive_cost_usd_per_minutes(self.keep_alive_mb_at(families, t), 1.0)
    }

    /// Apply Algorithm 2's downgrade to minute `t` of `f`'s schedule: clamp
    /// the slot to `to` iff it is currently alive *above* `to`. Holes,
    /// expired plans and slots already at or below the rung are untouched
    /// (the persistent-downgrade rule: a downgraded slot can never be
    /// re-raised by a later, weaker action). Returns whether the slot moved.
    pub fn apply_downgrade(&mut self, f: FuncId, t: Minute, to: VariantId) -> bool {
        let from = match self.slot_at(f, t) {
            Slot::Alive(v) if v > to => Some(v),
            _ => None,
        };
        if let Some(from) = from {
            if let Some(s) = self.schedules.get_mut(f).and_then(Option::as_mut) {
                s.set_slot_at(t, Slot::Alive(to));
            }
            if let Some(ix) = self.index.as_mut() {
                ix.on_downgrade(f, t, from, to);
            }
        }
        from.is_some()
    }

    /// Apply an eviction to minute `t` of `f`'s schedule: punch a hole (the
    /// next invocation during `t` cold-starts). A no-op outside the window.
    /// Returns whether the slot actually changed (it was alive at `t`) —
    /// the event hook observability layers key off.
    pub fn apply_eviction(&mut self, f: FuncId, t: Minute) -> bool {
        let from = self.slot_at(f, t).alive();
        if let Some(from) = from {
            if let Some(s) = self.schedules.get_mut(f).and_then(Option::as_mut) {
                s.set_slot_at(t, Slot::Hole);
            }
            if let Some(ix) = self.index.as_mut() {
                ix.on_evict(f, t, from);
            }
        }
        from.is_some()
    }

    /// Apply one cross-function action to minute `t`. Returns whether the
    /// targeted slot actually moved (downgrades of holes/expired/already-
    /// lower slots and evictions of non-alive slots are ignored), so
    /// engines can report applied-vs-ignored actions faithfully.
    pub fn apply_action(&mut self, t: Minute, action: &DowngradeAction) -> bool {
        match *action {
            DowngradeAction::Downgrade { func, to, .. } => self.apply_downgrade(func, t, to),
            DowngradeAction::Evict { func, .. } => self.apply_eviction(func, t),
        }
    }

    /// Apply a batch of cross-function actions to minute `t`, in order.
    /// Returns how many actions moved a slot.
    pub fn apply_actions(&mut self, t: Minute, actions: &[DowngradeAction]) -> usize {
        actions.iter().filter(|a| self.apply_action(t, a)).count()
    }

    /// Whether minute `t` is answered by the incremental index (as opposed
    /// to the legacy full sweep).
    fn indexed_at(&self, t: Minute) -> bool {
        matches!(&self.index, Some(ix) if t >= ix.retired_before)
    }

    /// Total keep-alive memory (MB) at minute `t`, bit-identical to
    /// [`Self::keep_alive_mb_at`] but sub-linear on an incremental ledger:
    /// a mutated minute is **pinned** by re-summing its alive set in
    /// ascending function order (`O(alive)`), an unmutated minute returns
    /// the previous pin (`O(log minutes)`). Falls back to the full sweep on
    /// a non-incremental ledger or a retired minute.
    pub fn metered_kam_mb(&mut self, families: &[ModelFamily], t: Minute) -> f64 {
        if self.indexed_at(t) {
            if let Some(ix) = self.index.as_mut() {
                let Some(state) = ix.states.get_mut(&t) else {
                    // Empty alive set. The legacy sweep is a `Sum::sum`,
                    // whose f64 identity is -0.0 — returned as-is to stay
                    // bit-identical.
                    return -0.0;
                };
                if state.dirty {
                    pin_state(state, &self.schedules, families, t);
                }
                return state.running_mb;
            }
        }
        self.keep_alive_mb_at(families, t)
    }

    /// Fill `out` with the alive set and footprint of minute `t`, reusing
    /// its buffers — the incremental replacement for
    /// [`Self::minute_footprint`] (identical contents, no per-call
    /// allocation, `O(alive)` on an incremental ledger). Drains the
    /// dirty-function set: `out` is a faithful mirror of the ledger at `t`
    /// from here on, and [`Self::patch_minute_footprint`] can keep it so.
    pub fn fill_minute_footprint(
        &mut self,
        families: &[ModelFamily],
        t: Minute,
        out: &mut MinuteFootprint,
    ) {
        out.alive.clear();
        out.total_mb = 0.0;
        let indexed = self.indexed_at(t);
        if let Some(ix) = self.index.as_mut() {
            ix.clear_dirty();
            if indexed {
                let Some(state) = ix.states.get_mut(&t) else {
                    return; // empty minute: out stays empty with total 0.0
                };
                let mut total = 0.0f64;
                for &f in &state.funcs {
                    // The index only tracks alive slots; a miss here means
                    // the add/remove hooks and the schedule diverged.
                    let Some(v) = variant_of(&self.schedules, f, t) else {
                        debug_assert!(false, "indexed function {f} not alive at minute {t}");
                        continue;
                    };
                    total += families[f].variant(v).memory_mb;
                    out.alive.push(AliveModel {
                        func: f,
                        variant: v,
                        invocation_probability: 0.0,
                    });
                }
                debug_assert!(
                    (state.running_mb - total).abs() <= 1e-6 * total.abs().max(1.0),
                    "running total drifted from pin: {} vs {total}",
                    state.running_mb
                );
                state.running_mb = total;
                state.dirty = false;
                out.total_mb = total;
                return;
            }
        }
        let mut total = 0.0f64;
        for (f, fam) in families.iter().enumerate().take(self.schedules.len()) {
            if let Some(v) = variant_of(&self.schedules, f, t) {
                total += fam.variant(v).memory_mb;
                out.alive.push(AliveModel {
                    func: f,
                    variant: v,
                    invocation_probability: 0.0,
                });
            }
        }
        out.total_mb = total;
    }

    /// Bring a footprint previously produced by
    /// [`Self::fill_minute_footprint`] for the *same minute* back in sync
    /// with the ledger, touching only the functions mutated since — the
    /// dirty-set path the engines' later pipeline stages use instead of
    /// re-materializing the footprint. `out.total_mb` is re-pinned to the
    /// exact ascending-order sum. Falls back to a full refill on a
    /// non-incremental ledger.
    pub fn patch_minute_footprint(
        &mut self,
        families: &[ModelFamily],
        t: Minute,
        out: &mut MinuteFootprint,
    ) {
        let indexed = self.indexed_at(t);
        if indexed {
            if let Some(ix) = self.index.as_mut() {
                let mut dirty = std::mem::take(&mut ix.dirty);
                for &f in &dirty {
                    ix.dirty_mark[f] = false;
                    let now = variant_of(&self.schedules, f, t);
                    match (out.alive.binary_search_by_key(&f, |m| m.func), now) {
                        (Ok(i), Some(v)) => out.alive[i].variant = v,
                        (Ok(i), None) => {
                            out.alive.remove(i);
                        }
                        (Err(i), Some(v)) => out.alive.insert(
                            i,
                            AliveModel {
                                func: f,
                                variant: v,
                                invocation_probability: 0.0,
                            },
                        ),
                        (Err(_), None) => {}
                    }
                }
                dirty.clear();
                ix.dirty = dirty;
                out.total_mb = match ix.states.get_mut(&t) {
                    Some(state) => {
                        if state.dirty {
                            pin_state(state, &self.schedules, families, t);
                        }
                        state.running_mb
                    }
                    None => 0.0,
                };
                return;
            }
        }
        self.fill_minute_footprint(families, t, out);
    }

    /// Drop index state for minutes before `t` (both engines call this once
    /// per step so the index holds only the live keep-alive horizon).
    /// Queries against retired minutes fall back to the legacy sweep.
    pub fn retire_minutes_before(&mut self, t: Minute) {
        if let Some(ix) = self.index.as_mut() {
            if t > ix.retired_before {
                ix.states = ix.states.split_off(&t);
                ix.retired_before = t;
            }
        }
    }

    /// The delta-maintained running total for minute `t` without pinning —
    /// an `O(log minutes)` monitor, within float-drift of the billed value
    /// but *not* bit-identical between mutations and pins. `None` when the
    /// ledger is not incremental or the minute is retired.
    pub fn running_kam_mb_at(&self, t: Minute) -> Option<f64> {
        let ix = self.index.as_ref()?;
        if t < ix.retired_before {
            return None;
        }
        Some(ix.states.get(&t).map_or(0.0, |s| s.running_mb))
    }

    /// Functions mutated since the last footprint fill/patch (unordered,
    /// deduplicated). Empty on a non-incremental ledger.
    pub fn dirty_functions(&self) -> &[FuncId] {
        self.index.as_ref().map_or(&[], |ix| &ix.dirty)
    }
}

/// Re-sum `state`'s alive set in ascending function order — the exact
/// operand sequence of [`ScheduleLedger::keep_alive_mb_at`] — and store the
/// pinned value.
fn pin_state(
    state: &mut MinuteState,
    schedules: &[Option<KeepAliveSchedule>],
    families: &[ModelFamily],
    t: Minute,
) {
    let mut total = 0.0f64;
    for &f in &state.funcs {
        // The index only tracks alive slots; a miss here means the
        // add/remove hooks and the schedule diverged.
        let Some(v) = variant_of(schedules, f, t) else {
            debug_assert!(false, "indexed function {f} not alive at minute {t}");
            continue;
        };
        total += families[f].variant(v).memory_mb;
    }
    debug_assert!(
        (state.running_mb - total).abs() <= 1e-6 * total.abs().max(1.0),
        "running total drifted from pin: {} vs {total}",
        state.running_mb
    );
    state.running_mb = total;
    state.dirty = false;
}

/// Algorithm 1's `t == 1` branch applies at the first minute of a keep-alive
/// period — i.e. the minute right after an invocation started a new period,
/// or the minute at which keep-alive demand resumes after an idle stretch.
/// There the prior keep-alive memory is the local-window average (or the
/// last non-zero level after inactivity), not the previous minute, so
/// routine schedule renewals are judged against the steady level rather
/// than minute-to-minute jitter. Both engines derive the flag identically
/// through this helper.
pub fn begins_keepalive_period(
    invoked_last_minute: bool,
    current_kam_mb: f64,
    demand_history: &[f64],
) -> bool {
    invoked_last_minute || (current_kam_mb > 0.0 && demand_history.last().is_none_or(|&m| m <= 0.0))
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests compare exact constructed values
#[allow(clippy::cast_possible_truncation, clippy::needless_range_loop)] // test-local sizes
mod tests {
    use super::*;
    use pulse_models::zoo;

    fn two_fn_ledger() -> (ScheduleLedger, Vec<ModelFamily>) {
        let fams = vec![zoo::gpt(), zoo::bert()];
        let mut ledger = ScheduleLedger::new(2);
        // f0: gpt-large (variant 2) minutes 1..=10; f1: bert-large minutes 1..=5.
        ledger.replace(0, KeepAliveSchedule::constant(0, 2, 10));
        ledger.replace(1, KeepAliveSchedule::constant(0, 1, 5));
        (ledger, fams)
    }

    #[test]
    fn slot_round_trips_through_raw() {
        assert_eq!(Slot::from_raw(HOLE), Slot::Hole);
        assert_eq!(Slot::from_raw(3), Slot::Alive(3));
        assert_eq!(Slot::Hole.into_raw(), HOLE);
        assert_eq!(Slot::Alive(7).into_raw(), 7);
        assert_eq!(Slot::Alive(2).alive(), Some(2));
        assert_eq!(Slot::Hole.alive(), None);
        assert!(Slot::Hole.is_hole());
        assert!(!Slot::Alive(0).is_hole());
    }

    #[test]
    fn alive_variant_filters_holes_and_expiry() {
        let (mut ledger, _) = two_fn_ledger();
        assert_eq!(ledger.alive_variant_at(0, 5), Some(2));
        assert_eq!(ledger.alive_variant_at(0, 0), None, "invocation minute");
        assert_eq!(ledger.alive_variant_at(0, 11), None, "expired");
        assert_eq!(ledger.alive_variant_at(1, 6), None, "short window");
        ledger.apply_eviction(0, 5);
        assert_eq!(ledger.alive_variant_at(0, 5), None, "hole");
        assert_eq!(ledger.slot_at(0, 5), Slot::Hole);
        assert_eq!(ledger.alive_variant_at(0, 6), Some(2), "hole is per-minute");
    }

    #[test]
    fn footprint_matches_per_function_sum() {
        let (ledger, fams) = two_fn_ledger();
        let mb = fams[0].variant(2).memory_mb + fams[1].variant(1).memory_mb;
        assert_eq!(ledger.keep_alive_mb_at(&fams, 3), mb);
        let fp = ledger.minute_footprint(&fams, 3);
        assert_eq!(fp.total_mb, mb);
        assert_eq!(fp.alive.len(), 2);
        assert_eq!(fp.alive[0].func, 0);
        assert_eq!(fp.alive[1].variant, 1);
        // Minute 7: only f0 still covered.
        assert_eq!(
            ledger.keep_alive_mb_at(&fams, 7),
            fams[0].variant(2).memory_mb
        );
    }

    #[test]
    fn metering_matches_cost_model() {
        let (ledger, fams) = two_fn_ledger();
        let cost = CostModel::aws_lambda();
        let expect = cost.keepalive_cost_usd_per_minutes(ledger.keep_alive_mb_at(&fams, 2), 1.0);
        assert_eq!(ledger.keepalive_cost_usd_at(&fams, &cost, 2), expect);
        assert_eq!(ledger.keepalive_cost_usd_at(&fams, &cost, 500), 0.0);
    }

    #[test]
    fn downgrade_clamps_only_above_and_only_at_t() {
        let (mut ledger, _) = two_fn_ledger();
        assert!(ledger.apply_downgrade(0, 4, 1));
        assert_eq!(ledger.alive_variant_at(0, 4), Some(1));
        assert_eq!(ledger.alive_variant_at(0, 3), Some(2), "t-1 untouched");
        assert_eq!(ledger.alive_variant_at(0, 5), Some(2), "t+1 untouched");
        // A weaker (higher-rung) action can never re-raise the slot.
        assert!(!ledger.apply_downgrade(0, 4, 1));
        assert!(ledger.apply_downgrade(0, 4, 0));
        assert!(!ledger.apply_downgrade(0, 4, 2));
        assert_eq!(ledger.alive_variant_at(0, 4), Some(0));
    }

    #[test]
    fn downgrade_ignores_holes_expired_and_unknown_functions() {
        let (mut ledger, _) = two_fn_ledger();
        ledger.apply_eviction(1, 2);
        assert!(!ledger.apply_downgrade(1, 2, 0), "hole stays a hole");
        assert_eq!(ledger.slot_at(1, 2), Slot::Hole);
        assert!(!ledger.apply_downgrade(1, 40, 0), "expired");
        assert!(!ledger.apply_downgrade(99, 2, 0), "unknown function");
        ledger.apply_eviction(99, 2); // must not panic
    }

    #[test]
    fn action_hooks_report_applied_vs_ignored() {
        let (mut ledger, _) = two_fn_ledger();
        // Eviction of an alive slot applies; of a hole/expired slot, not.
        assert!(ledger.apply_eviction(0, 5));
        assert!(!ledger.apply_eviction(0, 5), "already a hole");
        assert!(!ledger.apply_eviction(0, 40), "expired");
        assert!(!ledger.apply_eviction(99, 2), "unknown function");
        // The batch count matches per-action results: downgrade f0@3
        // applies, a repeat is ignored, the eviction of f1@3 applies.
        let actions = vec![
            DowngradeAction::Downgrade {
                func: 0,
                from: 2,
                to: 0,
            },
            DowngradeAction::Downgrade {
                func: 0,
                from: 2,
                to: 1,
            },
            DowngradeAction::Evict { func: 1, from: 1 },
        ];
        assert_eq!(ledger.apply_actions(3, &actions), 2);
    }

    #[test]
    fn apply_actions_matches_manual_application() {
        let (mut a, _) = two_fn_ledger();
        let (mut b, _) = two_fn_ledger();
        let actions = vec![
            DowngradeAction::Downgrade {
                func: 0,
                from: 2,
                to: 0,
            },
            DowngradeAction::Evict { func: 1, from: 1 },
        ];
        a.apply_actions(3, &actions);
        b.apply_downgrade(0, 3, 0);
        b.apply_eviction(1, 3);
        for f in 0..2 {
            for t in 0..12 {
                assert_eq!(a.slot_at(f, t), b.slot_at(f, t), "f={f} t={t}");
            }
        }
    }

    #[test]
    fn replace_and_clear() {
        let (mut ledger, _) = two_fn_ledger();
        assert!(ledger.schedule(0).is_some());
        ledger.clear(0);
        assert!(ledger.schedule(0).is_none());
        assert_eq!(ledger.alive_variant_at(0, 3), None);
        ledger.replace(0, KeepAliveSchedule::constant(2, 0, 3));
        assert_eq!(ledger.alive_variant_at(0, 3), Some(0));
        assert_eq!(ledger.n_functions(), 2);
    }

    /// Deterministic LCG so incremental-vs-legacy pinning can cover many
    /// action interleavings without a rand dependency in pulse-core.
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            self.0 >> 33
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    fn zoo_families(n: usize) -> Vec<ModelFamily> {
        let all = [
            zoo::gpt(),
            zoo::bert(),
            zoo::densenet(),
            zoo::yolo(),
            zoo::resnet(),
        ];
        (0..n).map(|f| all[f % all.len()].clone()).collect()
    }

    /// Drive an incremental and a legacy ledger through the same random
    /// replace/clear/downgrade/evict sequence and require every read —
    /// metered total, filled footprint, patched footprint — to be
    /// bit-identical to the legacy ascending-order sweep.
    #[test]
    fn incremental_reads_are_bit_identical_to_full_sweep() {
        let fams = zoo_families(9);
        let mut inc = ScheduleLedger::for_families(&fams);
        let mut full = ScheduleLedger::new(fams.len());
        let mut rng = Lcg(0x5eed);
        let mut fp = MinuteFootprint::default();
        for step in 0..400u64 {
            let f = rng.below(fams.len() as u64) as usize;
            let t = rng.below(40);
            match rng.below(4) {
                0 => {
                    let v = rng.below(fams[f].n_variants() as u64) as usize;
                    let w = 1 + rng.below(10) as u32;
                    let s = KeepAliveSchedule::constant(t, v, w);
                    inc.replace(f, s.clone());
                    full.replace(f, s);
                }
                1 => {
                    let v = rng.below(fams[f].n_variants() as u64) as usize;
                    inc.apply_downgrade(f, t, v);
                    full.apply_downgrade(f, t, v);
                }
                2 => {
                    inc.apply_eviction(f, t);
                    full.apply_eviction(f, t);
                }
                _ => {
                    inc.clear(f);
                    full.clear(f);
                }
            }
            let probe = rng.below(52);
            assert_eq!(
                inc.metered_kam_mb(&fams, probe).to_bits(),
                full.keep_alive_mb_at(&fams, probe).to_bits(),
                "step {step} minute {probe}"
            );
            inc.fill_minute_footprint(&fams, probe, &mut fp);
            let want = full.minute_footprint(&fams, probe);
            assert_eq!(fp.alive, want.alive, "step {step} minute {probe}");
            assert_eq!(fp.total_mb.to_bits(), want.total_mb.to_bits());
        }
    }

    /// After a fill, further mutations must be re-syncable through the
    /// dirty-set patch without re-materializing the footprint.
    #[test]
    fn patch_keeps_footprint_in_sync() {
        let fams = zoo_families(6);
        let mut ledger = ScheduleLedger::for_families(&fams);
        for f in 0..6 {
            ledger.replace(f, KeepAliveSchedule::constant(0, fams[f].highest_id(), 10));
        }
        let mut fp = MinuteFootprint::default();
        ledger.fill_minute_footprint(&fams, 3, &mut fp);
        assert!(ledger.dirty_functions().is_empty(), "fill drains dirt");

        ledger.apply_downgrade(1, 3, 0);
        ledger.apply_eviction(4, 3);
        ledger.replace(2, KeepAliveSchedule::constant(3, 0, 5));
        ledger.clear(5);
        assert_eq!(ledger.dirty_functions().len(), 4, "deduplicated dirt");
        ledger.apply_downgrade(1, 3, 0); // ignored action: no new dirt needed

        ledger.patch_minute_footprint(&fams, 3, &mut fp);
        assert!(ledger.dirty_functions().is_empty(), "patch drains dirt");
        let want = ledger.minute_footprint(&fams, 3);
        assert_eq!(fp.alive, want.alive);
        assert_eq!(fp.total_mb.to_bits(), want.total_mb.to_bits());
    }

    /// Retiring minutes keeps reads correct (they fall back to the sweep)
    /// and bounds the index to the live horizon.
    #[test]
    fn retired_minutes_fall_back_to_sweep() {
        let fams = zoo_families(3);
        let mut ledger = ScheduleLedger::for_families(&fams);
        ledger.replace(0, KeepAliveSchedule::constant(0, 1, 10));
        ledger.replace(2, KeepAliveSchedule::constant(2, 0, 4));
        let before: Vec<u64> = (0..12)
            .map(|t| ledger.metered_kam_mb(&fams, t).to_bits())
            .collect();
        ledger.retire_minutes_before(6);
        assert!(ledger.running_kam_mb_at(5).is_none(), "retired");
        assert!(ledger.running_kam_mb_at(6).is_some());
        for (t, want) in before.iter().enumerate() {
            let t = t as Minute;
            assert_eq!(ledger.metered_kam_mb(&fams, t).to_bits(), *want, "t={t}");
            assert_eq!(
                ledger.metered_kam_mb(&fams, t).to_bits(),
                ledger.keep_alive_mb_at(&fams, t).to_bits()
            );
        }
        // Replacing a schedule that spans the retirement boundary only
        // indexes the live part; both sides still read correctly.
        ledger.replace(1, KeepAliveSchedule::constant(3, 1, 10));
        for t in 0..14 {
            assert_eq!(
                ledger.metered_kam_mb(&fams, t).to_bits(),
                ledger.keep_alive_mb_at(&fams, t).to_bits(),
                "t={t}"
            );
        }
    }

    #[test]
    fn running_total_is_close_between_pins() {
        let fams = zoo_families(4);
        let mut ledger = ScheduleLedger::for_families(&fams);
        assert!(ledger.is_incremental());
        assert!(!ScheduleLedger::new(4).is_incremental());
        assert_eq!(ScheduleLedger::new(4).running_kam_mb_at(3), None);
        for f in 0..4 {
            ledger.replace(f, KeepAliveSchedule::constant(0, fams[f].highest_id(), 8));
        }
        ledger.apply_downgrade(0, 4, 0);
        ledger.apply_eviction(3, 4);
        let running = ledger.running_kam_mb_at(4).unwrap();
        let billed = ledger.metered_kam_mb(&fams, 4);
        assert!((running - billed).abs() <= 1e-6 * billed.max(1.0));
        assert_eq!(ledger.running_kam_mb_at(50), Some(0.0), "empty minute");
    }

    #[test]
    fn period_start_detection() {
        // An invocation last minute always starts a period.
        assert!(begins_keepalive_period(true, 0.0, &[]));
        // Demand resuming after zero history starts a period.
        assert!(begins_keepalive_period(false, 10.0, &[5.0, 0.0]));
        assert!(begins_keepalive_period(false, 10.0, &[]));
        // Steady demand does not.
        assert!(!begins_keepalive_period(false, 10.0, &[5.0]));
        // No demand at all does not.
        assert!(!begins_keepalive_period(false, 0.0, &[0.0]));
    }
}

//! The priority structure (Section III-B).
//!
//! PULSE counts how many times each model has been downgraded during peaks.
//! Before every utility computation the counts are normalized with the
//! paper's Equation 1 (min–max, with the degenerate `X_max == X_min` case
//! mapping to all zeros). A model that has absorbed many downgrades gets a
//! *high* normalized priority, which raises its utility value `Uv` and
//! shields it from further downgrades — the unbiasedness mechanism that stops
//! one model (e.g. a low-accuracy YOLO) from always paying for peaks.
//! "To minimize memory overhead, the priority structure is implemented as an
//! array."

use crate::convert::u64_to_f64;
use pulse_models::stats::normalize_min_max;
use serde::{Deserialize, Serialize};

/// Downgrade-count array with Equation 1 normalization.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PriorityStructure {
    counts: Vec<u64>,
}

impl PriorityStructure {
    /// Zero-initialized structure for `n_models` models ("this initialization
    /// occurs immediately after the system has started").
    pub fn new(n_models: usize) -> Self {
        Self {
            counts: vec![0; n_models],
        }
    }

    /// The raw downgrade counts, one per model. Exposed for checkpointing:
    /// together with [`Self::from_counts`] it round-trips the structure.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Rebuild a structure from a previously captured [`Self::counts`] slice.
    pub fn from_counts(counts: Vec<u64>) -> Self {
        Self { counts }
    }

    /// Number of models tracked.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True when tracking no models.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Raw downgrade count of model `m`.
    pub fn count(&self, m: usize) -> u64 {
        self.counts[m]
    }

    /// Record one downgrade of model `m` ("update priority structure with +1
    /// for m").
    pub fn bump(&mut self, m: usize) {
        self.counts[m] += 1;
    }

    /// Equation 1 normalization of the whole structure: values in `[0, 1]`,
    /// the most-downgraded model at 1, with the all-equal case yielding all
    /// zeros.
    pub fn normalized(&self) -> Vec<f64> {
        let xs: Vec<f64> = self.counts.iter().map(|&c| u64_to_f64(c)).collect();
        normalize_min_max(&xs)
    }

    /// Normalized priority of a single model (recomputes the whole
    /// normalization — callers in the downgrade loop should use
    /// [`Self::normalized`] once per iteration instead).
    pub fn normalized_of(&self, m: usize) -> f64 {
        self.normalized()[m]
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests compare exact constructed values
mod tests {
    use super::*;

    #[test]
    fn starts_all_zero() {
        let p = PriorityStructure::new(4);
        assert_eq!(p.normalized(), vec![0.0; 4]);
        assert_eq!(p.count(2), 0);
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn most_downgraded_normalizes_to_one() {
        let mut p = PriorityStructure::new(3);
        p.bump(0);
        p.bump(0);
        p.bump(1);
        let n = p.normalized();
        assert_eq!(n[0], 1.0);
        assert_eq!(n[1], 0.5);
        assert_eq!(n[2], 0.0);
    }

    #[test]
    fn all_equal_counts_normalize_to_zero() {
        let mut p = PriorityStructure::new(3);
        for m in 0..3 {
            p.bump(m);
        }
        assert_eq!(p.normalized(), vec![0.0; 3]);
    }

    #[test]
    fn normalized_values_stay_in_unit_interval() {
        let mut p = PriorityStructure::new(5);
        for (m, k) in [(0, 7), (1, 3), (2, 0), (3, 11), (4, 11)] {
            for _ in 0..k {
                p.bump(m);
            }
        }
        for v in p.normalized() {
            assert!((0.0..=1.0).contains(&v));
        }
        assert_eq!(p.normalized_of(3), 1.0);
        assert_eq!(p.normalized_of(2), 0.0);
    }

    #[test]
    fn empty_structure_is_fine() {
        let p = PriorityStructure::new(0);
        assert!(p.is_empty());
        assert!(p.normalized().is_empty());
    }

    #[test]
    fn bump_accumulates() {
        let mut p = PriorityStructure::new(2);
        for _ in 0..10 {
            p.bump(1);
        }
        assert_eq!(p.count(1), 10);
        assert_eq!(p.count(0), 0);
    }
}

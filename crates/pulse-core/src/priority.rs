//! The priority structure (Section III-B).
//!
//! PULSE counts how many times each model has been downgraded during peaks.
//! Before every utility computation the counts are normalized with the
//! paper's Equation 1 (min–max, with the degenerate `X_max == X_min` case
//! mapping to all zeros). A model that has absorbed many downgrades gets a
//! *high* normalized priority, which raises its utility value `Uv` and
//! shields it from further downgrades — the unbiasedness mechanism that stops
//! one model (e.g. a low-accuracy YOLO) from always paying for peaks.
//! "To minimize memory overhead, the priority structure is implemented as an
//! array."

use crate::convert::u64_to_f64;
use pulse_models::stats::normalize_min_max;
use serde::{Deserialize, Serialize};

/// Downgrade-count array with Equation 1 normalization.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PriorityStructure {
    counts: Vec<u64>,
}

impl PriorityStructure {
    /// Zero-initialized structure for `n_models` models ("this initialization
    /// occurs immediately after the system has started").
    pub fn new(n_models: usize) -> Self {
        Self {
            counts: vec![0; n_models],
        }
    }

    /// The raw downgrade counts, one per model. Exposed for checkpointing:
    /// together with [`Self::from_counts`] it round-trips the structure.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Rebuild a structure from a previously captured [`Self::counts`] slice.
    pub fn from_counts(counts: Vec<u64>) -> Self {
        Self { counts }
    }

    /// Number of models tracked.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True when tracking no models.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Raw downgrade count of model `m`.
    pub fn count(&self, m: usize) -> u64 {
        self.counts[m]
    }

    /// Record one downgrade of model `m` ("update priority structure with +1
    /// for m").
    pub fn bump(&mut self, m: usize) {
        self.counts[m] += 1;
    }

    /// Equation 1 normalization of the whole structure: values in `[0, 1]`,
    /// the most-downgraded model at 1, with the all-equal case yielding all
    /// zeros.
    pub fn normalized(&self) -> Vec<f64> {
        let xs: Vec<f64> = self.counts.iter().map(|&c| u64_to_f64(c)).collect();
        normalize_min_max(&xs)
    }

    /// Normalized priority of a single model (recomputes the whole
    /// normalization — callers in the downgrade loop should use
    /// [`Self::normalized`] once per iteration instead).
    pub fn normalized_of(&self, m: usize) -> f64 {
        self.normalized()[m]
    }

    /// Count bounds `(min, max)` across all models — the inputs to Equation
    /// 1's normalization. `None` when tracking no models. `O(n)`; the
    /// heap-based downgrade loop computes this once and maintains it
    /// incrementally across bumps.
    pub fn count_bounds(&self) -> Option<(u64, u64)> {
        let lo = self.counts.iter().copied().min()?;
        let hi = self.counts.iter().copied().max()?;
        Some((lo, hi))
    }

    /// Equation 1 normalization of one model given precomputed count
    /// bounds: bit-identical to `self.normalized()[m]` whenever `lo`/`hi`
    /// equal [`Self::count_bounds`] (counts convert to f64 exactly, and a
    /// float min/max fold over exact values equals the converted integer
    /// bounds). This is the `O(1)` re-key the heap-based downgrade loop
    /// uses when a bump leaves the bounds unchanged.
    #[allow(clippy::float_cmp)] // exact u64-derived values; Equation 1's degenerate-range test
    pub fn normalized_single(&self, m: usize, lo: u64, hi: u64) -> f64 {
        let x = u64_to_f64(self.counts[m]);
        let lo = u64_to_f64(lo);
        let hi = u64_to_f64(hi);
        if hi == lo {
            x - lo
        } else {
            (x - lo) / (hi - lo)
        }
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests compare exact constructed values
#[allow(clippy::cast_possible_truncation, clippy::needless_range_loop)] // test-local sizes
mod tests {
    use super::*;

    #[test]
    fn starts_all_zero() {
        let p = PriorityStructure::new(4);
        assert_eq!(p.normalized(), vec![0.0; 4]);
        assert_eq!(p.count(2), 0);
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn most_downgraded_normalizes_to_one() {
        let mut p = PriorityStructure::new(3);
        p.bump(0);
        p.bump(0);
        p.bump(1);
        let n = p.normalized();
        assert_eq!(n[0], 1.0);
        assert_eq!(n[1], 0.5);
        assert_eq!(n[2], 0.0);
    }

    #[test]
    fn all_equal_counts_normalize_to_zero() {
        let mut p = PriorityStructure::new(3);
        for m in 0..3 {
            p.bump(m);
        }
        assert_eq!(p.normalized(), vec![0.0; 3]);
    }

    #[test]
    fn normalized_values_stay_in_unit_interval() {
        let mut p = PriorityStructure::new(5);
        for (m, k) in [(0, 7), (1, 3), (2, 0), (3, 11), (4, 11)] {
            for _ in 0..k {
                p.bump(m);
            }
        }
        for v in p.normalized() {
            assert!((0.0..=1.0).contains(&v));
        }
        assert_eq!(p.normalized_of(3), 1.0);
        assert_eq!(p.normalized_of(2), 0.0);
    }

    #[test]
    fn empty_structure_is_fine() {
        let p = PriorityStructure::new(0);
        assert!(p.is_empty());
        assert!(p.normalized().is_empty());
    }

    #[test]
    fn normalized_single_matches_full_normalization_bitwise() {
        let mut p = PriorityStructure::new(6);
        assert_eq!(PriorityStructure::new(0).count_bounds(), None);
        // Exercise the all-equal, two-level, and spread-out regimes.
        for (m, k) in [(0, 7), (1, 3), (3, 11), (4, 11), (5, 1)] {
            for _ in 0..k {
                p.bump(m);
            }
        }
        for stage in 0..3 {
            let (lo, hi) = p.count_bounds().unwrap();
            let full = p.normalized();
            for m in 0..p.len() {
                assert_eq!(
                    p.normalized_single(m, lo, hi).to_bits(),
                    full[m].to_bits(),
                    "stage {stage} model {m}"
                );
            }
            p.bump(2); // second stage lifts the min, third the all-equal case
            for m in 0..p.len() {
                while p.count(m) < p.count(3) {
                    p.bump(m);
                }
            }
        }
    }

    #[test]
    fn bump_accumulates() {
        let mut p = PriorityStructure::new(2);
        for _ in 0..10 {
            p.bump(1);
        }
        assert_eq!(p.count(1), 10);
        assert_eq!(p.count(0), 0);
    }
}

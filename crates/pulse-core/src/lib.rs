//! # pulse-core — the PULSE keep-alive policy
//!
//! This crate implements the paper's primary contribution: a dynamic
//! 10-minute keep-alive mechanism that mixes *quality variants* of ML models
//! to balance keep-alive cost, accuracy and service time, in two layers:
//!
//! 1. **Individual (function-centric) optimization** ([`individual`],
//!    [`interarrival`], [`thresholds`]): per function, the probability of each
//!    inter-arrival gap (1–10 minutes) is estimated over a sliding *local
//!    window* and over the full history, averaged, and mapped through greedy
//!    probability thresholds to a per-minute variant schedule for the
//!    keep-alive window. High invocation probability ⇒ keep the
//!    high-accuracy variant warm; low probability ⇒ the cheap variant.
//!
//! 2. **Cross-function (global) optimization** ([`peak`], [`priority`],
//!    [`utility`], [`global`]): every minute, Algorithm 1 compares current
//!    keep-alive memory against a *prior* keep-alive memory (robust to
//!    periods of inactivity); when a peak is detected, Algorithm 2 repeatedly
//!    downgrades the kept-alive model with the lowest utility value
//!    `Uv = Ai + Pr + Ip` — accuracy improvement, normalized downgrade
//!    priority (Equation 1), invocation probability — until the peak is
//!    flattened.
//!
//! The [`engine::PulseEngine`] ties both layers together behind a small API
//! that the `pulse-sim` simulator (or a real platform shim) drives:
//! `on_invocation` returns a variant schedule, `flatten_peak` returns the
//! downgrade actions for the current minute.
//!
//! ```
//! use pulse_core::{engine::PulseEngine, PulseConfig};
//! use pulse_models::zoo;
//!
//! // Two functions, each assigned a model family.
//! let mut engine = PulseEngine::new(vec![zoo::gpt(), zoo::bert()], PulseConfig::default());
//!
//! // A function with a tight 2-minute cadence...
//! for t in [0u64, 2, 4, 6, 8, 10] {
//!     engine.record_invocation(0, t);
//! }
//! let schedule = engine.schedule_after_invocation(0, 10);
//! // ...gets its high-accuracy variant warmed at the 2-minute mark.
//! assert!(schedule.variant_at_offset(2).unwrap() > 0);
//! ```

mod convert;

pub mod engine;
pub mod global;
pub mod individual;
pub mod interarrival;
pub mod online;
pub mod peak;
pub mod priority;
pub mod probability;
pub mod schedule;
pub mod thresholds;
pub mod types;
pub mod utility;

pub use engine::{PulseEngine, PulseInitError};
pub use individual::{IndividualOptimizer, KeepAliveSchedule};
pub use interarrival::{GapProbabilities, InterArrivalModel};
pub use online::OnlineInterArrival;
pub use peak::PeakDetector;
pub use priority::PriorityStructure;
pub use probability::{Probability, ProbabilityError};
pub use schedule::{MinuteFootprint, ScheduleLedger, Slot};
pub use thresholds::{CustomThresholds, SchemeT1, SchemeT2, ThresholdError, ThresholdScheme};
pub use types::{ConfigError, FuncId, Minute, PulseConfig};
pub use utility::utility_value;

//! Shared types and tunables of the PULSE policy.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Simulation/policy time in minutes since the start of the trace. The paper
/// works at minute resolution throughout ("the time resolution used for
/// inter-arrival time is in minutes").
pub type Minute = u64;

/// Identifier of a serverless function within a deployment (dense index).
pub type FuncId = usize;

/// Probability-threshold scheme selector (Figure 10's T1 vs T2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchemeKind {
    /// T1: divide the probability space `[0, 1]` into `N` equal areas
    /// (`N − 1` thresholds at `1/N, 2/N, …`), lowest area → lowest variant.
    T1,
    /// T2: reserve the lowest-accuracy variant for probability exactly 0 and
    /// divide `(0, 1]` into `N − 1` areas (`N − 2` thresholds).
    T2,
}

/// All tunables of PULSE, with the paper's defaults.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PulseConfig {
    /// Length of the keep-alive window after an invocation, minutes.
    /// The paper (and every major provider it cites) uses 10; Section V notes
    /// the design "can be adapted to different keep-alive durations".
    pub keepalive_minutes: u32,
    /// Sliding local-window length for the immediate-past inter-arrival
    /// distribution and for Algorithm 1's averaged prior memory, minutes.
    /// Figure 12 sweeps {10, 60, 120}; we default to 60.
    pub local_window: u32,
    /// Keep-alive memory threshold `KM_T` of Algorithm 1: a minute is a peak
    /// when current memory exceeds prior memory by more than this fraction.
    /// Figure 11 sweeps {0.05, 0.10, 0.15} (M1–M3); the paper's discussion
    /// default (M2) is 0.10.
    pub km_threshold: f64,
    /// Which probability-threshold scheme the individual optimizer uses.
    pub scheme: SchemeKind,
}

impl Default for PulseConfig {
    fn default() -> Self {
        Self {
            keepalive_minutes: 10,
            local_window: 60,
            km_threshold: 0.10,
            scheme: SchemeKind::T1,
        }
    }
}

/// Why a [`PulseConfig`] was rejected by [`PulseConfig::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `keepalive_minutes` is 0 (the policy needs at least one minute).
    ZeroKeepalive,
    /// `local_window` is 0 (the sliding window needs at least one minute).
    ZeroLocalWindow,
    /// `km_threshold` is NaN, infinite, or negative.
    InvalidKmThreshold,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ZeroKeepalive => write!(f, "keepalive_minutes must be >= 1"),
            Self::ZeroLocalWindow => write!(f, "local_window must be >= 1"),
            Self::InvalidKmThreshold => write!(f, "km_threshold must be finite and >= 0"),
        }
    }
}

impl std::error::Error for ConfigError {}

impl PulseConfig {
    /// Validate tunables; every engine construction path calls this.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.keepalive_minutes == 0 {
            return Err(ConfigError::ZeroKeepalive);
        }
        if self.local_window == 0 {
            return Err(ConfigError::ZeroLocalWindow);
        }
        if !self.km_threshold.is_finite() || self.km_threshold < 0.0 {
            return Err(ConfigError::InvalidKmThreshold);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = PulseConfig::default();
        assert_eq!(c.keepalive_minutes, 10);
        assert_eq!(c.local_window, 60);
        assert!((c.km_threshold - 0.10).abs() < 1e-12);
        assert_eq!(c.scheme, SchemeKind::T1);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn zero_window_rejected() {
        let c = PulseConfig {
            local_window: 0,
            ..Default::default()
        };
        assert_eq!(c.validate(), Err(ConfigError::ZeroLocalWindow));
    }

    #[test]
    fn zero_keepalive_rejected() {
        let c = PulseConfig {
            keepalive_minutes: 0,
            ..Default::default()
        };
        assert_eq!(c.validate(), Err(ConfigError::ZeroKeepalive));
    }

    #[test]
    fn negative_threshold_rejected() {
        let c = PulseConfig {
            km_threshold: -0.1,
            ..Default::default()
        };
        assert_eq!(c.validate(), Err(ConfigError::InvalidKmThreshold));
        let nan = PulseConfig {
            km_threshold: f64::NAN,
            ..Default::default()
        };
        assert_eq!(nan.validate(), Err(ConfigError::InvalidKmThreshold));
    }

    #[test]
    fn config_errors_display_the_constraint() {
        assert!(ConfigError::ZeroKeepalive.to_string().contains("keepalive"));
        assert!(ConfigError::InvalidKmThreshold
            .to_string()
            .contains("km_threshold"));
    }
}

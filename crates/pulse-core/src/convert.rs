//! Checked numeric conversions for the policy core.
//!
//! The audit's `cast` rule bans raw `as` casts in pulse-core: an `as` cast
//! silently truncates, wraps, or loses precision, and policy math must not
//! do any of those silently. The handful of conversions the core genuinely
//! needs are centralized here with their safety arguments attached, so the
//! rest of the crate uses named, checked operations instead of `as`.

/// A count (histogram bucket, arrival total, variant index) as an `f64`.
///
/// Exact for counts below 2^53; the debug assert documents that bound. PULSE
/// counts minutes and invocations — astronomically below 2^53 — so the
/// conversion is lossless in practice and merely rounds if the bound were
/// ever exceeded.
#[inline]
pub(crate) fn count_to_f64(n: usize) -> f64 {
    debug_assert!(n < (1usize << 53), "count too large for exact f64: {n}");
    // audit:allow(cast): usize -> f64 is value-preserving below 2^53, guaranteed by the debug_assert above
    n as f64
}

/// A `u64` count/minute value as an `f64` (same bound as [`count_to_f64`]).
#[inline]
pub(crate) fn u64_to_f64(n: u64) -> f64 {
    debug_assert!(n < (1u64 << 53), "value too large for exact f64: {n}");
    // audit:allow(cast): u64 -> f64 is value-preserving below 2^53, guaranteed by the debug_assert above
    n as f64
}

/// A minute-gap (`u64`) as a vector index. Gaps that exceed `usize::MAX`
/// (impossible on 64-bit hosts, conceivable on 32-bit) saturate, which every
/// caller treats as "out of window" via bounds-checked indexing.
#[inline]
pub(crate) fn gap_to_index(gap: u64) -> usize {
    usize::try_from(gap).unwrap_or(usize::MAX)
}

/// A window length (`u32`) as a vector length.
#[inline]
pub(crate) fn window_to_len(window: u32) -> usize {
    // u32 always fits in usize on the 16-bit-free platforms Rust supports.
    gap_to_index(u64::from(window))
}

/// A vector length as a `u64` minute count. `usize → u64` never truncates on
/// the platforms Rust supports; the saturation is defensive only.
#[inline]
pub(crate) fn len_to_u64(n: usize) -> u64 {
    u64::try_from(n).unwrap_or(u64::MAX)
}

/// A plan length as a `u32` window size. Plans are built from `u32` windows,
/// so the saturating conversion is exact in practice.
#[inline]
pub(crate) fn len_to_u32(n: usize) -> u32 {
    u32::try_from(n).unwrap_or(u32::MAX)
}

/// `⌊x⌋` as a band/bucket index for a non-negative, in-range `x`.
///
/// Callers must pass `x` in `[0, usize::MAX]`; policy call sites pass
/// `p * n` with `p ∈ [0, 1]` and `n` a small variant count, so the result is
/// a small non-negative integer and the float-to-int conversion is exact.
#[inline]
pub(crate) fn floor_index(x: f64) -> usize {
    debug_assert!(x >= 0.0, "floor_index of negative value: {x}");
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    {
        // audit:allow(cast): f64 -> usize after floor() of a small non-negative band product bounded by the variant count
        x.floor() as usize
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests compare exact constructed values
mod tests {
    use super::*;

    #[test]
    fn count_conversion_is_exact_for_small_counts() {
        assert_eq!(count_to_f64(0), 0.0);
        assert_eq!(count_to_f64(12_345), 12_345.0);
        assert_eq!(u64_to_f64(7), 7.0);
    }

    #[test]
    fn gap_index_roundtrips() {
        assert_eq!(gap_to_index(0), 0);
        assert_eq!(gap_to_index(42), 42);
        assert_eq!(window_to_len(60), 60);
    }

    #[test]
    fn length_conversions_roundtrip() {
        assert_eq!(len_to_u64(0), 0);
        assert_eq!(len_to_u64(1000), 1000);
        assert_eq!(len_to_u32(10), 10);
    }

    #[test]
    fn floor_index_truncates_toward_zero() {
        assert_eq!(floor_index(0.0), 0);
        assert_eq!(floor_index(0.999), 0);
        assert_eq!(floor_index(2.0), 2);
        assert_eq!(floor_index(2.7), 2);
    }
}

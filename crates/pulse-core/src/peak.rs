//! Peak determination — the paper's Algorithm 1 (Section III-B).
//!
//! A minute is a *peak* when its keep-alive memory exceeds a *prior*
//! keep-alive memory by more than the tunable threshold fraction `KM_T`:
//!
//! ```text
//! is_peak(C_KaM, P_KaM) = C_KaM > P_KaM + KM_T × P_KaM
//! ```
//!
//! The subtlety Algorithm 1 addresses is choosing `P_KaM` for the *first*
//! minute after activity resumes. Functions may be nocturnal/diurnal or have
//! long inactive stretches; taking the immediately-preceding minute's memory
//! (zero after inactivity) would flag every wake-up as a peak and cause mass
//! downgrades → cold starts. So:
//!
//! * continuous operation (system has run ≥ 2 local windows and the trailing
//!   local-window average is non-zero) → prior = that average;
//! * otherwise → prior = the most recent *non-zero* keep-alive memory in
//!   history, or ∞ if there has never been one (∞ ⇒ never a peak);
//! * for every later minute of a keep-alive period → prior = the previous
//!   minute's memory.

use crate::convert::count_to_f64;
use serde::{Deserialize, Serialize};

/// Algorithm 1: peak detection over the keep-alive memory series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeakDetector {
    /// The keep-alive memory threshold `KM_T` (fraction, e.g. 0.10 for M2).
    pub km_threshold: f64,
    /// Sliding local-window length, minutes.
    pub local_window: usize,
}

impl PeakDetector {
    /// New detector. Panics on invalid parameters.
    pub fn new(km_threshold: f64, local_window: usize) -> Self {
        assert!(
            km_threshold.is_finite() && km_threshold >= 0.0,
            "KM_T must be finite and non-negative"
        );
        assert!(local_window >= 1, "local window must be >= 1 minute");
        Self {
            km_threshold,
            local_window,
        }
    }

    /// The `ISPEAK` predicate of Algorithm 1.
    #[inline]
    pub fn is_peak(&self, current_kam: f64, prior_kam: f64) -> bool {
        // Algorithm 1 precondition: keep-alive memory is a non-negative sum
        // of variant sizes; the prior may additionally be ∞ (never active).
        debug_assert!(
            current_kam >= 0.0 && current_kam.is_finite(),
            "C_KaM must be finite and non-negative: {current_kam}"
        );
        debug_assert!(prior_kam >= 0.0, "P_KaM must be non-negative: {prior_kam}");
        current_kam > prior_kam + self.km_threshold * prior_kam
    }

    /// Compute the prior keep-alive memory `P_KaM` for the minute *after*
    /// `history` (the per-minute keep-alive memory series so far, oldest
    /// first), per Algorithm 1.
    ///
    /// `first_minute_of_period` distinguishes the `t == 1` branch (first
    /// minute of a keep-alive period, i.e. activity just resumed) from the
    /// `t > 1` branch (prior = previous minute's memory).
    pub fn prior_kam(&self, history: &[f64], first_minute_of_period: bool) -> f64 {
        // Algorithm 1 precondition: the memory series is non-negative.
        debug_assert!(
            history.iter().all(|&q| q >= 0.0 && q.is_finite()),
            "keep-alive memory history must be finite and non-negative"
        );
        let prior = self.prior_kam_inner(history, first_minute_of_period);
        // Algorithm 1 postcondition: the prior is either a memory level seen
        // in (or averaged over) history, or the ∞ sentinel — never negative.
        debug_assert!(prior >= 0.0, "P_KaM must be non-negative: {prior}");
        prior
    }

    fn prior_kam_inner(&self, history: &[f64], first_minute_of_period: bool) -> f64 {
        if history.is_empty() {
            return f64::INFINITY;
        }
        if !first_minute_of_period {
            return history[history.len() - 1];
        }
        // t == 1 branch.
        let w = self.local_window.min(history.len());
        let tail = &history[history.len() - w..];
        let avg = tail.iter().sum::<f64>() / count_to_f64(w);
        if history.len() >= 2 * self.local_window && avg > 0.0 {
            avg
        } else {
            // Last non-zero keep-alive memory anywhere in history, else ∞.
            history
                .iter()
                .rev()
                .copied()
                .find(|&q| q > 0.0)
                .unwrap_or(f64::INFINITY)
        }
    }

    /// Convenience: prior + predicate in one call for the minute after
    /// `history` with current memory `current_kam`.
    pub fn detect(&self, history: &[f64], first_minute_of_period: bool, current_kam: f64) -> bool {
        self.is_peak(current_kam, self.prior_kam(history, first_minute_of_period))
    }

    /// The memory level a peak must be flattened down to: the largest current
    /// memory that is *not* a peak relative to `prior_kam`.
    #[inline]
    pub fn flatten_target(&self, prior_kam: f64) -> f64 {
        // Same expression as `is_peak`, so the target itself is never a peak
        // (floating-point identical, not just algebraically equal).
        prior_kam + self.km_threshold * prior_kam
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests compare exact constructed values
mod tests {
    use super::*;

    fn det() -> PeakDetector {
        PeakDetector::new(0.10, 5)
    }

    #[test]
    fn ispeak_threshold_boundary() {
        let d = det();
        assert!(!d.is_peak(110.0, 100.0)); // exactly at threshold: not a peak
        assert!(d.is_peak(110.0 + 1e-9, 100.0));
        assert!(!d.is_peak(90.0, 100.0));
    }

    #[test]
    fn continuing_period_uses_previous_minute() {
        let d = det();
        let history = vec![50.0, 60.0, 70.0];
        assert_eq!(d.prior_kam(&history, false), 70.0);
    }

    #[test]
    fn steady_operation_uses_local_window_average() {
        let d = det();
        // 10 minutes of history (≥ 2 × window of 5), trailing window avg 100.
        let history = vec![0.0, 0.0, 0.0, 0.0, 0.0, 100.0, 100.0, 100.0, 100.0, 100.0];
        assert_eq!(d.prior_kam(&history, true), 100.0);
    }

    #[test]
    fn wakeup_after_inactivity_uses_last_nonzero() {
        let d = det();
        // Trailing window is all zeros (inactive) → avg 0 → fall back to the
        // last non-zero value (80), even though the system is old enough.
        let history = vec![70.0, 75.0, 80.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        assert_eq!(d.prior_kam(&history, true), 80.0);
    }

    #[test]
    fn young_system_uses_last_nonzero() {
        let d = det();
        // Only 4 minutes of history (< 2 × 5): bypass the average branch.
        let history = vec![30.0, 40.0, 0.0, 0.0];
        assert_eq!(d.prior_kam(&history, true), 40.0);
    }

    #[test]
    fn never_active_system_has_infinite_prior() {
        let d = det();
        let history = vec![0.0; 20];
        assert_eq!(d.prior_kam(&history, true), f64::INFINITY);
        // ∞ prior ⇒ no current memory can be a peak.
        assert!(!d.is_peak(1e12, f64::INFINITY));
    }

    #[test]
    fn empty_history_has_infinite_prior() {
        let d = det();
        assert_eq!(d.prior_kam(&[], true), f64::INFINITY);
        assert_eq!(d.prior_kam(&[], false), f64::INFINITY);
    }

    #[test]
    fn detect_combines_prior_and_predicate() {
        let d = det();
        let history = vec![100.0; 10];
        // Steady at 100, current jumps to 150: 150 > 110 → peak.
        assert!(d.detect(&history, false, 150.0));
        assert!(!d.detect(&history, false, 105.0));
    }

    #[test]
    fn wakeup_is_not_a_peak_when_memory_resumes_at_prior_level() {
        let d = det();
        // The design goal: waking from inactivity at yesterday's level must
        // not fire the detector (else wake-ups cause mass cold starts).
        let mut history = vec![100.0; 10];
        history.extend(vec![0.0; 8]);
        assert!(!d.detect(&history, true, 105.0));
        // ...but a 2× jump over the remembered level still fires.
        assert!(d.detect(&history, true, 220.0));
    }

    #[test]
    fn flatten_target_is_threshold_level() {
        let d = det();
        assert!((d.flatten_target(100.0) - 110.0).abs() < 1e-12);
        assert!(!d.is_peak(d.flatten_target(100.0), 100.0));
    }

    #[test]
    fn zero_threshold_flags_any_increase() {
        let d = PeakDetector::new(0.0, 5);
        assert!(d.is_peak(100.0 + 1e-9, 100.0));
        assert!(!d.is_peak(100.0, 100.0));
    }

    #[test]
    fn non_increasing_memory_never_peaks() {
        let d = det();
        let series = [100.0, 90.0, 80.0, 80.0, 60.0, 10.0];
        let mut history: Vec<f64> = vec![100.0];
        for &m in &series[1..] {
            assert!(!d.detect(&history, false, m));
            history.push(m);
        }
    }

    #[test]
    #[should_panic(expected = "KM_T")]
    fn negative_threshold_rejected() {
        PeakDetector::new(-0.1, 5);
    }

    #[test]
    #[should_panic(expected = "local window")]
    fn zero_window_rejected() {
        PeakDetector::new(0.1, 0);
    }
}

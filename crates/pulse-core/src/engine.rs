//! The PULSE engine: both optimization layers behind one stateful API.
//!
//! A platform (the `pulse-sim` simulator, or a real serverless shim) drives
//! the engine with three calls:
//!
//! 1. [`PulseEngine::record_invocation`] whenever a function is invoked;
//! 2. [`PulseEngine::schedule_after_invocation`] to obtain the per-minute
//!    variant plan for the next keep-alive window (individual optimization);
//! 3. once per minute, [`PulseEngine::check_and_flatten`] with the current
//!    keep-alive memory and the set of alive containers — if Algorithm 1
//!    flags a peak, Algorithm 2's downgrade actions are returned for the
//!    platform to apply (cross-function optimization).

use crate::convert::window_to_len;
use crate::global::{flatten_peak_scratch, AliveModel, FlattenOutcome, FlattenScratch};
use crate::individual::{IndividualOptimizer, KeepAliveSchedule};
use crate::interarrival::{GapProbabilities, InterArrivalModel};
use crate::peak::PeakDetector;
use crate::priority::PriorityStructure;
use crate::thresholds::{SchemeT1, SchemeT2, ThresholdScheme};
use crate::types::{ConfigError, FuncId, Minute, PulseConfig, SchemeKind};
use pulse_models::ModelFamily;
use std::fmt;

/// Why [`PulseEngine::try_new`] rejected its inputs.
#[derive(Debug, Clone, PartialEq)]
pub enum PulseInitError {
    /// The configuration failed [`PulseConfig::validate`].
    Config(ConfigError),
    /// `families[index]` failed its own validation.
    Family {
        /// Index of the rejected family.
        index: usize,
        /// The family's validation message.
        reason: String,
    },
}

impl fmt::Display for PulseInitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Config(e) => write!(f, "invalid PulseConfig: {e}"),
            Self::Family { index, reason } => write!(f, "invalid family {index}: {reason}"),
        }
    }
}

impl std::error::Error for PulseInitError {}

/// Stateful PULSE policy over a fixed set of functions, each assigned one
/// model family.
#[derive(Debug, Clone)]
pub struct PulseEngine {
    families: Vec<ModelFamily>,
    arrivals: Vec<InterArrivalModel>,
    priority: PriorityStructure,
    detector: PeakDetector,
    optimizer: IndividualOptimizer,
    config: PulseConfig,
    /// Reused by [`Self::check_and_flatten`] so repeated peaks allocate no
    /// per-pass victim-selection state. Pure scratch: carries no state
    /// across calls, so it is deliberately absent from export/import.
    scratch: FlattenScratch,
}

impl PulseEngine {
    /// Create an engine for `families.len()` functions; `families[f]` is the
    /// model family assigned to function `f`.
    ///
    /// # Panics
    /// Panics if the configuration or any family is invalid; fallible
    /// callers should use [`Self::try_new`].
    pub fn new(families: Vec<ModelFamily>, config: PulseConfig) -> Self {
        match Self::try_new(families, config) {
            Ok(engine) => engine,
            // audit:allow(unwrap): documented panicking convenience constructor; fallible callers use try_new
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible construction: validates the configuration and every family,
    /// returning a typed error instead of panicking.
    pub fn try_new(
        families: Vec<ModelFamily>,
        config: PulseConfig,
    ) -> Result<Self, PulseInitError> {
        config.validate().map_err(PulseInitError::Config)?;
        for (index, f) in families.iter().enumerate() {
            f.validate()
                .map_err(|reason| PulseInitError::Family { index, reason })?;
        }
        let n = families.len();
        Ok(Self {
            families,
            arrivals: vec![InterArrivalModel::new(); n],
            priority: PriorityStructure::new(n),
            detector: PeakDetector::new(config.km_threshold, window_to_len(config.local_window)),
            optimizer: IndividualOptimizer::new(config.keepalive_minutes),
            config,
            scratch: FlattenScratch::default(),
        })
    }

    /// Number of functions managed.
    pub fn n_functions(&self) -> usize {
        self.families.len()
    }

    /// The family assigned to function `f`.
    pub fn family(&self, f: FuncId) -> &ModelFamily {
        &self.families[f]
    }

    /// All family assignments.
    pub fn families(&self) -> &[ModelFamily] {
        &self.families
    }

    /// The active configuration.
    pub fn config(&self) -> &PulseConfig {
        &self.config
    }

    /// The downgrade-priority structure (inspection/testing).
    pub fn priority(&self) -> &PriorityStructure {
        &self.priority
    }

    /// The peak detector (inspection).
    pub fn detector(&self) -> &PeakDetector {
        &self.detector
    }

    /// Record an invocation of function `f` at minute `t`.
    pub fn record_invocation(&mut self, f: FuncId, t: Minute) {
        self.arrivals[f].record(t);
    }

    /// Export the engine's mutable state for checkpointing: the per-function
    /// arrival minutes and the priority counts. The peak detector and the
    /// individual optimizer are pure functions of the configuration and carry
    /// no mutable state, so this pair is the engine's complete resumable
    /// state.
    pub fn export_state(&self) -> (Vec<Vec<Minute>>, Vec<u64>) {
        (
            self.arrivals
                .iter()
                .map(|m| m.arrivals().to_vec())
                .collect(),
            self.priority.counts().to_vec(),
        )
    }

    /// Restore state previously captured with [`Self::export_state`] into an
    /// engine built with the same families and configuration.
    ///
    /// # Errors
    /// Returns a description of the mismatch when either vector's length
    /// differs from [`Self::n_functions`], or when any arrival history is not
    /// strictly ascending.
    pub fn import_state(
        &mut self,
        arrivals: Vec<Vec<Minute>>,
        counts: Vec<u64>,
    ) -> Result<(), String> {
        let n = self.n_functions();
        if arrivals.len() != n {
            return Err(format!(
                "expected {n} arrival histories, got {}",
                arrivals.len()
            ));
        }
        if counts.len() != n {
            return Err(format!(
                "expected {n} priority counts, got {}",
                counts.len()
            ));
        }
        let mut models = Vec::with_capacity(n);
        for (f, a) in arrivals.into_iter().enumerate() {
            models.push(
                InterArrivalModel::from_arrivals(a).map_err(|e| format!("function {f}: {e}"))?,
            );
        }
        self.arrivals = models;
        self.priority = PriorityStructure::from_counts(counts);
        Ok(())
    }

    /// Current combined gap-probability estimate for function `f` at `t`.
    pub fn probabilities(&self, f: FuncId, t: Minute) -> GapProbabilities {
        self.arrivals[f].probabilities(t, self.config.local_window, self.config.keepalive_minutes)
    }

    /// Individual optimization: the variant plan for the keep-alive window
    /// following an invocation of `f` at minute `t`.
    ///
    /// Call [`Self::record_invocation`] first so the plan reflects the
    /// just-observed arrival.
    pub fn schedule_after_invocation(&self, f: FuncId, t: Minute) -> KeepAliveSchedule {
        let probs = self.probabilities(f, t);
        let n = self.families[f].n_variants();
        match self.config.scheme {
            SchemeKind::T1 => self.optimizer.schedule(t, &probs, n, &SchemeT1),
            SchemeKind::T2 => self.optimizer.schedule(t, &probs, n, &SchemeT2),
        }
    }

    /// Plan a window with an explicit scheme object (for scheme ablations).
    pub fn schedule_with_scheme(
        &self,
        f: FuncId,
        t: Minute,
        scheme: &dyn ThresholdScheme,
    ) -> KeepAliveSchedule {
        let probs = self.probabilities(f, t);
        self.optimizer
            .schedule(t, &probs, self.families[f].n_variants(), scheme)
    }

    /// `Ip` — the probability that function `f` is invoked at minute `t`,
    /// i.e. the probability of an inter-arrival gap equal to the time since
    /// `f`'s last invocation. Zero when `f` has never been invoked or the
    /// gap exceeds the keep-alive window.
    pub fn invocation_probability_at(&self, f: FuncId, t: Minute) -> f64 {
        match self.arrivals[f].last_arrival() {
            Some(last) if t > last => self.probabilities(f, t).at(t - last),
            _ => 0.0,
        }
    }

    /// Cross-function optimization for one minute.
    ///
    /// * `mem_history` — per-minute keep-alive memory series *before* this
    ///   minute (oldest first);
    /// * `first_minute_of_period` — true when activity just resumed (the
    ///   previous minute had no alive containers), selecting Algorithm 1's
    ///   `t == 1` branch;
    /// * `current_kam_mb` — keep-alive memory at this minute;
    /// * `alive` — the alive containers; mutated in place when a peak is
    ///   flattened.
    ///
    /// Returns `None` when the minute is not a peak, otherwise the actions
    /// the platform must apply.
    pub fn check_and_flatten(
        &mut self,
        mem_history: &[f64],
        first_minute_of_period: bool,
        current_kam_mb: f64,
        alive: &mut Vec<AliveModel>,
    ) -> Option<FlattenOutcome> {
        let prior = self.detector.prior_kam(mem_history, first_minute_of_period);
        if !self.detector.is_peak(current_kam_mb, prior) {
            return None;
        }
        let target = self.detector.flatten_target(prior);
        Some(flatten_peak_scratch(
            &mut self.scratch,
            alive,
            &self.families,
            &mut self.priority,
            current_kam_mb,
            target,
        ))
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests compare exact constructed values
mod tests {
    use super::*;
    use pulse_models::zoo;

    fn engine() -> PulseEngine {
        PulseEngine::new(
            vec![zoo::gpt(), zoo::bert(), zoo::yolo()],
            PulseConfig::default(),
        )
    }

    #[test]
    fn construction_sizes_state_per_function() {
        let e = engine();
        assert_eq!(e.n_functions(), 3);
        assert_eq!(e.priority().len(), 3);
        assert_eq!(e.family(1).name, "BERT");
    }

    #[test]
    fn periodic_function_gets_peaked_schedule() {
        let mut e = engine();
        for t in [0u64, 3, 6, 9, 12] {
            e.record_invocation(0, t);
        }
        let s = e.schedule_after_invocation(0, 12);
        assert_eq!(s.variant_at_offset(3), Some(2), "P(3)=1 → highest variant");
        assert_eq!(s.variant_at_offset(5), Some(0));
        assert_eq!(s.window(), 10);
    }

    #[test]
    fn invocation_probability_tracks_gap() {
        let mut e = engine();
        for t in [0u64, 4, 8, 12] {
            e.record_invocation(0, t);
        }
        // Last arrival at 12; at t=16 the gap would be 4, which is the only
        // gap ever observed → probability 1.
        assert!((e.invocation_probability_at(0, 16) - 1.0).abs() < 1e-12);
        assert_eq!(e.invocation_probability_at(0, 15), 0.0);
        // Never-invoked function.
        assert_eq!(e.invocation_probability_at(1, 16), 0.0);
        // Same minute as the last arrival.
        assert_eq!(e.invocation_probability_at(0, 12), 0.0);
    }

    #[test]
    fn no_peak_returns_none() {
        let mut e = engine();
        let history = vec![1000.0; 20];
        let mut alive = Vec::new();
        assert!(e
            .check_and_flatten(&history, false, 1000.0, &mut alive)
            .is_none());
    }

    #[test]
    fn peak_triggers_downgrades_and_priority_updates() {
        let mut e = engine();
        let history = vec![1000.0; 20];
        let mut alive = vec![
            AliveModel {
                func: 0,
                variant: 2,
                invocation_probability: 0.0,
            },
            AliveModel {
                func: 1,
                variant: 1,
                invocation_probability: 0.0,
            },
        ];
        let current = 9000.0; // 9× the steady level → definitely a peak
        let out = e
            .check_and_flatten(&history, false, current, &mut alive)
            .expect("peak expected");
        assert!(out.flattened);
        assert!(out.final_kam_mb <= 1100.0 + 1e-9);
        assert!(!out.actions.is_empty());
        let total_bumps: u64 = (0..3).map(|m| e.priority().count(m)).sum();
        assert_eq!(usize::try_from(total_bumps).unwrap(), out.actions.len());
    }

    #[test]
    fn first_minute_wakeup_is_not_peaked_at_prior_level() {
        let mut e = engine();
        // Steady at 5000 then inactive.
        let mut history = vec![5000.0; 120];
        history.extend(vec![0.0; 60]);
        let mut alive = vec![AliveModel {
            func: 0,
            variant: 2,
            invocation_probability: 0.5,
        }];
        // Wake up at roughly the old level: not a peak.
        assert!(e
            .check_and_flatten(&history, true, 5100.0, &mut alive)
            .is_none());
        assert_eq!(alive.len(), 1);
    }

    #[test]
    fn scheme_t2_is_selectable_via_config() {
        let cfg = PulseConfig {
            scheme: SchemeKind::T2,
            ..Default::default()
        };
        let mut e = PulseEngine::new(vec![zoo::gpt()], cfg);
        for t in [0u64, 5, 10, 15] {
            e.record_invocation(0, t);
        }
        let s = e.schedule_after_invocation(0, 15);
        // Under T2, P(5)=1 → highest; zero-probability minutes → lowest.
        assert_eq!(s.variant_at_offset(5), Some(2));
        assert_eq!(s.variant_at_offset(1), Some(0));
    }

    #[test]
    fn schedule_with_explicit_scheme_matches_config_dispatch() {
        let mut e = engine();
        for t in [0u64, 2, 4] {
            e.record_invocation(2, t);
        }
        let a = e.schedule_after_invocation(2, 4);
        let b = e.schedule_with_scheme(2, 4, &SchemeT1);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "invalid PulseConfig")]
    fn invalid_config_rejected() {
        PulseEngine::new(
            vec![zoo::gpt()],
            PulseConfig {
                keepalive_minutes: 0,
                ..Default::default()
            },
        );
    }

    #[test]
    fn state_export_import_round_trips() {
        let mut e = engine();
        for t in [0u64, 3, 6, 9, 12] {
            e.record_invocation(0, t);
        }
        e.record_invocation(2, 4);
        let history = vec![1000.0; 20];
        let mut alive = vec![AliveModel {
            func: 0,
            variant: 2,
            invocation_probability: 0.0,
        }];
        e.check_and_flatten(&history, false, 9000.0, &mut alive);
        let (arrivals, counts) = e.export_state();

        let mut fresh = engine();
        fresh
            .import_state(arrivals, counts)
            .expect("state import should succeed");
        assert_eq!(
            fresh.schedule_after_invocation(0, 12),
            e.schedule_after_invocation(0, 12)
        );
        assert_eq!(fresh.priority().counts(), e.priority().counts());
        assert_eq!(fresh.export_state(), e.export_state());
    }

    #[test]
    fn state_import_rejects_mismatched_shapes() {
        let mut e = engine();
        assert!(e.import_state(vec![vec![]; 2], vec![0; 3]).is_err());
        assert!(e.import_state(vec![vec![]; 3], vec![0; 2]).is_err());
        // Non-ascending arrival history is rejected with the offending
        // function named.
        let err = e
            .import_state(vec![vec![5, 5], vec![], vec![]], vec![0; 3])
            .unwrap_err();
        assert!(err.contains("function 0"), "{err}");
    }

    #[test]
    fn try_new_reports_typed_errors() {
        use crate::types::ConfigError;
        let err = PulseEngine::try_new(
            vec![zoo::gpt()],
            PulseConfig {
                keepalive_minutes: 0,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, PulseInitError::Config(ConfigError::ZeroKeepalive));
        assert!(err.to_string().contains("invalid PulseConfig"));

        let ok = PulseEngine::try_new(vec![zoo::gpt()], PulseConfig::default());
        assert!(ok.is_ok());
    }
}

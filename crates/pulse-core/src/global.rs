//! Cross-function (global) optimization — the paper's Algorithm 2.
//!
//! When Algorithm 1 flags a minute as a peak, PULSE repeatedly downgrades
//! the kept-alive model with the lowest utility value `Uv = Ai + Pr + Ip`
//! until the keep-alive memory no longer exceeds the flatten target
//! (`prior × (1 + KM_T)`). A downgrade moves a model one rung down its
//! quality ladder; a model already at its lowest variant is evicted entirely
//! ("warm starts with models having lower accuracy, or even cold starts").
//! Every downgrade bumps the model's priority counter, which shields it from
//! future downgrades via the normalized `Pr` component.
//!
//! # Victim selection
//!
//! The production path ([`flatten_peak`]) selects each victim from a
//! min-heap keyed by utility, `O(log n)` per action, instead of re-scoring
//! every alive model per iteration. Because a priority bump can move
//! Equation 1's min/max count bounds — which shifts *every* normalized
//! priority — the heap is epoch-based: a bump that leaves the bounds
//! unchanged re-keys only the touched entry
//! ([`PriorityStructure::normalized_single`]), while a bump that moves them
//! rebuilds the heap wholesale. Both regimes compute bit-identical scores to
//! the linear-scan reference ([`flatten_peak_scan`]), so the chosen victims,
//! actions, and final memory are bit-identical too (tests pin this).

use crate::priority::PriorityStructure;
use crate::probability::Probability;
use crate::types::FuncId;
use crate::utility::utility_value;
use pulse_models::{ModelFamily, VariantId};
use serde::{Deserialize, Serialize};
use std::cmp::{Ordering, Reverse};
use std::collections::{BTreeMap, BinaryHeap};

/// One model currently kept alive at the peak minute, as seen by the global
/// optimizer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AliveModel {
    /// Which function's container this is (indexes the priority structure
    /// and the family assignment).
    pub func: FuncId,
    /// The variant currently kept alive.
    pub variant: VariantId,
    /// `Ip`: the probability that this function is invoked at this minute,
    /// from the individual optimization.
    pub invocation_probability: f64,
}

/// One step taken by the downgrade loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DowngradeAction {
    /// Replace the kept-alive variant `from` with the next-lower `to`.
    Downgrade {
        /// Affected function.
        func: FuncId,
        /// Variant before the downgrade.
        from: VariantId,
        /// Variant after the downgrade (`from - 1`).
        to: VariantId,
    },
    /// The model was already at its lowest variant: evict the container
    /// (the next invocation will cold-start).
    Evict {
        /// Affected function.
        func: FuncId,
        /// Variant that was evicted (always 0).
        from: VariantId,
    },
}

impl DowngradeAction {
    /// The function this action applies to.
    pub fn func(&self) -> FuncId {
        match *self {
            DowngradeAction::Downgrade { func, .. } | DowngradeAction::Evict { func, .. } => func,
        }
    }
}

/// Result of one flattening pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlattenOutcome {
    /// Actions taken, in order.
    pub actions: Vec<DowngradeAction>,
    /// Keep-alive memory after the pass, MB.
    pub final_kam_mb: f64,
    /// Whether the memory reached the target (false only when every container
    /// was evicted and memory still exceeds the target — impossible when the
    /// target is non-negative, kept for defensive completeness).
    pub flattened: bool,
}

/// Algorithm 2: flatten a peak by utility-ordered downgrades.
///
/// * `alive` — the kept-alive models at this minute; mutated in place
///   (variants lowered, evicted entries removed).
/// * `families` — family assignment, indexed by `FuncId`.
/// * `priority` — the downgrade-count structure, bumped per action.
/// * `current_kam_mb` — keep-alive memory at this minute **including** the
///   models in `alive` (the caller computes it; this function only subtracts
///   freed memory from it).
/// * `target_kam_mb` — the flatten target from
///   [`crate::peak::PeakDetector::flatten_target`].
pub fn flatten_peak(
    alive: &mut Vec<AliveModel>,
    families: &[ModelFamily],
    priority: &mut PriorityStructure,
    current_kam_mb: f64,
    target_kam_mb: f64,
) -> FlattenOutcome {
    let mut scratch = FlattenScratch::default();
    flatten_peak_scratch(
        &mut scratch,
        alive,
        families,
        priority,
        current_kam_mb,
        target_kam_mb,
    )
}

/// The paper's `Uv = Ai + Pr + Ip` victim score. Shared by the heap loop
/// and the scan reference so both compute bit-identical values.
fn utility_score(m: &AliveModel, fam: &ModelFamily, pr: f64) -> f64 {
    utility_value(
        fam.accuracy_improvement(m.variant),
        // Normalized priorities are in [0, 1] by construction.
        Probability::from_invariant(pr),
        // Ip is a caller-filled field; saturate out-of-range input.
        Probability::saturating(m.invocation_probability),
    )
}

/// Reference implementation of [`flatten_peak`]: the original
/// re-score-every-alive-model linear scan, `O(n)` per action. Kept public so
/// tests and benches can pin the heap-based production path against it
/// bit-for-bit.
pub fn flatten_peak_scan(
    alive: &mut Vec<AliveModel>,
    families: &[ModelFamily],
    priority: &mut PriorityStructure,
    current_kam_mb: f64,
    target_kam_mb: f64,
) -> FlattenOutcome {
    flatten_peak_with(
        alive,
        families,
        priority,
        current_kam_mb,
        target_kam_mb,
        utility_score,
    )
}

/// One heap entry: the utility score of the model at position `pos` of the
/// alive set, stamped for lazy invalidation. Ordered by `(score, pos)` under
/// `total_cmp` so the min entry is exactly the scan's "first minimum".
#[derive(Debug, Clone, Copy)]
struct VictimEntry {
    score: f64,
    pos: usize,
    stamp: u64,
}

impl Ord for VictimEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.score
            .total_cmp(&other.score)
            .then(self.pos.cmp(&other.pos))
    }
}
impl PartialOrd for VictimEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl PartialEq for VictimEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for VictimEntry {}

/// Reusable state of the heap-based downgrade loop
/// ([`flatten_peak_scratch`]): the victim heap, the maintained normalized
/// priorities, per-position stamps, and the count histogram tracking
/// Equation 1's bounds. Engines own one and reuse it across peaks so the
/// hot path allocates nothing in steady state.
#[derive(Debug, Clone, Default)]
pub struct FlattenScratch {
    heap: BinaryHeap<Reverse<VictimEntry>>,
    pr: Vec<f64>,
    stamps: Vec<u64>,
    seen: Vec<bool>,
    hist: BTreeMap<u64, usize>,
}

/// `(min, max)` keys of the count histogram (callers never consult it
/// empty; zeros are a defensive fallback).
fn hist_bounds(hist: &BTreeMap<u64, usize>) -> (u64, u64) {
    let lo = hist.keys().next().copied().unwrap_or(0);
    let hi = hist.keys().next_back().copied().unwrap_or(0);
    (lo, hi)
}

/// Whether every alive entry names a distinct function tracked by the
/// priority structure — the precondition for single-entry re-keys.
fn funcs_unique(seen: &mut Vec<bool>, alive: &[AliveModel], n_models: usize) -> bool {
    seen.clear();
    seen.resize(n_models, false);
    for m in alive {
        let Some(mark) = seen.get_mut(m.func) else {
            return false;
        };
        if std::mem::replace(mark, true) {
            return false;
        }
    }
    true
}

/// Give position `pos` a fresh stamp (invalidating any queued entry for it)
/// and queue its current score.
fn requeue(
    scratch: &mut FlattenScratch,
    alive: &[AliveModel],
    families: &[ModelFamily],
    pos: usize,
    tick: &mut u64,
) {
    *tick += 1;
    scratch.stamps[pos] = *tick;
    let m = &alive[pos];
    scratch.heap.push(Reverse(VictimEntry {
        score: utility_score(m, &families[m.func], scratch.pr[m.func]),
        pos,
        stamp: *tick,
    }));
}

/// Rebuild the heap and stamps wholesale from the current alive set and
/// normalized priorities (a new epoch).
fn rebuild_heap(
    scratch: &mut FlattenScratch,
    alive: &[AliveModel],
    families: &[ModelFamily],
    tick: &mut u64,
) {
    *tick += 1;
    scratch.heap.clear();
    scratch.stamps.clear();
    scratch.stamps.resize(alive.len(), *tick);
    for (pos, m) in alive.iter().enumerate() {
        scratch.heap.push(Reverse(VictimEntry {
            score: utility_score(m, &families[m.func], scratch.pr[m.func]),
            pos,
            stamp: *tick,
        }));
    }
}

/// Pop entries until one describes a live position with a current stamp.
fn pop_victim(
    scratch: &mut FlattenScratch,
    alive: &[AliveModel],
) -> Option<(usize, FuncId, VariantId)> {
    while let Some(Reverse(e)) = scratch.heap.pop() {
        if e.pos < alive.len() && e.stamp == scratch.stamps[e.pos] {
            let m = &alive[e.pos];
            return Some((e.pos, m.func, m.variant));
        }
    }
    None
}

/// [`flatten_peak`] with a caller-owned [`FlattenScratch`], so repeated
/// flattening passes reuse the heap and buffers. This is the production
/// `O(log n)`-per-action path; its victims, actions, and bookkeeping are
/// bit-identical to [`flatten_peak_scan`]. Alive sets with duplicate or
/// untracked function ids (never produced by the engines) fall back to the
/// scan, whose semantics under those inputs are the contract.
pub fn flatten_peak_scratch(
    scratch: &mut FlattenScratch,
    alive: &mut Vec<AliveModel>,
    families: &[ModelFamily],
    priority: &mut PriorityStructure,
    current_kam_mb: f64,
    target_kam_mb: f64,
) -> FlattenOutcome {
    if !funcs_unique(&mut scratch.seen, alive, priority.len()) {
        return flatten_peak_scan(alive, families, priority, current_kam_mb, target_kam_mb);
    }
    let mut kam = current_kam_mb;
    let mut actions = Vec::new();
    let mut built = false;
    let mut stale_bounds = false;
    let mut tick: u64 = 0;
    let mut bounds = (0u64, 0u64);

    while kam > target_kam_mb && !alive.is_empty() {
        if !built {
            built = true;
            scratch.hist.clear();
            for &c in priority.counts() {
                *scratch.hist.entry(c).or_insert(0) += 1;
            }
            bounds = hist_bounds(&scratch.hist);
            scratch.pr = priority.normalized();
            rebuild_heap(scratch, alive, families, &mut tick);
        } else if stale_bounds {
            stale_bounds = false;
            scratch.pr = priority.normalized();
            rebuild_heap(scratch, alive, families, &mut tick);
        }

        let Some((idx, func, from)) = pop_victim(scratch, alive) else {
            break; // unreachable: every live position has a queued entry
        };
        let fam = &families[func];
        let evicted = if from > 0 {
            let freed = fam.variant(from).memory_mb - fam.variant(from - 1).memory_mb;
            // Algorithm 2 invariant: ladders are ordered by memory, so a
            // one-rung downgrade never *adds* memory.
            debug_assert!(freed >= 0.0, "downgrade must not grow memory: {freed}");
            alive[idx].variant = from - 1;
            kam -= freed;
            actions.push(DowngradeAction::Downgrade {
                func,
                from,
                to: from - 1,
            });
            false
        } else {
            kam -= fam.variant(0).memory_mb;
            alive.swap_remove(idx);
            scratch.stamps.swap_remove(idx);
            actions.push(DowngradeAction::Evict { func, from });
            true
        };
        // "Update Priority Structure with +1 for m".
        priority.bump(func);

        // Maintain the count histogram; if the bump moved Equation 1's
        // bounds, every normalized priority may have shifted — flag a
        // wholesale rebuild. Otherwise only this function's priority (and
        // the touched position's score) changed: O(log n) re-key.
        let new_count = priority.count(func);
        let old_count = new_count - 1;
        if let Some(n) = scratch.hist.get_mut(&old_count) {
            *n -= 1;
            if *n == 0 {
                scratch.hist.remove(&old_count);
            }
        }
        *scratch.hist.entry(new_count).or_insert(0) += 1;
        let new_bounds = hist_bounds(&scratch.hist);
        if new_bounds == bounds {
            scratch.pr[func] = priority.normalized_single(func, bounds.0, bounds.1);
            // Position `idx` now holds either the downgraded victim (new
            // variant, new priority) or the tail element `swap_remove` moved
            // in (new position): either way it needs a fresh stamp + entry.
            if !evicted || idx < alive.len() {
                requeue(scratch, alive, families, idx, &mut tick);
            }
        } else {
            bounds = new_bounds;
            stale_bounds = true;
        }
    }

    // Algorithm 2 postcondition: the loop only exits at the target or with
    // every container evicted; bookkeeping must agree.
    debug_assert!(
        kam <= target_kam_mb || alive.is_empty(),
        "flatten loop exited above target with models still alive"
    );
    debug_assert!(
        kam <= current_kam_mb,
        "flattening must not increase keep-alive memory"
    );
    FlattenOutcome {
        actions,
        final_kam_mb: kam,
        flattened: kam <= target_kam_mb,
    }
}

/// [`flatten_peak`] with a caller-supplied victim-scoring function — the
/// model with the **lowest** score is downgraded first. `score` receives
/// the alive entry, its family, and its normalized priority. Used by the
/// ablation experiments to isolate the contribution of each `Uv` component
/// (Ai-only, Ai+Ip, full Uv, …); production callers should use
/// [`flatten_peak`].
pub fn flatten_peak_with(
    alive: &mut Vec<AliveModel>,
    families: &[ModelFamily],
    priority: &mut PriorityStructure,
    current_kam_mb: f64,
    target_kam_mb: f64,
    score: impl Fn(&AliveModel, &ModelFamily, f64) -> f64,
) -> FlattenOutcome {
    let mut kam = current_kam_mb;
    let mut actions = Vec::new();

    while kam > target_kam_mb && !alive.is_empty() {
        // "Normalise the priority structure" — once per loop iteration.
        let pr = priority.normalized();

        // "For every model that is kept-alive in t: compute Ai and Pr;
        //  Uv ← Ai + Pr + Ip" — then downgrade the minimum. `total_cmp`
        // gives a total order even for a pathological NaN score from a
        // caller-supplied ablation closure (NaN sorts above every number,
        // so it is never chosen as the minimum victim over a real score).
        let scored = alive
            .iter()
            .enumerate()
            .map(|(i, m)| (i, score(m, &families[m.func], pr[m.func])))
            .min_by(|a, b| a.1.total_cmp(&b.1));
        let Some((idx, _)) = scored else {
            break; // unreachable: the loop condition keeps `alive` non-empty
        };

        let func = alive[idx].func;
        let from = alive[idx].variant;
        let fam = &families[func];
        if from > 0 {
            let freed = fam.variant(from).memory_mb - fam.variant(from - 1).memory_mb;
            // Algorithm 2 invariant: ladders are ordered by memory, so a
            // one-rung downgrade never *adds* memory.
            debug_assert!(freed >= 0.0, "downgrade must not grow memory: {freed}");
            alive[idx].variant = from - 1;
            kam -= freed;
            actions.push(DowngradeAction::Downgrade {
                func,
                from,
                to: from - 1,
            });
        } else {
            kam -= fam.variant(0).memory_mb;
            alive.swap_remove(idx);
            actions.push(DowngradeAction::Evict { func, from });
        }
        // "Update Priority Structure with +1 for m".
        priority.bump(func);
    }

    // Algorithm 2 postcondition: the loop only exits at the target or with
    // every container evicted; bookkeeping must agree.
    debug_assert!(
        kam <= target_kam_mb || alive.is_empty(),
        "flatten loop exited above target with models still alive"
    );
    debug_assert!(
        kam <= current_kam_mb,
        "flattening must not increase keep-alive memory"
    );
    FlattenOutcome {
        actions,
        final_kam_mb: kam,
        flattened: kam <= target_kam_mb,
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests compare exact constructed values
#[allow(clippy::cast_possible_truncation, clippy::needless_range_loop)] // test-local sizes
mod tests {
    use super::*;
    use pulse_models::zoo;

    fn families() -> Vec<ModelFamily> {
        vec![zoo::gpt(), zoo::yolo(), zoo::bert()]
    }

    fn alive_all_highest(fams: &[ModelFamily]) -> Vec<AliveModel> {
        fams.iter()
            .enumerate()
            .map(|(func, f)| AliveModel {
                func,
                variant: f.highest_id(),
                invocation_probability: 0.0,
            })
            .collect()
    }

    fn total_mem(alive: &[AliveModel], fams: &[ModelFamily]) -> f64 {
        alive
            .iter()
            .map(|m| fams[m.func].variant(m.variant).memory_mb)
            .sum()
    }

    #[test]
    fn no_peak_means_no_action() {
        let fams = families();
        let mut alive = alive_all_highest(&fams);
        let mut pr = PriorityStructure::new(fams.len());
        let kam = total_mem(&alive, &fams);
        let out = flatten_peak(&mut alive, &fams, &mut pr, kam, kam + 1.0);
        assert!(out.actions.is_empty());
        assert!(out.flattened);
        assert_eq!(out.final_kam_mb, kam);
    }

    #[test]
    fn flattening_reaches_target() {
        let fams = families();
        let mut alive = alive_all_highest(&fams);
        let mut pr = PriorityStructure::new(fams.len());
        let kam = total_mem(&alive, &fams);
        let target = kam * 0.6;
        let out = flatten_peak(&mut alive, &fams, &mut pr, kam, target);
        assert!(out.flattened);
        assert!(out.final_kam_mb <= target);
        assert!(!out.actions.is_empty());
        // Bookkeeping agrees with recomputing memory from scratch.
        assert!((out.final_kam_mb - total_mem(&alive, &fams)).abs() < 1e-9);
    }

    #[test]
    fn lowest_utility_goes_first() {
        let fams = families();
        // YOLO's Ai at the top rung (65.7−63.5 = 0.022) vs GPT's (0.011) vs
        // BERT's (0.025); all Ip equal → GPT-Large is downgraded first.
        let mut alive = alive_all_highest(&fams);
        let mut pr = PriorityStructure::new(fams.len());
        let kam = total_mem(&alive, &fams);
        let out = flatten_peak(&mut alive, &fams, &mut pr, kam, kam - 1.0);
        assert_eq!(
            out.actions[0].func(),
            0,
            "GPT (func 0) first: {:?}",
            out.actions
        );
    }

    #[test]
    fn high_invocation_probability_shields_a_model() {
        let fams = families();
        let mut alive = alive_all_highest(&fams);
        alive[0].invocation_probability = 1.0; // GPT about to be invoked
        let mut pr = PriorityStructure::new(fams.len());
        let kam = total_mem(&alive, &fams);
        let out = flatten_peak(&mut alive, &fams, &mut pr, kam, kam - 1.0);
        assert_ne!(out.actions[0].func(), 0);
    }

    #[test]
    fn priority_prevents_repeated_victimization() {
        let fams = families();
        let mut pr = PriorityStructure::new(fams.len());
        // First peak: GPT (func 0) is the natural victim (smallest Ai).
        let mut alive = alive_all_highest(&fams);
        let kam = total_mem(&alive, &fams);
        flatten_peak(&mut alive, &fams, &mut pr, kam, kam - 1.0);
        assert!(pr.count(0) >= 1);

        // Second peak from a fresh all-highest state: with func 0's priority
        // now at 1 (normalized max), someone else is downgraded first.
        let mut alive = alive_all_highest(&fams);
        let kam = total_mem(&alive, &fams);
        let out = flatten_peak(&mut alive, &fams, &mut pr, kam, kam - 1.0);
        assert_ne!(out.actions[0].func(), 0, "{:?}", out.actions);
    }

    #[test]
    fn exhausting_ladder_evicts() {
        let fams = vec![zoo::bert()];
        let mut alive = vec![AliveModel {
            func: 0,
            variant: 1,
            invocation_probability: 0.0,
        }];
        let mut pr = PriorityStructure::new(1);
        let kam = total_mem(&alive, &fams);
        // Target 0: must downgrade 1→0 and then evict.
        let out = flatten_peak(&mut alive, &fams, &mut pr, kam, 0.0);
        assert!(out.flattened);
        assert!(alive.is_empty());
        assert_eq!(out.actions.len(), 2);
        assert!(matches!(
            out.actions[1],
            DowngradeAction::Evict { func: 0, from: 0 }
        ));
        assert!(out.final_kam_mb.abs() < 1e-9);
        assert_eq!(pr.count(0), 2);
    }

    #[test]
    fn downgrades_never_increase_memory() {
        let fams = families();
        let mut alive = alive_all_highest(&fams);
        let mut pr = PriorityStructure::new(fams.len());
        let mut kam = total_mem(&alive, &fams);
        let target = kam * 0.3;
        // Step the loop manually by calling with progressively tighter targets
        // and check monotonicity at every stage.
        for frac in [0.9, 0.7, 0.5, 0.3] {
            let t = (total_mem(&alive_all_highest(&fams), &fams)) * frac;
            let out = flatten_peak(&mut alive, &fams, &mut pr, kam, t.max(target));
            assert!(out.final_kam_mb <= kam + 1e-9);
            kam = out.final_kam_mb;
        }
    }

    #[test]
    fn empty_alive_set_terminates_immediately() {
        let fams = families();
        let mut alive: Vec<AliveModel> = Vec::new();
        let mut pr = PriorityStructure::new(fams.len());
        let out = flatten_peak(&mut alive, &fams, &mut pr, 0.0, 100.0);
        assert!(out.actions.is_empty());
        assert!(out.flattened);
    }

    #[test]
    fn unsatisfiable_target_evicts_everything() {
        let fams = families();
        let mut alive = alive_all_highest(&fams);
        let mut pr = PriorityStructure::new(fams.len());
        let kam = total_mem(&alive, &fams);
        let out = flatten_peak(&mut alive, &fams, &mut pr, kam, -1.0);
        assert!(alive.is_empty());
        assert!(!out.flattened); // memory is 0 but target is negative
        assert!(out.final_kam_mb.abs() < 1e-9);
    }

    /// Deterministic LCG so heap-vs-scan equivalence can cover many random
    /// configurations without a rand dependency in pulse-core.
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            self.0 >> 33
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
        fn unit(&mut self) -> f64 {
            self.below(1_000_000) as f64 / 1_000_000.0
        }
    }

    fn assert_outcomes_identical(a: &FlattenOutcome, b: &FlattenOutcome) {
        assert_eq!(a.actions, b.actions);
        assert_eq!(a.final_kam_mb.to_bits(), b.final_kam_mb.to_bits());
        assert_eq!(a.flattened, b.flattened);
    }

    /// The heap-based production path must be bit-identical to the linear
    /// scan — victims, actions, final memory, and priority bumps — across
    /// random fleets, alive subsets, Ip values, pre-seeded priorities, and
    /// targets (including unsatisfiable ones that drain the alive set).
    #[test]
    fn heap_path_matches_scan_reference_bitwise() {
        let zoo_all = [
            zoo::gpt(),
            zoo::yolo(),
            zoo::bert(),
            zoo::densenet(),
            zoo::resnet(),
        ];
        let mut rng = Lcg(0xf1a7 ^ 0x9e37_79b9_7f4a_7c15);
        let mut scratch = FlattenScratch::default();
        for case in 0..300u64 {
            let n = 1 + rng.below(12) as usize;
            let fams: Vec<ModelFamily> =
                (0..n).map(|f| zoo_all[f % zoo_all.len()].clone()).collect();
            let mut pr_scan = PriorityStructure::new(n);
            for m in 0..n {
                for _ in 0..rng.below(4) {
                    pr_scan.bump(m);
                }
            }
            let mut alive_scan: Vec<AliveModel> = Vec::new();
            for func in 0..n {
                if rng.below(4) == 0 {
                    continue;
                }
                let variant = rng.below(fams[func].n_variants() as u64) as usize;
                alive_scan.push(AliveModel {
                    func,
                    variant,
                    invocation_probability: rng.unit(),
                });
            }
            let kam = total_mem(&alive_scan, &fams);
            // Mostly partial targets, sometimes unsatisfiable ones.
            let target = match rng.below(5) {
                0 => -1.0,
                f => kam * (f as f64 / 5.0),
            };
            let mut pr_heap = pr_scan.clone();
            let mut alive_heap = alive_scan.clone();
            let scan = flatten_peak_scan(&mut alive_scan, &fams, &mut pr_scan, kam, target);
            let heap = flatten_peak_scratch(
                &mut scratch,
                &mut alive_heap,
                &fams,
                &mut pr_heap,
                kam,
                target,
            );
            assert_outcomes_identical(&scan, &heap);
            assert_eq!(alive_scan, alive_heap, "case {case}");
            assert_eq!(pr_scan, pr_heap, "case {case}");
        }
    }

    /// Repeated peaks against an evolving priority structure reuse one
    /// scratch — the engine's usage pattern — and must stay pinned to the
    /// scan across the whole sequence, not just for a cold scratch.
    #[test]
    fn scratch_reuse_across_peaks_stays_pinned_to_scan() {
        let fams = families();
        let mut pr_scan = PriorityStructure::new(fams.len());
        let mut pr_heap = PriorityStructure::new(fams.len());
        let mut scratch = FlattenScratch::default();
        let mut rng = Lcg(42);
        for peak in 0..50u64 {
            let mut alive_scan: Vec<AliveModel> = alive_all_highest(&fams);
            for m in &mut alive_scan {
                m.invocation_probability = rng.unit();
            }
            let mut alive_heap = alive_scan.clone();
            let kam = total_mem(&alive_scan, &fams);
            let target = kam * (rng.below(10) as f64 / 10.0);
            let scan = flatten_peak_scan(&mut alive_scan, &fams, &mut pr_scan, kam, target);
            let heap = flatten_peak_scratch(
                &mut scratch,
                &mut alive_heap,
                &fams,
                &mut pr_heap,
                kam,
                target,
            );
            assert_outcomes_identical(&scan, &heap);
            assert_eq!(pr_scan, pr_heap, "peak {peak}");
        }
    }

    /// Duplicate function ids are outside the engines' contract; the heap
    /// path must detect them and produce the scan's semantics anyway.
    #[test]
    fn duplicate_funcs_fall_back_to_scan_semantics() {
        let fams = families();
        let dup = |ip: f64| {
            vec![
                AliveModel {
                    func: 1,
                    variant: 2,
                    invocation_probability: ip,
                },
                AliveModel {
                    func: 1,
                    variant: 1,
                    invocation_probability: 0.0,
                },
                AliveModel {
                    func: 0,
                    variant: 2,
                    invocation_probability: 0.0,
                },
            ]
        };
        let mut alive_scan = dup(0.4);
        let mut alive_heap = dup(0.4);
        let mut pr_scan = PriorityStructure::new(fams.len());
        let mut pr_heap = PriorityStructure::new(fams.len());
        let kam = total_mem(&alive_scan, &fams);
        let scan = flatten_peak_scan(&mut alive_scan, &fams, &mut pr_scan, kam, kam * 0.3);
        let heap = flatten_peak(&mut alive_heap, &fams, &mut pr_heap, kam, kam * 0.3);
        assert_outcomes_identical(&scan, &heap);
        assert_eq!(alive_scan, alive_heap);
        assert_eq!(pr_scan, pr_heap);
    }

    #[test]
    fn actions_are_single_rung_steps() {
        let fams = families();
        let mut alive = alive_all_highest(&fams);
        let mut pr = PriorityStructure::new(fams.len());
        let kam = total_mem(&alive, &fams);
        let out = flatten_peak(&mut alive, &fams, &mut pr, kam, kam * 0.4);
        for a in &out.actions {
            if let DowngradeAction::Downgrade { from, to, .. } = a {
                assert_eq!(*to + 1, *from);
            }
        }
    }
}

//! Cross-function (global) optimization — the paper's Algorithm 2.
//!
//! When Algorithm 1 flags a minute as a peak, PULSE repeatedly downgrades
//! the kept-alive model with the lowest utility value `Uv = Ai + Pr + Ip`
//! until the keep-alive memory no longer exceeds the flatten target
//! (`prior × (1 + KM_T)`). A downgrade moves a model one rung down its
//! quality ladder; a model already at its lowest variant is evicted entirely
//! ("warm starts with models having lower accuracy, or even cold starts").
//! Every downgrade bumps the model's priority counter, which shields it from
//! future downgrades via the normalized `Pr` component.

use crate::priority::PriorityStructure;
use crate::probability::Probability;
use crate::types::FuncId;
use crate::utility::utility_value;
use pulse_models::{ModelFamily, VariantId};
use serde::{Deserialize, Serialize};

/// One model currently kept alive at the peak minute, as seen by the global
/// optimizer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AliveModel {
    /// Which function's container this is (indexes the priority structure
    /// and the family assignment).
    pub func: FuncId,
    /// The variant currently kept alive.
    pub variant: VariantId,
    /// `Ip`: the probability that this function is invoked at this minute,
    /// from the individual optimization.
    pub invocation_probability: f64,
}

/// One step taken by the downgrade loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DowngradeAction {
    /// Replace the kept-alive variant `from` with the next-lower `to`.
    Downgrade {
        /// Affected function.
        func: FuncId,
        /// Variant before the downgrade.
        from: VariantId,
        /// Variant after the downgrade (`from - 1`).
        to: VariantId,
    },
    /// The model was already at its lowest variant: evict the container
    /// (the next invocation will cold-start).
    Evict {
        /// Affected function.
        func: FuncId,
        /// Variant that was evicted (always 0).
        from: VariantId,
    },
}

impl DowngradeAction {
    /// The function this action applies to.
    pub fn func(&self) -> FuncId {
        match *self {
            DowngradeAction::Downgrade { func, .. } | DowngradeAction::Evict { func, .. } => func,
        }
    }
}

/// Result of one flattening pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlattenOutcome {
    /// Actions taken, in order.
    pub actions: Vec<DowngradeAction>,
    /// Keep-alive memory after the pass, MB.
    pub final_kam_mb: f64,
    /// Whether the memory reached the target (false only when every container
    /// was evicted and memory still exceeds the target — impossible when the
    /// target is non-negative, kept for defensive completeness).
    pub flattened: bool,
}

/// Algorithm 2: flatten a peak by utility-ordered downgrades.
///
/// * `alive` — the kept-alive models at this minute; mutated in place
///   (variants lowered, evicted entries removed).
/// * `families` — family assignment, indexed by `FuncId`.
/// * `priority` — the downgrade-count structure, bumped per action.
/// * `current_kam_mb` — keep-alive memory at this minute **including** the
///   models in `alive` (the caller computes it; this function only subtracts
///   freed memory from it).
/// * `target_kam_mb` — the flatten target from
///   [`crate::peak::PeakDetector::flatten_target`].
pub fn flatten_peak(
    alive: &mut Vec<AliveModel>,
    families: &[ModelFamily],
    priority: &mut PriorityStructure,
    current_kam_mb: f64,
    target_kam_mb: f64,
) -> FlattenOutcome {
    flatten_peak_with(
        alive,
        families,
        priority,
        current_kam_mb,
        target_kam_mb,
        |m, fam, pr| {
            utility_value(
                fam.accuracy_improvement(m.variant),
                // Normalized priorities are in [0, 1] by construction.
                Probability::from_invariant(pr),
                // Ip is a caller-filled field; saturate out-of-range input.
                Probability::saturating(m.invocation_probability),
            )
        },
    )
}

/// [`flatten_peak`] with a caller-supplied victim-scoring function — the
/// model with the **lowest** score is downgraded first. `score` receives
/// the alive entry, its family, and its normalized priority. Used by the
/// ablation experiments to isolate the contribution of each `Uv` component
/// (Ai-only, Ai+Ip, full Uv, …); production callers should use
/// [`flatten_peak`].
pub fn flatten_peak_with(
    alive: &mut Vec<AliveModel>,
    families: &[ModelFamily],
    priority: &mut PriorityStructure,
    current_kam_mb: f64,
    target_kam_mb: f64,
    score: impl Fn(&AliveModel, &ModelFamily, f64) -> f64,
) -> FlattenOutcome {
    let mut kam = current_kam_mb;
    let mut actions = Vec::new();

    while kam > target_kam_mb && !alive.is_empty() {
        // "Normalise the priority structure" — once per loop iteration.
        let pr = priority.normalized();

        // "For every model that is kept-alive in t: compute Ai and Pr;
        //  Uv ← Ai + Pr + Ip" — then downgrade the minimum. `total_cmp`
        // gives a total order even for a pathological NaN score from a
        // caller-supplied ablation closure (NaN sorts above every number,
        // so it is never chosen as the minimum victim over a real score).
        let scored = alive
            .iter()
            .enumerate()
            .map(|(i, m)| (i, score(m, &families[m.func], pr[m.func])))
            .min_by(|a, b| a.1.total_cmp(&b.1));
        let Some((idx, _)) = scored else {
            break; // unreachable: the loop condition keeps `alive` non-empty
        };

        let func = alive[idx].func;
        let from = alive[idx].variant;
        let fam = &families[func];
        if from > 0 {
            let freed = fam.variant(from).memory_mb - fam.variant(from - 1).memory_mb;
            // Algorithm 2 invariant: ladders are ordered by memory, so a
            // one-rung downgrade never *adds* memory.
            debug_assert!(freed >= 0.0, "downgrade must not grow memory: {freed}");
            alive[idx].variant = from - 1;
            kam -= freed;
            actions.push(DowngradeAction::Downgrade {
                func,
                from,
                to: from - 1,
            });
        } else {
            kam -= fam.variant(0).memory_mb;
            alive.swap_remove(idx);
            actions.push(DowngradeAction::Evict { func, from });
        }
        // "Update Priority Structure with +1 for m".
        priority.bump(func);
    }

    // Algorithm 2 postcondition: the loop only exits at the target or with
    // every container evicted; bookkeeping must agree.
    debug_assert!(
        kam <= target_kam_mb || alive.is_empty(),
        "flatten loop exited above target with models still alive"
    );
    debug_assert!(
        kam <= current_kam_mb,
        "flattening must not increase keep-alive memory"
    );
    FlattenOutcome {
        actions,
        final_kam_mb: kam,
        flattened: kam <= target_kam_mb,
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests compare exact constructed values
mod tests {
    use super::*;
    use pulse_models::zoo;

    fn families() -> Vec<ModelFamily> {
        vec![zoo::gpt(), zoo::yolo(), zoo::bert()]
    }

    fn alive_all_highest(fams: &[ModelFamily]) -> Vec<AliveModel> {
        fams.iter()
            .enumerate()
            .map(|(func, f)| AliveModel {
                func,
                variant: f.highest_id(),
                invocation_probability: 0.0,
            })
            .collect()
    }

    fn total_mem(alive: &[AliveModel], fams: &[ModelFamily]) -> f64 {
        alive
            .iter()
            .map(|m| fams[m.func].variant(m.variant).memory_mb)
            .sum()
    }

    #[test]
    fn no_peak_means_no_action() {
        let fams = families();
        let mut alive = alive_all_highest(&fams);
        let mut pr = PriorityStructure::new(fams.len());
        let kam = total_mem(&alive, &fams);
        let out = flatten_peak(&mut alive, &fams, &mut pr, kam, kam + 1.0);
        assert!(out.actions.is_empty());
        assert!(out.flattened);
        assert_eq!(out.final_kam_mb, kam);
    }

    #[test]
    fn flattening_reaches_target() {
        let fams = families();
        let mut alive = alive_all_highest(&fams);
        let mut pr = PriorityStructure::new(fams.len());
        let kam = total_mem(&alive, &fams);
        let target = kam * 0.6;
        let out = flatten_peak(&mut alive, &fams, &mut pr, kam, target);
        assert!(out.flattened);
        assert!(out.final_kam_mb <= target);
        assert!(!out.actions.is_empty());
        // Bookkeeping agrees with recomputing memory from scratch.
        assert!((out.final_kam_mb - total_mem(&alive, &fams)).abs() < 1e-9);
    }

    #[test]
    fn lowest_utility_goes_first() {
        let fams = families();
        // YOLO's Ai at the top rung (65.7−63.5 = 0.022) vs GPT's (0.011) vs
        // BERT's (0.025); all Ip equal → GPT-Large is downgraded first.
        let mut alive = alive_all_highest(&fams);
        let mut pr = PriorityStructure::new(fams.len());
        let kam = total_mem(&alive, &fams);
        let out = flatten_peak(&mut alive, &fams, &mut pr, kam, kam - 1.0);
        assert_eq!(
            out.actions[0].func(),
            0,
            "GPT (func 0) first: {:?}",
            out.actions
        );
    }

    #[test]
    fn high_invocation_probability_shields_a_model() {
        let fams = families();
        let mut alive = alive_all_highest(&fams);
        alive[0].invocation_probability = 1.0; // GPT about to be invoked
        let mut pr = PriorityStructure::new(fams.len());
        let kam = total_mem(&alive, &fams);
        let out = flatten_peak(&mut alive, &fams, &mut pr, kam, kam - 1.0);
        assert_ne!(out.actions[0].func(), 0);
    }

    #[test]
    fn priority_prevents_repeated_victimization() {
        let fams = families();
        let mut pr = PriorityStructure::new(fams.len());
        // First peak: GPT (func 0) is the natural victim (smallest Ai).
        let mut alive = alive_all_highest(&fams);
        let kam = total_mem(&alive, &fams);
        flatten_peak(&mut alive, &fams, &mut pr, kam, kam - 1.0);
        assert!(pr.count(0) >= 1);

        // Second peak from a fresh all-highest state: with func 0's priority
        // now at 1 (normalized max), someone else is downgraded first.
        let mut alive = alive_all_highest(&fams);
        let kam = total_mem(&alive, &fams);
        let out = flatten_peak(&mut alive, &fams, &mut pr, kam, kam - 1.0);
        assert_ne!(out.actions[0].func(), 0, "{:?}", out.actions);
    }

    #[test]
    fn exhausting_ladder_evicts() {
        let fams = vec![zoo::bert()];
        let mut alive = vec![AliveModel {
            func: 0,
            variant: 1,
            invocation_probability: 0.0,
        }];
        let mut pr = PriorityStructure::new(1);
        let kam = total_mem(&alive, &fams);
        // Target 0: must downgrade 1→0 and then evict.
        let out = flatten_peak(&mut alive, &fams, &mut pr, kam, 0.0);
        assert!(out.flattened);
        assert!(alive.is_empty());
        assert_eq!(out.actions.len(), 2);
        assert!(matches!(
            out.actions[1],
            DowngradeAction::Evict { func: 0, from: 0 }
        ));
        assert!(out.final_kam_mb.abs() < 1e-9);
        assert_eq!(pr.count(0), 2);
    }

    #[test]
    fn downgrades_never_increase_memory() {
        let fams = families();
        let mut alive = alive_all_highest(&fams);
        let mut pr = PriorityStructure::new(fams.len());
        let mut kam = total_mem(&alive, &fams);
        let target = kam * 0.3;
        // Step the loop manually by calling with progressively tighter targets
        // and check monotonicity at every stage.
        for frac in [0.9, 0.7, 0.5, 0.3] {
            let t = (total_mem(&alive_all_highest(&fams), &fams)) * frac;
            let out = flatten_peak(&mut alive, &fams, &mut pr, kam, t.max(target));
            assert!(out.final_kam_mb <= kam + 1e-9);
            kam = out.final_kam_mb;
        }
    }

    #[test]
    fn empty_alive_set_terminates_immediately() {
        let fams = families();
        let mut alive: Vec<AliveModel> = Vec::new();
        let mut pr = PriorityStructure::new(fams.len());
        let out = flatten_peak(&mut alive, &fams, &mut pr, 0.0, 100.0);
        assert!(out.actions.is_empty());
        assert!(out.flattened);
    }

    #[test]
    fn unsatisfiable_target_evicts_everything() {
        let fams = families();
        let mut alive = alive_all_highest(&fams);
        let mut pr = PriorityStructure::new(fams.len());
        let kam = total_mem(&alive, &fams);
        let out = flatten_peak(&mut alive, &fams, &mut pr, kam, -1.0);
        assert!(alive.is_empty());
        assert!(!out.flattened); // memory is 0 but target is negative
        assert!(out.final_kam_mb.abs() < 1e-9);
    }

    #[test]
    fn actions_are_single_rung_steps() {
        let fams = families();
        let mut alive = alive_all_highest(&fams);
        let mut pr = PriorityStructure::new(fams.len());
        let kam = total_mem(&alive, &fams);
        let out = flatten_peak(&mut alive, &fams, &mut pr, kam, kam * 0.4);
        for a in &out.actions {
            if let DowngradeAction::Downgrade { from, to, .. } = a {
                assert_eq!(*to + 1, *from);
            }
        }
    }
}

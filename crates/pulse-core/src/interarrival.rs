//! Inter-arrival probability model (Section III-A).
//!
//! For each function PULSE keeps the invocation history and estimates, at
//! minute resolution, the probability that the next invocation arrives `k`
//! minutes after the previous one, for `k` within the keep-alive window.
//! Because inter-arrival behaviour drifts over time (Figure 2), the estimate
//! averages two empirical distributions: one over a sliding *local window*
//! of the immediate past, and one over the entire operational history.
//! Following the paper's worked example ("when the inter-arrival time of 2
//! appears 10 times, we compute the probability of 2 as 10 divided by the
//! total number of inter-arrival times"), each distribution divides the count
//! of gap `k` by the total number of gaps — including gaps longer than the
//! window — so the in-window probabilities need not sum to 1.
//!
//! Every estimate is carried as the validated [`Probability`] newtype from
//! the moment it leaves the count ratios, so downstream policy code never
//! sees an unvalidated float.

use crate::convert::{gap_to_index, len_to_u64, u64_to_f64, window_to_len};
use crate::probability::Probability;
use crate::types::Minute;
use serde::{Deserialize, Serialize};

/// Estimated probability of each inter-arrival gap within the keep-alive
/// window. `probs[k]` is the probability of a gap of exactly `k` minutes;
/// index 0 is unused (a same-minute re-invocation is already warm by
/// construction) and always 0.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GapProbabilities {
    probs: Vec<Probability>,
}

impl GapProbabilities {
    /// All-zero distribution over a window of `w` minutes (no history).
    pub fn zeros(w: u32) -> Self {
        Self {
            probs: vec![Probability::ZERO; window_to_len(w) + 1],
        }
    }

    /// Build from validated per-gap probabilities (crate-internal; the
    /// reference and incremental models derive them from count ratios, which
    /// are in `[0, 1]` by construction).
    pub(crate) fn from_probabilities(probs: Vec<Probability>) -> Self {
        Self { probs }
    }

    /// The paper's combination rule shared by the reference and incremental
    /// models: element-wise average of the local and global distributions,
    /// falling back to whichever side is informed when the other is not.
    pub(crate) fn combine(local: &Self, global: &Self, window: u32) -> Self {
        match (local.is_uninformed(), global.is_uninformed()) {
            (true, true) => GapProbabilities::zeros(window),
            (true, false) => global.clone(),
            (false, true) => local.clone(),
            (false, false) => GapProbabilities::from_probabilities(
                local
                    .probs
                    .iter()
                    .zip(global.probs.iter())
                    .map(|(&l, &g)| l.average(g))
                    .collect(),
            ),
        }
    }

    /// Probability of a gap of exactly `k` minutes, as a validated
    /// [`Probability`] (zero when out of window).
    #[inline]
    pub fn prob(&self, k: u64) -> Probability {
        self.probs
            .get(gap_to_index(k))
            .copied()
            .unwrap_or(Probability::ZERO)
    }

    /// Probability of a gap of exactly `k` minutes as a bare `f64`
    /// (convenience over [`Self::prob`] for reporting and tests).
    #[inline]
    pub fn at(&self, k: u64) -> f64 {
        self.prob(k).value()
    }

    /// Window length (max representable gap).
    #[inline]
    pub fn window(&self) -> u64 {
        len_to_u64(self.probs.len().saturating_sub(1))
    }

    /// Total in-window probability mass (≤ 1).
    pub fn mass(&self) -> f64 {
        self.probs.iter().map(|p| p.value()).sum()
    }

    /// True when no history informed this estimate.
    pub fn is_uninformed(&self) -> bool {
        self.probs.iter().all(|p| p.is_zero())
    }
}

/// Per-function invocation history with gap-probability estimation.
///
/// Timestamps must be recorded in non-decreasing order; multiple invocations
/// within the same minute are collapsed (a second invocation in the same
/// minute hits an already-warm container and carries no inter-arrival
/// information at minute resolution).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct InterArrivalModel {
    /// Distinct invocation minutes, ascending.
    arrivals: Vec<Minute>,
}

impl InterArrivalModel {
    /// Empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an invocation at minute `t`.
    ///
    /// # Panics
    /// Panics if `t` precedes the most recent recorded invocation — the
    /// policy is driven by a forward-moving clock.
    pub fn record(&mut self, t: Minute) {
        if let Some(&last) = self.arrivals.last() {
            assert!(t >= last, "invocations must be recorded in time order");
            if t == last {
                return; // same-minute duplicate carries no gap information
            }
        }
        self.arrivals.push(t);
    }

    /// The recorded invocation minutes, strictly ascending. Exposed for
    /// checkpointing: together with [`Self::from_arrivals`] it round-trips
    /// the model's full state.
    pub fn arrivals(&self) -> &[Minute] {
        &self.arrivals
    }

    /// Rebuild a model from a previously captured [`Self::arrivals`] slice.
    ///
    /// # Errors
    /// Returns a description of the violation when the minutes are not
    /// strictly ascending — the invariant [`Self::record`] maintains.
    pub fn from_arrivals(arrivals: Vec<Minute>) -> Result<Self, String> {
        if let Some(w) = arrivals.windows(2).find(|w| w[1] <= w[0]) {
            return Err(format!(
                "arrival minutes must be strictly ascending (got {} after {})",
                w[1], w[0]
            ));
        }
        Ok(Self { arrivals })
    }

    /// Number of distinct invocation minutes recorded.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// True when no invocation has been recorded.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Minute of the most recent invocation, if any.
    pub fn last_arrival(&self) -> Option<Minute> {
        self.arrivals.last().copied()
    }

    /// Empirical gap distribution over arrivals in `[from, to]` (inclusive),
    /// for gaps up to `window` minutes. Denominator is the total number of
    /// gaps in the range, including gaps longer than `window`.
    fn distribution_in(&self, from: Minute, to: Minute, window: u32) -> GapProbabilities {
        let mut counts = vec![0u64; window_to_len(window) + 1];
        let mut total = 0u64;
        let mut prev: Option<Minute> = None;
        for &a in &self.arrivals {
            if a < from {
                continue;
            }
            if a > to {
                break;
            }
            if let Some(p) = prev {
                let gap = a - p;
                total += 1;
                if gap <= u64::from(window) {
                    counts[gap_to_index(gap)] += 1;
                }
            }
            prev = Some(a);
        }
        if total == 0 {
            return GapProbabilities::zeros(window);
        }
        // c <= total by construction, so each ratio is a valid probability.
        GapProbabilities::from_probabilities(
            counts
                .iter()
                .map(|&c| Probability::from_invariant(u64_to_f64(c) / u64_to_f64(total)))
                .collect(),
        )
    }

    /// Empirical gap distribution over the full history.
    pub fn global_distribution(&self, window: u32) -> GapProbabilities {
        match (self.arrivals.first(), self.arrivals.last()) {
            (Some(&a), Some(&b)) => self.distribution_in(a, b, window),
            _ => GapProbabilities::zeros(window),
        }
    }

    /// Empirical gap distribution over arrivals within the trailing
    /// `local_window` minutes ending at `now`.
    pub fn local_distribution(
        &self,
        now: Minute,
        local_window: u32,
        window: u32,
    ) -> GapProbabilities {
        let from = now.saturating_sub(u64::from(local_window));
        self.distribution_in(from, now, window)
    }

    /// The paper's combined estimate at time `now`: the element-wise average
    /// of the local-window distribution and the full-history distribution.
    /// When one of the two is uninformed (no gaps in range), the other is
    /// used alone, so sparse functions still get a usable estimate.
    pub fn probabilities(&self, now: Minute, local_window: u32, window: u32) -> GapProbabilities {
        let local = self.local_distribution(now, local_window, window);
        let global = self.global_distribution(window);
        GapProbabilities::combine(&local, &global, window)
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests compare exact constructed values
mod tests {
    use super::*;

    fn model_with(arrivals: &[Minute]) -> InterArrivalModel {
        let mut m = InterArrivalModel::new();
        for &t in arrivals {
            m.record(t);
        }
        m
    }

    #[test]
    fn empty_model_is_uninformed() {
        let m = InterArrivalModel::new();
        assert!(m.probabilities(100, 60, 10).is_uninformed());
        assert!(m.is_empty());
        assert_eq!(m.last_arrival(), None);
    }

    #[test]
    fn single_arrival_has_no_gaps() {
        let m = model_with(&[5]);
        assert!(m.probabilities(100, 60, 10).is_uninformed());
    }

    #[test]
    fn uniform_cadence_concentrates_probability() {
        // Invocations every 2 minutes: P(gap=2) = 1.
        let m = model_with(&[0, 2, 4, 6, 8, 10]);
        let p = m.probabilities(10, 60, 10);
        assert!((p.at(2) - 1.0).abs() < 1e-12);
        for k in [1u64, 3, 4, 5, 10] {
            assert!(p.prob(k).is_zero());
        }
        assert!((p.mass() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn papers_worked_example() {
        // Gap of 2 appearing 10 times among 20 total gaps → P(2) = 0.5.
        let mut arrivals = vec![0u64];
        let mut t = 0u64;
        for _ in 0..10 {
            t += 2;
            arrivals.push(t);
        }
        for _ in 0..10 {
            t += 30; // out-of-window gaps still count in the denominator
            arrivals.push(t);
        }
        let m = model_with(&arrivals);
        let g = m.global_distribution(10);
        assert!((g.at(2) - 0.5).abs() < 1e-12);
        assert!((g.mass() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn out_of_window_gaps_dilute_mass() {
        let m = model_with(&[0, 5, 100]); // gaps 5 and 95
        let g = m.global_distribution(10);
        assert!((g.at(5) - 0.5).abs() < 1e-12);
        assert!(g.mass() < 1.0);
    }

    #[test]
    fn local_and_global_are_averaged() {
        // History: early phase gap 3, recent phase gap 5.
        // Arrivals: 0,3,6,9 then 100,105,110 (now=110, local window 20).
        let m = model_with(&[0, 3, 6, 9, 100, 105, 110]);
        let p = m.probabilities(110, 20, 10);
        // Local window [90,110]: arrivals 100,105,110 → gaps {5,5} → P(5)=1.
        // Global: gaps {3,3,3,91,5,5} → P(5)=2/6, P(3)=3/6.
        assert!((p.at(5) - (1.0 + 2.0 / 6.0) / 2.0).abs() < 1e-12);
        assert!((p.at(3) - (0.0 + 3.0 / 6.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn uninformed_local_falls_back_to_global() {
        let m = model_with(&[0, 2, 4, 6]);
        // now = 1000: local window is empty → use global alone.
        let p = m.probabilities(1000, 60, 10);
        assert!((p.at(2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn same_minute_duplicates_collapse() {
        let mut m = InterArrivalModel::new();
        m.record(5);
        m.record(5);
        m.record(5);
        m.record(7);
        assert_eq!(m.len(), 2);
        let g = m.global_distribution(10);
        assert!((g.at(2) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_rejected() {
        let mut m = InterArrivalModel::new();
        m.record(10);
        m.record(9);
    }

    #[test]
    fn gap_index_zero_is_always_zero() {
        let m = model_with(&[0, 1, 2, 3]);
        assert!(m.global_distribution(10).prob(0).is_zero());
    }

    #[test]
    fn window_bounds_respected() {
        let m = model_with(&[0, 10]);
        let g = m.global_distribution(10);
        assert!((g.at(10) - 1.0).abs() < 1e-12);
        assert!(g.prob(11).is_zero()); // out of range lookup is 0, not a panic
        assert_eq!(g.window(), 10);
    }

    #[test]
    fn probabilities_are_a_distribution_over_window() {
        let m = model_with(&[0, 1, 3, 6, 10, 15, 21, 28, 36, 45]);
        let p = m.probabilities(45, 60, 10);
        for k in 0..=10 {
            let v = p.at(k);
            assert!((0.0..=1.0).contains(&v));
        }
        assert!(p.mass() <= 1.0 + 1e-12);
    }

    #[test]
    fn typed_and_untyped_accessors_agree() {
        let m = model_with(&[0, 2, 4, 6]);
        let p = m.probabilities(6, 60, 10);
        for k in 0..=10 {
            assert_eq!(p.prob(k).value(), p.at(k));
        }
    }
}

//! Criterion benchmark crate for the PULSE reproduction.
//!
//! Benches live under `benches/` (run with `cargo bench`):
//!
//! * `policy_overhead` — Figure 9a: greedy flatten vs MILP per peak;
//! * `fft` — the radix-2 FFT vs the naive DFT oracle, and the IceBreaker
//!   forecaster;
//! * `simulator` — engine throughput per policy (trace-minutes/second);
//! * `individual` — the per-invocation probability/schedule hot path;
//! * `trace_analysis` — workload generation, gap analysis, peak finding,
//!   CSV round trips;
//! * `milp` — the simplex and branch-and-bound substrates in isolation;
//! * `end_to_end` — one simulated-day units of each experiment family.

//! Figure 9a: per-peak decision overhead — PULSE's greedy downgrade loop vs
//! the exact branch-and-bound MILP on identical peak instances, plus the
//! heap-vs-scan victim-selection comparison at fleet scale.
//!
//! Run with `PULSE_BENCH_JSON=BENCH_policy_overhead.json cargo bench --bench
//! policy_overhead` to append machine-readable points to the trajectory
//! file (the vendored criterion records every bench when the variable is
//! set).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pulse_core::global::{
    flatten_peak, flatten_peak_scan, flatten_peak_scratch, AliveModel, FlattenScratch,
};
use pulse_core::priority::PriorityStructure;
use pulse_milp::MilpDowngrader;
use pulse_models::{zoo, ModelFamily};

fn peak_instance(n_models: usize) -> (Vec<ModelFamily>, Vec<AliveModel>, f64) {
    let z = zoo::standard();
    let fams: Vec<ModelFamily> = (0..n_models).map(|i| z[i % z.len()].clone()).collect();
    let alive: Vec<AliveModel> = fams
        .iter()
        .enumerate()
        .map(|(func, f)| AliveModel {
            func,
            variant: f.highest_id(),
            invocation_probability: (func as f64 * 0.37) % 1.0,
        })
        .collect();
    let total: f64 = fams.iter().map(|f| f.highest().memory_mb).sum();
    (fams, alive, total)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9a_peak_decision");
    for &n in &[4usize, 8, 12, 24] {
        let (fams, alive, total) = peak_instance(n);
        let target = total * 0.5;
        group.bench_with_input(BenchmarkId::new("pulse_greedy", n), &n, |b, _| {
            b.iter(|| {
                let mut a = alive.clone();
                let mut pr = PriorityStructure::new(n);
                flatten_peak(&mut a, &fams, &mut pr, total, target)
            })
        });
        group.bench_with_input(BenchmarkId::new("milp_branch_bound", n), &n, |b, _| {
            let pr = PriorityStructure::new(n);
            b.iter(|| MilpDowngrader.solve(&alive, &fams, &pr, target))
        });
        group.bench_with_input(BenchmarkId::new("milp_dp", n), &n, |b, _| {
            let pr = PriorityStructure::new(n);
            b.iter(|| MilpDowngrader.solve_dp(&alive, &fams, &pr, target))
        });
    }
    group.finish();

    // Victim selection at fleet scale: the re-score-every-model scan vs the
    // epoch-lazy priority heap (both produce bit-identical actions; the
    // heap pays `O(log n)` per eviction instead of `O(n)`).
    let mut group = c.benchmark_group("flatten_victim_selection");
    for &n in &[12usize, 100, 1000] {
        let (fams, alive, total) = peak_instance(n);
        let target = total * 0.5;
        group.bench_with_input(BenchmarkId::new("scan", n), &n, |b, _| {
            b.iter(|| {
                let mut a = alive.clone();
                let mut pr = PriorityStructure::new(n);
                flatten_peak_scan(&mut a, &fams, &mut pr, total, target)
            })
        });
        group.bench_with_input(BenchmarkId::new("heap", n), &n, |b, _| {
            let mut scratch = FlattenScratch::default();
            b.iter(|| {
                let mut a = alive.clone();
                let mut pr = PriorityStructure::new(n);
                flatten_peak_scratch(&mut scratch, &mut a, &fams, &mut pr, total, target)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);

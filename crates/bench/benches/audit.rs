//! Audit throughput: cold (empty cache — every file lexed, indexed and
//! rule-checked) vs warm (fingerprint hits — diagnostics served from the
//! incremental cache). The warm path is the cost every CI run and every
//! pre-commit hook after the first pays, so the gap between the two bars is
//! the cache's whole value proposition; the acceptance bar is warm >= 5x
//! faster than cold on the real workspace.
//!
//! Run with `PULSE_BENCH_JSON=BENCH_audit.json cargo bench --bench audit`
//! to append machine-readable points to the trajectory file.

use std::path::PathBuf;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pulse_audit::{audit_workspace_with, AuditOptions};

/// Workspace root, resolved from this crate's manifest directory so the
/// bench works from any CWD.
fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

fn cache_path(tag: &str) -> PathBuf {
    workspace_root().join(format!("target/bench-audit-cache-{tag}.tsv"))
}

fn bench(c: &mut Criterion) {
    let root = workspace_root();

    // Cold: remove the cache before every iteration so each run pays the
    // full parse + rule cost for every file.
    let cold_cache = cache_path("cold");
    let cold_opts = AuditOptions {
        cache_path: Some(cold_cache.clone()),
        jobs: 0,
    };
    c.bench_function("audit_workspace_cold", |b| {
        b.iter(|| {
            let _ = std::fs::remove_file(&cold_cache);
            let out = audit_workspace_with(&root, &cold_opts).expect("audit");
            assert_eq!(out.cache_hits, 0, "cold run must not hit the cache");
            black_box(out)
        })
    });
    let _ = std::fs::remove_file(&cold_cache);

    // Warm: seed the cache once, then measure steady-state re-runs where
    // every file fingerprint-hits.
    let warm_cache = cache_path("warm");
    let _ = std::fs::remove_file(&warm_cache);
    let warm_opts = AuditOptions {
        cache_path: Some(warm_cache.clone()),
        jobs: 0,
    };
    let seed = audit_workspace_with(&root, &warm_opts).expect("seed run");
    assert!(seed.files_scanned > 0);
    c.bench_function("audit_workspace_warm", |b| {
        b.iter(|| {
            let out = audit_workspace_with(&root, &warm_opts).expect("audit");
            assert_eq!(out.cache_misses, 0, "warm run must serve fully from cache");
            black_box(out)
        })
    });
    let _ = std::fs::remove_file(&warm_cache);
}

criterion_group!(benches, bench);
criterion_main!(benches);

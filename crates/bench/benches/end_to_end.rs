//! End-to-end experiment regeneration cost: one full-day simulated
//! comparison per paper element family — the unit of work behind Figures
//! 5–8 — including the forecaster-integrated policies.

use criterion::{criterion_group, criterion_main, Criterion};
use pulse_core::types::PulseConfig;
use pulse_forecast::integrate::{IceBreakerPolicy, WildPolicy, WildPulsePolicy};
use pulse_sim::assignment::round_robin_assignment;
use pulse_sim::policies::{IdealOracle, OpenWhiskFixed, PulsePolicy};
use pulse_sim::Simulator;
use pulse_trace::synth;

const DAY: usize = 24 * 60;

fn bench(c: &mut Criterion) {
    let trace = synth::azure_like_12_with_horizon(42, DAY);
    let fams = round_robin_assignment(&pulse_models::zoo::standard(), trace.n_functions());
    let sim = Simulator::new(trace.clone(), fams.clone());

    c.bench_function("fig6a_unit_pulse_vs_openwhisk_day", |b| {
        b.iter(|| {
            let ow = sim.run(&mut OpenWhiskFixed::new(&fams));
            let pu = sim.run(&mut PulsePolicy::new(fams.clone(), PulseConfig::default()));
            (ow.keepalive_cost_usd, pu.keepalive_cost_usd)
        })
    });

    c.bench_function("fig6b_unit_ideal_oracle_day", |b| {
        b.iter(|| sim.run(&mut IdealOracle::new(&fams, trace.clone())))
    });

    c.bench_function("fig8_unit_wild_vs_wild_pulse_day", |b| {
        b.iter(|| {
            let w = sim.run(&mut WildPolicy::new(&fams));
            let wp = sim.run(&mut WildPulsePolicy::new(
                fams.clone(),
                PulseConfig::default(),
            ));
            (w.keepalive_cost_usd, wp.keepalive_cost_usd)
        })
    });

    c.bench_function("fig8_unit_icebreaker_day", |b| {
        b.iter(|| sim.run(&mut IceBreakerPolicy::new(&fams, trace.clone())))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);

//! Trace substrate: synthetic generation (Figures 1–2 inputs), gap
//! analysis, peak finding (Tables II/III inputs), and CSV round trips.

use criterion::{criterion_group, criterion_main, Criterion};
use pulse_trace::interarrival::gap_percentages;
use pulse_trace::peaks::{top_peaks, total_per_minute};
use pulse_trace::{csv, synth};

fn bench(c: &mut Criterion) {
    c.bench_function("generate_azure_like_12_two_weeks", |b| {
        b.iter(|| synth::azure_like_12(42))
    });

    let trace = synth::azure_like_12(42);
    c.bench_function("gap_percentages_fig1", |b| {
        b.iter(|| {
            synth::FIG1_FUNCTIONS
                .iter()
                .map(|&i| gap_percentages(trace.function(i), 10))
                .collect::<Vec<_>>()
        })
    });

    c.bench_function("peak_finding_tables23", |b| {
        b.iter(|| {
            let totals = total_per_minute(&trace);
            top_peaks(&totals, 2, 60)
        })
    });

    let day = synth::azure_like_12_with_horizon(42, 1440);
    c.bench_function("csv_round_trip_one_day", |b| {
        b.iter(|| {
            let s = csv::to_simple_csv(&day);
            csv::from_simple_csv(&s).unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);

//! Observability overhead: the trace-sink hooks sit on both engines' hot
//! paths, so the no-sink and `NullSink` configurations must cost the same
//! (events are built lazily and `NullSink::enabled()` is false — the hook
//! is one branch). `JsonlSink` is benched for scale, not for parity: it
//! pays for serialization by design.
//!
//! Run with `PULSE_BENCH_JSON=BENCH_obs.json cargo bench --bench obs` to
//! append machine-readable points to the trajectory file.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pulse_core::types::PulseConfig;
use pulse_models::{zoo, ModelFamily};
use pulse_obs::{JsonlSink, NullSink, ObsEvent, TraceSink};
use pulse_runtime::{Runtime, RuntimeConfig};
use pulse_sim::assignment::round_robin_assignment;
use pulse_sim::policies::PulsePolicy;
use pulse_sim::Simulator;
use pulse_trace::{synth, Trace};

const HORIZON_MIN: usize = 300;

fn setup() -> (Trace, Vec<ModelFamily>) {
    let trace = synth::azure_like_12_with_horizon(7, HORIZON_MIN);
    let fams = round_robin_assignment(&zoo::standard(), trace.n_functions());
    (trace, fams)
}

fn bench(c: &mut Criterion) {
    let (trace, fams) = setup();

    // Simulator: untraced vs NullSink-traced. These two bars are the
    // acceptance gate — NullSink overhead must be in the noise.
    let sim = Simulator::new(trace.clone(), fams.clone());
    c.bench_function("sim_run_untraced", |b| {
        b.iter(|| {
            let mut p = PulsePolicy::new(fams.clone(), PulseConfig::default());
            black_box(sim.run(&mut p))
        })
    });
    c.bench_function("sim_run_null_sink", |b| {
        b.iter(|| {
            let mut p = PulsePolicy::new(fams.clone(), PulseConfig::default());
            black_box(sim.run_traced(&mut p, &mut NullSink))
        })
    });

    // Runtime engine: same pair at millisecond resolution.
    let rt = Runtime::new(trace.clone(), fams.clone(), RuntimeConfig::default());
    c.bench_function("runtime_run_untraced", |b| {
        b.iter(|| {
            let mut p = PulsePolicy::new(fams.clone(), PulseConfig::default());
            black_box(rt.run(&mut p))
        })
    });
    c.bench_function("runtime_run_null_sink", |b| {
        b.iter(|| {
            let mut p = PulsePolicy::new(fams.clone(), PulseConfig::default());
            black_box(rt.run_traced(&mut p, &mut NullSink))
        })
    });

    // The active-sink cost, for scale: full JSONL serialization into a
    // discarding writer.
    c.bench_function("sim_run_jsonl_sink", |b| {
        b.iter(|| {
            let mut p = PulsePolicy::new(fams.clone(), PulseConfig::default());
            let mut sink = JsonlSink::new(std::io::sink());
            black_box(sim.run_traced(&mut p, &mut sink))
        })
    });

    // Micro: one event's serialization round trip, the unit cost a
    // JsonlSink pays per record.
    c.bench_function("obs_event_to_json", |b| {
        let ev = ObsEvent::Serve {
            minute: 1234,
            func: 7,
            requests: 42,
            cold_starts: 1,
        };
        b.iter(|| black_box(ev.to_json()))
    });

    // Micro: the hook itself against a disabled sink — the branch both
    // engines pay per emission site when tracing is off.
    c.bench_function("obs_emit_null_sink", |b| {
        let mut null = NullSink;
        b.iter(|| {
            let mut sink: Option<&mut dyn TraceSink> = Some(&mut null);
            pulse_obs::emit(black_box(&mut sink), || ObsEvent::Serve {
                minute: 1,
                func: 2,
                requests: 3,
                cold_starts: 0,
            });
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench
}
criterion_main!(benches);

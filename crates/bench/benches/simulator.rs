//! Simulator-engine throughput: one simulated day of the 12-function
//! workload under each keep-alive policy (how many trace-minutes per second
//! the platform model sustains).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pulse_core::types::PulseConfig;
use pulse_sim::assignment::round_robin_assignment;
use pulse_sim::policies::{FixedVariant, OpenWhiskFixed, PulsePolicy};
use pulse_sim::Simulator;
use pulse_trace::synth;

const DAY: usize = 24 * 60;

fn bench(c: &mut Criterion) {
    let trace = synth::azure_like_12_with_horizon(42, DAY);
    let fams = round_robin_assignment(&pulse_models::zoo::standard(), trace.n_functions());
    let sim = Simulator::new(trace, fams.clone());

    let mut group = c.benchmark_group("simulate_one_day");
    group.throughput(Throughput::Elements(DAY as u64));
    group.bench_function("openwhisk_fixed", |b| {
        b.iter(|| sim.run(&mut OpenWhiskFixed::new(&fams)))
    });
    group.bench_function("all_low", |b| {
        b.iter(|| sim.run(&mut FixedVariant::all_low(&fams)))
    });
    group.bench_function("pulse_full", |b| {
        b.iter(|| sim.run(&mut PulsePolicy::new(fams.clone(), PulseConfig::default())))
    });
    group.bench_function("pulse_individual_only", |b| {
        b.iter(|| {
            sim.run(&mut PulsePolicy::without_global(
                fams.clone(),
                PulseConfig::default(),
            ))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);

//! The MILP substrate in isolation: simplex solves and branch-and-bound on
//! knapsack-style instances of growing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pulse_milp::{Constraint, LinearProgram, MilpProblem, Relation};

fn knapsack(n: usize) -> MilpProblem {
    // Deterministic profits/weights.
    let profits: Vec<f64> = (0..n).map(|i| ((i * 7) % 13 + 1) as f64).collect();
    let weights: Vec<f64> = (0..n).map(|i| ((i * 5) % 9 + 1) as f64).collect();
    let cap = weights.iter().sum::<f64>() * 0.5;
    let mut constraints = vec![Constraint::new(weights, Relation::Le, cap)];
    for j in 0..n {
        let mut c = vec![0.0; n];
        c[j] = 1.0;
        constraints.push(Constraint::new(c, Relation::Le, 1.0));
    }
    MilpProblem {
        lp: LinearProgram {
            n_vars: n,
            objective: profits,
            constraints,
        },
        integer_vars: (0..n).collect(),
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplex_relaxation");
    for &n in &[8usize, 16, 32] {
        let p = knapsack(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| p.lp.solve())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("branch_and_bound");
    for &n in &[8usize, 12, 16] {
        let p = knapsack(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| p.solve())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);

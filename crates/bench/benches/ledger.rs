//! Schedule-ledger hot path: the operations both engines now route through
//! `pulse_core::schedule::ScheduleLedger` once per simulated minute —
//! footprint metering over the whole fleet, downgrade/eviction application,
//! and the per-invocation schedule refresh.
//!
//! Run with `PULSE_BENCH_JSON=BENCH_ledger.json cargo bench --bench ledger`
//! to append machine-readable points to the trajectory file.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pulse_core::global::DowngradeAction;
use pulse_core::individual::KeepAliveSchedule;
use pulse_core::schedule::{MinuteFootprint, ScheduleLedger};
use pulse_models::{zoo, ModelFamily};
use pulse_trace::synth::azure_like_n_with_horizon;

/// A fleet of `n` functions round-robined over the standard zoo, every
/// function planning its highest variant for a 10-minute window from t=0.
fn setup(n: usize) -> (Vec<ModelFamily>, ScheduleLedger) {
    let families = zoo::standard();
    let fams: Vec<_> = (0..n)
        .map(|i| families[i % families.len()].clone())
        .collect();
    let mut ledger = ScheduleLedger::new(n);
    for (f, fam) in fams.iter().enumerate() {
        ledger.replace(f, KeepAliveSchedule::constant(0, fam.highest_id(), 10));
    }
    (fams, ledger)
}

/// A sparse fleet: `n` functions, but only every `stride`-th one plans a
/// schedule covering the probed minute — the realistic fleet-scale shape
/// (most functions idle at any instant). `incremental` picks the indexed
/// ledger or the legacy sweep-only one.
fn setup_sparse(n: usize, stride: usize, incremental: bool) -> (Vec<ModelFamily>, ScheduleLedger) {
    let z = zoo::standard();
    let fams: Vec<_> = (0..n).map(|i| z[i % z.len()].clone()).collect();
    let mut ledger = if incremental {
        ScheduleLedger::for_families(&fams)
    } else {
        ScheduleLedger::new(n)
    };
    for (f, fam) in fams.iter().enumerate().step_by(stride) {
        ledger.replace(f, KeepAliveSchedule::constant(0, fam.highest_id(), 10));
    }
    (fams, ledger)
}

/// A 10k-function incremental ledger seeded from the fleet-scale synthetic
/// trace: every function that fires in the generated window plans a
/// schedule, everyone else stays idle — the CI perf-smoke scenario.
fn setup_azure_10k() -> (Vec<ModelFamily>, ScheduleLedger) {
    let trace = azure_like_n_with_horizon(10_000, 42, 30);
    let z = zoo::standard();
    let fams: Vec<_> = (0..trace.n_functions())
        .map(|i| z[i % z.len()].clone())
        .collect();
    let mut ledger = ScheduleLedger::for_families(&fams);
    for (f, fun) in trace.functions().iter().enumerate() {
        if let Some(first) = (0..trace.minutes() as u64).find(|&m| fun.at(m) > 0) {
            ledger.replace(
                f,
                KeepAliveSchedule::constant(first, fams[f].highest_id(), 10),
            );
        }
    }
    (fams, ledger)
}

fn bench(c: &mut Criterion) {
    // The per-minute metering pass: one ascending sweep building the alive
    // set and the summed footprint (stage 1 of both engines' minute tick).
    let mut group = c.benchmark_group("ledger_minute_footprint");
    for &n in &[12usize, 100, 1000] {
        let (fams, ledger) = setup(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| ledger.minute_footprint(&fams, 5))
        });
    }
    group.finish();

    // The billing-only query (no alive-set allocation), as used by the
    // simulator's post-adjustment meter.
    let mut group = c.benchmark_group("ledger_keep_alive_mb_at");
    for &n in &[12usize, 100, 1000] {
        let (fams, ledger) = setup(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| ledger.keep_alive_mb_at(&fams, 5))
        });
    }
    group.finish();

    // Applying a full fleet's worth of peak-flattening actions (alternating
    // one-rung downgrades and evictions) against minute t.
    c.bench_function("ledger_apply_actions_100", |b| {
        let actions: Vec<DowngradeAction> = (0..100)
            .map(|f| {
                if f % 2 == 0 {
                    DowngradeAction::Downgrade {
                        func: f,
                        from: 2,
                        to: 1,
                    }
                } else {
                    DowngradeAction::Evict { func: f, from: 0 }
                }
            })
            .collect();
        b.iter_batched(
            || setup(100).1,
            |mut ledger| ledger.apply_actions(5, &actions),
            criterion::BatchSize::SmallInput,
        )
    });

    // The per-invocation schedule refresh: replace one function's plan.
    c.bench_function("ledger_replace_schedule", |b| {
        let (_, mut ledger) = setup(100);
        b.iter(|| ledger.replace(37, KeepAliveSchedule::constant(9, 1, 10)))
    });

    // Incremental vs legacy on a sparse fleet (~5% of functions alive at
    // the probed minute): one schedule refresh followed by the minute
    // meter. The incremental path pays `O(alive)` on the pin, the sweep
    // pays `O(n)` regardless — sub-linear in total function count.
    let mut group = c.benchmark_group("ledger_metered_sparse_update");
    for &n in &[100usize, 1000, 10_000] {
        let (fams, mut ledger) = setup_sparse(n, 20, true);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                ledger.replace(0, KeepAliveSchedule::constant(0, 1, 10));
                ledger.metered_kam_mb(&fams, 5)
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("ledger_sweep_sparse_update");
    for &n in &[100usize, 1000, 10_000] {
        let (fams, mut ledger) = setup_sparse(n, 20, false);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                ledger.replace(0, KeepAliveSchedule::constant(0, 1, 10));
                ledger.keep_alive_mb_at(&fams, 5)
            })
        });
    }
    group.finish();

    // The clean-read fast path: an unmutated minute answers from the pinned
    // total in `O(log minutes)`, no sweep at all.
    c.bench_function("ledger_metered_clean_1000", |b| {
        let (fams, mut ledger) = setup_sparse(1000, 20, true);
        ledger.metered_kam_mb(&fams, 5); // pin once
        b.iter(|| ledger.metered_kam_mb(&fams, 5))
    });

    // Footprint refill into a session-owned buffer — the engines' stage-1
    // replacement for the allocating `minute_footprint`.
    c.bench_function("ledger_fill_footprint_1000", |b| {
        let (fams, mut ledger) = setup_sparse(1000, 20, true);
        let mut fp = MinuteFootprint::default();
        b.iter(|| {
            ledger.fill_minute_footprint(&fams, 5, &mut fp);
            fp.total_mb
        })
    });

    // Dirty-set patch: one mutated function re-synced into an existing
    // footprint, as the later pipeline stages do.
    c.bench_function("ledger_patch_footprint_1000", |b| {
        let (fams, mut ledger) = setup_sparse(1000, 20, true);
        let mut fp = MinuteFootprint::default();
        ledger.fill_minute_footprint(&fams, 5, &mut fp);
        b.iter(|| {
            ledger.replace(0, KeepAliveSchedule::constant(0, 1, 10));
            ledger.patch_minute_footprint(&fams, 5, &mut fp);
            fp.total_mb
        })
    });

    // Fleet-scale smoke: a full maintenance round (schedule refresh, patch,
    // meter) on the 10k-function azure-like fleet. CI runs this case and
    // fails on panic or timeout.
    c.bench_function("ledger_azure_10k_maintenance", |b| {
        let (fams, mut ledger) = setup_azure_10k();
        let mut fp = MinuteFootprint::default();
        ledger.fill_minute_footprint(&fams, 5, &mut fp);
        b.iter(|| {
            ledger.replace(17, KeepAliveSchedule::constant(0, 1, 10));
            ledger.patch_minute_footprint(&fams, 5, &mut fp);
            ledger.metered_kam_mb(&fams, 5)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench
}
criterion_main!(benches);

//! Schedule-ledger hot path: the operations both engines now route through
//! `pulse_core::schedule::ScheduleLedger` once per simulated minute —
//! footprint metering over the whole fleet, downgrade/eviction application,
//! and the per-invocation schedule refresh.
//!
//! Run with `PULSE_BENCH_JSON=BENCH_ledger.json cargo bench --bench ledger`
//! to append machine-readable points to the trajectory file.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pulse_core::global::DowngradeAction;
use pulse_core::individual::KeepAliveSchedule;
use pulse_core::schedule::ScheduleLedger;
use pulse_models::{zoo, ModelFamily};

/// A fleet of `n` functions round-robined over the standard zoo, every
/// function planning its highest variant for a 10-minute window from t=0.
fn setup(n: usize) -> (Vec<ModelFamily>, ScheduleLedger) {
    let families = zoo::standard();
    let fams: Vec<_> = (0..n)
        .map(|i| families[i % families.len()].clone())
        .collect();
    let mut ledger = ScheduleLedger::new(n);
    for (f, fam) in fams.iter().enumerate() {
        ledger.replace(f, KeepAliveSchedule::constant(0, fam.highest_id(), 10));
    }
    (fams, ledger)
}

fn bench(c: &mut Criterion) {
    // The per-minute metering pass: one ascending sweep building the alive
    // set and the summed footprint (stage 1 of both engines' minute tick).
    let mut group = c.benchmark_group("ledger_minute_footprint");
    for &n in &[12usize, 100, 1000] {
        let (fams, ledger) = setup(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| ledger.minute_footprint(&fams, 5))
        });
    }
    group.finish();

    // The billing-only query (no alive-set allocation), as used by the
    // simulator's post-adjustment meter.
    let mut group = c.benchmark_group("ledger_keep_alive_mb_at");
    for &n in &[12usize, 100, 1000] {
        let (fams, ledger) = setup(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| ledger.keep_alive_mb_at(&fams, 5))
        });
    }
    group.finish();

    // Applying a full fleet's worth of peak-flattening actions (alternating
    // one-rung downgrades and evictions) against minute t.
    c.bench_function("ledger_apply_actions_100", |b| {
        let actions: Vec<DowngradeAction> = (0..100)
            .map(|f| {
                if f % 2 == 0 {
                    DowngradeAction::Downgrade {
                        func: f,
                        from: 2,
                        to: 1,
                    }
                } else {
                    DowngradeAction::Evict { func: f, from: 0 }
                }
            })
            .collect();
        b.iter_batched(
            || setup(100).1,
            |mut ledger| ledger.apply_actions(5, &actions),
            criterion::BatchSize::SmallInput,
        )
    });

    // The per-invocation schedule refresh: replace one function's plan.
    c.bench_function("ledger_replace_schedule", |b| {
        let (_, mut ledger) = setup(100);
        b.iter(|| ledger.replace(37, KeepAliveSchedule::constant(9, 1, 10)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench
}
criterion_main!(benches);

//! Event-driven runtime throughput vs the minute simulator on identical
//! inputs — the cost of millisecond fidelity.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pulse_core::types::PulseConfig;
use pulse_runtime::{Runtime, RuntimeConfig};
use pulse_sim::assignment::round_robin_assignment;
use pulse_sim::policies::{OpenWhiskFixed, PulsePolicy};
use pulse_sim::Simulator;
use pulse_trace::synth;

const HORIZON: usize = 6 * 60; // six simulated hours

fn bench(c: &mut Criterion) {
    let trace = synth::azure_like_12_with_horizon(42, HORIZON);
    let fams = round_robin_assignment(&pulse_models::zoo::standard(), trace.n_functions());
    let sim = Simulator::new(trace.clone(), fams.clone());
    let rt = Runtime::new(trace, fams.clone(), RuntimeConfig::default());

    let mut group = c.benchmark_group("engine_comparison_six_hours");
    group.throughput(Throughput::Elements(HORIZON as u64));
    group.bench_function("minute_sim/openwhisk", |b| {
        b.iter(|| sim.run(&mut OpenWhiskFixed::new(&fams)))
    });
    group.bench_function("ms_runtime/openwhisk", |b| {
        b.iter(|| rt.run(&mut OpenWhiskFixed::new(&fams)))
    });
    group.bench_function("minute_sim/pulse", |b| {
        b.iter(|| sim.run(&mut PulsePolicy::new(fams.clone(), PulseConfig::default())))
    });
    group.bench_function("ms_runtime/pulse", |b| {
        b.iter(|| rt.run(&mut PulsePolicy::new(fams.clone(), PulseConfig::default())))
    });
    group.finish();

    c.bench_function("ms_runtime_capped_concurrency", |b| {
        let trace = synth::azure_like_12_with_horizon(42, HORIZON);
        let rt = Runtime::new(
            trace,
            fams.clone(),
            RuntimeConfig {
                max_concurrency: Some(2),
                ..Default::default()
            },
        );
        b.iter(|| rt.run(&mut OpenWhiskFixed::new(&fams)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);

//! Individual (function-centric) optimization hot path: probability
//! estimation over growing histories, and the per-invocation schedule
//! construction — PULSE's per-invocation overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pulse_core::individual::IndividualOptimizer;
use pulse_core::interarrival::InterArrivalModel;
use pulse_core::thresholds::SchemeT1;

fn history(n: usize) -> InterArrivalModel {
    let mut m = InterArrivalModel::new();
    let mut t = 0u64;
    for i in 0..n {
        t += 1 + (i % 9) as u64;
        m.record(t);
    }
    m
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("interarrival_probabilities");
    for &n in &[100usize, 1000, 10_000] {
        let m = history(n);
        let now = 1_000_000u64;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| m.probabilities(now, 60, 10))
        });
    }
    group.finish();

    c.bench_function("schedule_after_invocation", |b| {
        let m = history(1000);
        let probs = m.probabilities(1_000_000, 60, 10);
        let opt = IndividualOptimizer::new(10);
        b.iter(|| opt.schedule(123, &probs, 3, &SchemeT1))
    });

    c.bench_function("record_invocation", |b| {
        b.iter_batched(
            || history(1000),
            |mut m| m.record(10_000_000),
            criterion::BatchSize::SmallInput,
        )
    });

    // The incremental model vs the reference: one record + one probability
    // query on a long history (the reference rescans; the online model is
    // O(window)).
    let mut group = c.benchmark_group("probabilities_reference_vs_online");
    for &n in &[1000usize, 10_000] {
        group.bench_with_input(criterion::BenchmarkId::new("reference", n), &n, |b, &n| {
            let m = history(n);
            b.iter(|| m.probabilities(10_000_000, 60, 10))
        });
        group.bench_with_input(criterion::BenchmarkId::new("online", n), &n, |b, &n| {
            let mut m = pulse_core::online::OnlineInterArrival::new(10, 60);
            let mut t = 0u64;
            for i in 0..n {
                t += 1 + (i % 9) as u64;
                m.record(t);
            }
            b.iter(|| m.probabilities(10_000_000))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench
}
criterion_main!(benches);

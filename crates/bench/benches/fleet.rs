//! Fleet-runtime throughput: what node-level fault injection, migration,
//! and per-node capacity enforcement cost over the single-node baseline.
//!
//! Run with `PULSE_BENCH_JSON=BENCH_fleet.json cargo bench --bench fleet`
//! to append machine-readable points to the trajectory file.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pulse_runtime::{
    ClusterConfig, FaultPlan, FleetConfig, NodeCapacity, NodeFaultPlan, Runtime, RuntimeConfig,
};
use pulse_sim::assignment::round_robin_assignment;
use pulse_sim::policies::OpenWhiskFixed;
use pulse_trace::synth;

const HORIZON: usize = 6 * 60; // six simulated hours

fn bench(c: &mut Criterion) {
    let trace = synth::azure_like_12_with_horizon(42, HORIZON);
    let fams = round_robin_assignment(&pulse_models::zoo::standard(), trace.n_functions());
    let rt = Runtime::new(trace, fams.clone(), RuntimeConfig::default());
    let all_high: f64 = fams.iter().map(|f| f.highest().memory_mb).sum();
    let none = FaultPlan::none();

    let mut group = c.benchmark_group("fleet_six_hours");
    group.throughput(Throughput::Elements(HORIZON as u64));
    group.bench_function("single_node_cluster", |b| {
        let cluster = ClusterConfig::unlimited();
        b.iter(|| rt.run_with_cluster(&mut OpenWhiskFixed::new(&fams), &none, &cluster))
    });
    group.bench_function("three_nodes_nominal", |b| {
        let fleet = FleetConfig::uniform(3, NodeCapacity::mb(all_high * 0.45));
        b.iter(|| rt.run_with_fleet(&mut OpenWhiskFixed::new(&fams), &none, &fleet))
    });
    group.bench_function("three_nodes_rolling_crashes", |b| {
        let fleet = FleetConfig::uniform(3, NodeCapacity::mb(all_high * 0.45))
            .with_node_faults(NodeFaultPlan::rolling_crashes(3, 10, 6, 30, HORIZON as u64));
        b.iter(|| rt.run_with_fleet(&mut OpenWhiskFixed::new(&fams), &none, &fleet))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);

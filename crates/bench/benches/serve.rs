//! Serving-path cost: load generation, simulated-clock replay through the
//! serve front door, and the full live pipeline (bounded channel, producer
//! thread, wall-clock decision timing). Throughput is per *arrival*, so the
//! numbers read directly as sustainable requests per second.
//!
//! Run with `PULSE_BENCH_JSON=BENCH_serve.json cargo bench --bench serve`
//! to append machine-readable points to the trajectory file.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pulse_core::types::PulseConfig;
use pulse_serve::loadgen::ArrivalStream;
use pulse_serve::{replay, run_demo, DemoConfig, LoadGenConfig, LoadMode, ServeConfig};
use pulse_sim::assignment::round_robin_assignment;
use pulse_sim::policies::PulsePolicy;

const FUNCTIONS: usize = 12;
const MINUTES: usize = 10;

fn stream(rate_per_min: f64) -> ArrivalStream {
    ArrivalStream::generate(&LoadGenConfig {
        functions: FUNCTIONS,
        minutes: MINUTES,
        mode: LoadMode::Poisson { rate_per_min },
        seed: 42,
    })
}

fn bench(c: &mut Criterion) {
    // Load generation alone: counts plus millisecond expansion.
    let probe = stream(2_000.0);
    let mut group = c.benchmark_group("serve_loadgen");
    group.throughput(Throughput::Elements(probe.len() as u64));
    group.bench_function("poisson_2k_per_min", |b| b.iter(|| stream(2_000.0)));
    group.finish();

    // Simulated-clock replay: the per-arrival engine decision cost with no
    // transport in the way — the floor the live path is measured against.
    let fams = round_robin_assignment(&pulse_models::zoo::standard(), FUNCTIONS);
    let config = ServeConfig::default().with_max_pending(4_096);
    let mut group = c.benchmark_group("serve_replay");
    group.throughput(Throughput::Elements(probe.len() as u64));
    group.bench_function("pulse_policy", |b| {
        b.iter(|| {
            let mut policy = PulsePolicy::new(fams.clone(), PulseConfig::default());
            replay(&probe, fams.clone(), &mut policy, &config, None)
        })
    });
    group.finish();

    // The full live pipeline: producer thread, bounded channel, wall-clock
    // histograms. Unthrottled, so this measures pipeline capacity.
    let demo = DemoConfig {
        rps: 50_000,
        seconds: 2,
        functions: FUNCTIONS,
        seed: 42,
        max_pending: 4_096,
        channel_capacity: 65_536,
    };
    let mut group = c.benchmark_group("serve_live");
    group.throughput(Throughput::Elements(demo.expected_arrivals()));
    group.bench_function("demo_100k_arrivals", |b| b.iter(|| run_demo(&demo, None)));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);

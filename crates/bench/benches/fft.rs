//! The IceBreaker substrate's FFT: radix-2 vs naive DFT, and the spectral
//! forecaster end to end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pulse_forecast::fft::{fft, naive_dft};
use pulse_forecast::FftPredictor;

fn signal(n: usize) -> Vec<f64> {
    (0..n)
        .map(|t| {
            (std::f64::consts::TAU * t as f64 / 16.0).sin()
                + 0.3 * (std::f64::consts::TAU * t as f64 / 5.0).cos()
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    for &n in &[256usize, 1024, 4096] {
        let s = signal(n);
        group.bench_with_input(BenchmarkId::new("radix2", n), &n, |b, _| b.iter(|| fft(&s)));
    }
    // The O(N²) oracle, small sizes only.
    for &n in &[64usize, 256] {
        let s = signal(n);
        group.bench_with_input(BenchmarkId::new("naive_dft", n), &n, |b, _| {
            b.iter(|| naive_dft(&s))
        });
    }
    group.finish();

    c.bench_function("icebreaker_forecast_240min", |b| {
        let mut p = FftPredictor::new();
        for x in signal(240) {
            p.push(x.abs());
        }
        b.iter(|| p.predict_active(10))
    });

    // The other forecasters on the same series, for the predictor shoot-out.
    let counts: Vec<f64> = signal(240).iter().map(|x| x.abs()).collect();
    c.bench_function("holt_winters_forecast_240min", |b| {
        let mut hw = pulse_forecast::HoltWinters::hourly();
        for &x in &counts {
            hw.push(x);
        }
        b.iter(|| hw.forecast(10))
    });
    c.bench_function("ar_fit_and_forecast_240min", |b| {
        b.iter(|| {
            let m = pulse_forecast::ar::ArModel::fit_auto(&counts, 5);
            m.forecast(&counts, 10)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench
}
criterion_main!(benches);

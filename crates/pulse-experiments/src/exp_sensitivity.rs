//! **E12 / Figure 10**, **E13 / Figure 11**, **E14 / Figure 12** — the
//! sensitivity sweeps: probability-threshold scheme (T1 vs T2), keep-alive
//! memory threshold (M1 = 5 %, M2 = 10 %, M3 = 15 %), and local window size
//! (10 / 60 / 120 minutes). The paper's claim in each case is *robustness*:
//! every setting preserves a large cost improvement over OpenWhisk, a small
//! (sub-percent) accuracy loss, and a modest service-time effect.

use crate::common::{improvement_higher_better, improvement_lower_better, ExpConfig};
use crate::report::{pct, Table};
use pulse_core::types::{PulseConfig, SchemeKind};
use pulse_sim::policies::{OpenWhiskFixed, PulsePolicy};
use pulse_sim::runner::PolicyFactory;

/// Improvements of a PULSE configuration over OpenWhisk:
/// (cost %, service time %, accuracy %).
pub fn improvements_over_openwhisk(cfg: &ExpConfig, pulse_cfg: PulseConfig) -> (f64, f64, f64) {
    let trace = cfg.trace();
    let ow_factory: Box<PolicyFactory<'_>> = Box::new(|fams: &[pulse_models::ModelFamily], _| {
        Box::new(OpenWhiskFixed::new(fams)) as Box<dyn pulse_sim::KeepAlivePolicy>
    });
    let pu_factory: Box<PolicyFactory<'_>> =
        Box::new(move |fams: &[pulse_models::ModelFamily], _| {
            Box::new(PulsePolicy::new(fams.to_vec(), pulse_cfg))
                as Box<dyn pulse_sim::KeepAlivePolicy>
        });
    let ow = cfg.campaign(&trace, "openwhisk", ow_factory.as_ref());
    let pu = cfg.campaign(&trace, "pulse", pu_factory.as_ref());
    (
        improvement_lower_better(pu.keepalive_cost_usd.mean(), ow.keepalive_cost_usd.mean()),
        improvement_lower_better(pu.service_time_s.mean(), ow.service_time_s.mean()),
        improvement_higher_better(pu.accuracy_pct.mean(), ow.accuracy_pct.mean()),
    )
}

fn sweep_table(title: &str, cfg: &ExpConfig, variants: Vec<(String, PulseConfig)>) -> String {
    let mut table = Table::new(
        title,
        &["Setting", "Keep-alive Cost", "Service Time", "Accuracy"],
    );
    for (label, pc) in variants {
        let (cost, svc, acc) = improvements_over_openwhisk(cfg, pc);
        table.row(vec![label, pct(cost), pct(svc), pct(acc)]);
    }
    table.render()
}

/// Figure 10: threshold schemes T1 vs T2.
pub fn run_fig10(cfg: &ExpConfig) -> String {
    sweep_table(
        "Figure 10: probability-threshold schemes (improvement over OpenWhisk)",
        cfg,
        vec![
            (
                "T1 (N areas)".into(),
                PulseConfig {
                    scheme: SchemeKind::T1,
                    ..Default::default()
                },
            ),
            (
                "T2 (lowest at p=0, N-1 areas)".into(),
                PulseConfig {
                    scheme: SchemeKind::T2,
                    ..Default::default()
                },
            ),
        ],
    )
}

/// Figure 11: keep-alive memory thresholds M1/M2/M3.
pub fn run_fig11(cfg: &ExpConfig) -> String {
    sweep_table(
        "Figure 11: keep-alive memory thresholds (improvement over OpenWhisk)",
        cfg,
        [("M1 (5%)", 0.05), ("M2 (10%)", 0.10), ("M3 (15%)", 0.15)]
            .into_iter()
            .map(|(label, km)| {
                (
                    label.to_string(),
                    PulseConfig {
                        km_threshold: km,
                        ..Default::default()
                    },
                )
            })
            .collect(),
    )
}

/// Figure 12: local window sizes.
pub fn run_fig12(cfg: &ExpConfig) -> String {
    sweep_table(
        "Figure 12: local window sizes (improvement over OpenWhisk)",
        cfg,
        [10u32, 60, 120]
            .into_iter()
            .map(|w| {
                (
                    format!("{w} minutes"),
                    PulseConfig {
                        local_window: w,
                        ..Default::default()
                    },
                )
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpConfig {
        ExpConfig {
            seed: 42,
            horizon: 1200,
            n_runs: 4,
            trace_out: None,
            serve: Default::default(),
        }
    }

    #[test]
    fn both_schemes_preserve_cost_improvement() {
        let cfg = tiny();
        for scheme in [SchemeKind::T1, SchemeKind::T2] {
            let (cost, _, acc) = improvements_over_openwhisk(
                &cfg,
                PulseConfig {
                    scheme,
                    ..Default::default()
                },
            );
            assert!(cost > 0.0, "{scheme:?}: cost improvement {cost}");
            assert!(acc > -6.0, "{scheme:?}: accuracy loss too large {acc}");
        }
    }

    #[test]
    fn all_memory_thresholds_preserve_cost_improvement() {
        let cfg = tiny();
        for km in [0.05, 0.10, 0.15] {
            let (cost, ..) = improvements_over_openwhisk(
                &cfg,
                PulseConfig {
                    km_threshold: km,
                    ..Default::default()
                },
            );
            assert!(cost > 0.0, "km {km}: {cost}");
        }
    }

    #[test]
    fn all_window_sizes_preserve_cost_improvement() {
        let cfg = tiny();
        for w in [10u32, 60, 120] {
            let (cost, ..) = improvements_over_openwhisk(
                &cfg,
                PulseConfig {
                    local_window: w,
                    ..Default::default()
                },
            );
            assert!(cost > 0.0, "window {w}: {cost}");
        }
    }

    #[test]
    fn reports_render() {
        let cfg = tiny();
        assert!(run_fig10(&cfg).contains("T2"));
        assert!(run_fig11(&cfg).contains("M3"));
        assert!(run_fig12(&cfg).contains("120 minutes"));
    }
}

//! **Extension: scalability and keep-alive-duration generality** — two
//! claims the paper states in prose without a dedicated figure:
//!
//! * "PULSE's overhead remains minimal even when handling a large number of
//!   concurrent functions" (Section V, Overhead) — measured here as the
//!   policy-side wall-clock per simulated minute while the fleet grows from
//!   12 to hundreds of functions;
//! * "the core idea and design behind PULSE are flexible and can be adapted
//!   to different keep-alive durations" — measured as the cost/service/
//!   accuracy improvements over the equally-adapted fixed policy for 5-,
//!   10- and 20-minute windows.

use crate::common::{improvement_higher_better, improvement_lower_better, ExpConfig};
use crate::report::{fmt, pct, Table};
use pulse_core::types::PulseConfig;
use pulse_sim::assignment::round_robin_assignment;
use pulse_sim::policies::{OpenWhiskFixed, PulsePolicy};
use pulse_sim::Simulator;
use pulse_trace::scale::replicate;
use std::time::Instant;

/// Fleet-size sweep: wall-clock per simulated minute and per invocation.
pub fn run_scalability(cfg: &ExpConfig) -> String {
    let base = cfg.trace();
    let zoo = cfg.zoo();
    let mut table = Table::new(
        "Scalability: PULSE simulation overhead vs fleet size",
        &[
            "Functions",
            "Invocations",
            "Wall (s)",
            "us/sim-minute",
            "us/invocation",
            "Downgrades",
        ],
    );
    for factor in [1usize, 4, 16, 64] {
        let trace = replicate(&base, factor, 37);
        let fams = round_robin_assignment(&zoo, trace.n_functions());
        let sim = Simulator::new(trace.clone(), fams.clone());
        let start = Instant::now();
        let m = sim.run(&mut PulsePolicy::new(fams, PulseConfig::default()));
        let wall = start.elapsed().as_secs_f64();
        table.row(vec![
            trace.n_functions().to_string(),
            m.invocations().to_string(),
            fmt(wall, 2),
            fmt(wall / trace.minutes() as f64 * 1e6, 1),
            fmt(wall / m.invocations().max(1) as f64 * 1e6, 2),
            m.downgrades.to_string(),
        ]);
    }
    table.render()
}

/// Keep-alive duration sweep: PULSE vs the fixed policy at the same window.
pub fn run_window(cfg: &ExpConfig) -> String {
    let trace = cfg.trace();
    let fams = round_robin_assignment(&cfg.zoo(), trace.n_functions());
    let sim = Simulator::new(trace, fams.clone());
    let mut table = Table::new(
        "Keep-alive duration generality: PULSE improvement over the fixed policy",
        &["Window", "Keep-alive Cost", "Service Time", "Accuracy"],
    );
    for window in [5u32, 10, 20] {
        let ow = sim.run(&mut OpenWhiskFixed::with_window(&fams, window));
        let pu = sim.run(&mut PulsePolicy::new(
            fams.clone(),
            PulseConfig {
                keepalive_minutes: window,
                ..Default::default()
            },
        ));
        table.row(vec![
            format!("{window} min"),
            pct(improvement_lower_better(
                pu.keepalive_cost_usd,
                ow.keepalive_cost_usd,
            )),
            pct(improvement_lower_better(
                pu.service_time_s,
                ow.service_time_s,
            )),
            pct(improvement_higher_better(
                pu.avg_accuracy_pct(),
                ow.avg_accuracy_pct(),
            )),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpConfig {
        ExpConfig {
            seed: 42,
            horizon: 700,
            n_runs: 2,
            trace_out: None,
            serve: Default::default(),
        }
    }

    #[test]
    fn overhead_per_minute_grows_sublinearly_enough() {
        // 4× the functions must not cost 40× the wall clock (per-minute work
        // is linear in fleet size; the claim is no super-linear blow-up).
        let base = tiny().trace();
        let zoo = tiny().zoo();
        let mut walls = Vec::new();
        for factor in [1usize, 4] {
            let trace = replicate(&base, factor, 37);
            let fams = round_robin_assignment(&zoo, trace.n_functions());
            let sim = Simulator::new(trace, fams.clone());
            let start = Instant::now();
            let _ = sim.run(&mut PulsePolicy::new(fams, PulseConfig::default()));
            walls.push(start.elapsed().as_secs_f64());
        }
        assert!(
            walls[1] < walls[0] * 40.0,
            "1x {:.4}s vs 4x {:.4}s",
            walls[0],
            walls[1]
        );
    }

    #[test]
    fn pulse_wins_at_every_window_length() {
        let cfg = tiny();
        let trace = cfg.trace();
        let fams = round_robin_assignment(&cfg.zoo(), trace.n_functions());
        let sim = Simulator::new(trace, fams.clone());
        for window in [5u32, 10, 20] {
            let ow = sim.run(&mut OpenWhiskFixed::with_window(&fams, window));
            let pu = sim.run(&mut PulsePolicy::new(
                fams.clone(),
                PulseConfig {
                    keepalive_minutes: window,
                    ..Default::default()
                },
            ));
            assert!(
                pu.keepalive_cost_usd < ow.keepalive_cost_usd,
                "window {window}: {} !< {}",
                pu.keepalive_cost_usd,
                ow.keepalive_cost_usd
            );
        }
    }

    #[test]
    fn reports_render() {
        let cfg = tiny();
        assert!(run_scalability(&cfg).contains("us/sim-minute"));
        assert!(run_window(&cfg).contains("20 min"));
    }
}

//! **E4 / Tables II & III** — four keep-alive strategies evaluated over the
//! 10-minute windows following the two most prominent invocation peaks.
//!
//! Strategies: all high-quality, all low-quality, balanced random mix, and
//! the intelligent (future-volume) oracle. Expected ordering, from the
//! paper: all-high has the highest service time / cost / accuracy; all-low
//! the lowest of each; random lands between; intelligent approaches
//! all-high's accuracy at noticeably lower cost than all-high.

use crate::common::ExpConfig;
use crate::report::{fmt, Table};
use pulse_sim::assignment::round_robin_assignment;
use pulse_sim::policies::{FixedVariant, IntelligentOracle, RandomMix};
use pulse_sim::{KeepAlivePolicy, RunMetrics, Simulator};
use pulse_trace::peaks::peak_windows;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Result rows for one peak window.
pub struct PeakEval {
    /// Start minute of the peak window in the full trace.
    pub window_start: usize,
    /// Metrics per strategy, in presentation order.
    pub rows: Vec<RunMetrics>,
}

/// Evaluate the four strategies over the top-2 peak windows.
pub fn evaluate(cfg: &ExpConfig) -> Vec<PeakEval> {
    let trace = cfg.trace();
    let zoo = cfg.zoo();
    let windows = peak_windows(&trace, 2, 11, 60);
    let fams = round_robin_assignment(&zoo, trace.n_functions());
    windows
        .into_iter()
        .map(|w| {
            let slice = trace.slice(w.start, w.end);
            let sim = Simulator::new(slice.clone(), fams.clone());
            let mut policies: Vec<Box<dyn KeepAlivePolicy>> = vec![
                Box::new(FixedVariant::all_high(&fams)),
                Box::new(FixedVariant::all_low(&fams)),
                Box::new(RandomMix::new(
                    &fams,
                    &mut SmallRng::seed_from_u64(cfg.seed),
                )),
                Box::new(IntelligentOracle::new(&fams, slice)),
            ];
            let rows = policies.iter_mut().map(|p| sim.run(p.as_mut())).collect();
            PeakEval {
                window_start: w.start,
                rows,
            }
        })
        .collect()
}

/// Render Tables II and III.
pub fn run(cfg: &ExpConfig) -> String {
    let evals = evaluate(cfg);
    let mut out = String::new();
    for (i, e) in evals.iter().enumerate() {
        let mut table = Table::new(
            format!(
                "Table {}: Peak {} evaluation (window starts at minute {})",
                if i == 0 { "II" } else { "III" },
                i + 1,
                e.window_start
            ),
            &[
                "Strategy",
                "Service Time (s)",
                "Keep-alive Cost (USD)",
                "Accuracy (%)",
                "Warm starts",
            ],
        );
        let names = [
            "All High Quality",
            "All Low Quality",
            "Random High/Low",
            "Intelligent Solution",
        ];
        for (name, m) in names.iter().zip(e.rows.iter()) {
            table.row(vec![
                name.to_string(),
                fmt(m.service_time_s, 2),
                fmt(m.keepalive_cost_usd, 4),
                fmt(m.avg_accuracy_pct(), 2),
                m.warm_starts.to_string(),
            ]);
        }
        out.push_str(&table.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orderings_match_the_paper() {
        let evals = evaluate(&ExpConfig::quick());
        assert_eq!(evals.len(), 2);
        for e in &evals {
            let [high, low, random, intelligent] = &e.rows[..] else {
                panic!("expected 4 strategies");
            };
            // Cost ordering: all-low < random < all-high.
            assert!(low.keepalive_cost_usd < high.keepalive_cost_usd);
            assert!(random.keepalive_cost_usd < high.keepalive_cost_usd);
            assert!(random.keepalive_cost_usd > low.keepalive_cost_usd);
            // Accuracy ordering: all-low < random ≤ high; intelligent < high.
            assert!(low.avg_accuracy_pct() < high.avg_accuracy_pct());
            assert!(random.avg_accuracy_pct() <= high.avg_accuracy_pct());
            assert!(intelligent.avg_accuracy_pct() <= high.avg_accuracy_pct());
            // Intelligent stays cheaper than all-high.
            assert!(intelligent.keepalive_cost_usd <= high.keepalive_cost_usd);
            // Every strategy keeps functions alive for the window → equal
            // warm-start opportunity.
            assert_eq!(high.invocations(), low.invocations());
        }
    }

    #[test]
    fn renders_both_tables() {
        let out = run(&ExpConfig::quick());
        assert!(out.contains("Table II"));
        assert!(out.contains("Table III"));
        assert!(out.contains("Intelligent Solution"));
    }
}

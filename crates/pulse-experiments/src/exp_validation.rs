//! **Extension: engine cross-validation** — evidence that the minute-level
//! simulator (used for all paper-reproduction experiments, as in the paper
//! itself) is a sound abstraction of a real container platform.
//!
//! The same policy and trace are driven through two independent engines:
//! the minute-resolution `pulse-sim` simulator and the millisecond-
//! resolution event-driven `pulse-runtime` (explicit container lifecycle,
//! request queueing). For the deterministic fixed policy, warm/cold counts
//! and keep-alive cost must match *exactly*; for stateful PULSE they must
//! agree within a small tolerance (intra-minute event ordering can flip a
//! handful of borderline decisions). The runtime additionally reports the
//! latency percentiles the minute engine cannot express.

use crate::common::ExpConfig;
use crate::report::{fmt, Table};
use pulse_core::types::PulseConfig;
use pulse_runtime::{Runtime, RuntimeConfig};
use pulse_sim::assignment::round_robin_assignment;
use pulse_sim::policies::{OpenWhiskFixed, PulsePolicy};
use pulse_sim::Simulator;

/// Run the cross-validation and render the comparison.
pub fn run(cfg: &ExpConfig) -> String {
    let trace = cfg.trace();
    let fams = round_robin_assignment(&cfg.zoo(), trace.n_functions());
    let sim = Simulator::new(trace.clone(), fams.clone());
    let rt = Runtime::new(trace, fams.clone(), RuntimeConfig::default());

    let mut table = Table::new(
        "Engine cross-validation: minute simulator vs event-driven runtime",
        &[
            "Policy",
            "Engine",
            "Warm",
            "Cold",
            "Cost ($)",
            "Accuracy (%)",
            "p50 (ms)",
            "p99 (ms)",
        ],
    );

    let sim_ow = sim.run(&mut OpenWhiskFixed::new(&fams));
    let rt_ow = rt.run(&mut OpenWhiskFixed::new(&fams));
    let sim_pu = sim.run(&mut PulsePolicy::new(fams.clone(), PulseConfig::default()));
    let rt_pu = rt.run(&mut PulsePolicy::new(fams.clone(), PulseConfig::default()));

    for (policy, s, r) in [("openwhisk", &sim_ow, &rt_ow), ("pulse", &sim_pu, &rt_pu)] {
        table.row(vec![
            policy.into(),
            "minute-sim".into(),
            s.warm_starts.to_string(),
            s.cold_starts.to_string(),
            fmt(s.keepalive_cost_usd, 4),
            fmt(s.avg_accuracy_pct(), 2),
            "-".into(),
            "-".into(),
        ]);
        table.row(vec![
            policy.into(),
            "ms-runtime".into(),
            r.warm_starts().to_string(),
            r.cold_starts().to_string(),
            fmt(r.keepalive_cost_usd, 4),
            fmt(r.avg_accuracy_pct(), 2),
            fmt(r.latency_p50_ms(), 0),
            fmt(r.latency_p99_ms(), 0),
        ]);
    }

    let cost_delta = |a: f64, b: f64| {
        if b == 0.0 {
            0.0
        } else {
            ((a - b) / b * 100.0).abs()
        }
    };
    format!(
        "{}\nagreement: openwhisk cost delta {:.3}% (must be ~0), pulse cost delta {:.2}%\n",
        table.render(),
        cost_delta(rt_ow.keepalive_cost_usd, sim_ow.keepalive_cost_usd),
        cost_delta(rt_pu.keepalive_cost_usd, sim_pu.keepalive_cost_usd),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_policy_engines_agree_exactly() {
        let cfg = ExpConfig {
            seed: 42,
            horizon: 600,
            n_runs: 1,
            trace_out: None,
            serve: Default::default(),
        };
        let trace = cfg.trace();
        let fams = round_robin_assignment(&cfg.zoo(), trace.n_functions());
        let sim = Simulator::new(trace.clone(), fams.clone());
        let rt = Runtime::new(trace, fams.clone(), RuntimeConfig::default());
        let s = sim.run(&mut OpenWhiskFixed::new(&fams));
        let r = rt.run(&mut OpenWhiskFixed::new(&fams));
        assert_eq!(s.warm_starts, r.warm_starts());
        assert_eq!(s.cold_starts, r.cold_starts());
        assert!((s.keepalive_cost_usd - r.keepalive_cost_usd).abs() < 1e-9);
        assert!((s.avg_accuracy_pct() - r.avg_accuracy_pct()).abs() < 1e-9);
    }

    #[test]
    fn report_renders_both_engines() {
        let cfg = ExpConfig {
            seed: 42,
            horizon: 500,
            n_runs: 1,
            trace_out: None,
            serve: Default::default(),
        };
        let out = run(&cfg);
        assert!(out.contains("minute-sim"));
        assert!(out.contains("ms-runtime"));
        assert!(out.contains("agreement"));
    }
}

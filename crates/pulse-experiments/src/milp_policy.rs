//! A PULSE variant whose peak flattening is solved by the MILP (Figure 9).
//!
//! Scheduling (individual optimization) is identical to PULSE; only the
//! cross-function step differs: instead of Algorithm 2's greedy loop, the
//! exact multiple-choice-knapsack MILP picks the levels. This is the
//! apples-to-apples baseline the paper benchmarks: same inputs, same
//! flatten target, different optimizer — so the overhead and accuracy
//! deltas isolate the optimizer choice.

use pulse_core::global::{AliveModel, DowngradeAction};
use pulse_core::individual::KeepAliveSchedule;
use pulse_core::priority::PriorityStructure;
use pulse_core::types::{FuncId, Minute, PulseConfig};
use pulse_core::PulseEngine;
use pulse_milp::MilpDowngrader;
use pulse_models::{ModelFamily, VariantId};
use pulse_sim::policy::KeepAlivePolicy;

/// PULSE with MILP-based peak flattening.
pub struct MilpPolicy {
    engine: PulseEngine,
    priority: PriorityStructure,
    /// Cumulative time spent inside the MILP solver.
    pub solver_time: std::time::Duration,
    /// Number of peaks flattened.
    pub peaks: u64,
}

impl MilpPolicy {
    /// Build over a family assignment.
    pub fn new(families: Vec<ModelFamily>, config: PulseConfig) -> Self {
        let n = families.len();
        Self {
            engine: PulseEngine::new(families, config),
            priority: PriorityStructure::new(n),
            solver_time: std::time::Duration::ZERO,
            peaks: 0,
        }
    }
}

impl KeepAlivePolicy for MilpPolicy {
    fn name(&self) -> &str {
        "pulse-milp"
    }

    fn schedule_on_invocation(&mut self, f: FuncId, t: Minute) -> KeepAliveSchedule {
        self.engine.record_invocation(f, t);
        self.engine.schedule_after_invocation(f, t)
    }

    fn cold_start_variant(&mut self, f: FuncId, _t: Minute) -> VariantId {
        self.engine.family(f).highest_id()
    }

    fn adjust_minute(
        &mut self,
        t: Minute,
        mem_history: &[f64],
        first_minute_of_period: bool,
        current_kam_mb: f64,
        alive: &mut Vec<AliveModel>,
    ) -> Vec<DowngradeAction> {
        let detector = *self.engine.detector();
        let prior = detector.prior_kam(mem_history, first_minute_of_period);
        if !detector.is_peak(current_kam_mb, prior) {
            return Vec::new();
        }
        self.peaks += 1;
        for m in alive.iter_mut() {
            m.invocation_probability = self.engine.invocation_probability_at(m.func, t);
        }
        let target = detector.flatten_target(prior);
        let start = std::time::Instant::now();
        let plan = MilpDowngrader.solve(alive, self.engine.families(), &self.priority, target);
        self.solver_time += start.elapsed();

        // Translate the exact plan into the engine's action vocabulary and
        // update the alive set + priority structure accordingly.
        let mut actions = Vec::new();
        let mut keep: Vec<AliveModel> = Vec::with_capacity(alive.len());
        for (i, m) in alive.iter().enumerate() {
            match plan.levels[i] {
                Some(level) if level == m.variant => keep.push(m.clone()),
                Some(level) => {
                    // The MILP may jump several rungs at once; emit one
                    // single-rung action per step so the engine's clamping
                    // semantics stay uniform.
                    let mut from = m.variant;
                    while from > level {
                        actions.push(DowngradeAction::Downgrade {
                            func: m.func,
                            from,
                            to: from - 1,
                        });
                        from -= 1;
                    }
                    self.priority.bump(m.func);
                    let mut kept = m.clone();
                    kept.variant = level;
                    keep.push(kept);
                }
                None => {
                    actions.push(DowngradeAction::Evict {
                        func: m.func,
                        from: 0,
                    });
                    self.priority.bump(m.func);
                }
            }
        }
        *alive = keep;
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pulse_models::zoo;

    fn families() -> Vec<ModelFamily> {
        vec![zoo::gpt(), zoo::bert(), zoo::yolo()]
    }

    #[test]
    fn no_peak_means_no_solver_time() {
        let mut p = MilpPolicy::new(families(), PulseConfig::default());
        let mut alive = Vec::new();
        let a = p.adjust_minute(5, &[100.0; 20], false, 100.0, &mut alive);
        assert!(a.is_empty());
        assert_eq!(p.peaks, 0);
        assert_eq!(p.solver_time, std::time::Duration::ZERO);
    }

    #[test]
    fn peak_is_solved_within_budget() {
        let mut p = MilpPolicy::new(families(), PulseConfig::default());
        let fams = families();
        let mut alive: Vec<AliveModel> = fams
            .iter()
            .enumerate()
            .map(|(func, f)| AliveModel {
                func,
                variant: f.highest_id(),
                invocation_probability: 0.0,
            })
            .collect();
        let total: f64 = fams.iter().map(|f| f.highest().memory_mb).sum();
        let history = vec![total * 0.3; 30];
        let actions = p.adjust_minute(30, &history, false, total, &mut alive);
        assert!(!actions.is_empty());
        assert_eq!(p.peaks, 1);
        assert!(p.solver_time > std::time::Duration::ZERO);
        // Post-state memory within the flatten target.
        let target = total * 0.3 * 1.1;
        let after: f64 = alive
            .iter()
            .map(|m| fams[m.func].variant(m.variant).memory_mb)
            .sum();
        assert!(after <= target + 1e-6, "{after} > {target}");
    }

    #[test]
    fn multi_rung_downgrades_emit_single_steps() {
        let mut p = MilpPolicy::new(families(), PulseConfig::default());
        let fams = families();
        let mut alive = vec![AliveModel {
            func: 0,
            variant: fams[0].highest_id(),
            invocation_probability: 0.0,
        }];
        let history = vec![fams[0].lowest().memory_mb; 30];
        let actions = p.adjust_minute(30, &history, false, fams[0].highest().memory_mb, &mut alive);
        for a in &actions {
            if let DowngradeAction::Downgrade { from, to, .. } = a {
                assert_eq!(*to + 1, *from);
            }
        }
    }
}

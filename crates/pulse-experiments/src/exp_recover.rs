//! **Extension: crash-recovery harness** — kill a run at arbitrary points,
//! restore from the write-ahead journal, and prove the resumed run is
//! bit-identical to the uninterrupted one.
//!
//! The matrix covers both engines plus the multi-node fleet path: each run
//! writes a [`pulse_obs::JournalSink`] (epoch headers + periodic snapshot
//! checkpoints), is killed at a chosen minute with a simulated torn final
//! write, and is then recovered the way a real operator would —
//! [`pulse_obs::replay_journal`] finds the last intact checkpoint, the
//! engine restores it, and the resumed session runs to completion. Two
//! things must hold, and the table reports both:
//!
//! 1. the events the resumed run re-emits reproduce the journal tail (what
//!    the killed run had recorded after its last checkpoint) exactly —
//!    [`pulse_obs::first_divergence`] pinpoints the first mismatch when
//!    they do not;
//! 2. the final summary (cost, availability, accuracy, every counter and
//!    per-minute series) is bit-identical to the run that was never killed.
//!
//! Checkpoints here are taken by the segmented drive loop (snapshot → drop
//! the session → journal the snapshot → restore and continue), so every
//! checkpoint boundary *itself* exercises the restore path — the journaled
//! run is a chain of recoveries even before the kill.

use crate::common::ExpConfig;
use crate::report::Table;
use pulse_core::types::PulseConfig;
use pulse_models::ModelFamily;
use pulse_obs::{first_divergence, replay_journal, JournalSink, MemorySink, ObsEvent, TraceSink};
use pulse_runtime::{
    ClusterConfig, FaultPlan, FleetConfig, NodeCapacity, NodeFaultPlan, Runtime, RuntimeConfig,
    MS_PER_MINUTE,
};
use pulse_sim::assignment::round_robin_assignment;
use pulse_sim::policies::PulsePolicy;
use pulse_sim::Simulator;

/// One recovered kill point, as rendered into the report table.
struct Outcome {
    engine: &'static str,
    kill_minute: u64,
    checkpoints: u64,
    tail_events: usize,
    torn: bool,
    verdict: String,
}

fn pulse(fams: &[ModelFamily]) -> PulsePolicy {
    PulsePolicy::new(fams.to_vec(), PulseConfig::default())
}

/// Append a half-written line — the torn final write of a killed process.
fn tear(journal: Vec<u8>) -> String {
    let mut text = String::from_utf8_lossy(&journal).into_owned();
    text.push_str("{\"type\":\"bill\",\"minu");
    text
}

/// Combine the two recovery invariants into one table cell.
fn verdict(
    whole_dbg: &str,
    resumed_dbg: &str,
    tail: &[ObsEvent],
    resumed_events: &[ObsEvent],
) -> String {
    let prefix = &resumed_events[..tail.len().min(resumed_events.len())];
    if let Some(d) = first_divergence(tail, prefix) {
        return format!("tail diverges: {d}");
    }
    if whole_dbg != resumed_dbg {
        return "summary diverges".into();
    }
    "identical".into()
}

/// Kill/recover the minute engine at `kill_minute`, checkpointing every
/// `every` minutes.
fn sim_recover(
    sim: &Simulator,
    fams: &[ModelFamily],
    whole_dbg: &str,
    kill_minute: u64,
    every: u64,
) -> Result<Outcome, String> {
    let mut journal = JournalSink::new(Vec::new());
    let mut policy = pulse(fams);
    let mut last_ckpt: Option<String> = None;
    let mut cur = 0u64;
    while cur < kill_minute {
        let seg_end = (cur + every).min(kill_minute);
        let mut sess = match &last_ckpt {
            None => sim.session_traced(&mut policy, &mut journal),
            Some(snap) => sim
                .restore_session_traced(&mut policy, snap, &mut journal)
                .map_err(|e| format!("sim self-restore at minute {cur}: {e}"))?,
        };
        while sess.next_minute() < seg_end && sess.step_minute().is_some() {}
        if seg_end < kill_minute {
            let snap = sess.snapshot().map_err(|e| e.to_string())?;
            drop(sess);
            journal.checkpoint(&snap);
            last_ckpt = Some(snap);
        }
        cur = seg_end;
    }
    let checkpoints = journal.checkpoints();
    let text = tear(journal.into_inner());

    let replay = replay_journal(&text).map_err(|e| e.to_string())?;
    let mut resume_policy = pulse(fams);
    let mut resume_sink = MemorySink::new();
    let resumed = match &replay.last_checkpoint {
        Some((_, snap)) => {
            let mut sess = sim
                .restore_session_traced(&mut resume_policy, snap, &mut resume_sink)
                .map_err(|e| format!("recovery restore: {e}"))?;
            while sess.step_minute().is_some() {}
            sess.finish()
        }
        None => sim.run_traced(&mut resume_policy, &mut resume_sink),
    };
    Ok(Outcome {
        engine: "sim",
        kill_minute,
        checkpoints,
        tail_events: replay.tail.len(),
        torn: replay.torn_tail,
        verdict: verdict(
            whole_dbg,
            &format!("{resumed:?}"),
            &replay.tail,
            resume_sink.events(),
        ),
    })
}

/// Everything that identifies one runtime engine under test — shared
/// across that engine's kill points.
struct RtCase<'a> {
    engine: &'static str,
    rt: &'a Runtime,
    fams: &'a [ModelFamily],
    plan: &'a FaultPlan,
    fleet: &'a FleetConfig,
    whole_dbg: &'a str,
}

/// Kill/recover the event-driven runtime (cluster-compatible or fleet) at
/// `kill_minute`, checkpointing every `every` minutes.
fn rt_recover(case: &RtCase<'_>, kill_minute: u64, every: u64) -> Result<Outcome, String> {
    let RtCase {
        engine,
        rt,
        fams,
        plan,
        fleet,
        whole_dbg,
    } = *case;
    let mut journal = JournalSink::new(Vec::new());
    let mut policy = pulse(fams);
    let mut last_ckpt: Option<String> = None;
    let mut cur = 0u64;
    while cur < kill_minute {
        let seg_end = (cur + every).min(kill_minute);
        let mut sess = match &last_ckpt {
            None => rt.fleet_session_traced(&mut policy, plan, fleet.clone(), &mut journal),
            Some(snap) => rt
                .restore_fleet_session_traced(&mut policy, plan, fleet.clone(), snap, &mut journal)
                .map_err(|e| format!("{engine} self-restore at minute {cur}: {e}"))?,
        };
        let boundary = seg_end * MS_PER_MINUTE;
        while sess.peek_time().is_some_and(|t| t < boundary) && sess.step().is_some() {}
        if seg_end < kill_minute {
            let snap = sess.snapshot().map_err(|e| e.to_string())?;
            drop(sess);
            journal.checkpoint(&snap);
            last_ckpt = Some(snap);
        }
        cur = seg_end;
    }
    let checkpoints = journal.checkpoints();
    let text = tear(journal.into_inner());

    let replay = replay_journal(&text).map_err(|e| e.to_string())?;
    let mut resume_policy = pulse(fams);
    let mut resume_sink = MemorySink::new();
    let resumed = match &replay.last_checkpoint {
        Some((_, snap)) => {
            let mut sess = rt
                .restore_fleet_session_traced(
                    &mut resume_policy,
                    plan,
                    fleet.clone(),
                    snap,
                    &mut resume_sink,
                )
                .map_err(|e| format!("recovery restore: {e}"))?;
            while sess.step().is_some() {}
            sess.finish()
        }
        None => rt.run_with_fleet_traced(&mut resume_policy, plan, fleet, &mut resume_sink),
    };
    Ok(Outcome {
        engine,
        kill_minute,
        checkpoints,
        tail_events: replay.tail.len(),
        torn: replay.torn_tail,
        verdict: verdict(
            whole_dbg,
            &format!("{resumed:?}"),
            &replay.tail,
            resume_sink.events(),
        ),
    })
}

/// Run the kill-point matrix and render the recovery report.
pub fn run(cfg: &ExpConfig) -> String {
    let trace = cfg.trace();
    let fams = round_robin_assignment(&cfg.zoo(), trace.n_functions());
    let horizon = trace.minutes() as u64;
    let kills = [horizon / 4, (horizon * 3) / 5, (horizon * 9) / 10];
    let every = (horizon / 6).max(1);

    let mut table = Table::new(
        "Crash-recovery matrix: kill -> restore -> resume, vs the uninterrupted run",
        &["Engine", "Kill@min", "Ckpts", "Tail ev", "Torn", "Verdict"],
    );
    let mut rows: Vec<Outcome> = Vec::new();

    // Minute engine.
    let sim = Simulator::new(trace.clone(), fams.clone());
    let whole_sim = format!("{:?}", sim.run(&mut pulse(&fams)));
    for &k in &kills {
        rows.push(
            sim_recover(&sim, &fams, &whole_sim, k, every).unwrap_or_else(|e| failed("sim", k, e)),
        );
    }

    // Event-driven runtime, cluster-compatible path, with request-level
    // faults and the stochastic sampler on (the RNG cursors must survive).
    let rt = Runtime::new(
        trace.clone(),
        fams.clone(),
        RuntimeConfig {
            stochastic_seed: Some(cfg.seed),
            ..RuntimeConfig::default()
        },
    );
    let plan = FaultPlan::uniform(0.05, 0.02, 0.01, cfg.seed ^ 0x7EC0);
    let single = FleetConfig::from_cluster(ClusterConfig::unlimited());
    let whole_rt = format!("{:?}", rt.run_with_fleet(&mut pulse(&fams), &plan, &single));
    let rt_case = RtCase {
        engine: "rt",
        rt: &rt,
        fams: &fams,
        plan: &plan,
        fleet: &single,
        whole_dbg: &whole_rt,
    };
    for &k in &kills {
        rows.push(rt_recover(&rt_case, k, every).unwrap_or_else(|e| failed("rt", k, e)));
    }

    // Multi-node fleet under a rolling node-crash plan.
    let fleet = FleetConfig::uniform(3, NodeCapacity::gb(6.0))
        .with_node_faults(NodeFaultPlan::rolling_crashes(3, 10, 6, 30, horizon));
    let whole_fleet = format!("{:?}", rt.run_with_fleet(&mut pulse(&fams), &plan, &fleet));
    let fleet_case = RtCase {
        engine: "fleet",
        rt: &rt,
        fams: &fams,
        plan: &plan,
        fleet: &fleet,
        whole_dbg: &whole_fleet,
    };
    for &k in &kills {
        rows.push(rt_recover(&fleet_case, k, every).unwrap_or_else(|e| failed("fleet", k, e)));
    }

    // With --trace-out, persist one complete fleet journal (epoch headers,
    // periodic checkpoints, the full traced event stream) so external
    // tooling — CI's `obs_schema_check --require journal_epoch,checkpoint`
    // — can validate the on-disk format end to end.
    if let Some(path) = &cfg.trace_out {
        match fleet_journal(&rt, &fams, &plan, &fleet, horizon, every) {
            Ok(text) => {
                if let Err(e) = std::fs::write(path, text) {
                    eprintln!("warning: cannot write journal {}: {e}", path.display());
                }
            }
            Err(e) => eprintln!("warning: journal run failed: {e}"),
        }
    }

    let all_identical = rows.iter().all(|o| o.verdict == "identical");
    for o in rows {
        table.row(vec![
            o.engine.into(),
            o.kill_minute.to_string(),
            o.checkpoints.to_string(),
            o.tail_events.to_string(),
            if o.torn { "yes" } else { "no" }.into(),
            o.verdict,
        ]);
    }
    let note = if all_identical {
        "every kill point recovered bit-identically (summary + re-emitted event stream)"
    } else {
        "RECOVERY VIOLATION: at least one kill point diverged (see verdict column)"
    };
    format!("{}\n{note}\n", table.render())
}

/// Drive one fleet run to completion through a [`JournalSink`],
/// checkpointing every `every` minutes, and return the journal text.
fn fleet_journal(
    rt: &Runtime,
    fams: &[ModelFamily],
    plan: &FaultPlan,
    fleet: &FleetConfig,
    horizon: u64,
    every: u64,
) -> Result<String, String> {
    let mut journal = JournalSink::new(Vec::new());
    journal.record(&ObsEvent::RunStart {
        label: "recover/fleet-journal".into(),
    });
    let mut policy = pulse(fams);
    let mut last_ckpt: Option<String> = None;
    let mut cur = 0u64;
    while cur < horizon {
        let seg_end = (cur + every).min(horizon);
        let mut sess = match &last_ckpt {
            None => rt.fleet_session_traced(&mut policy, plan, fleet.clone(), &mut journal),
            Some(snap) => rt
                .restore_fleet_session_traced(&mut policy, plan, fleet.clone(), snap, &mut journal)
                .map_err(|e| format!("journal self-restore at minute {cur}: {e}"))?,
        };
        if seg_end < horizon {
            let boundary = seg_end * MS_PER_MINUTE;
            while sess.peek_time().is_some_and(|t| t < boundary) && sess.step().is_some() {}
            let snap = sess.snapshot().map_err(|e| e.to_string())?;
            drop(sess);
            journal.checkpoint(&snap);
            last_ckpt = Some(snap);
        } else {
            while sess.step().is_some() {}
            let _ = sess.finish();
        }
        cur = seg_end;
    }
    journal.flush().map_err(|e| e.to_string())?;
    Ok(String::from_utf8_lossy(&journal.into_inner()).into_owned())
}

fn failed(engine: &'static str, kill_minute: u64, e: String) -> Outcome {
    Outcome {
        engine,
        kill_minute,
        checkpoints: 0,
        tail_events: 0,
        torn: false,
        verdict: format!("FAILED: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpConfig {
        ExpConfig {
            seed: 42,
            horizon: 240,
            n_runs: 1,
            trace_out: None,
            serve: Default::default(),
        }
    }

    #[test]
    fn every_kill_point_recovers_identically() {
        let out = run(&tiny());
        assert!(
            out.contains("every kill point recovered bit-identically"),
            "{out}"
        );
        for engine in ["sim", "rt", "fleet"] {
            assert!(out.contains(engine), "missing engine {engine}:\n{out}");
        }
        assert!(!out.contains("FAILED"), "{out}");
    }

    #[test]
    fn matrix_is_deterministic() {
        assert_eq!(run(&tiny()), run(&tiny()));
    }

    #[test]
    fn trace_out_writes_a_replayable_journal() {
        let path = std::env::temp_dir().join("pulse_exp_recover_journal.jsonl");
        let cfg = ExpConfig {
            trace_out: Some(path.clone()),
            ..tiny()
        };
        let _ = run(&cfg);
        let text = std::fs::read_to_string(&path).expect("journal written");
        let _ = std::fs::remove_file(&path);
        let replay = replay_journal(&text).expect("journal replays clean");
        assert!(replay.last_checkpoint.is_some(), "no checkpoint in journal");
        assert!(!replay.torn_tail, "completed journal must not be torn");
        for kind in ["journal_epoch", "checkpoint", "run_start"] {
            assert!(
                text.contains(&format!("\"type\":\"{kind}\"")),
                "journal missing {kind} records"
            );
        }
    }
}

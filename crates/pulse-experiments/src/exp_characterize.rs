//! **Extension: workload characterization** — the ATC'20-style per-function
//! statistics behind the paper's Section II observations, as a printable
//! report. Useful both to sanity-check the synthetic workload against the
//! published Azure characteristics and to profile a user's own trace before
//! deploying PULSE on it.

use crate::common::ExpConfig;
use crate::report::{fmt, Table};
use pulse_trace::characterize::{profile_summary, profile_trace, IdleClass};

fn class_label(c: IdleClass) -> &'static str {
    match c {
        IdleClass::Periodic => "periodic",
        IdleClass::Irregular => "irregular",
        IdleClass::HeavyTailed => "heavy-tailed",
        IdleClass::Insufficient => "insufficient",
    }
}

/// Render the characterization report.
pub fn run(cfg: &ExpConfig) -> String {
    let trace = cfg.trace();
    let mut table = Table::new(
        "Workload characterization (per function)",
        &[
            "Function",
            "Invocations",
            "Active min %",
            "Mean gap",
            "p99 gap",
            "CV",
            "Burstiness",
            "Class",
            "<=10min mass",
        ],
    );
    for p in profile_trace(&trace) {
        table.row(vec![
            p.name.clone(),
            p.invocations.to_string(),
            fmt(p.active_minute_frac * 100.0, 1),
            fmt(p.mean_gap_min, 1),
            fmt(p.p99_gap_min, 1),
            fmt(p.gap_cv, 2),
            fmt(p.burstiness, 2),
            class_label(p.class).into(),
            fmt(p.in_window_mass * 100.0, 1),
        ]);
    }
    let s = profile_summary(&trace);
    format!(
        "{}\nclasses: {} periodic / {} irregular / {} heavy-tailed / {} insufficient; \
         total invocations {}; global peak-to-mean {}x; mean <=10min gap mass {}%\n",
        table.render(),
        s.class_counts.0,
        s.class_counts.1,
        s.class_counts.2,
        s.class_counts.3,
        s.invocations,
        fmt(s.peak_to_mean, 1),
        fmt(s.mean_in_window_mass * 100.0, 1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_all_functions() {
        let cfg = ExpConfig {
            seed: 42,
            horizon: 2000,
            n_runs: 1,
            trace_out: None,
            serve: Default::default(),
        };
        let out = run(&cfg);
        assert!(out.contains("steady-2m"));
        assert!(out.contains("heavytail"));
        assert!(out.contains("peak-to-mean"));
        // 12 data rows + header + separator + title + summary lines.
        assert!(out.lines().count() >= 15);
    }
}

//! **Extension: IceBreaker's heterogeneous-node layer** — the component the
//! paper explicitly elides ("we used only one type of node … eliminating
//! the need for utility function computation in IceBreaker"), evaluated in
//! its own right: over the workload's learned invocation probabilities,
//! compare utility-based node placement against the static all-high-end /
//! all-low-end / never-warm strategies on expected keep-alive spend and
//! expected latency.

use crate::common::ExpConfig;
use crate::report::{fmt, Table};
use pulse_core::types::PulseConfig;
use pulse_core::PulseEngine;
use pulse_forecast::nodes::{cold_latency_s, place, NodeType, PlacementConfig};
use pulse_sim::assignment::round_robin_assignment;

/// Expected outcome of one strategy over the workload: (keep-alive USD,
/// expected latency seconds, windows warmed).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StrategyOutcome {
    /// Total keep-alive spend, USD.
    pub cost_usd: f64,
    /// Expected service latency across windows, seconds.
    pub latency_s: f64,
    /// Number of (function, window) pairs warmed somewhere.
    pub warmed: u64,
}

/// Evaluate the four strategies analytically over every invocation's
/// following keep-alive window.
pub fn evaluate(cfg: &ExpConfig) -> Vec<(String, StrategyOutcome)> {
    let trace = cfg.trace();
    let fams = round_robin_assignment(&cfg.zoo(), trace.n_functions());
    let mut engine = PulseEngine::new(fams.clone(), PulseConfig::default());
    let cluster = NodeType::standard_cluster();
    let pcfg = PlacementConfig::default();
    let high = cluster
        .iter()
        .position(|n| n.name == "high-end")
        .expect("cluster has a high-end node");
    let low = cluster
        .iter()
        .position(|n| n.name == "low-end")
        .expect("cluster has a low-end node");

    let names = [
        "utility (icebreaker)",
        "all-high-end",
        "all-low-end",
        "never-warm",
    ];
    let mut outcomes = [StrategyOutcome::default(); 4];

    for (f, fam) in fams.iter().enumerate() {
        let spec = fam.highest().clone();
        let l_cold = cold_latency_s(&spec, &cluster);
        let keepalive_usd = |node: usize| {
            pcfg.cost
                .keepalive_cost_usd_per_minutes(spec.memory_mb, pcfg.horizon_min)
                * cluster[node].price_factor
        };
        let warm_latency = |node: usize| spec.warm_service_time_s * cluster[node].time_factor;
        for &t in &trace.function(f).invocation_minutes() {
            engine.record_invocation(f, t);
            // Probability that this window sees an invocation at all.
            let probs = engine.probabilities(f, t);
            let ip = probs.mass().clamp(0.0, 1.0);
            let choices: [Option<usize>; 4] = [
                place(ip, &spec, &cluster, &pcfg).node,
                Some(high),
                Some(low),
                None,
            ];
            for (o, choice) in outcomes.iter_mut().zip(choices) {
                match choice {
                    Some(node) => {
                        o.cost_usd += keepalive_usd(node);
                        o.latency_s += ip * warm_latency(node);
                        o.warmed += 1;
                    }
                    None => {
                        o.latency_s += ip * l_cold;
                    }
                }
            }
        }
    }
    names.iter().map(|s| s.to_string()).zip(outcomes).collect()
}

/// Render the comparison.
pub fn run(cfg: &ExpConfig) -> String {
    let rows = evaluate(cfg);
    let mut table = Table::new(
        "IceBreaker node placement: utility vs static strategies",
        &[
            "Strategy",
            "Keep-alive ($)",
            "E[latency] (s)",
            "Windows warmed",
            "Net value ($)",
        ],
    );
    // Net value baseline: never-warm's latency valued at VoT.
    let never = rows.iter().find(|(n, _)| n == "never-warm").unwrap().1;
    let vot = PlacementConfig::default().value_of_time_usd_per_s;
    for (name, o) in &rows {
        let net = (never.latency_s - o.latency_s) * vot - o.cost_usd;
        table.row(vec![
            name.clone(),
            fmt(o.cost_usd, 3),
            fmt(o.latency_s, 0),
            o.warmed.to_string(),
            fmt(net, 3),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpConfig {
        ExpConfig {
            seed: 42,
            horizon: 1200,
            n_runs: 1,
            trace_out: None,
            serve: Default::default(),
        }
    }

    #[test]
    fn utility_dominates_static_strategies_on_net_value() {
        let rows = evaluate(&tiny());
        let get = |n: &str| rows.iter().find(|(name, _)| name.contains(n)).unwrap().1;
        let never = get("never");
        let vot = PlacementConfig::default().value_of_time_usd_per_s;
        let net = |o: StrategyOutcome| (never.latency_s - o.latency_s) * vot - o.cost_usd;
        let u = net(get("utility"));
        assert!(u >= net(get("all-high")) - 1e-9, "utility {u} < all-high");
        assert!(u >= net(get("all-low")) - 1e-9, "utility {u} < all-low");
        assert!(u >= 0.0, "utility must beat never-warm: {u}");
    }

    #[test]
    fn cost_ordering_is_sane() {
        let rows = evaluate(&tiny());
        let get = |n: &str| rows.iter().find(|(name, _)| name.contains(n)).unwrap().1;
        assert!(get("all-high").cost_usd > get("all-low").cost_usd);
        assert_eq!(get("never").cost_usd, 0.0);
        assert!(get("utility").cost_usd <= get("all-high").cost_usd);
        // Latency: all-high fastest, never slowest.
        assert!(get("all-high").latency_s <= get("all-low").latency_s);
        assert!(get("all-low").latency_s <= get("never").latency_s);
    }

    #[test]
    fn report_renders() {
        let out = run(&tiny());
        assert!(out.contains("utility (icebreaker)"));
        assert!(out.contains("never-warm"));
    }
}

//! **Extension: chaos harness** — how the keep-alive policies behave on an
//! *unreliable* platform.
//!
//! The paper evaluates PULSE on a platform where provisioning always
//! succeeds and containers never crash. This experiment sweeps the
//! fault-injection layer of `pulse-runtime` across increasing fault rates
//! and compares PULSE against the OpenWhisk-style fixed baseline and the
//! intelligent per-function oracle on four axes at once: keep-alive cost,
//! availability, delivered accuracy (after fault-driven ladder
//! degradation), and tail latency (which absorbs the retry/backoff
//! schedules).
//!
//! The interesting question is whether PULSE's mixed-quality ladders are a
//! *resilience* asset: a family with more rungs has more fallback room
//! before a provisioning outage turns into failed requests, so accuracy
//! should degrade gracefully where a single-variant policy goes unavailable.

use crate::common::ExpConfig;
use crate::report::{fmt, Table};
use pulse_core::types::PulseConfig;
use pulse_obs::{JsonlSink, ObsEvent, TraceSink};
use pulse_runtime::{FaultPlan, Runtime, RuntimeConfig, RuntimeSummary};
use pulse_sim::assignment::round_robin_assignment;
use pulse_sim::policies::{IntelligentOracle, OpenWhiskFixed, PulsePolicy};
use pulse_sim::KeepAlivePolicy;

/// SLO used for the goodput column, ms (generous: cold start + headroom).
const SLO_MS: u64 = 60_000;

/// The swept fault rates: (label, provision failure, variant-load failure,
/// mid-execution crash). Rates are per-attempt probabilities.
const LEVELS: &[(&str, f64, f64, f64)] = &[
    ("none", 0.0, 0.0, 0.0),
    ("low", 0.05, 0.02, 0.01),
    ("mid", 0.20, 0.10, 0.05),
    ("high", 0.50, 0.30, 0.15),
];

fn run_one(
    cfg: &ExpConfig,
    label: &str,
    plan: &FaultPlan,
    table: &mut Table,
    sink: &mut Option<JsonlSink<std::fs::File>>,
) -> Vec<(String, RuntimeSummary)> {
    let trace = cfg.trace();
    let fams = round_robin_assignment(&cfg.zoo(), trace.n_functions());
    let rt = Runtime::new(
        trace.clone(),
        fams.clone(),
        RuntimeConfig {
            stochastic_seed: Some(cfg.seed),
            ..RuntimeConfig::default()
        },
    );

    let mut policies: Vec<(&str, Box<dyn KeepAlivePolicy>)> = vec![
        ("openwhisk", Box::new(OpenWhiskFixed::new(&fams))),
        (
            "intelligent",
            Box::new(IntelligentOracle::new(&fams, trace.clone())),
        ),
        (
            "pulse",
            Box::new(PulsePolicy::new(fams.clone(), PulseConfig::default())),
        ),
    ];

    let mut out = Vec::new();
    for (policy, p) in &mut policies {
        // One labelled segment per traced run: a `run_start` header line,
        // then that run's event stream.
        let s = match sink.as_mut() {
            Some(js) => {
                js.record(&ObsEvent::RunStart {
                    label: format!("chaos/{label}/{policy}"),
                });
                rt.run_with_faults_traced(p.as_mut(), plan, js)
            }
            None => rt.run_with_faults(p.as_mut(), plan),
        };
        let policy = *policy;
        table.row(vec![
            label.into(),
            policy.into(),
            fmt(s.keepalive_cost_usd, 4),
            fmt(s.availability() * 100.0, 2),
            fmt(s.goodput(SLO_MS) * 100.0, 2),
            fmt(s.avg_accuracy_pct(), 2),
            s.degradations.to_string(),
            (s.provision_retries + s.request_retries).to_string(),
            s.timeouts.to_string(),
            fmt(s.latency_p99_ms(), 0),
        ]);
        out.push((policy.to_string(), s));
    }
    out
}

/// Run the chaos sweep and render the comparison table.
pub fn run(cfg: &ExpConfig) -> String {
    let mut table = Table::new(
        "Chaos sweep: cost / availability / delivered accuracy under faults",
        &[
            "Faults",
            "Policy",
            "Cost ($)",
            "Avail (%)",
            "Goodput (%)",
            "Accuracy (%)",
            "Degr",
            "Retries",
            "Timeouts",
            "p99 (ms)",
        ],
    );

    let mut sink = cfg.open_trace();
    let mut clean_cost = f64::NAN;
    let mut worst: Vec<(String, RuntimeSummary)> = Vec::new();
    for (i, &(label, prov, load, crash)) in LEVELS.iter().enumerate() {
        let plan =
            FaultPlan::uniform(prov, load, crash, cfg.seed ^ 0x000C_4A05).with_timeout_ms(120_000);
        let out = run_one(cfg, label, &plan, &mut table, &mut sink);
        if i == 0 {
            if let Some((_, s)) = out.iter().find(|(p, _)| p == "pulse") {
                clean_cost = s.keepalive_cost_usd;
            }
        }
        worst = out;
    }

    let pulse_worst = worst
        .iter()
        .find(|(p, _)| p == "pulse")
        .map(|(_, s)| (s.availability(), s.keepalive_cost_usd));
    let note = match pulse_worst {
        Some((avail, cost)) => format!(
            "pulse at the highest fault level: availability {:.1}%, cost {:.4} vs {:.4} clean \
             (ladder degradation trades accuracy for availability; billing stays schedule-driven)",
            avail * 100.0,
            cost,
            clean_cost
        ),
        None => String::new(),
    };
    format!("{}\n{}\n", table.render(), note)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpConfig {
        ExpConfig {
            seed: 42,
            horizon: 300,
            n_runs: 1,
            trace_out: None,
            serve: Default::default(),
        }
    }

    #[test]
    fn sweep_covers_all_levels_and_policies() {
        let out = run(&tiny());
        for level in ["none", "low", "mid", "high"] {
            assert!(out.contains(level), "missing level {level}:\n{out}");
        }
        for policy in ["openwhisk", "intelligent", "pulse"] {
            assert!(out.contains(policy), "missing policy {policy}:\n{out}");
        }
        assert!(out.contains("ladder degradation"));
    }

    #[test]
    fn sweep_is_deterministic() {
        assert_eq!(run(&tiny()), run(&tiny()));
    }

    #[test]
    fn trace_out_event_counts_match_summary_counters() {
        use pulse_obs::ActionSource;
        let path = std::env::temp_dir().join(format!(
            "pulse-chaos-trace-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        std::fs::File::create(&path).expect("truncate trace file");
        let cfg = ExpConfig {
            trace_out: Some(path.clone()),
            ..tiny()
        };
        let plan =
            FaultPlan::uniform(0.20, 0.10, 0.05, cfg.seed ^ 0x000C_4A05).with_timeout_ms(120_000);
        let mut table = Table::new("t", &["a", "b", "c", "d", "e", "f", "g", "h", "i", "j"]);
        let mut sink = cfg.open_trace();
        let out = run_one(&cfg, "mid", &plan, &mut table, &mut sink);
        assert!(!sink.expect("sink opens").had_error());

        // Re-parse the JSONL and split it into per-run segments at the
        // `run_start` header lines.
        let text = std::fs::read_to_string(&path).expect("trace file exists");
        let mut segments: Vec<(String, Vec<ObsEvent>)> = Vec::new();
        for line in text.lines() {
            let ev = ObsEvent::from_json(line).expect("every line is a valid event");
            match ev {
                ObsEvent::RunStart { label } => segments.push((label, Vec::new())),
                ev => segments
                    .last_mut()
                    .expect("run_start precedes events")
                    .1
                    .push(ev),
            }
        }
        let _ = std::fs::remove_file(&path);

        assert_eq!(segments.len(), out.len(), "one segment per policy run");
        for ((label, events), (policy, s)) in segments.iter().zip(&out) {
            assert_eq!(label, &format!("chaos/mid/{policy}"));
            // The acceptance identity: downgrade/eviction event counts in
            // the trace equal the corresponding RuntimeSummary counters.
            let policy_actions = events
                .iter()
                .filter(|e| {
                    matches!(
                        e,
                        ObsEvent::Downgrade {
                            source: ActionSource::Policy,
                            ..
                        } | ObsEvent::Evict {
                            source: ActionSource::Policy,
                            ..
                        }
                    )
                })
                .count();
            assert_eq!(policy_actions as u64, s.downgrades, "{policy}");
            let pressure_downgrades = events
                .iter()
                .filter(|e| {
                    matches!(
                        e,
                        ObsEvent::Downgrade {
                            source: ActionSource::Pressure,
                            ..
                        }
                    )
                })
                .count();
            assert_eq!(
                pressure_downgrades as u64, s.pressure_downgrades,
                "{policy}"
            );
            let evictions = events
                .iter()
                .filter(|e| {
                    matches!(
                        e,
                        ObsEvent::Evict {
                            source: ActionSource::Pressure,
                            ..
                        }
                    )
                })
                .count();
            assert_eq!(evictions as u64, s.evictions, "{policy}");
            // Faulted degradations appear as `degrade` events.
            let degrades = events
                .iter()
                .filter(|e| matches!(e, ObsEvent::Degrade { .. }))
                .count();
            assert_eq!(degrades as u64, s.degradations, "{policy}");
        }
    }
}

//! Shared experiment plumbing: workload/zoo construction, multi-run
//! campaigns, and improvement arithmetic.

use pulse_models::{zoo, ModelFamily};
use pulse_sim::metrics::Aggregate;
use pulse_sim::runner::{self, MultiRunConfig, PolicyFactory};
use pulse_trace::{synth, Trace};

/// Scale knobs for the live serving experiment (`serve`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeOptions {
    /// Target arrival rate, requests per virtual second (`--rps`).
    pub rps: u64,
    /// Virtual seconds of generated load (`--duration`).
    pub seconds: u64,
}

impl Default for ServeOptions {
    /// CI-friendly scale: finishes in about a second even in debug builds.
    fn default() -> Self {
        Self {
            rps: 20_000,
            seconds: 2,
        }
    }
}

impl ServeOptions {
    /// The single-box demo scale behind `pulse-exp serve --demo`.
    pub fn demo() -> Self {
        Self {
            rps: 200_000,
            seconds: 10,
        }
    }
}

/// Experiment-wide configuration.
#[derive(Debug, Clone)]
pub struct ExpConfig {
    /// Trace seed.
    pub seed: u64,
    /// Horizon in minutes.
    pub horizon: usize,
    /// Runs per policy in multi-run campaigns.
    pub n_runs: usize,
    /// Structured JSONL trace destination (`--trace-out`). The CLI
    /// truncates the file once at startup; experiments append, so a
    /// multi-experiment invocation shares one stream.
    pub trace_out: Option<std::path::PathBuf>,
    /// Live serving scale (`serve` experiment only).
    pub serve: ServeOptions,
}

impl ExpConfig {
    /// Fast configuration: 4 days, 30 runs — minutes of wall clock.
    pub fn quick() -> Self {
        Self {
            seed: 42,
            horizon: 4 * pulse_trace::MINUTES_PER_DAY,
            n_runs: 30,
            trace_out: None,
            serve: ServeOptions::default(),
        }
    }

    /// Paper-scale configuration: 14 days, 1000 runs.
    pub fn full() -> Self {
        Self {
            seed: 42,
            horizon: pulse_trace::TWO_WEEKS_MINUTES,
            n_runs: 1000,
            trace_out: None,
            serve: ServeOptions::default(),
        }
    }

    /// Open the configured trace file for appending, if any. Returns `None`
    /// both when tracing is off and when the file cannot be opened (with a
    /// warning on stderr) — experiments run untraced rather than die.
    pub fn open_trace(&self) -> Option<pulse_obs::JsonlSink<std::fs::File>> {
        let path = self.trace_out.as_ref()?;
        match std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            Ok(f) => Some(pulse_obs::JsonlSink::new(f)),
            Err(e) => {
                eprintln!("warning: cannot open trace file {}: {e}", path.display());
                None
            }
        }
    }

    /// The standard 12-function workload at this configuration's horizon.
    pub fn trace(&self) -> Trace {
        synth::azure_like_12_with_horizon(self.seed, self.horizon)
    }

    /// The standard model zoo.
    pub fn zoo(&self) -> Vec<ModelFamily> {
        zoo::standard()
    }

    /// Run a multi-run campaign for one policy and aggregate.
    pub fn campaign(&self, trace: &Trace, name: &str, factory: &PolicyFactory<'_>) -> Aggregate {
        let cfg = MultiRunConfig {
            n_runs: self.n_runs,
            base_seed: self.seed,
            threads: None,
        };
        let z = self.zoo();
        let runs = runner::run_many(trace, &z, &cfg, factory);
        runner::aggregate(name, &runs)
    }
}

/// Percentage improvement of `ours` over `baseline` for lower-is-better
/// quantities (positive = we're cheaper/faster).
pub fn improvement_lower_better(ours: f64, baseline: f64) -> f64 {
    if baseline == 0.0 {
        0.0
    } else {
        (baseline - ours) / baseline * 100.0
    }
}

/// Percentage improvement for higher-is-better quantities (accuracy):
/// positive = we're more accurate.
pub fn improvement_higher_better(ours: f64, baseline: f64) -> f64 {
    if baseline == 0.0 {
        0.0
    } else {
        (ours - baseline) / baseline * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_have_expected_scales() {
        let q = ExpConfig::quick();
        let f = ExpConfig::full();
        assert!(q.horizon < f.horizon);
        assert!(q.n_runs < f.n_runs);
        assert_eq!(f.horizon, 20160);
        assert_eq!(f.n_runs, 1000);
    }

    #[test]
    fn trace_matches_config() {
        let q = ExpConfig::quick();
        let t = q.trace();
        assert_eq!(t.minutes(), q.horizon);
        assert_eq!(t.n_functions(), 12);
    }

    #[test]
    fn improvement_signs() {
        assert!(improvement_lower_better(60.0, 100.0) > 0.0);
        assert!(improvement_lower_better(120.0, 100.0) < 0.0);
        assert!(improvement_higher_better(90.0, 80.0) > 0.0);
        assert!(improvement_higher_better(70.0, 80.0) < 0.0);
        assert_eq!(improvement_lower_better(1.0, 0.0), 0.0);
    }
}

//! **E1 / Table I** — comparative analysis of model variants: warm service
//! time, keep-alive cost (cents/hour), accuracy.
//!
//! The paper measured these on AWS Lambda over 1000 inputs per variant; we
//! regenerate the table from the calibrated zoo and run the stochastic
//! profiler campaign to report the measured-style spread alongside.

use crate::report::{fmt, Table};
use pulse_models::{zoo, CostModel, Profiler, ProfilerConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Regenerate Table I (plus profiled p99s, which the paper gathered but does
/// not tabulate).
pub fn run(seed: u64) -> String {
    let cm = CostModel::aws_lambda();
    let profiler = Profiler::new(ProfilerConfig::default());
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut table = Table::new(
        "Table I: model variants — service time, keep-alive cost, accuracy",
        &[
            "Model",
            "Service Time (s)",
            "p99 (s)",
            "Cold Start (s)",
            "Keep-Alive (c/h)",
            "Accuracy (%)",
        ],
    );
    for family in zoo::standard() {
        for v in &family.variants {
            let prof = profiler.profile(v, &mut rng);
            table.row(vec![
                v.name.clone(),
                fmt(prof.warm.mean_s, 2),
                fmt(prof.warm.p99_s, 2),
                fmt(prof.cold.mean_s, 2),
                fmt(cm.cents_per_hour(v.memory_mb), 3),
                fmt(v.accuracy_pct, 2),
            ]);
        }
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regenerates_all_fourteen_variants() {
        let out = run(1);
        // 5 families with 2+3+3+3+3 = 14 variants.
        for name in [
            "GPT-Small",
            "GPT-Medium",
            "GPT-Large",
            "BERT-Small",
            "BERT-Large",
            "DenseNet-121",
            "YOLO-s",
            "ResNet-152",
        ] {
            assert!(out.contains(name), "missing {name}:\n{out}");
        }
    }

    #[test]
    fn published_cost_column_is_reproduced() {
        let out = run(1);
        // GPT-Large's published 41.71 c/h must appear (3-decimal render).
        assert!(out.contains("41.710"), "{out}");
        assert!(out.contains("4.392"), "{out}");
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(run(7), run(7));
    }
}

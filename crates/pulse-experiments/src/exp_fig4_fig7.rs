//! **E5 / Figure 4** and **E9 / Figure 7** — keep-alive memory timelines.
//!
//! Figure 4: OpenWhisk's fixed policy shows high, spiky keep-alive memory;
//! individual optimization alone reduces the level but peaks persist —
//! motivating the global optimizer. Figure 7: full PULSE both lowers the
//! level *and* smooths the peaks, at a sub-percent accuracy cost.

use crate::common::ExpConfig;
use crate::report::{ascii_series, fmt};
use pulse_core::types::PulseConfig;
use pulse_sim::assignment::round_robin_assignment;
use pulse_sim::policies::{OpenWhiskFixed, PulsePolicy};
use pulse_sim::{RunMetrics, Simulator};

/// The three runs the two figures compare.
pub struct MemoryRuns {
    /// OpenWhisk fixed 10-minute policy.
    pub openwhisk: RunMetrics,
    /// PULSE with the global optimizer disabled (Figure 4b).
    pub individual_only: RunMetrics,
    /// Full PULSE (Figure 7b).
    pub pulse: RunMetrics,
}

/// Simulate the three policies on the same assignment.
pub fn evaluate(cfg: &ExpConfig) -> MemoryRuns {
    let trace = cfg.trace();
    let fams = round_robin_assignment(&cfg.zoo(), trace.n_functions());
    let sim = Simulator::new(trace, fams.clone());
    MemoryRuns {
        openwhisk: sim.run(&mut OpenWhiskFixed::new(&fams)),
        individual_only: sim.run(&mut PulsePolicy::without_global(
            fams.clone(),
            PulseConfig::default(),
        )),
        pulse: sim.run(&mut PulsePolicy::new(fams, PulseConfig::default())),
    }
}

fn summary(label: &str, m: &RunMetrics) -> String {
    format!(
        "{label}: avg {} MB, peak {} MB, accuracy {} %, downgrades {}\n",
        fmt(m.avg_memory_mb(), 0),
        fmt(m.peak_memory_mb(), 0),
        fmt(m.avg_accuracy_pct(), 2),
        m.downgrades
    )
}

/// Render Figure 4 (OpenWhisk vs individual-only).
pub fn run_fig4(cfg: &ExpConfig) -> String {
    let r = evaluate(cfg);
    let mut out = String::from(
        "== Figure 4: keep-alive memory, fixed policy vs individual optimization ==\n",
    );
    out.push_str(&summary("(a) OpenWhisk fixed   ", &r.openwhisk));
    out.push_str(&summary("(b) Individual only   ", &r.individual_only));
    out.push_str(&ascii_series(
        "(a) OpenWhisk keep-alive memory (MB)",
        &r.openwhisk.memory_series_mb,
        24,
    ));
    out.push_str(&ascii_series(
        "(b) Individual-only keep-alive memory (MB)",
        &r.individual_only.memory_series_mb,
        24,
    ));
    out
}

/// Render Figure 7 (OpenWhisk vs full PULSE).
pub fn run_fig7(cfg: &ExpConfig) -> String {
    let r = evaluate(cfg);
    let mut out = String::from("== Figure 7: keep-alive memory, fixed policy vs full PULSE ==\n");
    out.push_str(&summary("(a) OpenWhisk fixed   ", &r.openwhisk));
    out.push_str(&summary("(b) PULSE             ", &r.pulse));
    out.push_str(&format!(
        "accuracy drop (a)→(b): {} points\n",
        fmt(
            r.openwhisk.avg_accuracy_pct() - r.pulse.avg_accuracy_pct(),
            2
        )
    ));
    out.push_str(&ascii_series(
        "(a) OpenWhisk keep-alive memory (MB)",
        &r.openwhisk.memory_series_mb,
        24,
    ));
    out.push_str(&ascii_series(
        "(b) PULSE keep-alive memory (MB)",
        &r.pulse.memory_series_mb,
        24,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn individual_optimization_reduces_memory_but_global_smooths_more() {
        let r = evaluate(&ExpConfig::quick());
        // Figure 4's claim: individual optimization lowers average memory.
        assert!(
            r.individual_only.avg_memory_mb() < r.openwhisk.avg_memory_mb(),
            "individual {} !< openwhisk {}",
            r.individual_only.avg_memory_mb(),
            r.openwhisk.avg_memory_mb()
        );
        // Figure 7's claim: full PULSE also lowers (and smooths) memory.
        assert!(r.pulse.avg_memory_mb() < r.openwhisk.avg_memory_mb());
        assert!(r.pulse.peak_memory_mb() <= r.individual_only.peak_memory_mb());
        // The global layer is what takes the downgrade actions.
        assert_eq!(r.individual_only.downgrades, 0);
    }

    #[test]
    fn accuracy_cost_is_small() {
        let r = evaluate(&ExpConfig::quick());
        let drop = r.openwhisk.avg_accuracy_pct() - r.pulse.avg_accuracy_pct();
        assert!(drop < 5.0, "accuracy drop too large: {drop}");
    }

    #[test]
    fn reports_render() {
        let cfg = ExpConfig::quick();
        let f4 = run_fig4(&cfg);
        let f7 = run_fig7(&cfg);
        assert!(f4.contains("Figure 4"));
        assert!(f7.contains("Figure 7"));
        assert!(f7.contains("accuracy drop"));
    }
}

//! Plain-text reporting: aligned tables and ASCII series, so every
//! experiment prints the same rows/series the paper's tables and figures
//! show, without a plotting dependency.

use std::fmt::Write as _;

/// A titled, column-aligned table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render as machine-readable CSV (header row + data rows; cells with
    /// commas are quoted).
    pub fn to_csv(&self) -> String {
        let quote = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| quote(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let _ = writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }
}

/// Format a float with `d` decimals.
pub fn fmt(x: f64, d: usize) -> String {
    format!("{x:.d$}")
}

/// Format a signed percentage with 1 decimal.
pub fn pct(x: f64) -> String {
    format!("{x:+.1}%")
}

/// Render a numeric series as an ASCII bar chart (one line per point),
/// downsampled to at most `max_points` by block averaging — the textual
/// stand-in for the paper's line plots.
pub fn ascii_series(title: &str, xs: &[f64], max_points: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "-- {title} --");
    if xs.is_empty() {
        let _ = writeln!(out, "(empty series)");
        return out;
    }
    let block = xs.len().div_ceil(max_points.max(1));
    let points: Vec<(usize, f64)> = xs
        .chunks(block)
        .enumerate()
        .map(|(i, c)| (i * block, c.iter().sum::<f64>() / c.len() as f64))
        .collect();
    let hi = points
        .iter()
        .map(|&(_, v)| v)
        .fold(f64::NEG_INFINITY, f64::max);
    let lo = points.iter().map(|&(_, v)| v).fold(f64::INFINITY, f64::min);
    let span = (hi - lo).max(1e-12);
    for (t, v) in points {
        let bar = ((v - lo) / span * 50.0).round() as usize;
        let _ = writeln!(out, "{t:>7}  {v:>12.2}  {}", "#".repeat(bar));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "2.5".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("long-name"));
        let lines: Vec<&str> = s.lines().collect();
        // header, separator, two rows, plus the title line
        assert_eq!(lines.len(), 5);
        assert_eq!(t.n_rows(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_row_rejected() {
        Table::new("x", &["a", "b"]).row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_export_quotes_commas() {
        let mut t = Table::new("x", &["name", "note"]);
        t.row(vec!["a".into(), "plain".into()]);
        t.row(vec!["b".into(), "has, comma".into()]);
        t.row(vec!["c".into(), "has \"quote\"".into()]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "name,note");
        assert_eq!(lines[2], "b,\"has, comma\"");
        assert_eq!(lines[3], "c,\"has \"\"quote\"\"\"");
    }

    #[test]
    fn series_downsamples() {
        let xs: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let s = ascii_series("ramp", &xs, 10);
        // Ten data lines plus the title.
        assert_eq!(s.lines().count(), 11);
        assert!(s.contains("ramp"));
    }

    #[test]
    fn empty_series_handled() {
        let s = ascii_series("none", &[], 10);
        assert!(s.contains("(empty series)"));
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt(12.3456, 2), "12.35");
        assert_eq!(pct(39.52), "+39.5%");
        assert_eq!(pct(-0.61), "-0.6%");
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let s = ascii_series("flat", &[5.0; 100], 5);
        assert!(s.lines().count() >= 5);
    }
}

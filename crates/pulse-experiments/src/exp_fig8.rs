//! **E10 / Figure 8** — integrating PULSE into Wild and IceBreaker.
//!
//! For each technique, the original (model-variant-oblivious, no memory
//! constraint) is compared with the PULSE-integrated version on the same
//! workload and assignments. The paper reports: Wild+PULSE cuts keep-alive
//! cost by 99 % at a 27.1 % service-time and 0.6 % accuracy penalty;
//! IceBreaker+PULSE cuts cost 14 % *and* service time 7 % at a 0.5 %
//! accuracy penalty.

use crate::common::{improvement_higher_better, improvement_lower_better, ExpConfig};
use crate::report::{pct, Table};
use pulse_core::types::PulseConfig;
use pulse_forecast::integrate::{
    IceBreakerPolicy, IceBreakerPulsePolicy, WildPolicy, WildPulsePolicy,
};
use pulse_sim::runner::PolicyFactory;

/// Mean metrics per technique: (name, cost, accuracy, service time).
pub fn evaluate(cfg: &ExpConfig) -> Vec<(String, f64, f64, f64)> {
    let trace = cfg.trace();
    let trace_for_ib = trace.clone();
    let trace_for_ibp = trace.clone();
    let factories: Vec<(&str, Box<PolicyFactory<'_>>)> = vec![
        (
            "wild",
            Box::new(|fams: &[pulse_models::ModelFamily], _| {
                Box::new(WildPolicy::new(fams)) as Box<dyn pulse_sim::KeepAlivePolicy>
            }),
        ),
        (
            "wild+pulse",
            Box::new(|fams: &[pulse_models::ModelFamily], _| {
                Box::new(WildPulsePolicy::new(fams.to_vec(), PulseConfig::default()))
                    as Box<dyn pulse_sim::KeepAlivePolicy>
            }),
        ),
        (
            "icebreaker",
            Box::new(move |fams: &[pulse_models::ModelFamily], _| {
                Box::new(IceBreakerPolicy::new(fams, trace_for_ib.clone()))
                    as Box<dyn pulse_sim::KeepAlivePolicy>
            }),
        ),
        (
            "icebreaker+pulse",
            Box::new(move |fams: &[pulse_models::ModelFamily], _| {
                Box::new(IceBreakerPulsePolicy::new(
                    fams.to_vec(),
                    trace_for_ibp.clone(),
                    PulseConfig::default(),
                )) as Box<dyn pulse_sim::KeepAlivePolicy>
            }),
        ),
    ];
    factories
        .into_iter()
        .map(|(name, factory)| {
            let agg = cfg.campaign(&trace, name, factory.as_ref());
            (
                name.to_string(),
                agg.keepalive_cost_usd.mean(),
                agg.accuracy_pct.mean(),
                agg.service_time_s.mean(),
            )
        })
        .collect()
}

/// Render Figure 8.
pub fn run(cfg: &ExpConfig) -> String {
    let rows = evaluate(cfg);
    let get = |n: &str| rows.iter().find(|(name, ..)| name == n).cloned().unwrap();
    let mut table = Table::new(
        "Figure 8: % improvement from integrating PULSE into each technique",
        &[
            "Technique",
            "Keep-alive Cost",
            "Service Time",
            "Accuracy",
            "Paper (cost/svc/acc)",
        ],
    );
    for (base, integrated, paper) in [
        ("wild", "wild+pulse", "+99% / -27.1% / -0.6%"),
        ("icebreaker", "icebreaker+pulse", "+14% / +7% / -0.5%"),
    ] {
        let (_, b_cost, b_acc, b_svc) = get(base);
        let (_, i_cost, i_acc, i_svc) = get(integrated);
        table.row(vec![
            base.to_string(),
            pct(improvement_lower_better(i_cost, b_cost)),
            pct(improvement_lower_better(i_svc, b_svc)),
            pct(improvement_higher_better(i_acc, b_acc)),
            paper.to_string(),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpConfig {
        ExpConfig {
            seed: 42,
            horizon: 1500,
            n_runs: 4,
            trace_out: None,
            serve: Default::default(),
        }
    }

    #[test]
    fn pulse_integration_cuts_wild_cost_substantially() {
        let rows = evaluate(&tiny());
        let get = |n: &str| rows.iter().find(|(name, ..)| name == n).cloned().unwrap();
        let (_, wild_cost, wild_acc, _) = get("wild");
        let (_, wp_cost, wp_acc, _) = get("wild+pulse");
        let cut = improvement_lower_better(wp_cost, wild_cost);
        assert!(cut > 20.0, "wild+pulse cost cut only {cut:.1}%");
        assert!(wild_acc - wp_acc < 5.0);
    }

    #[test]
    fn icebreaker_integration_cuts_cost() {
        let rows = evaluate(&tiny());
        let get = |n: &str| rows.iter().find(|(name, ..)| name == n).cloned().unwrap();
        let (_, ib_cost, ib_acc, _) = get("icebreaker");
        let (_, ibp_cost, ibp_acc, _) = get("icebreaker+pulse");
        assert!(ibp_cost <= ib_cost, "ib+pulse {ibp_cost} !<= ib {ib_cost}");
        assert!(ib_acc - ibp_acc < 5.0);
    }

    #[test]
    fn report_renders_both_rows() {
        let out = run(&tiny());
        assert!(out.contains("wild"));
        assert!(out.contains("icebreaker"));
        assert!(out.contains("Paper"));
    }
}

//! # pulse-experiments — regenerating every table and figure of the paper
//!
//! One module per experiment of the PULSE paper (SC-W 2024), each producing
//! a plain-text table or ASCII series mirroring the published element. The
//! `pulse-exp` binary (see `main.rs`) runs any subset.
//!
//! | Experiment | Paper element | Module |
//! |---|---|---|
//! | E1 | Table I | [`exp_table1`] |
//! | E2, E3 | Figures 1–2 | [`exp_fig1_fig2`] |
//! | E4 | Tables II & III | [`exp_tables23`] |
//! | E5, E9 | Figures 4 & 7 | [`exp_fig4_fig7`] |
//! | E6–E8 | Figures 5, 6a, 6b | [`exp_fig5_fig6`] |
//! | E10 | Figure 8 | [`exp_fig8`] |
//! | E11 | Figure 9 | [`exp_fig9`] |
//! | E12–E14 | Figures 10–12 | [`exp_sensitivity`] |

pub mod common;
pub mod exp_ablation;
pub mod exp_chaos;
pub mod exp_characterize;
pub mod exp_fig1_fig2;
pub mod exp_fig4_fig7;
pub mod exp_fig5_fig6;
pub mod exp_fig8;
pub mod exp_fig9;
pub mod exp_fleet;
pub mod exp_nodes;
pub mod exp_overload;
pub mod exp_predictors;
pub mod exp_recover;
pub mod exp_scalability;
pub mod exp_sensitivity;
pub mod exp_serve;
pub mod exp_table1;
pub mod exp_tables23;
pub mod exp_validation;
pub mod milp_policy;
pub mod report;

pub use common::{ExpConfig, ServeOptions};

/// All experiment names accepted by the CLI, in presentation order.
pub const EXPERIMENTS: &[&str] = &[
    "table1",
    "fig1",
    "fig2",
    "table2",
    "fig4",
    "fig5",
    "fig6a",
    "fig6b",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "ablation-utility",
    "ablation-probability",
    "capacity",
    "scalability",
    "window",
    "validate",
    "chaos",
    "fleet",
    "characterize",
    "predictors",
    "nodes",
    "overload",
    "recover",
    "serve",
];

/// Run one experiment by name. Unknown names return an error string listing
/// the valid options.
pub fn run_experiment(name: &str, cfg: &ExpConfig) -> Result<String, String> {
    Ok(match name {
        "table1" => exp_table1::run(cfg.seed),
        "fig1" => exp_fig1_fig2::run_fig1(cfg),
        "fig2" => exp_fig1_fig2::run_fig2(cfg),
        "table2" | "table3" | "tables23" => exp_tables23::run(cfg),
        "fig4" => exp_fig4_fig7::run_fig4(cfg),
        "fig5" => exp_fig5_fig6::run_fig5(cfg),
        "fig6a" => exp_fig5_fig6::run_fig6a(cfg),
        "fig6b" => exp_fig5_fig6::run_fig6b(cfg),
        "fig7" => exp_fig4_fig7::run_fig7(cfg),
        "fig8" => exp_fig8::run(cfg),
        "fig9" => exp_fig9::run(cfg),
        "fig10" => exp_sensitivity::run_fig10(cfg),
        "fig11" => exp_sensitivity::run_fig11(cfg),
        "fig12" => exp_sensitivity::run_fig12(cfg),
        "ablation-utility" => exp_ablation::run_utility(cfg),
        "ablation-probability" => exp_ablation::run_probability(cfg),
        "capacity" => exp_ablation::run_capacity(cfg),
        "scalability" => exp_scalability::run_scalability(cfg),
        "window" => exp_scalability::run_window(cfg),
        "validate" => exp_validation::run(cfg),
        "chaos" => exp_chaos::run(cfg),
        "fleet" => exp_fleet::run(cfg),
        "characterize" => exp_characterize::run(cfg),
        "predictors" => exp_predictors::run(cfg),
        "nodes" => exp_nodes::run(cfg),
        "overload" => exp_overload::run(cfg),
        "recover" => exp_recover::run(cfg),
        "serve" => exp_serve::run(cfg),
        other => {
            return Err(format!(
                "unknown experiment {other:?}; valid: {}",
                EXPERIMENTS.join(", ")
            ))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_experiment_lists_options() {
        let err = run_experiment("nope", &ExpConfig::quick()).unwrap_err();
        assert!(err.contains("fig6a"));
    }

    #[test]
    fn table_aliases_work() {
        let cfg = ExpConfig {
            horizon: 1200,
            n_runs: 2,
            ..ExpConfig::quick()
        };
        assert!(run_experiment("table3", &cfg).is_ok());
    }
}

//! **E2 / Figure 1** and **E3 / Figure 2** — inter-arrival pattern analysis.
//!
//! Figure 1: five functions' gap distributions within the 10-minute
//! keep-alive window differ wildly (one-size-fits-all keep-alive is
//! suboptimal). Figure 2: the *same* function's distribution drifts across
//! the first / middle / last four days (policies must adapt over time).

use crate::common::ExpConfig;
use crate::report::{fmt, Table};
use pulse_trace::interarrival::{distribution_distance, fig2_panels, gap_percentages};
use pulse_trace::synth::{FIG1_FUNCTIONS, FIG2_FUNCTION};

/// Regenerate Figure 1's five panels as rows of gap percentages.
pub fn run_fig1(cfg: &ExpConfig) -> String {
    let trace = cfg.trace();
    let mut table = Table::new(
        "Figure 1: % of invocations per inter-arrival gap (columns: 1–10 min)",
        &[
            "Function", "1", "2", "3", "4", "5", "6", "7", "8", "9", "10",
        ],
    );
    for (label, &idx) in ["A", "B", "C", "D", "E"].iter().zip(FIG1_FUNCTIONS.iter()) {
        let f = trace.function(idx);
        let p = gap_percentages(f, 10);
        let mut row = vec![format!("{} ({})", label, f.name)];
        row.extend(p.iter().map(|&v| fmt(v, 1)));
        table.row(row);
    }
    table.render()
}

/// Regenerate Figure 2's three panels plus a drift summary.
pub fn run_fig2(cfg: &ExpConfig) -> String {
    let trace = cfg.trace();
    let f = trace.function(FIG2_FUNCTION);
    // The panels are defined over a 14-day trace; scale the day ranges to
    // the configured horizon by always using the canonical day windows when
    // they fit, else thirds of the horizon.
    let full_horizon = trace.minutes() >= pulse_trace::TWO_WEEKS_MINUTES;
    let panels: [Vec<f64>; 3] = if full_horizon {
        fig2_panels(f, 10)
    } else {
        let third = trace.minutes() / 3;
        [
            gap_percentages(&f.slice(0, third), 10),
            gap_percentages(&f.slice(third, 2 * third), 10),
            gap_percentages(&f.slice(2 * third, trace.minutes()), 10),
        ]
    };
    let mut table = Table::new(
        format!(
            "Figure 2: % of invocations per gap for '{}' across periods",
            f.name
        ),
        &["Period", "1", "2", "3", "4", "5", "6", "7", "8", "9", "10"],
    );
    for (label, p) in ["First four days", "Middle four days", "Last four days"]
        .iter()
        .zip(panels.iter())
    {
        let mut row = vec![label.to_string()];
        row.extend(p.iter().map(|&v| fmt(v, 1)));
        table.row(row);
    }
    let drift = distribution_distance(&panels[0], &panels[2]);
    format!(
        "{}\nFirst-vs-last distribution distance (total variation): {}\n",
        table.render(),
        fmt(drift, 3)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_has_five_function_rows() {
        let out = run_fig1(&ExpConfig::quick());
        for label in ["A (", "B (", "C (", "D (", "E ("] {
            assert!(out.contains(label), "{out}");
        }
    }

    #[test]
    fn fig2_shows_nonzero_drift() {
        let out = run_fig2(&ExpConfig::quick());
        assert!(out.contains("distribution distance"));
        // The drifting-period function must not have identical first/last
        // panels: the reported distance is positive.
        let line = out
            .lines()
            .find(|l| l.contains("distribution distance"))
            .unwrap();
        let value: f64 = line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!(value > 0.05, "drift too small: {value}");
    }
}

//! `pulse-exp` — regenerate the paper's tables and figures.
//!
//! ```text
//! pulse-exp [--quick|--full] [--seed N] [--runs N] [--horizon MIN]
//!           [--demo] [--rps N] [--duration SECS]
//!           [--out DIR] [--trace-out FILE] [all | <exp>...]
//! ```
//!
//! * `--quick` (default): 4-day trace, 30 runs — minutes of wall clock.
//! * `--full`: the paper-scale setup — 14-day trace, 1000 runs.
//! * `--demo`: shorthand for `--rps 200000 --duration 10`, the single-box
//!   serving demo scale (place it before any explicit `--rps`/`--duration`
//!   override).
//! * `--trace-out FILE`: write a structured JSONL event trace (see
//!   `pulse-obs`) for the experiments that support it (`chaos`,
//!   `overload`, `serve`; `recover` writes a checkpointed journal
//!   instead). The file is truncated once per invocation.
//! * experiments: `table1 fig1 fig2 table2 fig4 fig5 fig6a fig6b fig7 fig8
//!   fig9 fig10 fig11 fig12`, extensions such as `validate`, `chaos`
//!   (fault-injection sweep), `overload` (bounded admission + node
//!   capacity + watchdog), `recover` (crash-recovery matrix) and `serve`
//!   (live open-loop serving), or `all`.
//!
//! Every flag accepts both `--flag value` and `--flag=value`. Parse errors
//! name the offending flag — and for malformed values, the value — then
//! exit with status 2.

use pulse_experiments::{run_experiment, ExpConfig, ServeOptions, EXPERIMENTS};

/// The parsed command line.
#[derive(Debug)]
struct Cli {
    cfg: ExpConfig,
    names: Vec<String>,
    out_dir: Option<std::path::PathBuf>,
    help: bool,
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&raw) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("error: {e}");
            print_usage();
            std::process::exit(2);
        }
    };
    if cli.help {
        print_usage();
        return;
    }
    let cfg = cli.cfg;
    let mut names = cli.names;
    if let Some(dir) = &cli.out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create {}: {e}", dir.display());
            std::process::exit(2);
        }
    }
    if let Some(path) = &cfg.trace_out {
        // Truncate once here; experiments open the file in append mode so
        // several sweeps in one invocation share the stream.
        if let Err(e) = std::fs::File::create(path) {
            eprintln!("error: cannot create trace file {}: {e}", path.display());
            std::process::exit(2);
        }
    }
    if names.is_empty() {
        print_usage();
        std::process::exit(2);
    }
    if names.iter().any(|n| n == "all") {
        names = EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }
    println!(
        "# pulse-exp: seed={} horizon={}min runs={}\n",
        cfg.seed, cfg.horizon, cfg.n_runs
    );
    let mut failed = false;
    for name in names {
        let started = std::time::Instant::now();
        match run_experiment(&name, &cfg) {
            Ok(report) => {
                println!("{report}");
                if let Some(dir) = &cli.out_dir {
                    let path = dir.join(format!("{name}.txt"));
                    if let Err(e) = std::fs::write(&path, &report) {
                        eprintln!("error: cannot write {}: {e}", path.display());
                        failed = true;
                    }
                }
                eprintln!("[{name} done in {:.1?}]", started.elapsed());
            }
            Err(e) => {
                eprintln!("error: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

/// Parse the raw argument list. Both `--flag value` and `--flag=value` are
/// accepted. Errors are loud and specific: a flag with no value says so by
/// name; a flag with a malformed value names the flag *and* echoes the
/// value; an unknown `--flag` is rejected instead of being silently treated
/// as an experiment name.
fn parse_args(raw: &[String]) -> Result<Cli, String> {
    // Normalize --flag=value into two tokens so both spellings share one
    // code path.
    let mut tokens: Vec<String> = Vec::with_capacity(raw.len());
    for a in raw {
        match a.strip_prefix("--").and_then(|rest| rest.split_once('=')) {
            Some((flag, value)) => {
                tokens.push(format!("--{flag}"));
                tokens.push(value.to_string());
            }
            None => tokens.push(a.clone()),
        }
    }
    let mut cli = Cli {
        cfg: ExpConfig::quick(),
        names: Vec::new(),
        out_dir: None,
        help: false,
    };
    let mut it = tokens.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => cli.cfg = ExpConfig::quick(),
            "--full" => cli.cfg = ExpConfig::full(),
            "--seed" => cli.cfg.seed = parse_num(take_value(&mut it, "--seed")?, "--seed")?,
            "--runs" => {
                cli.cfg.n_runs = parse_num(take_value(&mut it, "--runs")?, "--runs")? as usize;
            }
            "--horizon" => {
                cli.cfg.horizon =
                    parse_num(take_value(&mut it, "--horizon")?, "--horizon")? as usize;
            }
            "--demo" => cli.cfg.serve = ServeOptions::demo(),
            "--rps" => cli.cfg.serve.rps = parse_num(take_value(&mut it, "--rps")?, "--rps")?,
            "--duration" => {
                cli.cfg.serve.seconds =
                    parse_num(take_value(&mut it, "--duration")?, "--duration")?;
            }
            "--out" => {
                cli.out_dir = Some(std::path::PathBuf::from(take_value(&mut it, "--out")?));
            }
            "--trace-out" => {
                cli.cfg.trace_out = Some(std::path::PathBuf::from(take_value(
                    &mut it,
                    "--trace-out",
                )?));
            }
            "--help" | "-h" => cli.help = true,
            flag if flag.starts_with('-') && flag.len() > 1 => {
                return Err(format!("unknown flag {flag}; see --help"));
            }
            name => cli.names.push(name.to_string()),
        }
    }
    Ok(cli)
}

/// Take the next token as `flag`'s value; a missing token — or another flag
/// where the value should be — is an error naming `flag`.
fn take_value<'a>(
    it: &mut std::iter::Peekable<std::slice::Iter<'a, String>>,
    flag: &str,
) -> Result<&'a str, String> {
    match it.peek() {
        Some(v) if !v.starts_with("--") => Ok(it.next().expect("peeked").as_str()),
        _ => Err(format!("{flag} requires a value")),
    }
}

/// Parse `v` as a number for `flag`; the error names both.
fn parse_num(v: &str, flag: &str) -> Result<u64, String> {
    v.parse()
        .map_err(|_| format!("invalid value for {flag}: {v:?} is not a number"))
}

fn print_usage() {
    eprintln!(
        "usage: pulse-exp [--quick|--full] [--seed N] [--runs N] [--horizon MIN] [--demo] [--rps N] [--duration SECS] [--out DIR] [--trace-out FILE] [all | <exp>...]\n\
         experiments: {}",
        EXPERIMENTS.join(" ")
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Cli, String> {
        let raw: Vec<String> = args.iter().map(|s| (*s).to_string()).collect();
        parse_args(&raw)
    }

    #[test]
    fn space_and_equals_spellings_agree() {
        let a = parse(&["--seed", "7", "--runs=3", "chaos"]).unwrap();
        assert_eq!(a.cfg.seed, 7);
        assert_eq!(a.cfg.n_runs, 3);
        assert_eq!(a.names, ["chaos"]);
    }

    #[test]
    fn missing_value_names_the_flag() {
        let e = parse(&["--seed"]).unwrap_err();
        assert!(
            e.contains("--seed") && e.contains("requires a value"),
            "{e}"
        );
    }

    #[test]
    fn a_following_flag_is_not_a_value() {
        let e = parse(&["--runs", "--seed", "9"]).unwrap_err();
        assert!(
            e.contains("--runs") && e.contains("requires a value"),
            "{e}"
        );
    }

    #[test]
    fn malformed_value_names_flag_and_value() {
        let e = parse(&["--horizon", "soon"]).unwrap_err();
        assert!(e.contains("--horizon") && e.contains("soon"), "{e}");
        let e = parse(&["--rps=fast"]).unwrap_err();
        assert!(e.contains("--rps") && e.contains("fast"), "{e}");
    }

    #[test]
    fn unknown_flags_fail_instead_of_becoming_experiment_names() {
        let e = parse(&["--sede", "7"]).unwrap_err();
        assert!(e.contains("--sede"), "{e}");
    }

    #[test]
    fn demo_sets_serve_scale_and_later_flags_override_it() {
        let a = parse(&["--demo", "serve"]).unwrap();
        assert_eq!(a.cfg.serve, ServeOptions::demo());
        let b = parse(&["--demo", "--rps=50000", "serve"]).unwrap();
        assert_eq!(b.cfg.serve.rps, 50_000);
        assert_eq!(b.cfg.serve.seconds, ServeOptions::demo().seconds);
    }

    #[test]
    fn experiment_names_and_out_dir_still_parse() {
        let a = parse(&["--trace-out=t.jsonl", "--out", "results", "fig4", "fig5"]).unwrap();
        assert_eq!(
            a.cfg.trace_out.as_deref(),
            Some(std::path::Path::new("t.jsonl"))
        );
        assert_eq!(a.out_dir.as_deref(), Some(std::path::Path::new("results")));
        assert_eq!(a.names, ["fig4", "fig5"]);
    }
}

//! `pulse-exp` — regenerate the paper's tables and figures.
//!
//! ```text
//! pulse-exp [--quick|--full] [--seed N] [--runs N] [--horizon MIN]
//!           [--out DIR] [--trace-out FILE] [all | <exp>...]
//! ```
//!
//! * `--quick` (default): 4-day trace, 30 runs — minutes of wall clock.
//! * `--full`: the paper-scale setup — 14-day trace, 1000 runs.
//! * `--trace-out FILE`: write a structured JSONL event trace (see
//!   `pulse-obs`) for the experiments that support it (`chaos`,
//!   `overload`; `recover` writes a checkpointed journal instead). The
//!   file is truncated once per invocation.
//! * experiments: `table1 fig1 fig2 table2 fig4 fig5 fig6a fig6b fig7 fig8
//!   fig9 fig10 fig11 fig12`, extensions such as `validate`, `chaos`
//!   (fault-injection sweep), `overload` (bounded admission + node
//!   capacity + watchdog) and `recover` (crash-recovery matrix), or `all`.

use pulse_experiments::{run_experiment, ExpConfig, EXPERIMENTS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ExpConfig::quick();
    let mut names: Vec<String> = Vec::new();
    let mut out_dir: Option<std::path::PathBuf> = None;
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => cfg = ExpConfig::quick(),
            "--full" => cfg = ExpConfig::full(),
            "--seed" => cfg.seed = expect_num(it.next(), "--seed"),
            "--runs" => cfg.n_runs = expect_num(it.next(), "--runs") as usize,
            "--horizon" => cfg.horizon = expect_num(it.next(), "--horizon") as usize,
            "--out" => {
                let dir = it.next().unwrap_or_else(|| {
                    eprintln!("error: --out requires a directory argument");
                    std::process::exit(2);
                });
                out_dir = Some(std::path::PathBuf::from(dir));
            }
            "--trace-out" => {
                let path = it.next().unwrap_or_else(|| {
                    eprintln!("error: --trace-out requires a file argument");
                    std::process::exit(2);
                });
                cfg.trace_out = Some(std::path::PathBuf::from(path));
            }
            "--help" | "-h" => {
                print_usage();
                return;
            }
            name => names.push(name.to_string()),
        }
    }
    if let Some(dir) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create {}: {e}", dir.display());
            std::process::exit(2);
        }
    }
    if let Some(path) = &cfg.trace_out {
        // Truncate once here; experiments open the file in append mode so
        // several sweeps in one invocation share the stream.
        if let Err(e) = std::fs::File::create(path) {
            eprintln!("error: cannot create trace file {}: {e}", path.display());
            std::process::exit(2);
        }
    }
    if names.is_empty() {
        print_usage();
        std::process::exit(2);
    }
    if names.iter().any(|n| n == "all") {
        names = EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }
    println!(
        "# pulse-exp: seed={} horizon={}min runs={}\n",
        cfg.seed, cfg.horizon, cfg.n_runs
    );
    let mut failed = false;
    for name in names {
        let started = std::time::Instant::now();
        match run_experiment(&name, &cfg) {
            Ok(report) => {
                println!("{report}");
                if let Some(dir) = &out_dir {
                    let path = dir.join(format!("{name}.txt"));
                    if let Err(e) = std::fs::write(&path, &report) {
                        eprintln!("error: cannot write {}: {e}", path.display());
                        failed = true;
                    }
                }
                eprintln!("[{name} done in {:.1?}]", started.elapsed());
            }
            Err(e) => {
                eprintln!("error: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

fn expect_num(v: Option<&String>, flag: &str) -> u64 {
    v.and_then(|s| s.parse().ok()).unwrap_or_else(|| {
        eprintln!("error: {flag} requires a numeric argument");
        std::process::exit(2);
    })
}

fn print_usage() {
    eprintln!(
        "usage: pulse-exp [--quick|--full] [--seed N] [--runs N] [--horizon MIN] [--out DIR] [--trace-out FILE] [all | <exp>...]\n\
         experiments: {}",
        EXPERIMENTS.join(" ")
    );
}

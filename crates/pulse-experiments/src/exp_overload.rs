//! **Extension: overload sweep** — the policies on a *finite* node.
//!
//! Every paper experiment assumes the node is infinitely large and the
//! request queue infinitely deep. This experiment turns on the cluster
//! robustness layer of `pulse-runtime` and runs two overload scenarios:
//!
//! * **storm** — a cold-start storm: the workload is near-idle, then every
//!   function fires a synchronized burst in the same minute. Admission is
//!   bounded, so the backlog past the limit is shed rather than queued
//!   forever; the shed rate and availability show how much of the storm
//!   each policy's warm pool absorbs.
//! * **crunch** — a capacity crunch: the steady 12-function workload on a
//!   node whose keep-alive cap is well below the all-high footprint. The
//!   enforcer flattens the overage with Algorithm 2's utility-ordered
//!   downgrades, so the interesting columns are evictions, pressure
//!   downgrades and the accuracy that survives them.
//!
//! Both scenarios also run PULSE wrapped in the policy watchdog
//! (`pulse_sim::watchdog`): if the pressure drives PULSE's SLO-violation
//! rate past the guardrail, the watchdog benches it for the fixed
//! 10-minute baseline and the fallback-minutes column records the stay.

use crate::common::ExpConfig;
use crate::report::{fmt, Table};
use pulse_core::types::PulseConfig;
use pulse_obs::{JsonlSink, ObsEvent, TraceSink};
use pulse_runtime::{
    AdmissionControl, ClusterConfig, FaultPlan, NodeCapacity, Runtime, RuntimeConfig,
    RuntimeSummary,
};
use pulse_sim::assignment::round_robin_assignment;
use pulse_sim::policies::{IntelligentOracle, OpenWhiskFixed, PulsePolicy};
use pulse_sim::{KeepAlivePolicy, Watchdog, WatchdogConfig};
use pulse_trace::{FunctionTrace, Trace};

/// Backlog bound for the storm scenario: past this many waiting requests,
/// arrivals are shed.
const STORM_MAX_PENDING: usize = 16;

/// Requests per function in each synchronized storm burst.
const STORM_BURST: u32 = 20;

/// Minutes between storm bursts.
const STORM_PERIOD: usize = 30;

/// The crunch node's keep-alive cap as a fraction of the all-high footprint.
const CRUNCH_CAP_FRAC: f64 = 0.3;

/// An idle workload punctuated by synchronized all-function bursts. The
/// inter-burst gap exceeds every policy's keep-alive horizon, so each burst
/// lands cold and the whole cluster provisions at once — the worst case for
/// the pending backlog.
fn storm_trace(n_functions: usize, minutes: usize) -> Trace {
    Trace::new(
        (0..n_functions)
            .map(|f| {
                let counts = (0..minutes)
                    .map(|m| {
                        if m % STORM_PERIOD == 5 {
                            STORM_BURST
                        } else {
                            0
                        }
                    })
                    .collect();
                FunctionTrace::new(format!("f{f}"), counts)
            })
            .collect(),
    )
}

fn run_policies(
    scenario: &str,
    trace: &Trace,
    cfg: &ExpConfig,
    cluster: &ClusterConfig,
    table: &mut Table,
    sink: &mut Option<JsonlSink<std::fs::File>>,
) -> Vec<(String, RuntimeSummary)> {
    let fams = round_robin_assignment(&cfg.zoo(), trace.n_functions());
    let rt = Runtime::new(
        trace.clone(),
        fams.clone(),
        RuntimeConfig {
            stochastic_seed: Some(cfg.seed),
            ..RuntimeConfig::default()
        },
    );
    let plan = FaultPlan::none();

    let mut policies: Vec<(&str, Box<dyn KeepAlivePolicy>)> = vec![
        ("openwhisk", Box::new(OpenWhiskFixed::new(&fams))),
        (
            "intelligent",
            Box::new(IntelligentOracle::new(&fams, trace.clone())),
        ),
        (
            "pulse",
            Box::new(PulsePolicy::new(fams.clone(), PulseConfig::default())),
        ),
        (
            "pulse+watchdog",
            Box::new(Watchdog::new(
                PulsePolicy::new(fams.clone(), PulseConfig::default()),
                &fams,
                WatchdogConfig::default(),
            )),
        ),
    ];

    let mut out = Vec::new();
    for (name, policy) in &mut policies {
        let s = match sink.as_mut() {
            Some(js) => {
                js.record(&ObsEvent::RunStart {
                    label: format!("overload/{scenario}/{name}"),
                });
                rt.run_with_cluster_traced(policy.as_mut(), &plan, cluster, js)
            }
            None => rt.run_with_cluster(policy.as_mut(), &plan, cluster),
        };
        table.row(vec![
            scenario.into(),
            (*name).into(),
            fmt(s.keepalive_cost_usd, 4),
            fmt(s.availability() * 100.0, 2),
            s.shed_requests.to_string(),
            s.evictions.to_string(),
            s.pressure_downgrades.to_string(),
            s.pressure_minutes.to_string(),
            s.fallback_minutes.to_string(),
            fmt(s.avg_accuracy_pct(), 2),
            fmt(s.latency_p99_ms(), 0),
        ]);
        out.push((name.to_string(), s));
    }
    out
}

/// Run both overload scenarios and render the comparison table.
pub fn run(cfg: &ExpConfig) -> String {
    let mut table = Table::new(
        "Overload sweep: bounded admission (storm) and node capacity (crunch)",
        &[
            "Scenario",
            "Policy",
            "Cost ($)",
            "Avail (%)",
            "Shed",
            "Evict",
            "PrDown",
            "PressMin",
            "FbMin",
            "Accuracy (%)",
            "p99 (ms)",
        ],
    );

    // Storm: unlimited memory, bounded backlog.
    let mut sink = cfg.open_trace();
    let storm = storm_trace(12, cfg.horizon);
    let storm_cluster = ClusterConfig {
        admission: AdmissionControl::bounded(STORM_MAX_PENDING),
        ..ClusterConfig::unlimited()
    };
    let storm_out = run_policies("storm", &storm, cfg, &storm_cluster, &mut table, &mut sink);

    // Crunch: unbounded backlog, a node far smaller than the all-high plan.
    let trace = cfg.trace();
    let fams = round_robin_assignment(&cfg.zoo(), trace.n_functions());
    let all_high: f64 = fams.iter().map(|f| f.highest().memory_mb).sum();
    let crunch_cluster = ClusterConfig {
        capacity: NodeCapacity::mb(all_high * CRUNCH_CAP_FRAC),
        ..ClusterConfig::unlimited()
    };
    let crunch_out = run_policies(
        "crunch",
        &trace,
        cfg,
        &crunch_cluster,
        &mut table,
        &mut sink,
    );

    let shed_note = storm_out
        .iter()
        .map(|(p, s)| {
            format!(
                "{p} {:.1}%",
                100.0 * s.shed_requests as f64 / s.requests() as f64
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    let press_note = crunch_out
        .iter()
        .map(|(p, s)| format!("{p} {}", s.pressure_minutes))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{}\nstorm shed rate: {}\ncrunch pressure minutes ({}% node): {}\n",
        table.render(),
        shed_note,
        (CRUNCH_CAP_FRAC * 100.0) as u32,
        press_note
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpConfig {
        ExpConfig {
            seed: 42,
            horizon: 300,
            n_runs: 1,
            trace_out: None,
            serve: Default::default(),
        }
    }

    #[test]
    fn sweep_covers_both_scenarios_and_all_policies() {
        let out = run(&tiny());
        for scenario in ["storm", "crunch"] {
            assert!(
                out.contains(scenario),
                "missing scenario {scenario}:\n{out}"
            );
        }
        for policy in ["openwhisk", "intelligent", "pulse", "pulse+watchdog"] {
            assert!(out.contains(policy), "missing policy {policy}:\n{out}");
        }
        assert!(out.contains("shed rate"));
        assert!(out.contains("pressure minutes"));
    }

    #[test]
    fn sweep_is_deterministic() {
        assert_eq!(run(&tiny()), run(&tiny()));
    }

    #[test]
    fn trace_out_reconciles_sheds_per_policy_segment() {
        let path = std::env::temp_dir().join(format!(
            "pulse-overload-trace-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        std::fs::File::create(&path).expect("truncate trace file");
        let cfg = ExpConfig {
            trace_out: Some(path.clone()),
            ..tiny()
        };
        let mut table = Table::new(
            "t",
            &["a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k"],
        );
        let mut sink = cfg.open_trace();
        let storm = storm_trace(12, cfg.horizon);
        let storm_cluster = ClusterConfig {
            admission: AdmissionControl::bounded(STORM_MAX_PENDING),
            ..ClusterConfig::unlimited()
        };
        let out = run_policies("storm", &storm, &cfg, &storm_cluster, &mut table, &mut sink);
        assert!(!sink.expect("sink opens").had_error());

        let text = std::fs::read_to_string(&path).expect("trace file exists");
        let mut segments: Vec<(String, Vec<ObsEvent>)> = Vec::new();
        for line in text.lines() {
            match ObsEvent::from_json(line).expect("every line is a valid event") {
                ObsEvent::RunStart { label } => segments.push((label, Vec::new())),
                ev => segments
                    .last_mut()
                    .expect("run_start precedes events")
                    .1
                    .push(ev),
            }
        }
        let _ = std::fs::remove_file(&path);

        assert_eq!(segments.len(), out.len(), "one segment per policy run");
        for ((label, events), (policy, s)) in segments.iter().zip(&out) {
            assert_eq!(label, &format!("overload/storm/{policy}"));
            let sheds = events
                .iter()
                .filter(|e| matches!(e, ObsEvent::Shed { .. }))
                .count();
            assert_eq!(sheds as u64, s.shed_requests, "{policy}");
            // Every request is either admitted (arrival event) or shed.
            let arrivals = events
                .iter()
                .filter(|e| matches!(e, ObsEvent::Arrival { .. }))
                .count();
            assert_eq!(arrivals as u64 + sheds as u64, s.requests(), "{policy}");
        }
        assert!(
            out.iter().any(|(_, s)| s.shed_requests > 0),
            "storm must shed for the reconciliation to bite"
        );
    }

    #[test]
    fn storm_trace_has_synchronized_bursts() {
        let t = storm_trace(12, 120);
        assert_eq!(t.n_functions(), 12);
        for f in 0..12 {
            assert_eq!(t.function(f).at(5), STORM_BURST);
            assert_eq!(t.function(f).at(35), STORM_BURST);
        }
    }
}

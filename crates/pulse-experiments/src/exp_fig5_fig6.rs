//! **E6 / Figure 5**, **E7 / Figure 6a**, **E8 / Figure 6b** — the headline
//! comparison against OpenWhisk's fixed 10-minute policy.
//!
//! * Figure 5: the accuracy-vs-cost plane. Lowest-quality-only and
//!   highest-quality-only span the corners; PULSE lands near the
//!   lowest-quality *cost* at near the highest-quality *accuracy*.
//! * Figure 6a: percentage improvement of PULSE over OpenWhisk. The paper
//!   reports keep-alive cost −39.5 %, service time −8.8 %, accuracy −0.6 %.
//! * Figure 6b: per-minute keep-alive-cost deviation from the ideal oracle
//!   (alive only at invocation minutes), aggregated over 10-minute windows
//!   because the per-minute ideal is frequently zero.

use crate::common::{improvement_higher_better, improvement_lower_better, ExpConfig};
use crate::report::{ascii_series, fmt, pct, Table};
use pulse_core::types::PulseConfig;
use pulse_sim::assignment::round_robin_assignment;
use pulse_sim::policies::{FixedVariant, IdealOracle, OpenWhiskFixed, PulsePolicy};
use pulse_sim::runner::PolicyFactory;
use pulse_sim::Simulator;

/// Aggregated (multi-run) results of the four policies of Figures 5/6a.
pub struct HeadlineResults {
    /// Mean cost/accuracy/service per policy: (name, cost USD, accuracy %,
    /// service time s).
    pub rows: Vec<(String, f64, f64, f64)>,
}

/// Run the multi-run campaign for lowest / highest / PULSE / OpenWhisk.
pub fn evaluate(cfg: &ExpConfig) -> HeadlineResults {
    let trace = cfg.trace();
    let factories: Vec<(&str, Box<PolicyFactory<'_>>)> = vec![
        (
            "lowest-quality",
            Box::new(|fams: &[pulse_models::ModelFamily], _| {
                Box::new(FixedVariant::all_low(fams)) as Box<dyn pulse_sim::KeepAlivePolicy>
            }),
        ),
        (
            "highest-quality",
            Box::new(|fams: &[pulse_models::ModelFamily], _| {
                Box::new(FixedVariant::all_high(fams)) as Box<dyn pulse_sim::KeepAlivePolicy>
            }),
        ),
        (
            "openwhisk",
            Box::new(|fams: &[pulse_models::ModelFamily], _| {
                Box::new(OpenWhiskFixed::new(fams)) as Box<dyn pulse_sim::KeepAlivePolicy>
            }),
        ),
        (
            "pulse",
            Box::new(|fams: &[pulse_models::ModelFamily], _| {
                Box::new(PulsePolicy::new(fams.to_vec(), PulseConfig::default()))
                    as Box<dyn pulse_sim::KeepAlivePolicy>
            }),
        ),
    ];
    let rows = factories
        .into_iter()
        .map(|(name, factory)| {
            let agg = cfg.campaign(&trace, name, factory.as_ref());
            (
                name.to_string(),
                agg.keepalive_cost_usd.mean(),
                agg.accuracy_pct.mean(),
                agg.service_time_s.mean(),
            )
        })
        .collect();
    HeadlineResults { rows }
}

/// Render Figure 5: accuracy vs keep-alive cost.
pub fn run_fig5(cfg: &ExpConfig) -> String {
    let r = evaluate(cfg);
    let mut table = Table::new(
        "Figure 5: accuracy vs keep-alive cost trade-off",
        &["Policy", "Keep-alive Cost ($)", "Accuracy (%)"],
    );
    for (name, cost, acc, _) in &r.rows {
        if name != "openwhisk" {
            table.row(vec![name.clone(), fmt(*cost, 3), fmt(*acc, 2)]);
        }
    }
    table.render()
}

/// Render Figure 6a: % improvement of PULSE over OpenWhisk.
pub fn run_fig6a(cfg: &ExpConfig) -> String {
    let r = evaluate(cfg);
    let find = |n: &str| r.rows.iter().find(|(name, ..)| name == n).expect("present");
    let (_, ow_cost, ow_acc, ow_svc) = find("openwhisk");
    let (_, pu_cost, pu_acc, pu_svc) = find("pulse");
    let mut table = Table::new(
        "Figure 6a: PULSE improvement over OpenWhisk fixed 10-minute policy",
        &["Metric", "Improvement", "Paper reports"],
    );
    table.row(vec![
        "Keep-alive cost".into(),
        pct(improvement_lower_better(*pu_cost, *ow_cost)),
        "+39.5%".into(),
    ]);
    table.row(vec![
        "Service time".into(),
        pct(improvement_lower_better(*pu_svc, *ow_svc)),
        "+8.8%".into(),
    ]);
    table.row(vec![
        "Accuracy".into(),
        pct(improvement_higher_better(*pu_acc, *ow_acc)),
        "-0.6%".into(),
    ]);
    table.render()
}

/// Figure 6b: windowed keep-alive-cost error of a policy vs the ideal
/// oracle, percent, over `window`-minute blocks.
pub fn cost_error_series(policy_cost: &[f64], ideal_cost: &[f64], window: usize) -> Vec<f64> {
    assert_eq!(policy_cost.len(), ideal_cost.len());
    policy_cost
        .chunks(window)
        .zip(ideal_cost.chunks(window))
        .filter_map(|(p, i)| {
            let ps: f64 = p.iter().sum();
            let is: f64 = i.iter().sum();
            if is > 0.0 {
                Some((ps - is) / is * 100.0)
            } else {
                None
            }
        })
        .collect()
}

/// Render Figure 6b.
pub fn run_fig6b(cfg: &ExpConfig) -> String {
    let trace = cfg.trace();
    let fams = round_robin_assignment(&cfg.zoo(), trace.n_functions());
    let sim = Simulator::new(trace.clone(), fams.clone());
    let ow = sim.run(&mut OpenWhiskFixed::new(&fams));
    let pu = sim.run(&mut PulsePolicy::new(fams.clone(), PulseConfig::default()));
    let ideal = sim.run(&mut IdealOracle::new(&fams, trace));
    let ow_err = cost_error_series(&ow.cost_series_usd, &ideal.cost_series_usd, 10);
    let pu_err = cost_error_series(&pu.cost_series_usd, &ideal.cost_series_usd, 10);
    let mean = pulse_models::stats::mean;
    let mut out = String::from(
        "== Figure 6b: keep-alive cost deviation from the ideal oracle (10-min windows) ==\n",
    );
    out.push_str(&format!(
        "OpenWhisk mean error: {}%   PULSE mean error: {}%\n",
        fmt(mean(&ow_err), 1),
        fmt(mean(&pu_err), 1)
    ));
    out.push_str(&ascii_series("OpenWhisk error (%)", &ow_err, 20));
    out.push_str(&ascii_series("PULSE error (%)", &pu_err, 20));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpConfig {
        ExpConfig {
            seed: 42,
            horizon: 1500,
            n_runs: 6,
            trace_out: None,
            serve: Default::default(),
        }
    }

    #[test]
    fn fig5_corners_hold() {
        let r = evaluate(&tiny());
        let get = |n: &str| r.rows.iter().find(|(name, ..)| name == n).cloned().unwrap();
        let (_, low_cost, low_acc, _) = get("lowest-quality");
        let (_, high_cost, high_acc, _) = get("highest-quality");
        let (_, pulse_cost, pulse_acc, _) = get("pulse");
        assert!(low_cost < high_cost);
        assert!(low_acc < high_acc);
        // PULSE: cost below highest-quality, accuracy above lowest-quality.
        assert!(pulse_cost < high_cost);
        assert!(pulse_acc > low_acc);
    }

    #[test]
    fn fig6a_cost_improvement_positive() {
        let r = evaluate(&tiny());
        let get = |n: &str| r.rows.iter().find(|(name, ..)| name == n).cloned().unwrap();
        let (_, ow_cost, ow_acc, _) = get("openwhisk");
        let (_, pu_cost, pu_acc, _) = get("pulse");
        assert!(
            improvement_lower_better(pu_cost, ow_cost) > 0.0,
            "pulse must cut keep-alive cost"
        );
        // Accuracy within 5 points of OpenWhisk.
        assert!(ow_acc - pu_acc < 5.0);
    }

    #[test]
    fn error_series_skips_zero_ideal_windows() {
        let policy = vec![1.0, 1.0, 0.0, 0.0];
        let ideal = vec![0.5, 0.5, 0.0, 0.0];
        let e = cost_error_series(&policy, &ideal, 2);
        assert_eq!(e, vec![100.0]);
    }

    #[test]
    fn fig6b_pulse_closer_to_ideal() {
        let out = run_fig6b(&tiny());
        assert!(out.contains("OpenWhisk mean error"));
        // Parse both means and check PULSE is closer to ideal (smaller).
        let line = out.lines().nth(1).unwrap();
        let nums: Vec<f64> = line
            .split('%')
            .filter_map(|s| s.rsplit(' ').next())
            .filter_map(|s| s.parse().ok())
            .collect();
        assert_eq!(nums.len(), 2, "{line}");
        assert!(
            nums[1] < nums[0],
            "PULSE {} !< OpenWhisk {}",
            nums[1],
            nums[0]
        );
    }

    #[test]
    fn reports_render() {
        let cfg = tiny();
        assert!(run_fig5(&cfg).contains("Figure 5"));
        assert!(run_fig6a(&cfg).contains("+39.5%"));
    }
}

//! **E11 / Figure 9** — PULSE's greedy loop vs the MILP at peaks.
//!
//! (a) Overhead: per-peak decision latency of Algorithm 2 vs an exact
//! branch-and-bound MILP solve on the same instance — the paper shows MILP
//! is orders of magnitude slower relative to service time. (b) Accuracy:
//! MILP's objective favours parking models at their lowest rung (its `Ai`
//! term is largest there), so the end-to-end accuracy it delivers is *lower*
//! than PULSE's despite being the "exact" optimizer.

use crate::common::ExpConfig;
use crate::milp_policy::MilpPolicy;
use crate::report::{fmt, Table};
use pulse_core::global::{flatten_peak, AliveModel};
use pulse_core::priority::PriorityStructure;
use pulse_core::types::PulseConfig;
use pulse_milp::MilpDowngrader;
use pulse_models::ModelFamily;
use pulse_sim::assignment::random_assignment;
use pulse_sim::policies::PulsePolicy;
use pulse_sim::Simulator;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Micro-benchmark: per-peak decision latency of both optimizers over
/// randomized peak instances. Returns (greedy seconds, milp seconds) pairs.
pub fn overhead_samples(n_instances: usize, seed: u64) -> Vec<(f64, f64)> {
    let zoo = pulse_models::zoo::standard();
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n_instances)
        .map(|_| {
            let fams: Vec<ModelFamily> = random_assignment(&zoo, 12, &mut rng);
            let alive: Vec<AliveModel> = fams
                .iter()
                .enumerate()
                .map(|(func, f)| AliveModel {
                    func,
                    variant: f.highest_id(),
                    invocation_probability: rng.gen_range(0.0..1.0),
                })
                .collect();
            let total: f64 = fams.iter().map(|f| f.highest().memory_mb).sum();
            let target = total * rng.gen_range(0.3..0.8);

            let mut a = alive.clone();
            let mut pr = PriorityStructure::new(fams.len());
            let t0 = Instant::now();
            flatten_peak(&mut a, &fams, &mut pr, total, target);
            let greedy = t0.elapsed().as_secs_f64();

            let pr2 = PriorityStructure::new(fams.len());
            let t1 = Instant::now();
            let _ = MilpDowngrader.solve(&alive, &fams, &pr2, target);
            let milp = t1.elapsed().as_secs_f64();
            (greedy, milp)
        })
        .collect()
}

/// End-to-end accuracy of PULSE vs the MILP policy on the same workload.
pub fn accuracy_comparison(cfg: &ExpConfig) -> (f64, f64) {
    let trace = cfg.trace();
    let fams = random_assignment(
        &cfg.zoo(),
        trace.n_functions(),
        &mut SmallRng::seed_from_u64(cfg.seed),
    );
    let sim = Simulator::new(trace, fams.clone());
    let pulse = sim.run(&mut PulsePolicy::new(fams.clone(), PulseConfig::default()));
    let milp = sim.run(&mut MilpPolicy::new(fams, PulseConfig::default()));
    (pulse.avg_accuracy_pct(), milp.avg_accuracy_pct())
}

/// Render Figure 9.
pub fn run(cfg: &ExpConfig) -> String {
    let samples = overhead_samples(cfg.n_runs.clamp(10, 200), cfg.seed);
    let greedy: Vec<f64> = samples.iter().map(|&(g, _)| g).collect();
    let milp: Vec<f64> = samples.iter().map(|&(_, m)| m).collect();
    let ratio: Vec<f64> = samples
        .iter()
        .map(|&(g, m)| if g > 0.0 { m / g } else { f64::INFINITY })
        .filter(|r| r.is_finite())
        .collect();
    use pulse_models::stats::{mean, percentile};
    let mut out = String::from("== Figure 9a: per-peak decision overhead ==\n");
    let mut table = Table::new(
        "Decision latency per peak (seconds)",
        &["Optimizer", "mean", "p50", "p99"],
    );
    table.row(vec![
        "PULSE (greedy)".into(),
        format!("{:.2e}", mean(&greedy)),
        format!("{:.2e}", percentile(&greedy, 50.0)),
        format!("{:.2e}", percentile(&greedy, 99.0)),
    ]);
    table.row(vec![
        "MILP (B&B)".into(),
        format!("{:.2e}", mean(&milp)),
        format!("{:.2e}", percentile(&milp, 50.0)),
        format!("{:.2e}", percentile(&milp, 99.0)),
    ]);
    out.push_str(&table.render());
    out.push_str(&format!(
        "MILP/greedy latency ratio: mean {}x, p50 {}x\n\n",
        fmt(mean(&ratio), 0),
        fmt(percentile(&ratio, 50.0), 0)
    ));
    let (pulse_acc, milp_acc) = accuracy_comparison(cfg);
    out.push_str("== Figure 9b: delivered accuracy ==\n");
    let mut t2 = Table::new(
        "End-to-end accuracy (same workload & assignment)",
        &["Technique", "Accuracy (%)"],
    );
    t2.row(vec!["PULSE".into(), fmt(pulse_acc, 2)]);
    t2.row(vec!["MILP".into(), fmt(milp_acc, 2)]);
    out.push_str(&t2.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn milp_is_slower_than_greedy() {
        let samples = overhead_samples(10, 3);
        let g: f64 = samples.iter().map(|&(g, _)| g).sum();
        let m: f64 = samples.iter().map(|&(_, m)| m).sum();
        assert!(m > g, "milp total {m} !> greedy total {g}");
    }

    #[test]
    fn milp_accuracy_not_higher_than_pulse() {
        let cfg = ExpConfig {
            seed: 42,
            horizon: 1200,
            n_runs: 4,
            trace_out: None,
            serve: Default::default(),
        };
        let (pulse_acc, milp_acc) = accuracy_comparison(&cfg);
        // The paper's Figure 9b: MILP ends up with lower accuracy. Allow a
        // small tolerance on short horizons.
        assert!(
            milp_acc <= pulse_acc + 1.0,
            "milp {milp_acc} > pulse {pulse_acc} + 1"
        );
    }

    #[test]
    fn report_renders() {
        let cfg = ExpConfig {
            seed: 42,
            horizon: 1000,
            n_runs: 4,
            trace_out: None,
            serve: Default::default(),
        };
        let out = run(&cfg);
        assert!(out.contains("Figure 9a"));
        assert!(out.contains("Figure 9b"));
        assert!(out.contains("MILP"));
    }
}

//! **Extension: predictor shoot-out** — how well do the candidate
//! forecasters predict *which of the next 10 minutes a function fires in*?
//!
//! Techniques like Wild and IceBreaker are only as good as their forecasts;
//! this experiment isolates the forecasting layer. Each predictor walks
//! every function's per-minute count series; at regular checkpoints it
//! predicts the active minutes of the next keep-alive window, scored
//! against the trace's actual arrivals (precision / recall / F1). The
//! seasonal-naive predictor is the reference any learned method must beat.

use crate::common::ExpConfig;
use crate::report::{fmt, Table};
use pulse_forecast::predictor::{ArWindowPredictor, ForecastScore, SeasonalNaive, SeriesPredictor};
use pulse_forecast::{FftPredictor, HoltWinters};
use pulse_trace::Trace;

/// The activity threshold above which a forecast counts as "active".
const THRESHOLD: f64 = 0.5;
/// Forecast horizon, minutes (the keep-alive window).
const HORIZON: usize = 10;
/// Evaluate every this-many minutes (amortizes refit costs).
const STRIDE: usize = 10;
/// Skip this warm-up prefix before scoring.
const WARMUP: usize = 240;

fn predictors() -> Vec<Box<dyn SeriesPredictor>> {
    vec![
        Box::new(FftPredictor::new()),
        Box::new(HoltWinters::hourly()),
        Box::new(ArWindowPredictor::new()),
        Box::new(SeasonalNaive::new(60)),
    ]
}

/// Score every predictor over the workload.
pub fn evaluate(trace: &Trace) -> Vec<(String, ForecastScore)> {
    let names: Vec<String> = predictors().iter().map(|p| p.name().to_string()).collect();
    let mut scores = vec![ForecastScore::default(); names.len()];
    for f in trace.functions() {
        let mut preds = predictors();
        for t in 0..f.minutes() {
            if t >= WARMUP && t % STRIDE == 0 && t + HORIZON < f.minutes() {
                let actual: Vec<u64> = (1..=HORIZON as u64)
                    .filter(|&m| f.at(t as u64 - 1 + m) > 0)
                    .collect();
                for (p, s) in preds.iter().zip(scores.iter_mut()) {
                    let predicted = p.predict_active(HORIZON, THRESHOLD);
                    s.record(&predicted, &actual);
                }
            }
            for p in preds.iter_mut() {
                p.push(f.at(t as u64) as f64);
            }
        }
    }
    names.into_iter().zip(scores).collect()
}

/// Render the shoot-out table.
pub fn run(cfg: &ExpConfig) -> String {
    let trace = cfg.trace();
    let mut table = Table::new(
        "Predictor shoot-out: next-10-minute activity forecasts",
        &["Predictor", "Precision", "Recall", "F1"],
    );
    for (name, s) in evaluate(&trace) {
        table.row(vec![
            name,
            fmt(s.precision(), 3),
            fmt(s.recall(), 3),
            fmt(s.f1(), 3),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_trace() -> Trace {
        pulse_trace::synth::azure_like_12_with_horizon(42, 800)
    }

    #[test]
    fn all_predictors_produce_meaningful_scores() {
        let scores = evaluate(&tiny_trace());
        assert_eq!(scores.len(), 4);
        for (name, s) in &scores {
            let total = s.true_positives + s.false_positives + s.false_negatives;
            assert!(total > 0, "{name} was never scored");
            assert!((0.0..=1.0).contains(&s.f1()), "{name} f1 {}", s.f1());
        }
    }

    #[test]
    fn learned_predictors_are_competitive_with_naive() {
        let scores = evaluate(&tiny_trace());
        let f1 = |n: &str| {
            scores
                .iter()
                .find(|(name, _)| name.contains(n))
                .map(|(_, s)| s.f1())
                .unwrap()
        };
        let naive = f1("naive");
        let best_learned = ["fft", "holt", "ar-"]
            .iter()
            .map(|n| f1(n))
            .fold(0.0f64, f64::max);
        assert!(
            best_learned > naive * 0.8,
            "best learned {best_learned} vs naive {naive}"
        );
    }

    #[test]
    fn report_renders_four_rows() {
        let cfg = ExpConfig {
            seed: 42,
            horizon: 700,
            n_runs: 1,
            trace_out: None,
            serve: Default::default(),
        };
        let out = run(&cfg);
        assert!(out.contains("fft-topk"));
        assert!(out.contains("holt-winters"));
        assert!(out.contains("ar-yule-walker"));
        assert!(out.contains("seasonal-naive"));
    }
}

//! **Extension: fleet robustness** — keep-alive policies on a multi-node
//! fleet that loses nodes.
//!
//! The paper's platform is a single infinitely reliable node. This
//! experiment runs the policies on a capacity-constrained multi-node fleet
//! under three injected failure regimes and measures whether the warm-state
//! machinery (global placement, warm-container migration, redispatch
//! through the retry ladder) keeps the platform available:
//!
//! * **rolling-crash** — nodes crash one after another on a fixed cadence,
//!   so displaced plans pile onto the survivors and must migrate back after
//!   each heal;
//! * **az-outage** — two of three nodes partition simultaneously (a
//!   correlated availability-zone failure), leaving one node to absorb the
//!   fleet;
//! * **stragglers** — a rotating node slows down 4× without dying, which
//!   should cost latency but never availability.
//!
//! The acceptance bar mirrors the robustness suite: every policy stays
//! ≥ 99% available under rolling crashes, and the total migration pause is
//! strictly cheaper than re-provisioning the same containers cold.

use crate::common::ExpConfig;
use crate::report::{fmt, Table};
use pulse_core::types::PulseConfig;
use pulse_models::ModelFamily;
use pulse_obs::{JsonlSink, ObsEvent, TraceSink};
use pulse_runtime::{
    FaultPlan, FleetConfig, NodeCapacity, NodeFaultPlan, Runtime, RuntimeConfig, RuntimeSummary,
};
use pulse_sim::assignment::round_robin_assignment;
use pulse_sim::policies::{IntelligentOracle, OpenWhiskFixed, PulsePolicy};
use pulse_sim::KeepAlivePolicy;

/// Fraction of the all-high footprint each node's cap gets. Three nodes at
/// 45% hold the fleet comfortably when healthy but force pressure (and
/// migrations back after heals) whenever one node is down.
const CAP_FRAC: f64 = 0.45;

/// Cheapest cold start in the zoo, ms — the bar a migration pause must beat
/// for warm-state migration to be worth anything.
fn min_cold_ms(fams: &[ModelFamily]) -> u64 {
    fams.iter()
        .flat_map(|f| f.variants.iter())
        .map(|v| (v.cold_start_s * 1000.0) as u64)
        .min()
        .unwrap_or(0)
}

/// One failure regime over the experiment horizon.
struct Scenario {
    name: &'static str,
    fleet: FleetConfig,
}

fn scenarios(horizon: usize, cap: f64) -> Vec<Scenario> {
    let h = horizon as u64;
    let capped =
        |plan: NodeFaultPlan| FleetConfig::uniform(3, NodeCapacity::mb(cap)).with_node_faults(plan);
    vec![
        Scenario {
            name: "rolling-crash",
            fleet: capped(NodeFaultPlan::rolling_crashes(3, 10, 6, 30, h)),
        },
        Scenario {
            name: "az-outage",
            fleet: capped(NodeFaultPlan::correlated_outage(&[0, 1], h / 3, 8)),
        },
        Scenario {
            name: "stragglers",
            fleet: capped(NodeFaultPlan::stragglers(3, 5, 10, 45, 4.0, h)),
        },
    ]
}

fn run_one(
    cfg: &ExpConfig,
    scenario: &Scenario,
    table: &mut Table,
    sink: &mut Option<JsonlSink<std::fs::File>>,
) -> Vec<(String, RuntimeSummary)> {
    let trace = cfg.trace();
    let fams = round_robin_assignment(&cfg.zoo(), trace.n_functions());
    let rt = Runtime::new(
        trace.clone(),
        fams.clone(),
        RuntimeConfig {
            stochastic_seed: Some(cfg.seed),
            ..RuntimeConfig::default()
        },
    );
    let plan = FaultPlan::none();

    let mut policies: Vec<(&str, Box<dyn KeepAlivePolicy>)> = vec![
        ("openwhisk", Box::new(OpenWhiskFixed::new(&fams))),
        (
            "intelligent",
            Box::new(IntelligentOracle::new(&fams, trace.clone())),
        ),
        (
            "pulse",
            Box::new(PulsePolicy::new(fams.clone(), PulseConfig::default())),
        ),
    ];

    let mut out = Vec::new();
    for (policy, p) in &mut policies {
        let s = match sink.as_mut() {
            Some(js) => {
                js.record(&ObsEvent::RunStart {
                    label: format!("fleet/{}/{policy}", scenario.name),
                });
                rt.run_with_fleet_traced(p.as_mut(), &plan, &scenario.fleet, js)
            }
            None => rt.run_with_fleet(p.as_mut(), &plan, &scenario.fleet),
        };
        let policy = *policy;
        let faults = s.node_crashes + s.node_partitions + s.node_stragglers;
        table.row(vec![
            scenario.name.into(),
            policy.into(),
            fmt(s.keepalive_cost_usd, 4),
            fmt(s.availability() * 100.0, 2),
            faults.to_string(),
            s.migrations.to_string(),
            s.migration_pause_ms.to_string(),
            s.redispatched_requests.to_string(),
            s.node_summaries
                .iter()
                .map(|n| n.minutes_down)
                .sum::<u64>()
                .to_string(),
            fmt(s.latency_p99_ms(), 0),
        ]);
        out.push((policy.to_string(), s));
    }
    out
}

/// Run the fleet-robustness sweep and render the comparison table.
pub fn run(cfg: &ExpConfig) -> String {
    let fams = round_robin_assignment(&cfg.zoo(), cfg.trace().n_functions());
    let all_high: f64 = fams.iter().map(|f| f.highest().memory_mb).sum();
    let cap = all_high * CAP_FRAC;
    let cold_bar = min_cold_ms(&fams);

    let mut table = Table::new(
        "Fleet robustness: 3 capped nodes under injected node failures",
        &[
            "Scenario",
            "Policy",
            "Cost ($)",
            "Avail (%)",
            "Faults",
            "Migr",
            "Pause (ms)",
            "Redisp",
            "Down (min)",
            "p99 (ms)",
        ],
    );

    let mut sink = cfg.open_trace();
    let mut notes = Vec::new();
    for scenario in scenarios(cfg.horizon, cap) {
        let out = run_one(cfg, &scenario, &mut table, &mut sink);
        let migrations: u64 = out.iter().map(|(_, s)| s.migrations).sum();
        let pause: u64 = out.iter().map(|(_, s)| s.migration_pause_ms).sum();
        let worst_avail = out
            .iter()
            .map(|(_, s)| s.availability())
            .fold(f64::INFINITY, f64::min);
        notes.push(format!(
            "{}: worst availability {:.2}%, {} migrations pausing {} ms total \
             (vs {} ms to cold-start the same containers)",
            scenario.name,
            worst_avail * 100.0,
            migrations,
            pause,
            migrations * cold_bar,
        ));
    }
    format!(
        "{}\nnode cap {} MB ({}% of the all-high footprint); cheapest cold start {} ms\n{}\n",
        table.render(),
        fmt(cap, 0),
        fmt(CAP_FRAC * 100.0, 0),
        cold_bar,
        notes.join("\n"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpConfig {
        ExpConfig {
            seed: 42,
            horizon: 300,
            n_runs: 1,
            trace_out: None,
            serve: Default::default(),
        }
    }

    #[test]
    fn sweep_covers_all_scenarios_and_policies() {
        let out = run(&tiny());
        for scenario in ["rolling-crash", "az-outage", "stragglers"] {
            assert!(
                out.contains(scenario),
                "missing scenario {scenario}:\n{out}"
            );
        }
        for policy in ["openwhisk", "intelligent", "pulse"] {
            assert!(out.contains(policy), "missing policy {policy}:\n{out}");
        }
    }

    #[test]
    fn sweep_is_deterministic() {
        assert_eq!(run(&tiny()), run(&tiny()));
    }

    #[test]
    fn rolling_crashes_meet_the_availability_and_migration_bars() {
        let cfg = tiny();
        let trace = cfg.trace();
        let fams = round_robin_assignment(&cfg.zoo(), trace.n_functions());
        let all_high: f64 = fams.iter().map(|f| f.highest().memory_mb).sum();
        let cold_bar = min_cold_ms(&fams);
        let scenario = &scenarios(cfg.horizon, all_high * CAP_FRAC)[0];
        let mut table = Table::new("t", &["a", "b", "c", "d", "e", "f", "g", "h", "i", "j"]);
        let out = run_one(&cfg, scenario, &mut table, &mut None);
        for (policy, s) in &out {
            assert!(
                s.availability() >= 0.99,
                "{policy}: availability {} under rolling crashes",
                s.availability()
            );
            assert!(s.node_crashes > 0, "{policy}: no crashes injected");
            // Migration is strictly cheaper than cold-starting the same
            // containers: the pause per migration stays under the cheapest
            // cold start in the zoo.
            assert!(
                s.migration_pause_ms < (s.migrations + 1) * cold_bar,
                "{policy}: {} ms of migration pause over the {} ms cold bar",
                s.migration_pause_ms,
                s.migrations * cold_bar
            );
        }
        assert!(
            out.iter().any(|(_, s)| s.migrations > 0),
            "rolling crashes never triggered a migration"
        );
    }
}

//! `serve` — the live serving demo: open-loop load through the bounded
//! front door, PULSE keep-alive decisions online, wall-clock decision
//! latency from pulse-obs histograms.
//!
//! `pulse-exp serve` runs a CI-sized load; `pulse-exp serve --demo` runs the
//! single-box throughput claim (200k req/s target over 10 virtual seconds).
//! `--rps` / `--duration` override either. With `--trace-out`, the serve
//! telemetry (`serve_start` / `serve_tick` / `serve_backpressure` /
//! `serve_summary`) lands in the JSONL stream.

use crate::common::ExpConfig;
use pulse_obs::{emit, ObsEvent, TraceSink};
use pulse_serve::{run_demo, DemoConfig, ServeReport};

/// Engine admission bound: pending work beyond this is shed by the engine's
/// own admission control (a decision, not a stall).
const MAX_PENDING: usize = 4_096;
/// Ingress channel bound: arrivals beyond this are dropped at the front
/// door and counted.
const CHANNEL_CAPACITY: usize = 65_536;

pub fn run(cfg: &ExpConfig) -> String {
    let demo = DemoConfig {
        rps: cfg.serve.rps,
        seconds: cfg.serve.seconds,
        functions: 12,
        seed: cfg.seed,
        max_pending: MAX_PENDING,
        channel_capacity: CHANNEL_CAPACITY,
    };
    let mut sink = cfg.open_trace();
    let mut dyn_sink = sink.as_mut().map(|s| s as &mut dyn TraceSink);
    // The run_start header every traced sweep carries (and the schema
    // checker insists on); the serve telemetry follows it.
    emit(&mut dyn_sink, || ObsEvent::RunStart {
        label: format!("serve/{}rps-{}s/pulse", demo.rps, demo.seconds),
    });
    let report = run_demo(&demo, dyn_sink);
    render(&demo, &report)
}

fn render(demo: &DemoConfig, r: &ServeReport) -> String {
    let generated = r.admitted + r.front_door_dropped;
    let wall_s = r.wall_ms as f64 / 1e3;
    let mut out = String::new();
    out.push_str("## Live serving (open-loop, bounded front door)\n\n");
    out.push_str(&format!(
        "target load        : {} req/s x {} s across {} functions (seed {})\n",
        demo.rps, demo.seconds, demo.functions, demo.seed
    ));
    out.push_str(&format!(
        "generated          : {generated} arrivals ({} expected)\n",
        demo.expected_arrivals()
    ));
    out.push_str(&format!(
        "admitted           : {} ({} dropped at front door, {} shed by admission)\n",
        r.admitted, r.front_door_dropped, r.engine_shed
    ));
    out.push_str(&format!(
        "achieved           : {:.0} req/s over {:.2} s of wall clock\n",
        r.rps, wall_s
    ));
    // Histogram percentiles are power-of-two bucket upper bounds, hence "<=".
    out.push_str(&format!(
        "decision latency   : p50 <= {} ns, p99 <= {} ns\n",
        r.p50_decision_ns(),
        r.p99_decision_ns()
    ));
    out.push_str(&format!(
        "minute-tick cost   : p99 <= {} ns across {} ticks\n",
        r.tick_ns.approx_percentile(99).unwrap_or(0),
        r.tick_ns.count()
    ));
    out.push_str(&format!(
        "engine summary     : {} requests, {} cold starts, keep-alive ${:.4}\n",
        r.summary.requests(),
        r.summary.cold_starts(),
        r.summary.keepalive_cost_usd
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::ServeOptions;

    #[test]
    fn serve_experiment_reports_throughput_and_latency() {
        let cfg = ExpConfig {
            serve: ServeOptions {
                rps: 5_000,
                seconds: 1,
            },
            ..ExpConfig::quick()
        };
        let out = run(&cfg);
        assert!(out.contains("achieved"), "{out}");
        assert!(out.contains("decision latency"), "{out}");
        assert!(out.contains("5000 req/s x 1 s"), "{out}");
    }
}

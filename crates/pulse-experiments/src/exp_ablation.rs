//! **Extension ablations** — quantifying the design choices the paper
//! argues for but does not ablate:
//!
//! * `ablation-utility` — which components of `Uv = Ai + Pr + Ip` matter:
//!   full utility vs no-priority (`Ai + Ip`), no-probability (`Ai + Pr`),
//!   accuracy-only (`Ai`), and random victim selection. Reports the three
//!   headline metrics plus the *victim concentration* (largest share of
//!   downgrades absorbed by one function — the bias the priority structure
//!   exists to prevent).
//! * `ablation-probability` — the individual optimizer's probability
//!   source: local window only, full history only, or the paper's average
//!   of both (Section III-A's stated motivation for using two windows).
//! * `capacity` — hard memory caps: the provider-baseline *random*
//!   downgrade (Section III-A's motivating strawman) vs PULSE's
//!   utility-ordered downgrade at several capacities.

use crate::common::ExpConfig;
use crate::report::{fmt, Table};
use pulse_core::global::{flatten_peak_with, AliveModel, DowngradeAction};
use pulse_core::individual::{IndividualOptimizer, KeepAliveSchedule};
use pulse_core::interarrival::InterArrivalModel;
use pulse_core::peak::PeakDetector;
use pulse_core::priority::PriorityStructure;
use pulse_core::probability::Probability;
use pulse_core::thresholds::SchemeT1;
use pulse_core::types::{FuncId, Minute, PulseConfig};
use pulse_core::utility::utility_value;
use pulse_models::ModelFamily;
use pulse_sim::assignment::round_robin_assignment;
use pulse_sim::policies::{CapacityPulse, CapacityRandom, OpenWhiskFixed};
use pulse_sim::policy::KeepAlivePolicy;
use pulse_sim::{RunMetrics, Simulator};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Victim-scoring modes for the utility ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UtilityMode {
    /// The paper's `Uv = Ai + Pr + Ip`.
    Full,
    /// Drop the priority term: `Ai + Ip`.
    NoPriority,
    /// Drop the invocation-probability term: `Ai + Pr`.
    NoProbability,
    /// Accuracy improvement alone.
    AccuracyOnly,
    /// Uniform random victim (scores are random draws).
    Random,
}

impl UtilityMode {
    /// All modes in presentation order.
    pub const ALL: [UtilityMode; 5] = [
        UtilityMode::Full,
        UtilityMode::NoPriority,
        UtilityMode::NoProbability,
        UtilityMode::AccuracyOnly,
        UtilityMode::Random,
    ];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            UtilityMode::Full => "Uv = Ai+Pr+Ip (paper)",
            UtilityMode::NoPriority => "Ai+Ip (no priority)",
            UtilityMode::NoProbability => "Ai+Pr (no probability)",
            UtilityMode::AccuracyOnly => "Ai only",
            UtilityMode::Random => "random victim",
        }
    }
}

/// PULSE with a configurable flatten score — the ablation vehicle.
pub struct AblationPolicy {
    families: Vec<ModelFamily>,
    arrivals: Vec<InterArrivalModel>,
    priority: PriorityStructure,
    detector: PeakDetector,
    optimizer: IndividualOptimizer,
    config: PulseConfig,
    mode: UtilityMode,
    rng: SmallRng,
}

impl AblationPolicy {
    /// Build with the given scoring mode.
    pub fn new(
        families: Vec<ModelFamily>,
        config: PulseConfig,
        mode: UtilityMode,
        seed: u64,
    ) -> Self {
        let n = families.len();
        Self {
            detector: PeakDetector::new(config.km_threshold, config.local_window as usize),
            optimizer: IndividualOptimizer::new(config.keepalive_minutes),
            arrivals: vec![InterArrivalModel::new(); n],
            priority: PriorityStructure::new(n),
            families,
            config,
            mode,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Largest share of total downgrades absorbed by a single function
    /// (1.0 = one function takes everything; ~1/n = perfectly spread).
    pub fn victim_concentration(&self) -> f64 {
        let total: u64 = (0..self.families.len())
            .map(|f| self.priority.count(f))
            .sum();
        if total == 0 {
            return 0.0;
        }
        let max = (0..self.families.len())
            .map(|f| self.priority.count(f))
            .max()
            .unwrap_or(0);
        max as f64 / total as f64
    }
}

impl KeepAlivePolicy for AblationPolicy {
    fn name(&self) -> &str {
        "pulse-ablation"
    }

    fn schedule_on_invocation(&mut self, f: FuncId, t: Minute) -> KeepAliveSchedule {
        self.arrivals[f].record(t);
        let probs = self.arrivals[f].probabilities(
            t,
            self.config.local_window,
            self.config.keepalive_minutes,
        );
        self.optimizer
            .schedule(t, &probs, self.families[f].n_variants(), &SchemeT1)
    }

    fn cold_start_variant(&mut self, f: FuncId, _t: Minute) -> usize {
        self.families[f].highest_id()
    }

    fn adjust_minute(
        &mut self,
        t: Minute,
        mem_history: &[f64],
        first_minute_of_period: bool,
        current_kam_mb: f64,
        alive: &mut Vec<AliveModel>,
    ) -> Vec<DowngradeAction> {
        let prior = self.detector.prior_kam(mem_history, first_minute_of_period);
        if !self.detector.is_peak(current_kam_mb, prior) {
            return Vec::new();
        }
        for m in alive.iter_mut() {
            let ip = match self.arrivals[m.func].last_arrival() {
                Some(last) if t > last => self.arrivals[m.func]
                    .probabilities(t, self.config.local_window, self.config.keepalive_minutes)
                    .at(t - last),
                _ => 0.0,
            };
            m.invocation_probability = ip;
        }
        let target = self.detector.flatten_target(prior);
        let mode = self.mode;
        // Random mode needs per-call randomness; draw a salt outside the
        // closure (the closure is Fn, not FnMut).
        let salt: u64 = self.rng.gen();
        let outcome = flatten_peak_with(
            alive,
            &self.families,
            &mut self.priority,
            current_kam_mb,
            target,
            move |m, fam, pr| {
                let ai = fam.accuracy_improvement(m.variant);
                let ip = m.invocation_probability.clamp(0.0, 1.0);
                match mode {
                    UtilityMode::Full => {
                        utility_value(ai, Probability::saturating(pr), Probability::saturating(ip))
                    }
                    UtilityMode::NoPriority => ai + ip,
                    UtilityMode::NoProbability => ai + pr,
                    UtilityMode::AccuracyOnly => ai,
                    UtilityMode::Random => {
                        // Deterministic hash of (salt, func, variant) → [0,1).
                        let mut h = salt ^ (m.func as u64).wrapping_mul(0x9E3779B97F4A7C15);
                        h ^= (m.variant as u64).wrapping_mul(0xD1B54A32D192ED03);
                        h ^= h >> 33;
                        h = h.wrapping_mul(0xFF51AFD7ED558CCD);
                        h ^= h >> 33;
                        (h >> 11) as f64 / (1u64 << 53) as f64
                    }
                }
            },
        );
        outcome.actions
    }
}

/// Run the utility-component ablation.
pub fn run_utility(cfg: &ExpConfig) -> String {
    let trace = cfg.trace();
    let fams = round_robin_assignment(&cfg.zoo(), trace.n_functions());
    let sim = Simulator::new(trace, fams.clone());
    let mut table = Table::new(
        "Ablation: components of the downgrade utility Uv",
        &[
            "Scoring",
            "Cost ($)",
            "Service (s)",
            "Accuracy (%)",
            "Downgrades",
            "Victim conc.",
        ],
    );
    for mode in UtilityMode::ALL {
        let mut p = AblationPolicy::new(fams.clone(), PulseConfig::default(), mode, cfg.seed);
        let m = sim.run(&mut p);
        table.row(vec![
            mode.label().to_string(),
            fmt(m.keepalive_cost_usd, 3),
            fmt(m.service_time_s, 0),
            fmt(m.avg_accuracy_pct(), 2),
            m.downgrades.to_string(),
            fmt(p.victim_concentration(), 3),
        ]);
    }
    table.render()
}

/// Probability-source modes for the individual-optimizer ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbSource {
    /// Local sliding window only.
    LocalOnly,
    /// Full history only.
    GlobalOnly,
    /// The paper's element-wise average of both.
    Averaged,
}

/// PULSE's individual layer with a selectable probability source (global
/// layer off, to isolate the effect).
pub struct ProbSourcePolicy {
    families: Vec<ModelFamily>,
    arrivals: Vec<InterArrivalModel>,
    optimizer: IndividualOptimizer,
    config: PulseConfig,
    source: ProbSource,
}

impl ProbSourcePolicy {
    /// Build with the given source.
    pub fn new(families: Vec<ModelFamily>, config: PulseConfig, source: ProbSource) -> Self {
        let n = families.len();
        Self {
            arrivals: vec![InterArrivalModel::new(); n],
            optimizer: IndividualOptimizer::new(config.keepalive_minutes),
            families,
            config,
            source,
        }
    }
}

impl KeepAlivePolicy for ProbSourcePolicy {
    fn name(&self) -> &str {
        match self.source {
            ProbSource::LocalOnly => "prob-local-only",
            ProbSource::GlobalOnly => "prob-global-only",
            ProbSource::Averaged => "prob-averaged",
        }
    }

    fn schedule_on_invocation(&mut self, f: FuncId, t: Minute) -> KeepAliveSchedule {
        self.arrivals[f].record(t);
        let w = self.config.keepalive_minutes;
        let probs = match self.source {
            ProbSource::LocalOnly => {
                self.arrivals[f].local_distribution(t, self.config.local_window, w)
            }
            ProbSource::GlobalOnly => self.arrivals[f].global_distribution(w),
            ProbSource::Averaged => self.arrivals[f].probabilities(t, self.config.local_window, w),
        };
        self.optimizer
            .schedule(t, &probs, self.families[f].n_variants(), &SchemeT1)
    }

    fn cold_start_variant(&mut self, f: FuncId, _t: Minute) -> usize {
        self.families[f].highest_id()
    }
}

/// Run the probability-source ablation.
pub fn run_probability(cfg: &ExpConfig) -> String {
    let trace = cfg.trace();
    let fams = round_robin_assignment(&cfg.zoo(), trace.n_functions());
    let sim = Simulator::new(trace, fams.clone());
    let mut table = Table::new(
        "Ablation: probability source for the individual optimizer",
        &[
            "Source",
            "Cost ($)",
            "Service (s)",
            "Accuracy (%)",
            "Warm rate",
        ],
    );
    for source in [
        ProbSource::LocalOnly,
        ProbSource::GlobalOnly,
        ProbSource::Averaged,
    ] {
        let mut p = ProbSourcePolicy::new(fams.clone(), PulseConfig::default(), source);
        let name = p.name().to_string();
        let m = sim.run(&mut p);
        table.row(vec![
            name,
            fmt(m.keepalive_cost_usd, 3),
            fmt(m.service_time_s, 0),
            fmt(m.avg_accuracy_pct(), 2),
            format!("{:.1}%", m.warm_fraction() * 100.0),
        ]);
    }
    table.render()
}

/// Run the hard-capacity comparison (random vs utility victim selection).
pub fn run_capacity(cfg: &ExpConfig) -> String {
    let trace = cfg.trace();
    let fams = round_robin_assignment(&cfg.zoo(), trace.n_functions());
    let all_high: f64 = fams.iter().map(|f| f.highest().memory_mb).sum();
    let sim = Simulator::new(trace, fams.clone());
    let mut table = Table::new(
        "Capacity enforcement: random downgrades vs PULSE utility downgrades",
        &[
            "Capacity",
            "Enforcer",
            "Cost ($)",
            "Service (s)",
            "Accuracy (%)",
            "Cold starts",
        ],
    );
    for frac in [0.3, 0.5, 0.7] {
        let cap = all_high * frac;
        let runs: Vec<RunMetrics> = vec![
            sim.run(&mut CapacityRandom::new(
                OpenWhiskFixed::new(&fams),
                fams.clone(),
                cap,
                cfg.seed,
            )),
            sim.run(&mut CapacityPulse::new(
                fams.clone(),
                PulseConfig::default(),
                cap,
            )),
        ];
        for m in runs {
            table.row(vec![
                format!("{:.0}% of all-high", frac * 100.0),
                m.policy.clone(),
                fmt(m.keepalive_cost_usd, 3),
                fmt(m.service_time_s, 0),
                fmt(m.avg_accuracy_pct(), 2),
                m.cold_starts.to_string(),
            ]);
        }
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpConfig {
        ExpConfig {
            seed: 42,
            horizon: 1500,
            n_runs: 2,
            trace_out: None,
            serve: Default::default(),
        }
    }

    #[test]
    fn full_utility_spreads_victims_better_than_accuracy_only() {
        let cfg = tiny();
        let trace = cfg.trace();
        let fams = round_robin_assignment(&cfg.zoo(), trace.n_functions());
        let sim = Simulator::new(trace, fams.clone());
        let mut full =
            AblationPolicy::new(fams.clone(), PulseConfig::default(), UtilityMode::Full, 1);
        let mut ai_only = AblationPolicy::new(
            fams.clone(),
            PulseConfig::default(),
            UtilityMode::AccuracyOnly,
            1,
        );
        let _ = sim.run(&mut full);
        let _ = sim.run(&mut ai_only);
        // Ai-only systematically victimizes the lowest-Ai ladder (the bias
        // the paper's YOLO/GPT example describes); the priority term spreads
        // the load.
        assert!(
            full.victim_concentration() <= ai_only.victim_concentration() + 1e-9,
            "full {} vs ai-only {}",
            full.victim_concentration(),
            ai_only.victim_concentration()
        );
    }

    #[test]
    fn all_modes_flatten_peaks() {
        let cfg = tiny();
        let trace = cfg.trace();
        let fams = round_robin_assignment(&cfg.zoo(), trace.n_functions());
        let sim = Simulator::new(trace, fams.clone());
        for mode in UtilityMode::ALL {
            let mut p = AblationPolicy::new(fams.clone(), PulseConfig::default(), mode, 3);
            let m = sim.run(&mut p);
            assert!(m.downgrades > 0, "{mode:?} never downgraded");
        }
    }

    #[test]
    fn probability_sources_all_produce_valid_runs() {
        let out = run_probability(&tiny());
        assert!(out.contains("prob-local-only"));
        assert!(out.contains("prob-global-only"));
        assert!(out.contains("prob-averaged"));
    }

    #[test]
    fn capacity_report_renders_all_fractions() {
        let out = run_capacity(&tiny());
        assert!(out.contains("30% of all-high"));
        assert!(out.contains("70% of all-high"));
        assert!(out.contains("capacity-pulse"));
    }

    #[test]
    fn utility_report_renders_all_modes() {
        let out = run_utility(&tiny());
        for mode in UtilityMode::ALL {
            assert!(out.contains(mode.label()), "missing {mode:?}");
        }
    }
}

//! Property tests for the forecasting substrate.

use proptest::prelude::*;
use pulse_forecast::ar::{autocovariance, levinson_durbin, ArModel};
use pulse_forecast::fft::{fft, ifft, naive_dft, Complex};
use pulse_forecast::wild::{HybridHistogram, WildConfig};
use pulse_forecast::FftPredictor;

proptest! {
    #[test]
    fn fft_matches_naive_dft_on_pow2(signal in proptest::collection::vec(-100.0f64..100.0, 16..=16)) {
        let fast = fft(&signal);
        let slow = naive_dft(&signal);
        for (a, b) in fast.iter().zip(slow.iter()) {
            prop_assert!((a.re - b.re).abs() < 1e-6);
            prop_assert!((a.im - b.im).abs() < 1e-6);
        }
    }

    #[test]
    fn fft_is_linear(
        a in proptest::collection::vec(-10.0f64..10.0, 32..=32),
        b in proptest::collection::vec(-10.0f64..10.0, 32..=32),
        alpha in -3.0f64..3.0,
    ) {
        let combo: Vec<f64> = a.iter().zip(&b).map(|(x, y)| alpha * x + y).collect();
        let fa = fft(&a);
        let fb = fft(&b);
        let fc = fft(&combo);
        for i in 0..32 {
            let expect = fa[i] * alpha + fb[i];
            prop_assert!((fc[i].re - expect.re).abs() < 1e-6);
            prop_assert!((fc[i].im - expect.im).abs() < 1e-6);
        }
    }

    #[test]
    fn spectrum_of_real_signal_is_conjugate_symmetric(
        signal in proptest::collection::vec(-50.0f64..50.0, 64..=64),
    ) {
        let spec = fft(&signal);
        let n = spec.len();
        for k in 1..n / 2 {
            let a = spec[k];
            let b = spec[n - k].conj();
            prop_assert!((a.re - b.re).abs() < 1e-6);
            prop_assert!((a.im - b.im).abs() < 1e-6);
        }
        prop_assert!(spec[0].im.abs() < 1e-9);
    }

    #[test]
    fn ifft_inverts_fft(signal in proptest::collection::vec(-1e3f64..1e3, 1..100)) {
        let back = ifft(&fft(&signal));
        for (x, y) in signal.iter().zip(back.iter()) {
            prop_assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn levinson_sigma_is_nonnegative_and_nonincreasing(
        xs in proptest::collection::vec(-100.0f64..100.0, 10..200),
        pmax in 1usize..6,
    ) {
        let r = autocovariance(&xs, pmax);
        let mut prev = f64::INFINITY;
        for p in 0..=pmax {
            let (coeffs, s) = levinson_durbin(&r, p);
            prop_assert!(s >= -1e-9, "sigma2 {s}");
            prop_assert!(s <= prev + 1e-9);
            prop_assert!(coeffs.len() <= p);
            prev = s;
        }
    }

    #[test]
    fn ar_forecast_is_finite(
        xs in proptest::collection::vec(0.1f64..1e3, 3..100),
        order in 0usize..5,
        horizon in 1usize..20,
    ) {
        let m = ArModel::fit(&xs, order);
        let fc = m.forecast(&xs, horizon);
        prop_assert_eq!(fc.len(), horizon);
        for v in fc {
            prop_assert!(v.is_finite());
        }
    }

    #[test]
    fn predictor_active_minutes_are_within_horizon(
        counts in proptest::collection::vec(0u32..5, 1..300),
        horizon in 1usize..30,
    ) {
        let mut p = FftPredictor::new();
        for &c in &counts {
            p.push(c as f64);
        }
        for m in p.predict_active(horizon) {
            prop_assert!(m >= 1 && m <= horizon as u64);
        }
    }

    #[test]
    fn wild_decisions_are_well_formed(gaps in proptest::collection::vec(1u64..400, 0..80)) {
        let mut h = HybridHistogram::new(WildConfig::default());
        let mut t = 0u64;
        h.record(t);
        for g in gaps {
            t += g;
            h.record(t);
        }
        let d = h.decide();
        prop_assert!(d.prewarm_min < d.keepalive_min,
            "prewarm {} !< keepalive {}", d.prewarm_min, d.keepalive_min);
        // The window is bounded by the histogram bound plus the AR margin.
        prop_assert!(d.keepalive_min <= 400 + 3);
    }

    #[test]
    fn complex_arithmetic_field_axioms_sample(
        (ar, ai, br, bi) in (-10.0f64..10.0, -10.0f64..10.0, -10.0f64..10.0, -10.0f64..10.0),
    ) {
        let a = Complex::new(ar, ai);
        let b = Complex::new(br, bi);
        // Commutativity.
        let ab = a * b;
        let ba = b * a;
        prop_assert!((ab.re - ba.re).abs() < 1e-9 && (ab.im - ba.im).abs() < 1e-9);
        // |ab| = |a||b|.
        prop_assert!((ab.abs() - a.abs() * b.abs()).abs() < 1e-6);
        // Conjugation distributes.
        let cc = (a * b).conj();
        let cd = a.conj() * b.conj();
        prop_assert!((cc.re - cd.re).abs() < 1e-9 && (cc.im - cd.im).abs() < 1e-9);
    }
}

//! # pulse-forecast — state-of-the-art warm-up strategies, with and without PULSE
//!
//! The paper integrates PULSE into two published serverless warm-up systems
//! and shows the combination beats the originals (Figure 8):
//!
//! * **Serverless in the Wild** (Shahrad et al., ATC'20) — a *hybrid
//!   histogram* of per-function idle times: when the histogram is
//!   representative, the container is pre-warmed just before the head
//!   percentile of the idle-time distribution and kept alive until the tail
//!   percentile; when the pattern is uncertain (too few samples or too heavy
//!   a tail) a time-series fallback (ARIMA in the original; an AR(1)
//!   forecast here) predicts the next idle time. Implemented in [`wild`].
//! * **IceBreaker** (Roy et al., ASPLOS'22) — an FFT-based forecaster: the
//!   recent per-minute invocation signal is decomposed into its dominant
//!   harmonics, which are extrapolated to predict the minutes the function
//!   will fire; containers are warmed at (just before) predicted minutes.
//!   The paper's evaluation uses a single node type, so IceBreaker's
//!   node-selection utility function is not needed. Implemented in
//!   [`icebreaker`], on top of our own radix-2 FFT in [`mod@fft`].
//!
//! Neither original is model-variant aware: both keep the *highest-quality*
//! container alive in their predicted windows. [`integrate`] provides the
//! four simulator policies — `Wild`, `Wild+PULSE`, `IceBreaker`,
//! `IceBreaker+PULSE` — where the `+PULSE` versions let PULSE pick the
//! variant inside the predicted window and run its global peak flattening.

pub mod ar;
pub mod fft;
pub mod holt_winters;
pub mod icebreaker;
pub mod integrate;
pub mod nodes;
pub mod predictor;
pub mod wild;

pub use fft::{fft, ifft, Complex};
pub use holt_winters::HoltWinters;
pub use icebreaker::FftPredictor;
pub use predictor::{ForecastScore, SeriesPredictor};
pub use wild::{HybridHistogram, WildDecision};

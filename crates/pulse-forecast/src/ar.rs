//! Autoregressive modelling: Yule–Walker estimation via Levinson–Durbin.
//!
//! Serverless-in-the-Wild falls back to an ARIMA forecast for functions
//! whose idle-time histogram is not representative. A full ARIMA stack is
//! out of scope (and unnecessary at minute resolution over bounded gap
//! series); this module implements the AR(p) core properly: biased
//! autocovariance estimates, the Levinson–Durbin recursion solving the
//! Yule–Walker equations in O(p²), innovation-variance tracking, AIC-based
//! order selection, and multi-step forecasting.

/// A fitted AR(p) model of a (weakly stationary) series:
/// `x_t − μ = Σ_i φ_i (x_{t−i} − μ) + ε_t`.
#[derive(Debug, Clone, PartialEq)]
pub struct ArModel {
    /// Series mean `μ`.
    pub mean: f64,
    /// AR coefficients `φ_1 … φ_p` (possibly empty: white noise around μ).
    pub coeffs: Vec<f64>,
    /// Innovation variance `σ²` from the recursion.
    pub sigma2: f64,
}

/// Biased (1/N) autocovariance at lags `0..=max_lag`.
pub fn autocovariance(xs: &[f64], max_lag: usize) -> Vec<f64> {
    let n = xs.len();
    if n == 0 {
        return vec![0.0; max_lag + 1];
    }
    let mean = xs.iter().sum::<f64>() / n as f64;
    (0..=max_lag)
        .map(|lag| {
            if lag >= n {
                return 0.0;
            }
            (0..n - lag)
                .map(|t| (xs[t] - mean) * (xs[t + lag] - mean))
                .sum::<f64>()
                / n as f64
        })
        .collect()
}

/// Levinson–Durbin recursion: solve the order-`p` Yule–Walker equations
/// given autocovariances `r[0..=p]`. Returns `(coeffs, sigma2)`.
///
/// Degenerate inputs (`r[0] ≈ 0`, i.e. a constant series) yield the white-
/// noise model `(vec![], 0.0)`.
pub fn levinson_durbin(r: &[f64], p: usize) -> (Vec<f64>, f64) {
    assert!(r.len() > p, "need autocovariances up to lag p");
    if r[0].abs() < 1e-12 || p == 0 {
        return (Vec::new(), r[0].max(0.0));
    }
    let mut a = vec![0.0f64; p]; // φ_1..φ_p (growing prefix in use)
    let mut e = r[0];
    for k in 0..p {
        let mut acc = r[k + 1];
        for j in 0..k {
            acc -= a[j] * r[k - j];
        }
        if e.abs() < 1e-12 {
            break;
        }
        let kappa = acc / e; // reflection coefficient
                             // Update coefficients: a'_j = a_j − κ a_{k−1−j}.
        let prev = a[..k].to_vec();
        for j in 0..k {
            a[j] = prev[j] - kappa * prev[k - 1 - j];
        }
        a[k] = kappa;
        e *= 1.0 - kappa * kappa;
        if e < 0.0 {
            e = 0.0;
        }
    }
    (a, e)
}

impl ArModel {
    /// Fit AR(`order`) by Yule–Walker. `order` is clamped to `len − 1`.
    pub fn fit(xs: &[f64], order: usize) -> Self {
        let n = xs.len();
        if n == 0 {
            return Self {
                mean: 0.0,
                coeffs: Vec::new(),
                sigma2: 0.0,
            };
        }
        let p = order.min(n.saturating_sub(1));
        let r = autocovariance(xs, p);
        let (coeffs, sigma2) = levinson_durbin(&r, p);
        Self {
            mean: xs.iter().sum::<f64>() / n as f64,
            coeffs,
            sigma2,
        }
    }

    /// Fit with automatic order selection: minimize
    /// `AIC(p) = N·ln σ²_p + 2p` over `p ∈ 0..=max_order`.
    pub fn fit_auto(xs: &[f64], max_order: usize) -> Self {
        let n = xs.len();
        if n < 3 {
            return Self::fit(xs, 0);
        }
        let pmax = max_order.min(n - 1);
        let r = autocovariance(xs, pmax);
        let mut best: Option<(f64, Self)> = None;
        let mean = xs.iter().sum::<f64>() / n as f64;
        for p in 0..=pmax {
            let (coeffs, sigma2) = levinson_durbin(&r, p);
            let aic = n as f64 * sigma2.max(1e-12).ln() + 2.0 * p as f64;
            let model = Self {
                mean,
                coeffs,
                sigma2,
            };
            if best.as_ref().is_none_or(|(b, _)| aic < *b) {
                best = Some((aic, model));
            }
        }
        best.expect("at least order 0 evaluated").1
    }

    /// Model order `p`.
    pub fn order(&self) -> usize {
        self.coeffs.len()
    }

    /// One-step-ahead forecast given the most recent observations
    /// (`recent[recent.len() − 1]` is the latest). Missing history is
    /// treated as the mean.
    pub fn forecast_one(&self, recent: &[f64]) -> f64 {
        let mut acc = self.mean;
        for (i, &phi) in self.coeffs.iter().enumerate() {
            let x = recent
                .len()
                .checked_sub(i + 1)
                .map(|idx| recent[idx])
                .unwrap_or(self.mean);
            acc += phi * (x - self.mean);
        }
        acc
    }

    /// `h`-step-ahead forecasts by iterating [`Self::forecast_one`] on the
    /// extended series.
    pub fn forecast(&self, recent: &[f64], horizon: usize) -> Vec<f64> {
        let mut extended = recent.to_vec();
        let mut out = Vec::with_capacity(horizon);
        for _ in 0..horizon {
            let next = self.forecast_one(&extended);
            extended.push(next);
            out.push(next);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ar1_series(phi: f64, n: usize, seed: u64) -> Vec<f64> {
        // Deterministic xorshift noise, so tests need no rand dependency.
        let mut state = seed | 1;
        let mut noise = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut xs = vec![0.0f64];
        for _ in 1..n {
            let prev = *xs.last().unwrap();
            xs.push(phi * prev + noise());
        }
        xs
    }

    #[test]
    fn autocovariance_lag0_is_variance() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let r = autocovariance(&xs, 2);
        assert!((r[0] - 2.0).abs() < 1e-12); // population variance of 1..5
        assert!(r[1] < r[0]);
    }

    #[test]
    fn recovers_ar1_coefficient() {
        for &phi in &[0.8, -0.6, 0.3] {
            let xs = ar1_series(phi, 20_000, 42);
            let m = ArModel::fit(&xs, 1);
            assert_eq!(m.order(), 1);
            assert!(
                (m.coeffs[0] - phi).abs() < 0.05,
                "phi {phi}: estimated {}",
                m.coeffs[0]
            );
        }
    }

    #[test]
    fn constant_series_is_white_noise_at_mean() {
        let m = ArModel::fit(&[7.0; 50], 3);
        assert!(m.coeffs.is_empty());
        assert!((m.mean - 7.0).abs() < 1e-12);
        assert!((m.forecast_one(&[7.0; 5]) - 7.0).abs() < 1e-12);
        assert!(m.sigma2.abs() < 1e-12);
    }

    #[test]
    fn auto_order_prefers_low_order_for_white_noise() {
        let xs = ar1_series(0.0, 5000, 9);
        let m = ArModel::fit_auto(&xs, 6);
        // AIC's 2p penalty should keep the order small for iid noise.
        assert!(m.order() <= 2, "order {}", m.order());
    }

    #[test]
    fn auto_order_finds_ar2_structure() {
        // x_t = 0.6 x_{t-1} - 0.3 x_{t-2} + ε.
        let mut xs = vec![0.0, 0.0];
        let mut state = 12345u64;
        let mut noise = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        for _ in 2..20_000 {
            let n = xs.len();
            let v = 0.6 * xs[n - 1] - 0.3 * xs[n - 2] + noise();
            xs.push(v);
        }
        let m = ArModel::fit_auto(&xs, 5);
        assert!(m.order() >= 2, "order {}", m.order());
        assert!((m.coeffs[0] - 0.6).abs() < 0.08, "{:?}", m.coeffs);
        assert!((m.coeffs[1] + 0.3).abs() < 0.08, "{:?}", m.coeffs);
    }

    #[test]
    fn forecast_decays_to_mean() {
        let xs = ar1_series(0.7, 5000, 5);
        let m = ArModel::fit(&xs, 1);
        let start = m.mean + 10.0;
        let fc = m.forecast(&[start], 50);
        // |forecast − mean| shrinks geometrically.
        assert!((fc[0] - m.mean).abs() < 10.0 * 0.8);
        assert!((fc[49] - m.mean).abs() < 0.01 + (fc[0] - m.mean).abs() * 0.1);
        for w in fc.windows(2) {
            assert!(
                (w[1] - m.mean).abs() <= (w[0] - m.mean).abs() + 1e-9,
                "not contracting: {w:?}"
            );
        }
    }

    #[test]
    fn alternating_series_predicts_flip() {
        // 2, 10, 2, 10 … has strong negative lag-1 correlation.
        let xs: Vec<f64> = (0..200)
            .map(|i| if i % 2 == 0 { 2.0 } else { 10.0 })
            .collect();
        let m = ArModel::fit(&xs, 1);
        assert!(m.coeffs[0] < -0.9, "{:?}", m.coeffs);
        let after_low = m.forecast_one(&[2.0]);
        let after_high = m.forecast_one(&[10.0]);
        assert!(after_low > 8.0, "{after_low}");
        assert!(after_high < 4.0, "{after_high}");
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let m = ArModel::fit(&[], 3);
        assert_eq!(m.order(), 0);
        assert_eq!(m.forecast_one(&[]), 0.0);
        let m = ArModel::fit(&[5.0], 3);
        assert_eq!(m.order(), 0);
        assert!((m.forecast_one(&[]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn short_history_pads_with_mean() {
        let xs = ar1_series(0.5, 2000, 3);
        let m = ArModel::fit(&xs, 3);
        // With no recent observations every term is the mean.
        assert!((m.forecast_one(&[]) - m.mean).abs() < 1e-12);
    }

    #[test]
    fn sigma2_nonincreasing_in_order() {
        let xs = ar1_series(0.7, 5000, 11);
        let r = autocovariance(&xs, 6);
        let mut prev = f64::INFINITY;
        for p in 0..=6 {
            let (_, s) = levinson_durbin(&r, p);
            assert!(s <= prev + 1e-9, "order {p}: {s} > {prev}");
            prev = s;
        }
    }

    #[test]
    #[should_panic(expected = "autocovariances up to lag p")]
    fn levinson_requires_enough_lags() {
        levinson_durbin(&[1.0, 0.5], 2);
    }
}

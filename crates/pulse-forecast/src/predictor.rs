//! A common interface over the forecasters, plus simple reference
//! predictors, for head-to-head comparisons (`pulse-exp predictors`).

use crate::ar::ArModel;
use crate::holt_winters::HoltWinters;
use crate::icebreaker::FftPredictor;

/// Anything that consumes a per-minute count series and forecasts the next
/// `h` minutes.
pub trait SeriesPredictor {
    /// Predictor name for reports.
    fn name(&self) -> &'static str;
    /// Feed one observed minute.
    fn push(&mut self, x: f64);
    /// Forecast minutes `1..=h` ahead.
    fn forecast(&self, h: usize) -> Vec<f64>;

    /// Predicted-active minute offsets: forecast above `threshold`.
    fn predict_active(&self, h: usize, threshold: f64) -> Vec<u64> {
        self.forecast(h)
            .iter()
            .enumerate()
            .filter(|(_, &x)| x > threshold)
            .map(|(i, _)| i as u64 + 1)
            .collect()
    }
}

impl SeriesPredictor for FftPredictor {
    fn name(&self) -> &'static str {
        "fft-topk (icebreaker)"
    }
    fn push(&mut self, x: f64) {
        FftPredictor::push(self, x);
    }
    fn forecast(&self, h: usize) -> Vec<f64> {
        FftPredictor::forecast(self, h)
    }
}

impl SeriesPredictor for HoltWinters {
    fn name(&self) -> &'static str {
        "holt-winters"
    }
    fn push(&mut self, x: f64) {
        HoltWinters::push(self, x);
    }
    fn forecast(&self, h: usize) -> Vec<f64> {
        HoltWinters::forecast(self, h)
    }
}

/// AR(p) over a sliding window of the count series, refit on demand.
#[derive(Debug, Clone)]
pub struct ArWindowPredictor {
    window: usize,
    max_order: usize,
    buffer: Vec<f64>,
}

impl ArWindowPredictor {
    /// AR predictor with a 4-hour window and order ≤ 5.
    pub fn new() -> Self {
        Self::with_params(240, 5)
    }

    /// Fully parameterized constructor.
    pub fn with_params(window: usize, max_order: usize) -> Self {
        assert!(window >= 2);
        Self {
            window,
            max_order,
            buffer: Vec::new(),
        }
    }
}

impl Default for ArWindowPredictor {
    fn default() -> Self {
        Self::new()
    }
}

impl SeriesPredictor for ArWindowPredictor {
    fn name(&self) -> &'static str {
        "ar-yule-walker"
    }
    fn push(&mut self, x: f64) {
        self.buffer.push(x);
        if self.buffer.len() > self.window {
            let excess = self.buffer.len() - self.window;
            self.buffer.drain(..excess);
        }
    }
    fn forecast(&self, h: usize) -> Vec<f64> {
        if self.buffer.is_empty() {
            return vec![0.0; h];
        }
        ArModel::fit_auto(&self.buffer, self.max_order).forecast(&self.buffer, h)
    }
}

/// Seasonal-naive reference: the forecast for offset `k` is the observation
/// one season (default: one hour) earlier. The baseline any learned
/// predictor must beat.
#[derive(Debug, Clone)]
pub struct SeasonalNaive {
    period: usize,
    buffer: Vec<f64>,
}

impl SeasonalNaive {
    /// Seasonal-naive with the given period.
    pub fn new(period: usize) -> Self {
        assert!(period >= 1);
        Self {
            period,
            buffer: Vec::new(),
        }
    }
}

impl SeriesPredictor for SeasonalNaive {
    fn name(&self) -> &'static str {
        "seasonal-naive"
    }
    fn push(&mut self, x: f64) {
        self.buffer.push(x);
        if self.buffer.len() > 2 * self.period {
            let excess = self.buffer.len() - 2 * self.period;
            self.buffer.drain(..excess);
        }
    }
    fn forecast(&self, h: usize) -> Vec<f64> {
        (1..=h)
            .map(|k| {
                self.buffer
                    .len()
                    .checked_sub(self.period)
                    .map(|base| {
                        let idx = base + (k - 1) % self.period;
                        self.buffer.get(idx).copied().unwrap_or(0.0)
                    })
                    .unwrap_or(0.0)
            })
            .collect()
    }
}

/// Binary-forecast quality over one evaluation: counts of predicted/actual
/// active minutes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ForecastScore {
    /// Predicted active and actually active.
    pub true_positives: u64,
    /// Predicted active, actually silent.
    pub false_positives: u64,
    /// Predicted silent, actually active.
    pub false_negatives: u64,
}

impl ForecastScore {
    /// Accumulate one horizon's comparison.
    pub fn record(&mut self, predicted: &[u64], actual_active: &[u64]) {
        for m in predicted {
            if actual_active.contains(m) {
                self.true_positives += 1;
            } else {
                self.false_positives += 1;
            }
        }
        for m in actual_active {
            if !predicted.contains(m) {
                self.false_negatives += 1;
            }
        }
    }

    /// Precision (1.0 when nothing was predicted).
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Recall (1.0 when nothing was actually active).
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// F1 score.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn periodic(period: usize, n: usize) -> Vec<f64> {
        (0..n)
            .map(|t| if t % period == 0 { 1.0 } else { 0.0 })
            .collect()
    }

    #[test]
    fn all_predictors_handle_empty_state() {
        let preds: Vec<Box<dyn SeriesPredictor>> = vec![
            Box::new(FftPredictor::new()),
            Box::new(HoltWinters::hourly()),
            Box::new(ArWindowPredictor::new()),
            Box::new(SeasonalNaive::new(60)),
        ];
        for p in preds {
            let fc = p.forecast(5);
            assert_eq!(fc.len(), 5, "{}", p.name());
            assert!(fc.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn seasonal_naive_repeats_last_season() {
        let mut p = SeasonalNaive::new(4);
        for &x in &[1.0, 0.0, 2.0, 0.0, 3.0, 0.0, 4.0, 0.0] {
            p.push(x);
        }
        // Last season is [3,0,4,0]... buffer keeps 2 seasons [1,0,2,0,3,0,4,0];
        // base = len-4 = 4 → forecasts cycle [3,0,4,0].
        assert_eq!(p.forecast(4), vec![3.0, 0.0, 4.0, 0.0]);
        assert_eq!(p.forecast(6)[4], 3.0);
    }

    #[test]
    fn seasonal_naive_predicts_pure_period_perfectly() {
        let mut p = SeasonalNaive::new(6);
        for x in periodic(6, 120) {
            p.push(x);
        }
        let active = p.predict_active(12, 0.5);
        // t=120 is phase 0 → next active minutes at offsets where (120+k-1)%6==0+..
        // signal active at t≡0 (mod 6): t=120 is offset... offset k covers t=120+k-1? No:
        // forecast offset k covers time 120 + k - 1? We define offset k = k steps ahead
        // of the last sample (t=119), i.e. t = 119 + k. Active t: 120, 126 → k = 1, 7.
        assert_eq!(active, vec![1, 7]);
    }

    #[test]
    fn ar_window_evicts_old_history() {
        let mut p = ArWindowPredictor::with_params(10, 2);
        for t in 0..100 {
            p.push(t as f64);
        }
        assert_eq!(p.buffer.len(), 10);
        let fc = p.forecast(3);
        assert!(fc.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn score_arithmetic() {
        let mut s = ForecastScore::default();
        s.record(&[1, 3, 5], &[1, 2, 3]);
        assert_eq!(s.true_positives, 2); // 1, 3
        assert_eq!(s.false_positives, 1); // 5
        assert_eq!(s.false_negatives, 1); // 2
        assert!((s.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.f1() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_score_is_perfect() {
        let s = ForecastScore::default();
        assert_eq!(s.precision(), 1.0);
        assert_eq!(s.recall(), 1.0);
    }

    #[test]
    fn trait_objects_are_usable_generically() {
        let mut preds: Vec<Box<dyn SeriesPredictor>> = vec![
            Box::new(FftPredictor::with_params(64, 4, 0.4)),
            Box::new(HoltWinters::new(8, 0.3, 0.05, 0.3)),
            Box::new(ArWindowPredictor::with_params(64, 3)),
            Box::new(SeasonalNaive::new(8)),
        ];
        let signal = periodic(8, 128);
        for p in preds.iter_mut() {
            for &x in &signal {
                p.push(x);
            }
            let active = p.predict_active(8, 0.4);
            assert!(active.iter().all(|&m| (1..=8).contains(&m)), "{}", p.name());
        }
    }
}

//! IceBreaker's heterogeneous-node layer.
//!
//! The published IceBreaker warms functions on a *mix of node types*: a
//! cheap low-end node when an invocation is plausible but not imminent, a
//! fast high-end node when it is imminent, and nowhere when it is unlikely —
//! chosen by a utility function. The PULSE paper evaluates with "only one
//! type of node … eliminating the need for utility function computation";
//! this module implements the elided layer so the substrate is complete.
//!
//! Formulation (net-value placement): for function `f` with invocation
//! probability `ip` over the horizon and variant spec `s`, warming on node
//! `n` (execution-time factor `tf_n`, price factor `pf_n`) is worth
//!
//! ```text
//! net(n) = ip · (L_cold − warm(s)·tf_n) · VoT  −  keepalive(s, horizon)·pf_n
//! ```
//!
//! where `L_cold` is the latency of a cold start on the default (low-end)
//! node and `VoT` converts saved seconds into dollars. The placement is the
//! node with the largest positive net value, or `None` when no node pays
//! for itself — reproducing IceBreaker's hot/warm/cold function tiers.

use pulse_models::{CostModel, VariantSpec};

/// A node type in the heterogeneous cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeType {
    /// Display name.
    pub name: String,
    /// Execution-time multiplier (< 1 = faster than baseline).
    pub time_factor: f64,
    /// Keep-alive price multiplier (> 1 = more expensive than baseline).
    pub price_factor: f64,
}

impl NodeType {
    /// IceBreaker's fast, expensive node.
    pub fn high_end() -> Self {
        Self {
            name: "high-end".into(),
            time_factor: 0.6,
            price_factor: 1.5,
        }
    }

    /// IceBreaker's slow, cheap node.
    pub fn low_end() -> Self {
        Self {
            name: "low-end".into(),
            time_factor: 1.6,
            price_factor: 0.6,
        }
    }

    /// The default two-tier cluster.
    pub fn standard_cluster() -> Vec<NodeType> {
        vec![Self::low_end(), Self::high_end()]
    }
}

/// Placement tunables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacementConfig {
    /// Dollar value of one saved second of service latency.
    pub value_of_time_usd_per_s: f64,
    /// Warm-window length the keep-alive cost is paid over, minutes.
    pub horizon_min: f64,
    /// Cost model for keep-alive pricing.
    pub cost: CostModel,
}

impl Default for PlacementConfig {
    fn default() -> Self {
        Self {
            value_of_time_usd_per_s: 0.01,
            horizon_min: 10.0,
            cost: CostModel::aws_lambda(),
        }
    }
}

/// The outcome of a placement decision.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// Chosen node index into the cluster slice, or `None` (stay cold).
    pub node: Option<usize>,
    /// Net value of the chosen option, USD (0 for `None`).
    pub net_value_usd: f64,
}

/// Latency of a cold start executed on the *cheapest* node of the cluster
/// (where unwarmed invocations land), seconds.
pub fn cold_latency_s(spec: &VariantSpec, cluster: &[NodeType]) -> f64 {
    let slowest_cheap = cluster
        .iter()
        .min_by(|a, b| a.price_factor.partial_cmp(&b.price_factor).expect("finite"))
        .expect("non-empty cluster");
    spec.cold_service_time_s() * slowest_cheap.time_factor
}

/// IceBreaker's utility placement: pick the node with the largest positive
/// net value, or none.
pub fn place(
    ip: f64,
    spec: &VariantSpec,
    cluster: &[NodeType],
    cfg: &PlacementConfig,
) -> Placement {
    assert!(!cluster.is_empty(), "cluster must have at least one node");
    let ip = ip.clamp(0.0, 1.0);
    let l_cold = cold_latency_s(spec, cluster);
    let mut best = Placement {
        node: None,
        net_value_usd: 0.0,
    };
    for (i, n) in cluster.iter().enumerate() {
        let warm_latency = spec.warm_service_time_s * n.time_factor;
        let saved_s = (l_cold - warm_latency).max(0.0);
        let benefit = ip * saved_s * cfg.value_of_time_usd_per_s;
        let keepalive = cfg
            .cost
            .keepalive_cost_usd_per_minutes(spec.memory_mb, cfg.horizon_min)
            * n.price_factor;
        let net = benefit - keepalive;
        if net > best.net_value_usd {
            best = Placement {
                node: Some(i),
                net_value_usd: net,
            };
        }
    }
    best
}

/// The probability thresholds at which the placement switches tiers for a
/// given variant: `(cold→low_end, low_end→high_end)` — IceBreaker's
/// function-temperature boundaries, derived rather than hand-tuned.
pub fn tier_boundaries(
    spec: &VariantSpec,
    cluster: &[NodeType],
    cfg: &PlacementConfig,
) -> (f64, f64) {
    let mut first_warm = f64::INFINITY;
    let mut first_high = f64::INFINITY;
    for step in 0..=1000 {
        let ip = step as f64 / 1000.0;
        match place(ip, spec, cluster, cfg).node {
            Some(i) if cluster[i].name == "high-end" => {
                first_high = first_high.min(ip);
                first_warm = first_warm.min(ip);
            }
            Some(_) => first_warm = first_warm.min(ip),
            None => {}
        }
    }
    (first_warm, first_high)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pulse_models::zoo;

    fn gpt_small() -> VariantSpec {
        zoo::gpt().variants[0].clone()
    }

    #[test]
    fn zero_probability_stays_cold() {
        let p = place(
            0.0,
            &gpt_small(),
            &NodeType::standard_cluster(),
            &PlacementConfig::default(),
        );
        assert_eq!(p.node, None);
        assert_eq!(p.net_value_usd, 0.0);
    }

    #[test]
    fn certain_invocation_gets_the_fast_node() {
        let cluster = NodeType::standard_cluster();
        let p = place(1.0, &gpt_small(), &cluster, &PlacementConfig::default());
        let node = p.node.expect("must warm somewhere");
        assert_eq!(cluster[node].name, "high-end");
        assert!(p.net_value_usd > 0.0);
    }

    #[test]
    fn moderate_probability_takes_the_cheap_node() {
        let cluster = NodeType::standard_cluster();
        let (warm_at, high_at) =
            tier_boundaries(&gpt_small(), &cluster, &PlacementConfig::default());
        assert!(warm_at < high_at, "warm {warm_at} !< high {high_at}");
        let mid = (warm_at + high_at) / 2.0;
        let p = place(mid, &gpt_small(), &cluster, &PlacementConfig::default());
        assert_eq!(cluster[p.node.unwrap()].name, "low-end");
    }

    #[test]
    fn tier_is_monotone_in_probability() {
        let cluster = NodeType::standard_cluster();
        let cfg = PlacementConfig::default();
        let spec = gpt_small();
        let tier = |ip: f64| -> u8 {
            match place(ip, &spec, &cluster, &cfg).node {
                None => 0,
                Some(i) if cluster[i].name == "low-end" => 1,
                Some(_) => 2,
            }
        };
        let mut prev = 0;
        for step in 0..=100 {
            let t = tier(step as f64 / 100.0);
            assert!(t >= prev, "tier dropped at ip {}", step as f64 / 100.0);
            prev = t;
        }
        assert_eq!(tier(1.0), 2);
    }

    #[test]
    fn cheap_models_warm_at_lower_probability_than_big_ones() {
        let cluster = NodeType::standard_cluster();
        let cfg = PlacementConfig::default();
        let small = zoo::densenet().variants[0].clone(); // ~580 MB
        let big = zoo::gpt().variants[2].clone(); // ~7 GB
        let (small_warm, _) = tier_boundaries(&small, &cluster, &cfg);
        let (big_warm, _) = tier_boundaries(&big, &cluster, &cfg);
        assert!(
            small_warm < big_warm,
            "small {small_warm} !< big {big_warm}"
        );
    }

    #[test]
    fn single_node_cluster_degenerates_gracefully() {
        let cluster = vec![NodeType {
            name: "only".into(),
            time_factor: 1.0,
            price_factor: 1.0,
        }];
        let p = place(0.9, &gpt_small(), &cluster, &PlacementConfig::default());
        assert_eq!(p.node, Some(0));
        let p0 = place(0.0, &gpt_small(), &cluster, &PlacementConfig::default());
        assert_eq!(p0.node, None);
    }

    #[test]
    fn cold_latency_uses_cheapest_node() {
        let cluster = NodeType::standard_cluster();
        let spec = gpt_small();
        let l = cold_latency_s(&spec, &cluster);
        assert!((l - spec.cold_service_time_s() * 1.6).abs() < 1e-9);
    }

    #[test]
    fn higher_value_of_time_expands_warming() {
        let cluster = NodeType::standard_cluster();
        let spec = gpt_small();
        let cheap_time = PlacementConfig {
            value_of_time_usd_per_s: 0.001,
            ..Default::default()
        };
        let dear_time = PlacementConfig {
            value_of_time_usd_per_s: 0.1,
            ..Default::default()
        };
        let (warm_cheap, _) = tier_boundaries(&spec, &cluster, &cheap_time);
        let (warm_dear, _) = tier_boundaries(&spec, &cluster, &dear_time);
        assert!(warm_dear < warm_cheap);
    }
}

//! Additive Holt–Winters (triple exponential smoothing).
//!
//! Serverless invocation series combine a level, slow drift, and strong
//! seasonality (daily cycles, tight periodic cadences) — exactly the
//! structure Holt–Winters decomposes. It complements the two published
//! predictors: IceBreaker's FFT captures stationary periodicity, Wild's
//! AR fallback captures short-range correlation, and Holt–Winters adds
//! trend + single-season adaptivity. Used by the `predictors` comparison
//! experiment.

/// Additive Holt–Winters state.
#[derive(Debug, Clone)]
pub struct HoltWinters {
    /// Level smoothing factor `α ∈ (0, 1)`.
    pub alpha: f64,
    /// Trend smoothing factor `β ∈ (0, 1)`.
    pub beta: f64,
    /// Seasonal smoothing factor `γ ∈ (0, 1)`.
    pub gamma: f64,
    period: usize,
    level: f64,
    trend: f64,
    season: Vec<f64>,
    /// Samples seen so far (also the phase index).
    t: usize,
    /// Warm-up buffer holding the first two periods for initialization.
    init_buf: Vec<f64>,
}

impl HoltWinters {
    /// New model with seasonal `period` (samples per season).
    ///
    /// # Panics
    /// Panics unless `period ≥ 1` and the factors lie in `(0, 1)`.
    pub fn new(period: usize, alpha: f64, beta: f64, gamma: f64) -> Self {
        assert!(period >= 1, "period must be >= 1");
        for (name, v) in [("alpha", alpha), ("beta", beta), ("gamma", gamma)] {
            assert!(
                (0.0..1.0).contains(&v) && v > 0.0,
                "{name} must be in (0,1)"
            );
        }
        Self {
            alpha,
            beta,
            gamma,
            period,
            level: 0.0,
            trend: 0.0,
            season: vec![0.0; period],
            t: 0,
            init_buf: Vec::with_capacity(2 * period),
        }
    }

    /// Default smoothing for minute-resolution invocation counts with an
    /// hourly season.
    pub fn hourly() -> Self {
        Self::new(60, 0.3, 0.05, 0.3)
    }

    /// True once two full seasons have initialized the components.
    pub fn is_initialized(&self) -> bool {
        self.t >= 2 * self.period
    }

    /// Feed one observation.
    pub fn push(&mut self, x: f64) {
        if !self.is_initialized() {
            self.init_buf.push(x);
            self.t += 1;
            if self.t == 2 * self.period {
                self.initialize();
            }
            return;
        }
        let p = self.period;
        let s_idx = self.t % p;
        let old_level = self.level;
        self.level =
            self.alpha * (x - self.season[s_idx]) + (1.0 - self.alpha) * (self.level + self.trend);
        self.trend = self.beta * (self.level - old_level) + (1.0 - self.beta) * self.trend;
        self.season[s_idx] =
            self.gamma * (x - self.level) + (1.0 - self.gamma) * self.season[s_idx];
        self.t += 1;
    }

    fn initialize(&mut self) {
        let p = self.period;
        let first = &self.init_buf[..p];
        let second = &self.init_buf[p..2 * p];
        let m1: f64 = first.iter().sum::<f64>() / p as f64;
        let m2: f64 = second.iter().sum::<f64>() / p as f64;
        self.level = m2;
        self.trend = (m2 - m1) / p as f64;
        for i in 0..p {
            self.season[i] = (first[i] - m1 + second[i] - m2) / 2.0;
        }
    }

    /// Forecast `h` steps ahead (offsets `1..=h`). Before initialization
    /// (fewer than two seasons seen) it falls back to the running mean.
    pub fn forecast(&self, h: usize) -> Vec<f64> {
        if !self.is_initialized() {
            let mean = if self.init_buf.is_empty() {
                0.0
            } else {
                self.init_buf.iter().sum::<f64>() / self.init_buf.len() as f64
            };
            return vec![mean; h];
        }
        (1..=h)
            .map(|k| {
                let s = self.season[(self.t + k - 1) % self.period];
                self.level + k as f64 * self.trend + s
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(hw: &mut HoltWinters, f: impl Fn(usize) -> f64, n: usize) {
        for t in 0..n {
            hw.push(f(t));
        }
    }

    #[test]
    fn constant_signal_forecasts_constant() {
        let mut hw = HoltWinters::new(8, 0.3, 0.05, 0.3);
        feed(&mut hw, |_| 4.0, 200);
        for v in hw.forecast(16) {
            assert!((v - 4.0).abs() < 1e-6, "got {v}");
        }
    }

    #[test]
    fn linear_trend_is_extrapolated() {
        let mut hw = HoltWinters::new(4, 0.4, 0.2, 0.2);
        feed(&mut hw, |t| t as f64 * 0.5, 400);
        let fc = hw.forecast(8);
        // Next values continue the ramp: x(400) = 200, x(407) = 203.5.
        for (k, v) in fc.iter().enumerate() {
            let truth = (400 + k) as f64 * 0.5;
            assert!((v - truth).abs() < 2.0, "step {k}: {v} vs {truth}");
        }
        // And the ramp keeps rising.
        assert!(fc[7] > fc[0]);
    }

    #[test]
    fn seasonal_pattern_is_learned() {
        // Period-6 pattern: burst at phase 0, silence elsewhere.
        let mut hw = HoltWinters::new(6, 0.2, 0.02, 0.4);
        feed(&mut hw, |t| if t % 6 == 0 { 6.0 } else { 0.0 }, 600);
        let fc = hw.forecast(12);
        // t = 600 ⇒ phase 0 at offsets 1+... t+k where (600+k-1)%6==0 → k=1, 7.
        assert!(fc[0] > 3.0, "burst phase forecast {:?}", fc);
        assert!(fc[6] > 3.0, "next burst {:?}", fc);
        assert!(fc[2] < 1.5, "quiet phase {:?}", fc);
        assert!(fc[9] < 1.5, "quiet phase {:?}", fc);
    }

    #[test]
    fn uninitialized_falls_back_to_running_mean() {
        let mut hw = HoltWinters::new(60, 0.3, 0.05, 0.3);
        hw.push(2.0);
        hw.push(4.0);
        assert!(!hw.is_initialized());
        for v in hw.forecast(5) {
            assert!((v - 3.0).abs() < 1e-12);
        }
        assert_eq!(hw.forecast(0).len(), 0);
    }

    #[test]
    fn empty_model_forecasts_zero() {
        let hw = HoltWinters::hourly();
        assert_eq!(hw.forecast(3), vec![0.0; 3]);
    }

    #[test]
    fn initialization_happens_exactly_at_two_periods() {
        let mut hw = HoltWinters::new(5, 0.3, 0.1, 0.3);
        for t in 0..9 {
            hw.push(t as f64);
            assert!(!hw.is_initialized(), "t={t}");
        }
        hw.push(9.0);
        assert!(hw.is_initialized());
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0,1)")]
    fn alpha_bounds_enforced() {
        HoltWinters::new(10, 1.0, 0.1, 0.1);
    }

    #[test]
    #[should_panic(expected = "period must be >= 1")]
    fn zero_period_rejected() {
        HoltWinters::new(0, 0.3, 0.1, 0.1);
    }
}

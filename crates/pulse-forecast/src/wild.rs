//! Serverless in the Wild: the hybrid histogram policy (Shahrad et al.,
//! ATC'20), as used by the paper for the Figure 8 integration experiment.
//!
//! Per function, idle times (inter-arrival gaps at minute resolution) feed a
//! bounded histogram. On each invocation the policy decides a *pre-warm
//! window* (how long to wait before re-warming the container) and a
//! *keep-alive window* (how long past the pre-warm point to keep it warm):
//!
//! * **Representative histogram** → pre-warm at the head percentile (5th)
//!   of the idle-time distribution, keep alive until the tail percentile
//!   (99th).
//! * **Uncertain pattern** (too few samples, or out-of-bounds/heavy tail) →
//!   the original falls back to ARIMA; we fit an AR(1) model on the gap
//!   series and keep alive a margin window around the predicted next gap.
//! * **No data** → the provider-standard fixed window.

use pulse_models::stats;

/// What Wild decides after an invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WildDecision {
    /// Minutes after the invocation to start keeping the container warm
    /// (0 = immediately).
    pub prewarm_min: u32,
    /// Minutes after the invocation to stop keeping it warm (exclusive
    /// upper edge of the warm window).
    pub keepalive_min: u32,
}

impl WildDecision {
    /// The provider-standard fallback: warm immediately, for `window` min.
    pub fn fixed(window: u32) -> Self {
        Self {
            prewarm_min: 0,
            keepalive_min: window,
        }
    }

    /// True when minute-offset `m` (1-based) after the invocation falls in
    /// the warm window.
    pub fn covers(&self, m: u64) -> bool {
        m > self.prewarm_min as u64 && m <= self.keepalive_min as u64
    }
}

/// Per-function hybrid histogram state.
#[derive(Debug, Clone)]
pub struct HybridHistogram {
    /// Bounded idle-time histogram; bin `g` counts gaps of `g` minutes
    /// (gaps beyond the bound land in the out-of-bounds counter).
    bins: Vec<u32>,
    /// Gaps larger than the histogram bound.
    out_of_bounds: u32,
    /// Raw gap series (bounded FIFO) for the AR(1) fallback.
    recent_gaps: Vec<f64>,
    /// Last invocation minute.
    last_arrival: Option<u64>,
    /// Configuration.
    cfg: WildConfig,
}

/// Tunables of the hybrid histogram (defaults follow the ATC'20 paper's
/// 4-hour bound and 5th/99th percentiles).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WildConfig {
    /// Histogram bound, minutes (gaps beyond it are "out of bounds").
    pub bound_min: u32,
    /// Head percentile for the pre-warm window.
    pub head_pct: f64,
    /// Tail percentile for the keep-alive window.
    pub tail_pct: f64,
    /// Minimum in-bounds samples before the histogram is trusted.
    pub min_samples: u32,
    /// Fraction of out-of-bounds gaps above which the histogram is not
    /// considered representative.
    pub max_oob_frac: f64,
    /// Margin (minutes) around the AR(1)-predicted gap.
    pub ar_margin_min: u32,
    /// How many recent gaps the AR(1) fallback fits.
    pub ar_history: usize,
    /// Fixed fallback window when there is no usable signal.
    pub fixed_window: u32,
}

impl Default for WildConfig {
    fn default() -> Self {
        Self {
            bound_min: 240,
            head_pct: 5.0,
            tail_pct: 99.0,
            min_samples: 5,
            max_oob_frac: 0.5,
            ar_margin_min: 2,
            ar_history: 64,
            fixed_window: 10,
        }
    }
}

impl HybridHistogram {
    /// Fresh state.
    pub fn new(cfg: WildConfig) -> Self {
        Self {
            bins: vec![0; cfg.bound_min as usize + 1],
            out_of_bounds: 0,
            recent_gaps: Vec::new(),
            last_arrival: None,
            cfg,
        }
    }

    /// Record an invocation at minute `t`; returns the observed gap, if any.
    pub fn record(&mut self, t: u64) -> Option<u64> {
        let gap = match self.last_arrival {
            Some(last) if t > last => Some(t - last),
            Some(_) => None, // same-minute duplicate
            None => None,
        };
        if let Some(g) = gap {
            if g <= self.cfg.bound_min as u64 {
                self.bins[g as usize] += 1;
            } else {
                self.out_of_bounds += 1;
            }
            self.recent_gaps.push(g as f64);
            if self.recent_gaps.len() > self.cfg.ar_history {
                self.recent_gaps.remove(0);
            }
        }
        if self.last_arrival.is_none_or(|last| t > last) {
            self.last_arrival = Some(t);
        }
        gap
    }

    /// Number of in-bounds samples.
    pub fn in_bounds(&self) -> u32 {
        self.bins.iter().sum()
    }

    /// Whether the histogram is representative per the ATC'20 criteria.
    pub fn is_representative(&self) -> bool {
        let ib = self.in_bounds();
        if ib < self.cfg.min_samples {
            return false;
        }
        let total = ib + self.out_of_bounds;
        (self.out_of_bounds as f64 / total as f64) <= self.cfg.max_oob_frac
    }

    /// Percentile of the in-bounds idle-time distribution, minutes.
    fn percentile(&self, pct: f64) -> u32 {
        let total = self.in_bounds();
        if total == 0 {
            return self.cfg.fixed_window;
        }
        let target = (pct / 100.0 * total as f64).ceil().max(1.0) as u32;
        let mut cum = 0u32;
        for (g, &c) in self.bins.iter().enumerate() {
            cum += c;
            if cum >= target {
                return g as u32;
            }
        }
        self.cfg.bound_min
    }

    /// Time-series forecast of the next gap — the stand-in for the
    /// original's ARIMA fallback. Fits an AR(p) model (Yule–Walker via
    /// Levinson–Durbin, AIC order selection up to order 3) on the recent
    /// gap series and predicts one step ahead. Returns the mean gap for
    /// very short series, `None` with no data at all.
    pub fn ar_forecast(&self) -> Option<f64> {
        let xs = &self.recent_gaps;
        if xs.is_empty() {
            return None;
        }
        if xs.len() < 3 {
            return Some(stats::mean(xs));
        }
        let model = crate::ar::ArModel::fit_auto(xs, 3);
        Some(model.forecast_one(xs))
    }

    /// Back-compat alias for [`Self::ar_forecast`] (the fallback was a
    /// lag-1 regression before the full Levinson–Durbin estimator landed).
    pub fn ar1_forecast(&self) -> Option<f64> {
        self.ar_forecast()
    }

    /// Wild's decision after an invocation (call [`Self::record`] first).
    pub fn decide(&self) -> WildDecision {
        if self.is_representative() {
            let head = self.percentile(self.cfg.head_pct);
            let tail = self.percentile(self.cfg.tail_pct).max(head + 1);
            return WildDecision {
                // Pre-warm shortly before the head percentile.
                prewarm_min: head.saturating_sub(1),
                keepalive_min: tail,
            };
        }
        match self.ar_forecast() {
            Some(pred) if pred.is_finite() && pred >= 1.0 => {
                let p = pred.round() as u32;
                let m = self.cfg.ar_margin_min;
                WildDecision {
                    prewarm_min: p.saturating_sub(m).saturating_sub(1),
                    keepalive_min: p + m,
                }
            }
            _ => WildDecision::fixed(self.cfg.fixed_window),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record_cadence(h: &mut HybridHistogram, period: u64, n: usize) {
        for i in 0..n {
            h.record(i as u64 * period);
        }
    }

    #[test]
    fn steady_cadence_yields_tight_window() {
        let mut h = HybridHistogram::new(WildConfig::default());
        record_cadence(&mut h, 7, 50);
        assert!(h.is_representative());
        let d = h.decide();
        // Idle time is always 7: pre-warm just before, keep until just after.
        assert_eq!(d.prewarm_min, 6);
        assert_eq!(d.keepalive_min, 8);
        assert!(d.covers(7));
        assert!(!d.covers(3));
        assert!(!d.covers(9));
    }

    #[test]
    fn percentiles_of_spread_histogram() {
        let mut h = HybridHistogram::new(WildConfig::default());
        // Gaps: mostly 5, some 20.
        let mut t = 0;
        for i in 0..100 {
            t += if i % 10 == 0 { 20 } else { 5 };
            h.record(t);
        }
        let d = h.decide();
        assert!(d.prewarm_min <= 5);
        assert!(d.keepalive_min >= 20);
    }

    #[test]
    fn too_few_samples_falls_back() {
        let mut h = HybridHistogram::new(WildConfig::default());
        h.record(0);
        h.record(5);
        assert!(!h.is_representative());
        let d = h.decide();
        // AR fallback on a single gap of 5 → window around 5.
        assert!(d.covers(5), "{d:?}");
    }

    #[test]
    fn no_data_uses_fixed_window() {
        let h = HybridHistogram::new(WildConfig::default());
        assert_eq!(h.decide(), WildDecision::fixed(10));
    }

    #[test]
    fn heavy_out_of_bounds_triggers_fallback() {
        let cfg = WildConfig::default();
        let mut h = HybridHistogram::new(cfg);
        // Most gaps beyond the 240-minute bound.
        let mut t = 0u64;
        for i in 0..20 {
            t += if i % 4 == 0 { 10 } else { 500 };
            h.record(t);
        }
        assert!(!h.is_representative());
        // AR forecast exists (gap series non-empty).
        assert!(h.ar1_forecast().is_some());
    }

    #[test]
    fn ar1_tracks_alternating_series() {
        let mut h = HybridHistogram::new(WildConfig {
            min_samples: u32::MAX, // force the AR path
            ..Default::default()
        });
        // Strongly negatively autocorrelated gaps: 2, 10, 2, 10, …
        let mut t = 0u64;
        for i in 0..40 {
            t += if i % 2 == 0 { 2 } else { 10 };
            h.record(t);
        }
        let pred = h.ar1_forecast().unwrap();
        let last = *h.recent_gaps.last().unwrap();
        // Prediction moves to the opposite side of the mean from `last`.
        let mu = stats::mean(&h.recent_gaps);
        assert!((pred - mu).signum() != (last - mu).signum(), "pred={pred}");
    }

    #[test]
    fn same_minute_duplicates_ignored() {
        let mut h = HybridHistogram::new(WildConfig::default());
        h.record(5);
        assert_eq!(h.record(5), None);
        assert_eq!(h.record(9), Some(4));
    }

    #[test]
    fn decision_window_is_well_formed() {
        let mut h = HybridHistogram::new(WildConfig::default());
        let mut t = 0u64;
        for g in [1u64, 3, 2, 8, 1, 1, 4, 90, 2, 2, 3, 1] {
            t += g;
            h.record(t);
        }
        let d = h.decide();
        assert!(d.prewarm_min < d.keepalive_min);
    }
}

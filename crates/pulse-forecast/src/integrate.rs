//! Simulator policies for the Figure 8 integration experiment.
//!
//! Four policies: the two published techniques as-is (model-variant
//! *oblivious* — they always warm the highest-quality container, and they
//! enforce no memory constraint), and the two `+PULSE` integrations, where
//! "once techniques like Wild and IceBreaker forecast the inter-arrival
//! times of functions, PULSE takes the lead in determining which model
//! variant should be kept active and for how long" — plus PULSE's global
//! peak flattening.

use crate::icebreaker::FftPredictor;
use crate::wild::{HybridHistogram, WildConfig};
use pulse_core::global::{AliveModel, DowngradeAction};
use pulse_core::individual::KeepAliveSchedule;
use pulse_core::schedule::Slot;
use pulse_core::thresholds::{SchemeT1, ThresholdScheme};
use pulse_core::types::{FuncId, Minute, PulseConfig};
use pulse_core::PulseEngine;
use pulse_models::{ModelFamily, VariantId};
use pulse_sim::policy::KeepAlivePolicy;
use pulse_trace::Trace;

/// Cap on how long a predicted warm window may extend (Wild's histogram
/// bound).
const MAX_WINDOW: u32 = 240;

// ---------------------------------------------------------------------------
// Serverless in the Wild
// ---------------------------------------------------------------------------

/// Wild as published: hybrid-histogram windows, highest-quality containers.
pub struct WildPolicy {
    histograms: Vec<HybridHistogram>,
    highest: Vec<VariantId>,
}

impl WildPolicy {
    /// Wild over a family assignment.
    pub fn new(families: &[ModelFamily]) -> Self {
        Self {
            histograms: families
                .iter()
                .map(|_| HybridHistogram::new(WildConfig::default()))
                .collect(),
            highest: pulse_sim::policy::highest_ids(families),
        }
    }
}

/// Build a holed schedule covering `1..=window` where minute `m` is alive
/// (with `variant_of(m)`) iff `covers(m)`.
fn holed_schedule(
    t: Minute,
    window: u32,
    covers: impl Fn(u64) -> bool,
    variant_of: impl Fn(u64) -> VariantId,
) -> KeepAliveSchedule {
    let window = window.min(MAX_WINDOW);
    KeepAliveSchedule::from_slots(
        t,
        (1..=window as u64).map(|m| {
            if covers(m) {
                Slot::Alive(variant_of(m))
            } else {
                Slot::Hole
            }
        }),
    )
}

impl KeepAlivePolicy for WildPolicy {
    fn name(&self) -> &str {
        "wild"
    }

    fn schedule_on_invocation(&mut self, f: FuncId, t: Minute) -> KeepAliveSchedule {
        self.histograms[f].record(t);
        let d = self.histograms[f].decide();
        holed_schedule(t, d.keepalive_min, |m| d.covers(m), |_| self.highest[f])
    }

    fn cold_start_variant(&mut self, f: FuncId, _t: Minute) -> VariantId {
        self.highest[f]
    }
}

/// Wild + PULSE: Wild's predicted warm window, PULSE's variant choice inside
/// it and PULSE's global peak flattening on top.
pub struct WildPulsePolicy {
    histograms: Vec<HybridHistogram>,
    engine: PulseEngine,
}

impl WildPulsePolicy {
    /// Integration over a family assignment.
    pub fn new(families: Vec<ModelFamily>, config: PulseConfig) -> Self {
        Self {
            histograms: families
                .iter()
                .map(|_| HybridHistogram::new(WildConfig::default()))
                .collect(),
            engine: PulseEngine::new(families, config),
        }
    }
}

impl KeepAlivePolicy for WildPulsePolicy {
    fn name(&self) -> &str {
        "wild+pulse"
    }

    fn schedule_on_invocation(&mut self, f: FuncId, t: Minute) -> KeepAliveSchedule {
        self.histograms[f].record(t);
        self.engine.record_invocation(f, t);
        let d = self.histograms[f].decide();
        let probs = self.engine.probabilities(f, t);
        let n = self.engine.family(f).n_variants();
        holed_schedule(
            t,
            d.keepalive_min,
            |m| d.covers(m),
            |m| SchemeT1.select(probs.prob(m), n),
        )
    }

    fn cold_start_variant(&mut self, f: FuncId, _t: Minute) -> VariantId {
        self.engine.family(f).highest_id()
    }

    fn adjust_minute(
        &mut self,
        t: Minute,
        mem_history: &[f64],
        first_minute_of_period: bool,
        current_kam_mb: f64,
        alive: &mut Vec<AliveModel>,
    ) -> Vec<DowngradeAction> {
        for m in alive.iter_mut() {
            m.invocation_probability = self.engine.invocation_probability_at(m.func, t);
        }
        self.engine
            .check_and_flatten(mem_history, first_minute_of_period, current_kam_mb, alive)
            .map(|o| o.actions)
            .unwrap_or_default()
    }
}

// ---------------------------------------------------------------------------
// IceBreaker
// ---------------------------------------------------------------------------

/// Shared plumbing of the two IceBreaker policies: per-function FFT
/// predictors fed from the (past of the) trace.
struct IceBreakerCore {
    trace: Trace,
    predictors: Vec<FftPredictor>,
    cursors: Vec<u64>,
    horizon: u32,
}

impl IceBreakerCore {
    fn new(n_functions: usize, trace: Trace, horizon: u32) -> Self {
        assert_eq!(trace.n_functions(), n_functions);
        Self {
            trace,
            predictors: (0..n_functions).map(|_| FftPredictor::new()).collect(),
            cursors: vec![0; n_functions],
            horizon,
        }
    }

    /// Feed the predictor everything observed up to and including minute `t`
    /// (history only — this is a predictor, not an oracle).
    fn observe_up_to(&mut self, f: FuncId, t: Minute) {
        while self.cursors[f] <= t {
            let c = self.trace.function(f).at(self.cursors[f]);
            self.predictors[f].push(c as f64);
            self.cursors[f] += 1;
        }
    }

    /// Predicted-active minute offsets within the horizon after `t`.
    fn predicted(&mut self, f: FuncId, t: Minute) -> Vec<u64> {
        self.observe_up_to(f, t);
        self.predictors[f].predict_active(self.horizon as usize)
    }
}

/// IceBreaker as published (single node type): FFT-predicted warm minutes,
/// highest-quality containers.
pub struct IceBreakerPolicy {
    core: IceBreakerCore,
    highest: Vec<VariantId>,
}

impl IceBreakerPolicy {
    /// IceBreaker over a family assignment and the workload it will face
    /// (only the past of the trace is ever read).
    pub fn new(families: &[ModelFamily], trace: Trace) -> Self {
        Self {
            core: IceBreakerCore::new(families.len(), trace, 10),
            highest: pulse_sim::policy::highest_ids(families),
        }
    }
}

impl KeepAlivePolicy for IceBreakerPolicy {
    fn name(&self) -> &str {
        "icebreaker"
    }

    fn schedule_on_invocation(&mut self, f: FuncId, t: Minute) -> KeepAliveSchedule {
        let active = self.core.predicted(f, t);
        let horizon = self.core.horizon;
        holed_schedule(t, horizon, |m| active.contains(&m), |_| self.highest[f])
    }

    fn cold_start_variant(&mut self, f: FuncId, _t: Minute) -> VariantId {
        self.highest[f]
    }
}

/// IceBreaker + PULSE: FFT-predicted warm minutes, PULSE's variant choice at
/// those minutes, lowest-variant coverage of the unpredicted remainder of
/// the keep-alive window (PULSE's cold-start guard), and global flattening.
pub struct IceBreakerPulsePolicy {
    core: IceBreakerCore,
    engine: PulseEngine,
}

impl IceBreakerPulsePolicy {
    /// Integration over a family assignment and the workload.
    pub fn new(families: Vec<ModelFamily>, trace: Trace, config: PulseConfig) -> Self {
        Self {
            core: IceBreakerCore::new(families.len(), trace, config.keepalive_minutes),
            engine: PulseEngine::new(families, config),
        }
    }
}

impl KeepAlivePolicy for IceBreakerPulsePolicy {
    fn name(&self) -> &str {
        "icebreaker+pulse"
    }

    fn schedule_on_invocation(&mut self, f: FuncId, t: Minute) -> KeepAliveSchedule {
        self.engine.record_invocation(f, t);
        let active = self.core.predicted(f, t);
        let probs = self.engine.probabilities(f, t);
        let n = self.engine.family(f).n_variants();
        let horizon = self.core.horizon;
        // Same predicted warm minutes as IceBreaker, but PULSE picks the
        // variant from the invocation probability instead of always warming
        // the highest — strictly cheaper warm minutes, slightly lower
        // accuracy, faster warm service (the paper's Figure 8 shape).
        holed_schedule(
            t,
            horizon,
            |m| active.contains(&m),
            |m| SchemeT1.select(probs.prob(m), n),
        )
    }

    fn cold_start_variant(&mut self, f: FuncId, _t: Minute) -> VariantId {
        self.engine.family(f).highest_id()
    }

    fn adjust_minute(
        &mut self,
        t: Minute,
        mem_history: &[f64],
        first_minute_of_period: bool,
        current_kam_mb: f64,
        alive: &mut Vec<AliveModel>,
    ) -> Vec<DowngradeAction> {
        for m in alive.iter_mut() {
            m.invocation_probability = self.engine.invocation_probability_at(m.func, t);
        }
        self.engine
            .check_and_flatten(mem_history, first_minute_of_period, current_kam_mb, alive)
            .map(|o| o.actions)
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pulse_models::zoo;
    use pulse_sim::Simulator;
    use pulse_trace::synth;

    fn assignment(n: usize) -> Vec<ModelFamily> {
        (0..n).map(|i| zoo::standard()[i % 5].clone()).collect()
    }

    #[test]
    fn wild_schedule_covers_learned_cadence() {
        let fams = assignment(1);
        let mut p = WildPolicy::new(&fams);
        let mut s = None;
        for i in 0..30u64 {
            s = Some(p.schedule_on_invocation(0, i * 6));
        }
        let s = s.unwrap();
        // Idle time is always 6: warm at 6, holes early.
        assert_eq!(s.slot_at_offset(6), Some(Slot::Alive(fams[0].highest_id())));
        assert_eq!(s.slot_at_offset(2), Some(Slot::Hole));
    }

    #[test]
    fn wild_pulse_picks_cheap_variants_at_low_probability() {
        let fams = assignment(1);
        let mut wp = WildPulsePolicy::new(fams.clone(), PulseConfig::default());
        let mut s = None;
        for i in 0..30u64 {
            s = Some(wp.schedule_on_invocation(0, i * 6));
        }
        let s = s.unwrap();
        // Probability mass is all at gap 6 → highest variant there.
        assert_eq!(s.variant_at_offset(6), Some(fams[0].highest_id()));
    }

    #[test]
    fn wild_pulse_cheaper_than_wild_end_to_end() {
        let trace = synth::azure_like_12_with_horizon(17, 3000);
        let fams = assignment(12);
        let sim = Simulator::new(trace.clone(), fams.clone());
        let wild = sim.run(&mut WildPolicy::new(&fams));
        let wp = sim.run(&mut WildPulsePolicy::new(
            fams.clone(),
            PulseConfig::default(),
        ));
        assert!(
            wp.keepalive_cost_usd < wild.keepalive_cost_usd,
            "wild+pulse {} !< wild {}",
            wp.keepalive_cost_usd,
            wild.keepalive_cost_usd
        );
        // Accuracy stays within a few points.
        assert!(wild.avg_accuracy_pct() - wp.avg_accuracy_pct() < 5.0);
    }

    #[test]
    fn icebreaker_predicts_periodic_function() {
        let trace = {
            let mut v = vec![0u32; 600];
            for t in (0..600).step_by(8) {
                v[t] = 1;
            }
            Trace::new(vec![pulse_trace::FunctionTrace::new("p", v)])
        };
        let fams = assignment(1);
        let sim = Simulator::new(trace.clone(), fams.clone());
        let m = sim.run(&mut IceBreakerPolicy::new(&fams, trace));
        // Once the predictor has seen a few hours, most starts are warm.
        assert!(
            m.warm_fraction() > 0.5,
            "warm fraction {}",
            m.warm_fraction()
        );
    }

    #[test]
    fn icebreaker_pulse_cheaper_than_icebreaker() {
        let trace = synth::azure_like_12_with_horizon(19, 3000);
        let fams = assignment(12);
        let sim = Simulator::new(trace.clone(), fams.clone());
        let ib = sim.run(&mut IceBreakerPolicy::new(&fams, trace.clone()));
        let ibp = sim.run(&mut IceBreakerPulsePolicy::new(
            fams.clone(),
            trace,
            PulseConfig::default(),
        ));
        // The integration warms the same predicted minutes with cheaper
        // variants, so cost cannot rise; the paper reports −14 %.
        assert!(
            ibp.keepalive_cost_usd <= ib.keepalive_cost_usd,
            "ib+pulse {} !<= ib {}",
            ibp.keepalive_cost_usd,
            ib.keepalive_cost_usd
        );
        assert!(ib.avg_accuracy_pct() - ibp.avg_accuracy_pct() < 5.0);
    }

    #[test]
    fn icebreaker_core_never_reads_the_future() {
        let trace = synth::azure_like_12_with_horizon(23, 500);
        let mut core = IceBreakerCore::new(12, trace, 10);
        core.observe_up_to(0, 100);
        assert_eq!(core.cursors[0], 101);
        assert_eq!(
            core.predictors[0].len(),
            101.min(core.predictors[0].history_len)
        );
        let _ = core.predicted(3, 250);
        assert_eq!(core.cursors[3], 251);
    }

    #[test]
    fn holed_schedule_shape() {
        let s = holed_schedule(100, 5, |m| m % 2 == 0, |_| 7);
        assert_eq!(s.slot_at_offset(1), Some(Slot::Hole));
        assert_eq!(s.slot_at_offset(2), Some(Slot::Alive(7)));
        assert_eq!(s.slot_at_offset(5), Some(Slot::Hole));
        assert_eq!(s.slot_at_offset(6), None);
    }

    #[test]
    fn window_cap_enforced() {
        let s = holed_schedule(0, 10_000, |_| true, |_| 0);
        assert_eq!(s.window(), MAX_WINDOW);
    }
}

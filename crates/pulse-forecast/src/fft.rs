//! A self-contained iterative radix-2 FFT.
//!
//! IceBreaker's predictor needs a discrete Fourier transform; the sanctioned
//! dependency set has none, so this module implements the classic in-place
//! Cooley–Tukey algorithm: bit-reversal permutation followed by log₂N
//! butterfly passes. Sizes must be powers of two ([`next_pow2`] +
//! zero-padding handle arbitrary inputs). Verified against a naive O(N²)
//! DFT in the tests.

/// A complex number (f64 re/im). Deliberately minimal: just the operations
/// the FFT and the spectral predictor need.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Construct from parts.
    #[inline]
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// The real number `x`.
    #[inline]
    pub fn real(x: f64) -> Self {
        Self { re: x, im: 0.0 }
    }

    /// `e^{iθ}`.
    #[inline]
    pub fn from_angle(theta: f64) -> Self {
        Self {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Phase `arg(z)`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl std::ops::Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, s: f64) -> Complex {
        Complex::new(self.re * s, self.im * s)
    }
}

/// Smallest power of two ≥ `n` (and ≥ 1).
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// In-place forward FFT. `data.len()` must be a power of two.
pub fn fft_in_place(data: &mut [Complex]) {
    transform(data, false);
}

/// In-place inverse FFT (including the 1/N scaling).
pub fn ifft_in_place(data: &mut [Complex]) {
    transform(data, true);
    let n = data.len() as f64;
    for z in data.iter_mut() {
        *z = *z * (1.0 / n);
    }
}

/// Forward FFT of a real signal, zero-padded to the next power of two.
pub fn fft(signal: &[f64]) -> Vec<Complex> {
    let n = next_pow2(signal.len());
    let mut data: Vec<Complex> = signal.iter().map(|&x| Complex::real(x)).collect();
    data.resize(n, Complex::default());
    fft_in_place(&mut data);
    data
}

/// Inverse FFT returning the real parts (the caller guarantees the spectrum
/// is conjugate-symmetric, i.e. represents a real signal).
pub fn ifft(spectrum: &[Complex]) -> Vec<f64> {
    assert!(
        spectrum.len().is_power_of_two(),
        "spectrum length must be a power of two"
    );
    let mut data = spectrum.to_vec();
    ifft_in_place(&mut data);
    data.into_iter().map(|z| z.re).collect()
}

fn transform(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * std::f64::consts::TAU / len as f64;
        let wlen = Complex::from_angle(ang);
        let mut i = 0;
        while i < n {
            let mut w = Complex::real(1.0);
            for j in 0..len / 2 {
                let u = data[i + j];
                let v = data[i + j + len / 2] * w;
                data[i + j] = u + v;
                data[i + j + len / 2] = u - v;
                w = w * wlen;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Naive O(N²) DFT, kept as the correctness oracle for tests and available
/// for callers that need arbitrary (non-power-of-two) lengths.
pub fn naive_dft(signal: &[f64]) -> Vec<Complex> {
    let n = signal.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex::default();
            for (t, &x) in signal.iter().enumerate() {
                let ang = -std::f64::consts::TAU * k as f64 * t as f64 / n as f64;
                acc = acc + Complex::from_angle(ang) * x;
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: Complex, b: Complex, eps: f64) {
        assert!(
            (a.re - b.re).abs() < eps && (a.im - b.im).abs() < eps,
            "{a:?} vs {b:?}"
        );
    }

    #[test]
    fn matches_naive_dft() {
        let signal: Vec<f64> = (0..16).map(|i| ((i * 7) % 5) as f64 - 1.5).collect();
        let fast = fft(&signal);
        let slow = naive_dft(&signal);
        for (f, s) in fast.iter().zip(slow.iter()) {
            assert_close(*f, *s, 1e-9);
        }
    }

    #[test]
    fn round_trip_is_identity() {
        let signal: Vec<f64> = (0..64)
            .map(|i| (i as f64 * 0.37).sin() * 3.0 + 1.0)
            .collect();
        let back = ifft(&fft(&signal));
        for (x, y) in signal.iter().zip(back.iter()) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut signal = vec![0.0; 8];
        signal[0] = 1.0;
        let spec = fft(&signal);
        for z in spec {
            assert_close(z, Complex::real(1.0), 1e-12);
        }
    }

    #[test]
    fn dc_signal_concentrates_in_bin_zero() {
        let spec = fft(&[2.5; 16]);
        assert!((spec[0].re - 40.0).abs() < 1e-9);
        for z in &spec[1..] {
            assert!(z.abs() < 1e-9);
        }
    }

    #[test]
    fn pure_tone_peaks_at_its_frequency() {
        let n = 64;
        let k = 5;
        let signal: Vec<f64> = (0..n)
            .map(|t| (std::f64::consts::TAU * k as f64 * t as f64 / n as f64).cos())
            .collect();
        let spec = fft(&signal);
        let mags: Vec<f64> = spec.iter().map(|z| z.abs()).collect();
        let argmax = mags
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(argmax == k || argmax == n - k, "peak at {argmax}");
        assert!((mags[k] - n as f64 / 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_padding_handles_non_pow2() {
        let spec = fft(&[1.0, 2.0, 3.0]); // padded to 4
        assert_eq!(spec.len(), 4);
        assert!((spec[0].re - 6.0).abs() < 1e-12);
    }

    #[test]
    fn parseval_energy_is_conserved() {
        let signal: Vec<f64> = (0..32).map(|i| ((i * 13) % 7) as f64).collect();
        let spec = fft(&signal);
        let time_energy: f64 = signal.iter().map(|x| x * x).sum();
        let freq_energy: f64 =
            spec.iter().map(|z| z.abs().powi(2)).sum::<f64>() / spec.len() as f64;
        assert!((time_energy - freq_energy).abs() < 1e-6);
    }

    #[test]
    fn linearity() {
        let a: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..16).map(|i| (i * i % 11) as f64).collect();
        let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let fa = fft(&a);
        let fb = fft(&b);
        let fsum = fft(&sum);
        for i in 0..16 {
            assert_close(fsum[i], fa[i] + fb[i], 1e-9);
        }
    }

    #[test]
    fn single_element_and_empty() {
        assert_eq!(fft(&[3.0])[0], Complex::real(3.0));
        let spec = fft(&[]);
        assert_eq!(spec.len(), 1);
        assert_eq!(spec[0], Complex::default());
    }

    #[test]
    fn next_pow2_values() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(5), 8);
        assert_eq!(next_pow2(1024), 1024);
        assert_eq!(next_pow2(1025), 2048);
    }

    #[test]
    fn complex_ops() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert_eq!(a.conj(), Complex::new(1.0, -2.0));
        assert!((Complex::new(3.0, 4.0).abs() - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn in_place_rejects_non_pow2() {
        let mut d = vec![Complex::default(); 3];
        fft_in_place(&mut d);
    }
}

//! IceBreaker's FFT-based invocation forecaster (Roy et al., ASPLOS'22).
//!
//! IceBreaker treats a function's recent per-minute invocation counts as a
//! signal, Fourier-transforms it, keeps the dominant harmonics, and
//! extrapolates them to predict invocations in the upcoming window; the
//! function is pre-warmed for the predicted minutes. (The original also
//! picks among heterogeneous node types via a utility function; the paper's
//! integration experiment uses a single node type, so that stage is elided —
//! exactly as the paper does.)

use crate::fft::{fft, next_pow2, Complex};

/// Top-k harmonic forecaster over a sliding history of per-minute counts.
#[derive(Debug, Clone)]
pub struct FftPredictor {
    /// Sliding history length (minutes). Analyses use the last `history_len`
    /// samples, zero-padded to a power of two.
    pub history_len: usize,
    /// Number of dominant harmonics (excluding DC) to keep.
    pub top_k: usize,
    /// Threshold on the reconstructed signal above which a minute is
    /// predicted "active".
    pub activity_threshold: f64,
    buffer: Vec<f64>,
}

impl FftPredictor {
    /// Predictor with IceBreaker-like defaults: 4-hour history, 8 harmonics.
    pub fn new() -> Self {
        Self::with_params(240, 8, 0.5)
    }

    /// Fully parameterized constructor.
    pub fn with_params(history_len: usize, top_k: usize, activity_threshold: f64) -> Self {
        assert!(history_len >= 2 && top_k >= 1);
        Self {
            history_len,
            top_k,
            activity_threshold,
            buffer: Vec::new(),
        }
    }

    /// Push one minute's invocation count.
    pub fn push(&mut self, count: f64) {
        self.buffer.push(count);
        if self.buffer.len() > self.history_len {
            let excess = self.buffer.len() - self.history_len;
            self.buffer.drain(..excess);
        }
    }

    /// Number of samples currently held.
    pub fn len(&self) -> usize {
        self.buffer.len()
    }

    /// True when no samples are held.
    pub fn is_empty(&self) -> bool {
        self.buffer.is_empty()
    }

    /// Extrapolate the signal `horizon` minutes past the end of the history:
    /// returns the reconstructed-from-top-k values at offsets `1..=horizon`.
    ///
    /// Reconstruction: with spectrum `X` of length `N`, keep the DC bin plus
    /// the `top_k` strongest bins `k ≤ N/2`; the signal value at (possibly
    /// out-of-range) time `t` is
    /// `X₀/N + Σ_k (2/N)·|X_k|·cos(2π k t / N + arg X_k)` — periodic
    /// extension of the dominant harmonics.
    pub fn forecast(&self, horizon: usize) -> Vec<f64> {
        if self.buffer.is_empty() {
            return vec![0.0; horizon];
        }
        let n = next_pow2(self.buffer.len());
        let spectrum = fft(&self.buffer);
        let half = n / 2;
        // Rank positive-frequency bins by magnitude.
        let mut bins: Vec<(usize, Complex)> = (1..=half).map(|k| (k, spectrum[k])).collect();
        bins.sort_by(|a, b| {
            b.1.abs()
                .partial_cmp(&a.1.abs())
                .expect("finite magnitudes")
        });
        bins.truncate(self.top_k);
        let dc = spectrum[0].re / n as f64;
        (1..=horizon)
            .map(|m| {
                let t = (self.buffer.len() - 1 + m) as f64;
                let mut x = dc;
                for &(k, z) in &bins {
                    let scale = if k == half { 1.0 } else { 2.0 };
                    x += scale / n as f64
                        * z.abs()
                        * (std::f64::consts::TAU * k as f64 * t / n as f64 + z.arg()).cos();
                }
                x
            })
            .collect()
    }

    /// Predicted-active minutes within the next `horizon`: 1-based offsets
    /// where the forecast exceeds the activity threshold.
    pub fn predict_active(&self, horizon: usize) -> Vec<u64> {
        self.forecast(horizon)
            .iter()
            .enumerate()
            .filter(|(_, &x)| x > self.activity_threshold)
            .map(|(i, _)| i as u64 + 1)
            .collect()
    }
}

impl Default for FftPredictor {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed_periodic(p: &mut FftPredictor, period: usize, total: usize) {
        for t in 0..total {
            p.push(if t % period == 0 { 1.0 } else { 0.0 });
        }
    }

    #[test]
    fn periodic_signal_is_extrapolated() {
        let mut p = FftPredictor::with_params(256, 12, 0.4);
        feed_periodic(&mut p, 8, 256);
        let active = p.predict_active(16);
        // History covers t = 0..255; forecast offsets map to t = 256….
        // Active minutes of the true signal: t ≡ 0 (mod 8) → t = 256, 264 →
        // offsets 1 and 9.
        assert!(active.contains(&1), "{active:?}");
        assert!(active.contains(&9), "{active:?}");
        // Mid-period minutes must not be predicted active.
        assert!(!active.contains(&5), "{active:?}");
    }

    #[test]
    fn constant_signal_forecasts_its_level() {
        let mut p = FftPredictor::with_params(64, 4, 0.5);
        for _ in 0..64 {
            p.push(3.0);
        }
        let f = p.forecast(10);
        for x in f {
            assert!((x - 3.0).abs() < 1e-6, "got {x}");
        }
    }

    #[test]
    fn silent_signal_predicts_nothing() {
        let mut p = FftPredictor::new();
        for _ in 0..100 {
            p.push(0.0);
        }
        assert!(p.predict_active(10).is_empty());
    }

    #[test]
    fn empty_history_forecasts_zero() {
        let p = FftPredictor::new();
        assert_eq!(p.forecast(5), vec![0.0; 5]);
        assert!(p.predict_active(5).is_empty());
    }

    #[test]
    fn sliding_window_evicts_old_samples() {
        let mut p = FftPredictor::with_params(16, 4, 0.5);
        for t in 0..100 {
            p.push(t as f64);
        }
        assert_eq!(p.len(), 16);
    }

    #[test]
    fn sine_wave_reconstruction_error_is_small() {
        let n = 128;
        let mut p = FftPredictor::with_params(n, 2, 0.0);
        let f = |t: usize| 2.0 + (std::f64::consts::TAU * t as f64 / 16.0).sin();
        for t in 0..n {
            p.push(f(t));
        }
        let fc = p.forecast(16);
        for (m, x) in fc.iter().enumerate() {
            let truth = f(n - 1 + m + 1);
            assert!((x - truth).abs() < 0.15, "offset {}: {x} vs {truth}", m + 1);
        }
    }

    #[test]
    fn top_k_one_keeps_only_dominant_harmonic() {
        let n = 128;
        let mut strong = FftPredictor::with_params(n, 1, 0.0);
        // Dominant period 16, weak period 5.
        for t in 0..n {
            let x = (std::f64::consts::TAU * t as f64 / 16.0).sin() * 3.0
                + (std::f64::consts::TAU * t as f64 / 5.0).sin() * 0.2;
            strong.push(x);
        }
        let fc = strong.forecast(32);
        // Reconstruction should be dominated by the period-16 tone: check
        // the period by sign changes, roughly 4 per 32 samples.
        let sign_changes = fc
            .windows(2)
            .filter(|w| w[0].signum() != w[1].signum())
            .count();
        assert!(
            (3..=5).contains(&sign_changes),
            "{sign_changes} sign changes"
        );
    }
}

//! Property tests for the model-zoo substrate and shared statistics.

use proptest::prelude::*;
use pulse_models::stats::{mean, normalize_min_max, percentile, std_dev, Running};
use pulse_models::{CostModel, Profiler, VariantSpec};
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    #[test]
    fn percentile_is_bracketed_by_extremes(
        xs in proptest::collection::vec(-1e6f64..1e6, 1..100),
        p in 0.0f64..100.0,
    ) {
        let v = percentile(&xs, p);
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
    }

    #[test]
    fn percentile_is_monotone_in_p(
        xs in proptest::collection::vec(-1e3f64..1e3, 1..50),
        a in 0.0f64..100.0,
        b in 0.0f64..100.0,
    ) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(percentile(&xs, lo) <= percentile(&xs, hi) + 1e-9);
    }

    #[test]
    fn running_matches_batch_statistics(
        xs in proptest::collection::vec(-1e4f64..1e4, 1..200),
    ) {
        let mut r = Running::new();
        for &x in &xs {
            r.push(x);
        }
        prop_assert!((r.mean() - mean(&xs)).abs() < 1e-6);
        prop_assert!((r.std_dev() - std_dev(&xs)).abs() < 1e-6);
        prop_assert_eq!(r.count(), xs.len() as u64);
    }

    #[test]
    fn running_merge_is_order_independent(
        xs in proptest::collection::vec(-1e3f64..1e3, 1..60),
        split in 0usize..60,
    ) {
        let k = split.min(xs.len());
        let mut left = Running::new();
        let mut right = Running::new();
        xs[..k].iter().for_each(|&x| left.push(x));
        xs[k..].iter().for_each(|&x| right.push(x));
        let mut ab = left.clone();
        ab.merge(&right);
        let mut ba = right;
        ba.merge(&left);
        prop_assert!((ab.mean() - ba.mean()).abs() < 1e-9);
        prop_assert!((ab.std_dev() - ba.std_dev()).abs() < 1e-9);
        prop_assert!((ab.mean() - mean(&xs)).abs() < 1e-6);
    }

    #[test]
    fn normalization_is_scale_invariant_in_rank(
        xs in proptest::collection::vec(0.0f64..1e4, 2..40),
        scale in 0.1f64..100.0,
    ) {
        let a = normalize_min_max(&xs);
        let scaled: Vec<f64> = xs.iter().map(|&x| x * scale).collect();
        let b = normalize_min_max(&scaled);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn cost_model_round_trips_any_rate(rate in 1e-8f64..1e-3, mb in 1.0f64..1e5) {
        let m = CostModel::new(rate);
        let c = m.cents_per_hour(mb);
        prop_assert!((m.memory_mb_for_cents_per_hour(c) - mb).abs() < 1e-6);
    }

    #[test]
    fn profiler_samples_are_positive_and_near_mean(
        warm in 0.1f64..50.0,
        cold in 0.0f64..60.0,
        seed in 0u64..1000,
    ) {
        let v = VariantSpec::new("x", warm, cold, 500.0, 70.0);
        let p = Profiler::default();
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..50 {
            let s = p.sample_warm(&v, &mut rng);
            prop_assert!(s > 0.0);
            prop_assert!(s < warm * 3.0, "sample {s} vs mean {warm}");
        }
    }
}

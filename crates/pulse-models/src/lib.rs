//! # pulse-models — the model-zoo substrate for PULSE
//!
//! PULSE (SC-W 2024) schedules *quality variants* of machine-learning models
//! inside the serverless keep-alive window. Its decisions consume, for every
//! variant of every model family, four scalars:
//!
//! * warm-start **service time** (execution time when the container is warm),
//! * **cold-start time** (container creation + model load),
//! * **keep-alive memory** footprint (and hence keep-alive *cost* under a
//!   GB-second pricing model), and
//! * inference **accuracy**.
//!
//! The paper measured these on AWS Lambda for ONNX builds of BERT, YOLO, GPT,
//! ResNet and DenseNet (Tables I and IV). This crate reproduces that substrate:
//!
//! * [`VariantSpec`] / [`ModelFamily`] — the per-variant metadata and the
//!   family grouping (variants ordered from lowest to highest accuracy);
//! * [`zoo`] — the standard five-family zoo calibrated to the paper's
//!   published numbers (values the paper omits are filled with profiled-
//!   plausible figures, documented on each constructor);
//! * [`CostModel`] — AWS-style GB-second keep-alive pricing;
//! * [`profiler`] — a stochastic profiler that regenerates per-invocation
//!   service-time samples with measured-style jitter, standing in for the
//!   paper's "1000 distinct inputs per variant" Lambda characterization runs;
//! * [`stats`] — small, dependency-free summary statistics shared by the rest
//!   of the workspace.
//!
//! ```
//! use pulse_models::{zoo, CostModel};
//!
//! let families = zoo::standard();
//! assert_eq!(families.len(), 5);
//! let gpt = families.iter().find(|f| f.name == "GPT").unwrap();
//! // Variants are ordered lowest → highest accuracy.
//! assert!(gpt.variants.first().unwrap().accuracy_pct < gpt.variants.last().unwrap().accuracy_pct);
//!
//! // Keeping GPT-Large warm for an hour costs tens of cents.
//! let cost = CostModel::aws_lambda()
//!     .keepalive_cost_usd(gpt.variants.last().unwrap().memory_mb, 3600.0);
//! assert!(cost > 0.1 && cost < 1.0);
//! ```

pub mod catalog;
pub mod cost;
pub mod family;
pub mod profiler;
pub mod stats;
pub mod variant;
pub mod zoo;

pub use cost::CostModel;
pub use family::{FamilyId, ModelFamily, VariantId};
pub use profiler::{ProfileSummary, Profiler, ProfilerConfig};
pub use variant::VariantSpec;

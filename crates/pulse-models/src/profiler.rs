//! Stochastic profiler: regenerates the paper's Lambda characterization runs.
//!
//! The paper characterizes each variant by executing its Lambda function on
//! 1000 distinct inputs (warm) and by a memory-resize trick that forces cold
//! starts. We cannot call AWS from a reproduction, so this module *simulates*
//! those measurement campaigns: per-invocation service times are drawn from a
//! lognormal jitter around the variant's calibrated warm/cold means, which is
//! the empirical shape of Lambda latency distributions (right-skewed, long
//! tail). The profiler then reports the same summary a measurement campaign
//! would: mean, median, p99, standard deviation, for warm and cold paths.

use crate::stats;
use crate::variant::VariantSpec;
use rand::Rng;

/// Configuration of a simulated measurement campaign.
#[derive(Debug, Clone, Copy)]
pub struct ProfilerConfig {
    /// Number of warm invocations to sample (paper: 1000).
    pub warm_samples: usize,
    /// Number of cold invocations to sample (paper: repeated resize trick).
    pub cold_samples: usize,
    /// Lognormal sigma of warm-path jitter (relative spread). Lambda warm
    /// latencies typically vary by a few percent.
    pub warm_sigma: f64,
    /// Lognormal sigma of cold-path jitter. Cold starts are noisier (image
    /// pull, placement) — tens of percent.
    pub cold_sigma: f64,
}

impl Default for ProfilerConfig {
    fn default() -> Self {
        Self {
            warm_samples: 1000,
            cold_samples: 100,
            warm_sigma: 0.05,
            cold_sigma: 0.15,
        }
    }
}

/// Summary of one measurement campaign over a variant.
#[derive(Debug, Clone)]
pub struct ProfileSummary {
    /// Variant name the campaign profiled.
    pub variant: String,
    /// Warm-path statistics, seconds.
    pub warm: PathStats,
    /// Cold-path statistics (container creation + load + execute), seconds.
    pub cold: PathStats,
}

/// Summary statistics of one latency path.
#[derive(Debug, Clone)]
pub struct PathStats {
    /// Sample mean.
    pub mean_s: f64,
    /// Sample median (p50).
    pub p50_s: f64,
    /// 99th percentile.
    pub p99_s: f64,
    /// Population standard deviation.
    pub std_s: f64,
    /// Number of samples.
    pub n: usize,
}

impl PathStats {
    fn from_samples(mut xs: Vec<f64>) -> Self {
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        Self {
            mean_s: stats::mean(&xs),
            p50_s: stats::percentile_of_sorted(&xs, 50.0),
            p99_s: stats::percentile_of_sorted(&xs, 99.0),
            std_s: stats::std_dev(&xs),
            n: xs.len(),
        }
    }
}

/// The simulated profiler.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    config: ProfilerConfig,
}

impl Profiler {
    /// Profiler with the paper's campaign sizes.
    pub fn new(config: ProfilerConfig) -> Self {
        Self { config }
    }

    /// Draw one warm-path service time for `v`, seconds.
    ///
    /// Lognormal around the calibrated mean: `t = mean · exp(σ·z − σ²/2)`,
    /// which keeps `E[t] = mean` exactly.
    pub fn sample_warm<R: Rng + ?Sized>(&self, v: &VariantSpec, rng: &mut R) -> f64 {
        lognormal_around(v.warm_service_time_s, self.config.warm_sigma, rng)
    }

    /// Draw one provisioning duration (container creation + model load,
    /// excluding execution) for `v`, seconds.
    pub fn sample_cold_start<R: Rng + ?Sized>(&self, v: &VariantSpec, rng: &mut R) -> f64 {
        lognormal_around(v.cold_start_s, self.config.cold_sigma, rng)
    }

    /// Draw one cold-path service time (cold start + execution) for `v`.
    pub fn sample_cold<R: Rng + ?Sized>(&self, v: &VariantSpec, rng: &mut R) -> f64 {
        self.sample_cold_start(v, rng) + self.sample_warm(v, rng)
    }

    /// Run a full campaign over `v`: `warm_samples` warm and `cold_samples`
    /// cold invocations, summarized.
    pub fn profile<R: Rng + ?Sized>(&self, v: &VariantSpec, rng: &mut R) -> ProfileSummary {
        let warm: Vec<f64> = (0..self.config.warm_samples)
            .map(|_| self.sample_warm(v, rng))
            .collect();
        let cold: Vec<f64> = (0..self.config.cold_samples)
            .map(|_| self.sample_cold(v, rng))
            .collect();
        ProfileSummary {
            variant: v.name.clone(),
            warm: PathStats::from_samples(warm),
            cold: PathStats::from_samples(cold),
        }
    }
}

/// Mean-preserving lognormal jitter: draws `mean · exp(σz − σ²/2)` with
/// `z ~ N(0,1)` (Box–Muller from two uniforms).
fn lognormal_around<R: Rng + ?Sized>(mean: f64, sigma: f64, rng: &mut R) -> f64 {
    if mean == 0.0 {
        return 0.0;
    }
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    mean * (sigma * z - sigma * sigma / 2.0).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn variant() -> VariantSpec {
        VariantSpec::new("GPT-Small", 12.90, 8.2, 1950.0, 87.65)
    }

    #[test]
    fn warm_samples_center_on_calibrated_mean() {
        let mut rng = SmallRng::seed_from_u64(7);
        let p = Profiler::default();
        let v = variant();
        let xs: Vec<f64> = (0..20_000).map(|_| p.sample_warm(&v, &mut rng)).collect();
        let m = crate::stats::mean(&xs);
        assert!(
            (m - v.warm_service_time_s).abs() / v.warm_service_time_s < 0.01,
            "mean {m} vs {}",
            v.warm_service_time_s
        );
    }

    #[test]
    fn cold_path_is_slower_than_warm_path() {
        let mut rng = SmallRng::seed_from_u64(9);
        let p = Profiler::default();
        let v = variant();
        let s = p.profile(&v, &mut rng);
        assert!(s.cold.mean_s > s.warm.mean_s);
        assert!(s.cold.mean_s > v.cold_start_s);
    }

    #[test]
    fn samples_are_positive() {
        let mut rng = SmallRng::seed_from_u64(11);
        let p = Profiler::default();
        let v = variant();
        for _ in 0..5000 {
            assert!(p.sample_warm(&v, &mut rng) > 0.0);
            assert!(p.sample_cold(&v, &mut rng) > 0.0);
        }
    }

    #[test]
    fn campaign_sizes_respected() {
        let mut rng = SmallRng::seed_from_u64(13);
        let p = Profiler::new(ProfilerConfig {
            warm_samples: 17,
            cold_samples: 5,
            ..Default::default()
        });
        let s = p.profile(&variant(), &mut rng);
        assert_eq!(s.warm.n, 17);
        assert_eq!(s.cold.n, 5);
    }

    #[test]
    fn percentiles_are_ordered() {
        let mut rng = SmallRng::seed_from_u64(17);
        let s = Profiler::default().profile(&variant(), &mut rng);
        assert!(s.warm.p50_s <= s.warm.p99_s);
        assert!(s.cold.p50_s <= s.cold.p99_s);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let p = Profiler::default();
        let v = variant();
        let a = p.profile(&v, &mut SmallRng::seed_from_u64(42)).warm.mean_s;
        let b = p.profile(&v, &mut SmallRng::seed_from_u64(42)).warm.mean_s;
        assert_eq!(a, b);
    }

    #[test]
    fn distribution_is_right_skewed() {
        // Lognormal ⇒ mean > median.
        let mut rng = SmallRng::seed_from_u64(19);
        let p = Profiler::new(ProfilerConfig {
            warm_samples: 50_000,
            cold_samples: 1,
            warm_sigma: 0.5,
            cold_sigma: 0.15,
        });
        let s = p.profile(&variant(), &mut rng);
        assert!(s.warm.mean_s > s.warm.p50_s);
    }
}

//! Dependency-free summary statistics shared across the workspace.
//!
//! Kept deliberately small: mean / variance (Welford), percentiles by
//! nearest-rank on a sorted copy, min/max, coefficient of variation, and the
//! paper's Equation 1 min–max normalization.

/// Arithmetic mean. Returns 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation via Welford's single-pass algorithm.
/// Returns 0.0 for slices shorter than 2.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let mut m = 0.0f64;
    let mut m2 = 0.0f64;
    for (i, &x) in xs.iter().enumerate() {
        let delta = x - m;
        m += delta / (i + 1) as f64;
        m2 += delta * (x - m);
    }
    (m2 / xs.len() as f64).sqrt()
}

/// Coefficient of variation (σ/μ). Returns 0.0 when the mean is 0.
pub fn coeff_of_variation(xs: &[f64]) -> f64 {
    let m = mean(xs);
    if m == 0.0 {
        0.0
    } else {
        std_dev(xs) / m
    }
}

/// `numerator / denominator`, with the workspace-wide degenerate-input
/// convention: exactly-zero denominators (empty runs, zero invocations)
/// report 0.0 instead of NaN/∞. Near-zero denominators still divide — only
/// the exact 0.0 produced by "nothing happened" counters is special-cased.
pub fn ratio_or_zero(numerator: f64, denominator: f64) -> f64 {
    if denominator == 0.0 {
        0.0
    } else {
        numerator / denominator
    }
}

/// Percentile `p` in `[0, 100]` by linear interpolation on a sorted copy.
/// Returns 0.0 for an empty slice.
///
/// NaN inputs are ordered by IEEE 754 `totalOrder` ([`f64::total_cmp`]):
/// positive NaN sorts above every number, negative NaN below. So NaNs never
/// panic the sort; a positive NaN only reaches the result when `p` lands in
/// the top ranks (where the answer genuinely is "not a number").
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    percentile_of_sorted(&sorted, p)
}

/// Percentile on an already-sorted slice (ascending). Linear interpolation
/// between closest ranks.
pub fn percentile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0,100]");
    match sorted.len() {
        0 => 0.0,
        1 => sorted[0],
        n => {
            let rank = p / 100.0 * (n - 1) as f64;
            let lo = rank.floor() as usize;
            let hi = rank.ceil() as usize;
            let frac = rank - lo as f64;
            sorted[lo] + (sorted[hi] - sorted[lo]) * frac
        }
    }
}

/// Minimum of a slice; 0.0 when empty.
pub fn min(xs: &[f64]) -> f64 {
    xs.iter()
        .copied()
        .fold(f64::INFINITY, f64::min)
        .min(f64::INFINITY)
        .pipe_finite()
}

/// Maximum of a slice; 0.0 when empty.
pub fn max(xs: &[f64]) -> f64 {
    xs.iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max)
        .pipe_finite()
}

trait PipeFinite {
    fn pipe_finite(self) -> f64;
}
impl PipeFinite for f64 {
    fn pipe_finite(self) -> f64 {
        if self.is_finite() {
            self
        } else {
            0.0
        }
    }
}

/// The paper's Equation 1: min–max normalization with the degenerate-range
/// convention `X_max == X_min → X − X_min` (i.e. all zeros).
///
/// Returns values in `[0, 1]` when the range is non-degenerate and all zeros
/// otherwise. Used for the priority structure of Algorithm 2.
pub fn normalize_min_max(xs: &[f64]) -> Vec<f64> {
    if xs.is_empty() {
        return Vec::new();
    }
    let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if hi == lo {
        xs.iter().map(|&x| x - lo).collect()
    } else {
        xs.iter().map(|&x| (x - lo) / (hi - lo)).collect()
    }
}

/// Streaming mean/std accumulator (Welford), for the parallel run harness
/// where per-run metrics arrive one at a time.
#[derive(Debug, Clone, Default)]
pub struct Running {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Running {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold in one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator (parallel reduction), Chan et al. formula.
    pub fn merge(&mut self, other: &Running) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        self.mean += delta * other.n as f64 / n as f64;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations folded in.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean so far (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population standard deviation so far (0.0 when n < 2).
    pub fn std_dev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / self.n as f64).sqrt()
        }
    }

    /// Smallest observation (0.0 when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0.0 when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_basic() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(min(&[]), 0.0);
        assert_eq!(max(&[]), 0.0);
        assert!(normalize_min_max(&[]).is_empty());
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((percentile(&xs, 0.0) - 1.0).abs() < 1e-12);
        assert!((percentile(&xs, 100.0) - 4.0).abs() < 1e-12);
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile(&[42.0], 99.0), 42.0);
    }

    #[test]
    fn percentile_tolerates_nan_via_total_order() {
        // total_cmp sorts positive NaN above every number: low/mid
        // percentiles stay numeric, only the top ranks report NaN.
        let xs = [1.0, f64::NAN, 2.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 50.0), 2.0);
        assert!(percentile(&xs, 100.0).is_nan());
        // Negative NaN sorts below every number — the mirror image.
        let ys = [-f64::NAN, 1.0, 2.0];
        assert!(percentile(&ys, 0.0).is_nan());
        assert_eq!(percentile(&ys, 100.0), 2.0);
        // All-NaN input is NaN at every percentile, never a panic.
        assert!(percentile(&[f64::NAN; 3], 50.0).is_nan());
    }

    #[test]
    fn normalize_spans_unit_interval() {
        let ys = normalize_min_max(&[10.0, 20.0, 30.0]);
        assert_eq!(ys, vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn normalize_degenerate_range_is_all_zeros() {
        // Equation 1's X_max == X_min branch: X - X_min = 0 everywhere.
        let ys = normalize_min_max(&[7.0, 7.0, 7.0]);
        assert_eq!(ys, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn running_matches_batch() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut r = Running::new();
        for &x in &xs {
            r.push(x);
        }
        assert!((r.mean() - mean(&xs)).abs() < 1e-12);
        assert!((r.std_dev() - std_dev(&xs)).abs() < 1e-12);
        assert_eq!(r.min(), 1.0);
        assert_eq!(r.max(), 9.0);
        assert_eq!(r.count(), 8);
    }

    #[test]
    fn running_merge_matches_single_stream() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0];
        let ys = [9.0, 2.0, 6.0];
        let mut a = Running::new();
        let mut b = Running::new();
        xs.iter().for_each(|&x| a.push(x));
        ys.iter().for_each(|&y| b.push(y));
        a.merge(&b);
        let all: Vec<f64> = xs.iter().chain(ys.iter()).copied().collect();
        assert!((a.mean() - mean(&all)).abs() < 1e-12);
        assert!((a.std_dev() - std_dev(&all)).abs() < 1e-12);
        assert_eq!(a.count(), 8);
    }

    #[test]
    fn running_merge_with_empty_is_identity() {
        let mut a = Running::new();
        a.push(1.0);
        a.push(2.0);
        let before = a.mean();
        a.merge(&Running::new());
        assert_eq!(a.mean(), before);
        let mut e = Running::new();
        e.merge(&a);
        assert_eq!(e.mean(), before);
    }

    #[test]
    fn cv_of_constant_is_zero() {
        assert_eq!(coeff_of_variation(&[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn ratio_or_zero_conventions() {
        assert_eq!(ratio_or_zero(3.0, 4.0), 0.75);
        assert_eq!(ratio_or_zero(1.0, 0.0), 0.0);
        assert_eq!(ratio_or_zero(0.0, 0.0), 0.0);
        // Near-zero denominators are NOT special-cased: they divide.
        assert!(ratio_or_zero(1.0, 1e-300).is_finite());
        assert!(ratio_or_zero(1.0, 1e-300) > 0.0);
        // Negative ratios pass through (improvement_pct sign convention).
        assert_eq!(ratio_or_zero(-2.0, 4.0), -0.5);
    }
}

//! Model-catalog files: define custom zoos outside the code.
//!
//! A hand-rolled CSV schema (no external parser) with one row per variant:
//!
//! ```text
//! family,task,dataset,variant,warm_s,cold_s,memory_mb,accuracy_pct
//! GPT,text generation,wikitext,GPT-Small,12.90,8.2,1950.2,87.65
//! ```
//!
//! Rows of the same family must appear contiguously and in ascending
//! accuracy order (the ladder invariant). [`to_csv`] / [`from_csv`] round-
//! trip the standard zoo exactly, so a user can dump it, edit the numbers
//! for their own models, and load the result everywhere a
//! `Vec<ModelFamily>` is accepted.

use crate::family::ModelFamily;
use crate::variant::VariantSpec;

/// Catalog parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// No data rows.
    Empty,
    /// Wrong column count on a line (1-based).
    ColumnCount(usize),
    /// Unparseable numeric cell on a line.
    BadNumber(usize),
    /// A family/variant invariant failed (message from validation).
    Invalid(String),
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::Empty => write!(f, "catalog has no data rows"),
            CatalogError::ColumnCount(l) => write!(f, "line {l}: expected 8 columns"),
            CatalogError::BadNumber(l) => write!(f, "line {l}: bad numeric cell"),
            CatalogError::Invalid(m) => write!(f, "invalid catalog: {m}"),
        }
    }
}

impl std::error::Error for CatalogError {}

/// Header line of the catalog schema.
pub const HEADER: &str = "family,task,dataset,variant,warm_s,cold_s,memory_mb,accuracy_pct";

/// Serialize families to catalog CSV.
pub fn to_csv(families: &[ModelFamily]) -> String {
    let mut out = String::from(HEADER);
    out.push('\n');
    for fam in families {
        for v in &fam.variants {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{}\n",
                fam.name,
                fam.task,
                fam.dataset,
                v.name,
                v.warm_service_time_s,
                v.cold_start_s,
                v.memory_mb,
                v.accuracy_pct
            ));
        }
    }
    out
}

/// Parse a catalog CSV into families (contiguous rows per family).
pub fn from_csv(s: &str) -> Result<Vec<ModelFamily>, CatalogError> {
    let mut families: Vec<ModelFamily> = Vec::new();
    let mut current: Option<(String, String, String, Vec<VariantSpec>)> = None;
    for (i, line) in s.lines().enumerate().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() != 8 {
            return Err(CatalogError::ColumnCount(i + 1));
        }
        let num = |idx: usize| -> Result<f64, CatalogError> {
            cells[idx]
                .trim()
                .parse::<f64>()
                .map_err(|_| CatalogError::BadNumber(i + 1))
        };
        let spec = VariantSpec {
            name: cells[3].trim().to_string(),
            warm_service_time_s: num(4)?,
            cold_start_s: num(5)?,
            memory_mb: num(6)?,
            accuracy_pct: num(7)?,
        };
        spec.validate().map_err(CatalogError::Invalid)?;
        let key = (
            cells[0].trim().to_string(),
            cells[1].trim().to_string(),
            cells[2].trim().to_string(),
        );
        match current.as_mut() {
            Some((name, task, dataset, variants))
                if *name == key.0 && *task == key.1 && *dataset == key.2 =>
            {
                variants.push(spec);
            }
            _ => {
                if let Some((name, task, dataset, variants)) = current.take() {
                    let fam = ModelFamily {
                        name,
                        task,
                        dataset,
                        variants,
                    };
                    fam.validate().map_err(CatalogError::Invalid)?;
                    families.push(fam);
                }
                current = Some((key.0, key.1, key.2, vec![spec]));
            }
        }
    }
    if let Some((name, task, dataset, variants)) = current {
        let fam = ModelFamily {
            name,
            task,
            dataset,
            variants,
        };
        fam.validate().map_err(CatalogError::Invalid)?;
        families.push(fam);
    }
    if families.is_empty() {
        return Err(CatalogError::Empty);
    }
    Ok(families)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn standard_zoo_round_trips() {
        let z = zoo::standard();
        let csv = to_csv(&z);
        let back = from_csv(&csv).unwrap();
        assert_eq!(z, back);
    }

    #[test]
    fn header_is_first_line() {
        let csv = to_csv(&zoo::standard());
        assert_eq!(csv.lines().next().unwrap(), HEADER);
        // 14 variants + header.
        assert_eq!(csv.lines().count(), 15);
    }

    #[test]
    fn custom_catalog_parses() {
        let csv = format!(
            "{HEADER}\nMyNet,classification,imagenet,MyNet-S,0.5,3.0,400,61.0\n\
             MyNet,classification,imagenet,MyNet-L,1.5,6.0,1200,72.5\n"
        );
        let fams = from_csv(&csv).unwrap();
        assert_eq!(fams.len(), 1);
        assert_eq!(fams[0].n_variants(), 2);
        assert_eq!(fams[0].highest().name, "MyNet-L");
    }

    #[test]
    fn descending_accuracy_rejected() {
        let csv =
            format!("{HEADER}\nX,t,d,X-big,1.0,1.0,500,90.0\nX,t,d,X-small,0.5,0.5,200,70.0\n");
        assert!(matches!(from_csv(&csv), Err(CatalogError::Invalid(_))));
    }

    #[test]
    fn bad_rows_are_reported_with_line_numbers() {
        let csv = format!("{HEADER}\nX,t,d,v,1.0,1.0,500\n");
        assert_eq!(from_csv(&csv), Err(CatalogError::ColumnCount(2)));
        let csv = format!("{HEADER}\nX,t,d,v,abc,1.0,500,70\n");
        assert_eq!(from_csv(&csv), Err(CatalogError::BadNumber(2)));
    }

    #[test]
    fn empty_catalog_rejected() {
        assert_eq!(from_csv(HEADER), Err(CatalogError::Empty));
        assert_eq!(from_csv(""), Err(CatalogError::Empty));
    }

    #[test]
    fn invalid_spec_rejected() {
        let csv = format!("{HEADER}\nX,t,d,v,1.0,1.0,0,70\n"); // zero memory
        assert!(matches!(from_csv(&csv), Err(CatalogError::Invalid(_))));
    }

    #[test]
    fn blank_lines_are_skipped() {
        let csv = format!("{HEADER}\n\nX,t,d,v,1.0,1.0,500,70\n\n");
        assert_eq!(from_csv(&csv).unwrap().len(), 1);
    }

    #[test]
    fn interleaved_families_become_separate_runs() {
        // A family split by another family's rows fails the contiguity
        // expectation by producing a duplicate-named second family — the
        // parser treats each contiguous run independently.
        let csv = format!(
            "{HEADER}\nA,t,d,A1,1.0,1.0,100,50\nB,t,d,B1,1.0,1.0,100,60\nA,t,d,A2,1.0,1.0,200,70\n"
        );
        let fams = from_csv(&csv).unwrap();
        assert_eq!(fams.len(), 3);
    }
}

//! The standard model zoo: the five families of Tables I and IV.
//!
//! Where the paper publishes numbers (Table I: GPT, BERT, DenseNet service
//! times, keep-alive costs and accuracies; Section III-B: YOLO-s accuracy of
//! 56.8 %), we use them verbatim. Memory footprints are calibrated so that the
//! AWS GB-second rate reproduces Table I's cents/hour column exactly (see
//! [`CostModel::memory_mb_for_cents_per_hour`]). Quantities the paper omits
//! (YOLO and ResNet service times/costs, all cold-start times) are filled with
//! profiled-plausible values: cold start = 2.5 s container overhead + 3 s per
//! GB of model image to load, which lands GPT-Large at ≈23 s — matching the
//! magnitude implied by the paper's Peak-evaluation service times (Table II).

use crate::cost::CostModel;
use crate::family::ModelFamily;
use crate::variant::VariantSpec;

/// Container-creation overhead common to every cold start, seconds.
pub const COLD_BASE_S: f64 = 2.5;
/// Model-load rate on cold start, seconds per GB of container memory.
pub const COLD_PER_GB_S: f64 = 3.0;

/// Cold-start time for a container of `memory_mb` MB under the calibration
/// model documented on this module.
pub fn cold_start_for_memory(memory_mb: f64) -> f64 {
    COLD_BASE_S + COLD_PER_GB_S * memory_mb / 1024.0
}

fn variant(name: &str, warm_s: f64, cents_per_hour: f64, accuracy_pct: f64) -> VariantSpec {
    let mem = CostModel::aws_lambda().memory_mb_for_cents_per_hour(cents_per_hour);
    VariantSpec::new(name, warm_s, cold_start_for_memory(mem), mem, accuracy_pct)
}

/// GPT (text generation, wikitext): base / medium / large. All values from
/// Table I.
pub fn gpt() -> ModelFamily {
    ModelFamily::new(
        "GPT",
        "text generation",
        "wikitext",
        vec![
            variant("GPT-Small", 12.90, 11.7, 87.65),
            variant("GPT-Medium", 22.50, 22.57, 92.35),
            variant("GPT-Large", 23.66, 41.71, 93.45),
        ],
    )
}

/// BERT (sentiment analysis, sst2): base / large. All values from Table I.
pub fn bert() -> ModelFamily {
    ModelFamily::new(
        "BERT",
        "sentiment analysis",
        "sst2",
        vec![
            variant("BERT-Small", 1.09, 4.392, 79.6),
            variant("BERT-Large", 2.21, 6.12, 82.1),
        ],
    )
}

/// DenseNet (image classification, CIFAR-10): 121 / 169 / 201. All values
/// from Table I.
pub fn densenet() -> ModelFamily {
    ModelFamily::new(
        "DenseNet",
        "image classification",
        "CIFAR-10",
        vec![
            variant("DenseNet-121", 1.09, 3.46, 74.98),
            variant("DenseNet-169", 1.38, 3.53, 76.2),
            variant("DenseNet-201", 1.65, 4.07, 77.42),
        ],
    )
}

/// YOLO (object detection, COCO): s / l / x. The paper publishes only the
/// lowest variant's accuracy (56.8 %, Section III-B); service times, costs
/// and the remaining accuracies are profiled-plausible values in line with
/// YOLOv5 s/l/x COCO mAP ladders and ONNX-on-Lambda latencies.
pub fn yolo() -> ModelFamily {
    ModelFamily::new(
        "YOLO",
        "object detection",
        "COCO",
        vec![
            variant("YOLO-s", 0.45, 4.8, 56.8),
            variant("YOLO-l", 1.05, 8.9, 63.5),
            variant("YOLO-x", 1.82, 12.4, 65.7),
        ],
    )
}

/// ResNet (image classification, CIFAR-10): 50 / 101 / 152. Table IV lists the
/// family; per-variant numbers are profiled-plausible, placed between the
/// DenseNet and BERT ladders.
pub fn resnet() -> ModelFamily {
    ModelFamily::new(
        "ResNet",
        "image classification",
        "CIFAR-10",
        vec![
            variant("ResNet-50", 0.95, 3.9, 76.13),
            variant("ResNet-101", 1.32, 5.6, 77.35),
            variant("ResNet-152", 1.73, 7.1, 78.31),
        ],
    )
}

/// The standard five-family zoo of Table IV, in the paper's order.
pub fn standard() -> Vec<ModelFamily> {
    vec![bert(), yolo(), gpt(), resnet(), densenet()]
}

/// Table I re-derived from the zoo: `(variant name, warm service time s,
/// keep-alive cents/hour, accuracy %)` for the three families the paper
/// tabulates. Used by the Table I regeneration experiment.
pub fn table_i_rows() -> Vec<(String, f64, f64, f64)> {
    let cm = CostModel::aws_lambda();
    [gpt(), bert(), densenet()]
        .iter()
        .flat_map(|f| f.variants.to_vec())
        .map(|v| {
            (
                v.name.clone(),
                v.warm_service_time_s,
                cm.cents_per_hour(v.memory_mb),
                v.accuracy_pct,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_zoo_has_five_valid_families() {
        let z = standard();
        assert_eq!(z.len(), 5);
        for f in &z {
            f.validate().unwrap();
        }
        let names: Vec<_> = z.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["BERT", "YOLO", "GPT", "ResNet", "DenseNet"]);
    }

    #[test]
    fn variant_counts_match_table_iv() {
        let z = standard();
        let counts: Vec<_> = z.iter().map(|f| f.n_variants()).collect();
        // BERT 2, YOLO 3, GPT 3, ResNet 3, DenseNet 3.
        assert_eq!(counts, [2, 3, 3, 3, 3]);
    }

    #[test]
    fn table_i_costs_reproduce_published_column() {
        // Memory was calibrated from Table I's cost column, so re-deriving the
        // cost must return the published numbers.
        let rows = table_i_rows();
        let published = [
            ("GPT-Small", 11.7),
            ("GPT-Medium", 22.57),
            ("GPT-Large", 41.71),
            ("BERT-Small", 4.392),
            ("BERT-Large", 6.12),
            ("DenseNet-121", 3.46),
            ("DenseNet-169", 3.53),
            ("DenseNet-201", 4.07),
        ];
        assert_eq!(rows.len(), published.len());
        for ((name, _, cents, _), (pname, pcents)) in rows.iter().zip(published.iter()) {
            assert_eq!(name, pname);
            assert!((cents - pcents).abs() < 1e-9, "{name}: {cents} vs {pcents}");
        }
    }

    #[test]
    fn table_i_service_times_match_published() {
        let rows = table_i_rows();
        let by_name: std::collections::HashMap<_, _> =
            rows.iter().map(|r| (r.0.as_str(), r.1)).collect();
        assert!((by_name["GPT-Small"] - 12.90).abs() < 1e-12);
        assert!((by_name["BERT-Large"] - 2.21).abs() < 1e-12);
        assert!((by_name["DenseNet-201"] - 1.65).abs() < 1e-12);
    }

    #[test]
    fn memory_footprints_are_in_papers_band() {
        // The paper: ML containers consume roughly 300–3500 MB, and Lambda
        // memory is 2× the image, so footprints land in ~0.5–7 GB.
        for f in standard() {
            for v in &f.variants {
                assert!(
                    v.memory_mb > 300.0 && v.memory_mb < 7200.0,
                    "{}: {} MB",
                    v.name,
                    v.memory_mb
                );
            }
        }
    }

    #[test]
    fn cold_start_grows_with_memory() {
        for f in standard() {
            for pair in f.variants.windows(2) {
                if pair[1].memory_mb > pair[0].memory_mb {
                    assert!(pair[1].cold_start_s > pair[0].cold_start_s);
                }
            }
        }
    }

    #[test]
    fn yolo_lowest_accuracy_matches_paper_text() {
        assert!((yolo().lowest().accuracy_pct - 56.8).abs() < 1e-12);
    }

    #[test]
    fn gpt_large_cold_start_magnitude() {
        // ≈ 2.5 + 3 × 6.95 ≈ 23.4 s — the magnitude the Peak tables imply.
        let cs = gpt().highest().cold_start_s;
        assert!(cs > 20.0 && cs < 26.0, "got {cs}");
    }

    #[test]
    fn higher_variants_cost_more_to_keep_alive() {
        for f in standard() {
            for pair in f.variants.windows(2) {
                assert!(
                    pair[1].memory_mb > pair[0].memory_mb,
                    "{}: memory must rise with quality",
                    f.name
                );
            }
        }
    }
}

//! Per-variant metadata: the four scalars PULSE's decisions consume.

use serde::{Deserialize, Serialize};

/// Metadata for one quality variant of a model family.
///
/// These are the quantities the paper profiles on AWS Lambda (Table I):
/// warm service time, cold-start time, keep-alive memory (from which the
/// keep-alive cost follows under a GB-second price), and accuracy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariantSpec {
    /// Human-readable variant name, e.g. `"GPT-Large"`.
    pub name: String,
    /// Execution time of one inference when the container is warm, seconds.
    pub warm_service_time_s: f64,
    /// Additional time to create the container and load the model on a cold
    /// start, seconds. A cold invocation takes
    /// `cold_start_s + warm_service_time_s` in total.
    pub cold_start_s: f64,
    /// Keep-alive memory footprint of the container hosting this variant, MB.
    /// The paper reports model containers between roughly 300 MB and 3500 MB,
    /// doubled for the Lambda allocation (memory size = 2 × image size).
    pub memory_mb: f64,
    /// Inference accuracy on the family's benchmark dataset, percent (0–100).
    pub accuracy_pct: f64,
}

impl VariantSpec {
    /// Construct a variant, validating invariants.
    ///
    /// # Panics
    /// Panics if any quantity is non-finite or out of range (times and memory
    /// must be positive, accuracy must lie in `(0, 100]`).
    pub fn new(
        name: impl Into<String>,
        warm_service_time_s: f64,
        cold_start_s: f64,
        memory_mb: f64,
        accuracy_pct: f64,
    ) -> Self {
        let v = Self {
            name: name.into(),
            warm_service_time_s,
            cold_start_s,
            memory_mb,
            accuracy_pct,
        };
        v.validate().expect("invalid VariantSpec");
        v
    }

    /// Check the invariants without panicking.
    pub fn validate(&self) -> Result<(), String> {
        let finite = |x: f64, what: &str| {
            if x.is_finite() {
                Ok(())
            } else {
                Err(format!("{}: {} is not finite", self.name, what))
            }
        };
        finite(self.warm_service_time_s, "warm_service_time_s")?;
        finite(self.cold_start_s, "cold_start_s")?;
        finite(self.memory_mb, "memory_mb")?;
        finite(self.accuracy_pct, "accuracy_pct")?;
        if self.warm_service_time_s <= 0.0 {
            return Err(format!("{}: warm service time must be > 0", self.name));
        }
        if self.cold_start_s < 0.0 {
            return Err(format!("{}: cold start time must be >= 0", self.name));
        }
        if self.memory_mb <= 0.0 {
            return Err(format!("{}: memory must be > 0", self.name));
        }
        if !(0.0 < self.accuracy_pct && self.accuracy_pct <= 100.0) {
            return Err(format!("{}: accuracy must be in (0, 100]", self.name));
        }
        Ok(())
    }

    /// Accuracy as a fraction in `(0, 1]` — the "decimal form" the paper uses
    /// for the accuracy-improvement term of the utility value.
    #[inline]
    pub fn accuracy_frac(&self) -> f64 {
        self.accuracy_pct / 100.0
    }

    /// Total service time of a cold invocation, seconds.
    #[inline]
    pub fn cold_service_time_s(&self) -> f64 {
        self.cold_start_s + self.warm_service_time_s
    }

    /// Keep-alive memory in GB (the pricing unit).
    #[inline]
    pub fn memory_gb(&self) -> f64 {
        self.memory_mb / 1024.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> VariantSpec {
        VariantSpec::new("GPT-Large", 23.66, 23.4, 7000.0, 93.45)
    }

    #[test]
    fn accessors_are_consistent() {
        let v = sample();
        assert!((v.accuracy_frac() - 0.9345).abs() < 1e-12);
        assert!((v.cold_service_time_s() - (23.4 + 23.66)).abs() < 1e-12);
        assert!((v.memory_gb() - 7000.0 / 1024.0).abs() < 1e-12);
    }

    #[test]
    fn validate_accepts_good_spec() {
        assert!(sample().validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid VariantSpec")]
    fn zero_memory_rejected() {
        VariantSpec::new("bad", 1.0, 1.0, 0.0, 50.0);
    }

    #[test]
    #[should_panic(expected = "invalid VariantSpec")]
    fn negative_cold_start_rejected() {
        VariantSpec::new("bad", 1.0, -0.5, 100.0, 50.0);
    }

    #[test]
    #[should_panic(expected = "invalid VariantSpec")]
    fn accuracy_above_100_rejected() {
        VariantSpec::new("bad", 1.0, 1.0, 100.0, 101.0);
    }

    #[test]
    #[should_panic(expected = "invalid VariantSpec")]
    fn nan_rejected() {
        VariantSpec::new("bad", f64::NAN, 1.0, 100.0, 50.0);
    }

    #[test]
    fn zero_accuracy_rejected_nonpanicking() {
        let v = VariantSpec {
            name: "bad".into(),
            warm_service_time_s: 1.0,
            cold_start_s: 1.0,
            memory_mb: 100.0,
            accuracy_pct: 0.0,
        };
        assert!(v.validate().is_err());
    }

    #[test]
    fn serde_round_trip() {
        let v = sample();
        // serde round-trip through the derived impls using a manual in-memory
        // format is covered by the trace crate's CSV; here we check the
        // Serialize/Deserialize derives exist and Clone/PartialEq agree.
        let w = v.clone();
        assert_eq!(v, w);
    }
}

//! Model families: an ordered ladder of quality variants.

use crate::variant::VariantSpec;
use serde::{Deserialize, Serialize};

/// Index of a model family within a zoo (dense, assigned by construction
/// order). The simulator assigns one family per serverless function.
pub type FamilyId = usize;

/// Index of a variant *within* its family's quality ladder: `0` is the
/// lowest-accuracy variant, `len - 1` the highest. PULSE's downgrade step
/// moves a model from variant `v` to `v - 1` (or evicts it at `v == 0`).
pub type VariantId = usize;

/// A model family — e.g. GPT with {base, medium, large} — whose variants are
/// ordered from lowest to highest accuracy.
///
/// The ordering invariant matters: PULSE's greedy threshold scheme maps the
/// lowest invocation-probability band to index 0 and the highest band to the
/// last index, and the utility-value downgrade walks the ladder downwards.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelFamily {
    /// Family name, e.g. `"GPT"`.
    pub name: String,
    /// The inference task, e.g. `"text generation"`.
    pub task: String,
    /// The benchmark dataset accuracies are reported on, e.g. `"wikitext"`.
    pub dataset: String,
    /// Quality ladder, ascending accuracy. Must be non-empty.
    pub variants: Vec<VariantSpec>,
}

impl ModelFamily {
    /// Construct a family, validating the ascending-accuracy invariant.
    ///
    /// # Panics
    /// Panics if `variants` is empty, any variant is invalid, or accuracies
    /// are not strictly increasing.
    pub fn new(
        name: impl Into<String>,
        task: impl Into<String>,
        dataset: impl Into<String>,
        variants: Vec<VariantSpec>,
    ) -> Self {
        let f = Self {
            name: name.into(),
            task: task.into(),
            dataset: dataset.into(),
            variants,
        };
        f.validate().expect("invalid ModelFamily");
        f
    }

    /// Check invariants without panicking.
    pub fn validate(&self) -> Result<(), String> {
        if self.variants.is_empty() {
            return Err(format!("{}: family has no variants", self.name));
        }
        for v in &self.variants {
            v.validate()?;
        }
        for pair in self.variants.windows(2) {
            if pair[1].accuracy_pct <= pair[0].accuracy_pct {
                return Err(format!(
                    "{}: variants must be strictly ascending in accuracy ({} !< {})",
                    self.name, pair[0].accuracy_pct, pair[1].accuracy_pct
                ));
            }
        }
        Ok(())
    }

    /// Number of quality variants (the `N` in the paper's threshold scheme).
    #[inline]
    pub fn n_variants(&self) -> usize {
        self.variants.len()
    }

    /// The lowest-accuracy variant (index 0).
    #[inline]
    pub fn lowest(&self) -> &VariantSpec {
        &self.variants[0]
    }

    /// The highest-accuracy variant (last index).
    #[inline]
    pub fn highest(&self) -> &VariantSpec {
        self.variants.last().expect("non-empty by invariant")
    }

    /// Id of the highest-accuracy variant.
    #[inline]
    pub fn highest_id(&self) -> VariantId {
        self.variants.len() - 1
    }

    /// Variant by id. Panics on out-of-range id (ids are produced by this
    /// crate and the policy layer; an out-of-range id is a logic error).
    #[inline]
    pub fn variant(&self, id: VariantId) -> &VariantSpec {
        &self.variants[id]
    }

    /// The next rung *down* the quality ladder from `id`, or `None` when
    /// `id` is already the lowest variant. This is the fallback step both of
    /// PULSE's downgrade move and of the runtime's fault-driven graceful
    /// degradation (a variant that cannot be provisioned falls back here).
    #[inline]
    pub fn next_lower(&self, id: VariantId) -> Option<VariantId> {
        (id > 0 && id < self.n_variants()).then(|| id - 1)
    }

    /// The paper's *accuracy improvement* term `Ai` for keeping variant `id`
    /// alive: the accuracy gain (as a fraction) of `id` over the next-lower
    /// variant, or — when `id` is already the lowest variant — the accuracy of
    /// that lowest variant in decimal form (Section III-B).
    pub fn accuracy_improvement(&self, id: VariantId) -> f64 {
        if id == 0 {
            self.variants[0].accuracy_frac()
        } else {
            self.variants[id].accuracy_frac() - self.variants[id - 1].accuracy_frac()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_tier() -> ModelFamily {
        ModelFamily::new(
            "DenseNet",
            "image classification",
            "CIFAR-10",
            vec![
                VariantSpec::new("DenseNet-121", 1.09, 4.2, 580.0, 74.98),
                VariantSpec::new("DenseNet-169", 1.38, 4.5, 600.0, 76.2),
                VariantSpec::new("DenseNet-201", 1.65, 4.9, 680.0, 77.42),
            ],
        )
    }

    #[test]
    fn lowest_and_highest() {
        let f = three_tier();
        assert_eq!(f.lowest().name, "DenseNet-121");
        assert_eq!(f.highest().name, "DenseNet-201");
        assert_eq!(f.highest_id(), 2);
        assert_eq!(f.n_variants(), 3);
    }

    #[test]
    fn next_lower_walks_the_ladder_down() {
        let f = three_tier();
        assert_eq!(f.next_lower(2), Some(1));
        assert_eq!(f.next_lower(1), Some(0));
        assert_eq!(f.next_lower(0), None, "lowest rung has no fallback");
        assert_eq!(f.next_lower(99), None, "out-of-range id has no fallback");
    }

    #[test]
    fn accuracy_improvement_interior() {
        let f = three_tier();
        // 77.42 - 76.2 = 1.22 points = 0.0122 fraction
        assert!((f.accuracy_improvement(2) - 0.0122).abs() < 1e-9);
        assert!((f.accuracy_improvement(1) - 0.0122).abs() < 1e-2); // 76.2-74.98
    }

    #[test]
    fn accuracy_improvement_lowest_is_own_accuracy() {
        let f = three_tier();
        assert!((f.accuracy_improvement(0) - 0.7498).abs() < 1e-9);
    }

    #[test]
    fn accuracy_improvement_always_in_unit_interval() {
        let f = three_tier();
        for id in 0..f.n_variants() {
            let ai = f.accuracy_improvement(id);
            assert!((0.0..=1.0).contains(&ai), "Ai out of range: {ai}");
        }
    }

    #[test]
    #[should_panic(expected = "invalid ModelFamily")]
    fn non_ascending_accuracy_rejected() {
        ModelFamily::new(
            "bad",
            "t",
            "d",
            vec![
                VariantSpec::new("a", 1.0, 1.0, 100.0, 90.0),
                VariantSpec::new("b", 1.0, 1.0, 100.0, 80.0),
            ],
        );
    }

    #[test]
    #[should_panic(expected = "invalid ModelFamily")]
    fn empty_family_rejected() {
        ModelFamily::new("bad", "t", "d", vec![]);
    }

    #[test]
    fn single_variant_family_is_valid() {
        let f = ModelFamily::new(
            "solo",
            "t",
            "d",
            vec![VariantSpec::new("only", 1.0, 1.0, 100.0, 50.0)],
        );
        assert_eq!(f.lowest(), f.highest());
        assert!((f.accuracy_improvement(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn equal_accuracy_rejected() {
        let f = ModelFamily {
            name: "bad".into(),
            task: "t".into(),
            dataset: "d".into(),
            variants: vec![
                VariantSpec::new("a", 1.0, 1.0, 100.0, 80.0),
                VariantSpec::new("b", 1.0, 1.0, 100.0, 80.0),
            ],
        };
        assert!(f.validate().is_err());
    }
}

//! Keep-alive pricing: memory × time under a GB-second rate.
//!
//! The paper prices keep-alive by AWS Lambda's provisioned-memory rate. (The
//! paper's text misprints the unit as "$16.67 per KB-second"; the actual AWS
//! Lambda rate the numbers are consistent with is $0.0000166667 per GB-second,
//! i.e. 16.67 *micro*-dollars.) We take the GB-second rate as the canonical
//! parameter and derive everything else.

use serde::{Deserialize, Serialize};

/// GB-second keep-alive pricing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Price of keeping 1 GB of memory provisioned for 1 second, USD.
    pub usd_per_gb_second: f64,
}

impl CostModel {
    /// AWS Lambda's x86 provisioned-memory rate: $0.0000166667 / GB-s.
    pub fn aws_lambda() -> Self {
        Self {
            usd_per_gb_second: 1.66667e-5,
        }
    }

    /// A custom rate. Panics if the rate is not finite and positive.
    pub fn new(usd_per_gb_second: f64) -> Self {
        assert!(
            usd_per_gb_second.is_finite() && usd_per_gb_second > 0.0,
            "rate must be finite and positive"
        );
        Self { usd_per_gb_second }
    }

    /// Cost (USD) of keeping `memory_mb` MB alive for `seconds` seconds.
    #[inline]
    pub fn keepalive_cost_usd(&self, memory_mb: f64, seconds: f64) -> f64 {
        (memory_mb / 1024.0) * seconds * self.usd_per_gb_second
    }

    /// Cost (USD) of keeping `memory_mb` MB alive for `minutes` minutes — the
    /// simulator's native resolution.
    #[inline]
    pub fn keepalive_cost_usd_per_minutes(&self, memory_mb: f64, minutes: f64) -> f64 {
        self.keepalive_cost_usd(memory_mb, minutes * 60.0)
    }

    /// Hourly keep-alive rate in cents for `memory_mb` MB — the unit Table I
    /// reports ("Keep Alive Cost, cents/hour").
    #[inline]
    pub fn cents_per_hour(&self, memory_mb: f64) -> f64 {
        self.keepalive_cost_usd(memory_mb, 3600.0) * 100.0
    }

    /// Invert [`Self::cents_per_hour`]: the memory footprint (MB) implied by a
    /// Table-I hourly cost. Used by the zoo to calibrate memory footprints to
    /// the paper's published cost column.
    #[inline]
    pub fn memory_mb_for_cents_per_hour(&self, cents_per_hour: f64) -> f64 {
        cents_per_hour / 100.0 / self.usd_per_gb_second / 3600.0 * 1024.0
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::aws_lambda()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_gb_one_second_costs_the_rate() {
        let m = CostModel::aws_lambda();
        let c = m.keepalive_cost_usd(1024.0, 1.0);
        assert!((c - 1.66667e-5).abs() < 1e-12);
    }

    #[test]
    fn minutes_helper_matches_seconds() {
        let m = CostModel::aws_lambda();
        assert!(
            (m.keepalive_cost_usd_per_minutes(512.0, 10.0) - m.keepalive_cost_usd(512.0, 600.0))
                .abs()
                < 1e-15
        );
    }

    #[test]
    fn cents_per_hour_inverts() {
        let m = CostModel::aws_lambda();
        for mb in [300.0, 1024.0, 3500.0, 7000.0] {
            let c = m.cents_per_hour(mb);
            let back = m.memory_mb_for_cents_per_hour(c);
            assert!((back - mb).abs() < 1e-6, "{mb} -> {c} -> {back}");
        }
    }

    #[test]
    fn table_i_costs_imply_sane_memory() {
        // GPT-Large costs 41.71 c/h in Table I; under the AWS rate that is a
        // ~7 GB provisioned footprint — consistent with the paper's statement
        // that Lambda memory is set to 2× the container image size.
        let m = CostModel::aws_lambda();
        let mb = m.memory_mb_for_cents_per_hour(41.71);
        assert!(mb > 6000.0 && mb < 8000.0, "got {mb}");
        // BERT-Small costs 4.392 c/h → ~750 MB.
        let mb = m.memory_mb_for_cents_per_hour(4.392);
        assert!(mb > 600.0 && mb < 900.0, "got {mb}");
    }

    #[test]
    fn cost_scales_linearly_in_both_arguments() {
        let m = CostModel::aws_lambda();
        let base = m.keepalive_cost_usd(100.0, 60.0);
        assert!((m.keepalive_cost_usd(200.0, 60.0) - 2.0 * base).abs() < 1e-15);
        assert!((m.keepalive_cost_usd(100.0, 120.0) - 2.0 * base).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn zero_rate_rejected() {
        CostModel::new(0.0);
    }
}

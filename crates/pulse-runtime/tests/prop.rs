//! Property tests for the event-driven runtime, including the strongest
//! invariant we have: cost/count equality with the independently implemented
//! minute-resolution engine on arbitrary workloads.

use proptest::prelude::*;
use pulse_runtime::{
    ClusterConfig, FaultInjector, FaultPlan, FleetConfig, NodeCapacity, NodeFault, NodeFaultKind,
    NodeFaultPlan, Runtime, RuntimeConfig,
};
use pulse_sim::assignment::round_robin_assignment;
use pulse_sim::policies::{OpenWhiskFixed, PulsePolicy};
use pulse_sim::Simulator;
use pulse_trace::{FunctionTrace, Trace};

fn arb_trace() -> impl Strategy<Value = Trace> {
    (1usize..4, 30usize..120).prop_flat_map(|(nf, minutes)| {
        proptest::collection::vec(
            proptest::collection::vec(0u32..3, minutes..=minutes),
            nf..=nf,
        )
        .prop_map(|rows| {
            Trace::new(
                rows.into_iter()
                    .enumerate()
                    .map(|(i, counts)| FunctionTrace::new(format!("f{i}"), counts))
                    .collect(),
            )
        })
    })
}

/// An arbitrary node-fault plan against an `n_nodes`-node fleet: up to six
/// windows of crashes, partitions, and stragglers at arbitrary minutes, with
/// arbitrary (possibly overlapping) durations.
fn arb_node_fault_plan(n_nodes: usize, minutes: u64) -> impl Strategy<Value = NodeFaultPlan> {
    proptest::collection::vec((0..n_nodes, 0u8..3, 0..minutes.max(1), 1u64..10), 0..6).prop_map(
        |windows| NodeFaultPlan {
            faults: windows
                .into_iter()
                .map(|(node, kind, at_minute, duration_minutes)| NodeFault {
                    node,
                    kind: match kind {
                        0 => NodeFaultKind::Crash,
                        1 => NodeFaultKind::Partition,
                        _ => NodeFaultKind::Degraded { slowdown: 3.0 },
                    },
                    at_minute,
                    duration_minutes,
                })
                .collect(),
        },
    )
}

/// A workload plus a node-fault plan whose windows fall inside its horizon.
fn arb_faulted_fleet_trace() -> impl Strategy<Value = (Trace, NodeFaultPlan)> {
    arb_trace().prop_flat_map(|trace| {
        let minutes = trace.minutes() as u64;
        (Just(trace), arb_node_fault_plan(3, minutes))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The two engines agree exactly for the deterministic fixed policy on
    /// arbitrary workloads.
    #[test]
    fn engines_agree_on_fixed_policy(trace in arb_trace()) {
        let fams = round_robin_assignment(
            &pulse_models::zoo::standard(),
            trace.n_functions(),
        );
        let sim = Simulator::new(trace.clone(), fams.clone());
        let rt = Runtime::new(trace, fams.clone(), RuntimeConfig::default());
        let s = sim.run(&mut OpenWhiskFixed::new(&fams));
        let r = rt.run(&mut OpenWhiskFixed::new(&fams));
        prop_assert_eq!(s.warm_starts, r.warm_starts());
        prop_assert_eq!(s.cold_starts, r.cold_starts());
        prop_assert!((s.keepalive_cost_usd - r.keepalive_cost_usd).abs() < 1e-9);
        prop_assert!((s.avg_accuracy_pct() - r.avg_accuracy_pct()).abs() < 1e-9);
    }

    /// Runtime bookkeeping invariants on arbitrary workloads: every request
    /// completes, no request finishes before its arrival, warm requests are
    /// at least as fast as any cold request of the same function.
    #[test]
    fn runtime_accounting_invariants(trace in arb_trace()) {
        let fams = round_robin_assignment(
            &pulse_models::zoo::standard(),
            trace.n_functions(),
        );
        let rt = Runtime::new(trace.clone(), fams.clone(), RuntimeConfig::default());
        let r = rt.run(&mut OpenWhiskFixed::new(&fams));
        prop_assert_eq!(r.requests(), trace.total_invocations());
        for rec in &r.records {
            prop_assert!(rec.done_ms >= rec.arrival_ms);
            prop_assert!(rec.accuracy_pct > 0.0);
        }
        prop_assert_eq!(r.memory_at_tick_mb.len(), trace.minutes());
        prop_assert!(r.keepalive_cost_usd >= 0.0);
    }

    /// A concurrency cap never changes warm/cold accounting or billing —
    /// only latency.
    #[test]
    fn concurrency_cap_only_affects_latency(trace in arb_trace(), cap in 1u32..4) {
        let fams = round_robin_assignment(
            &pulse_models::zoo::standard(),
            trace.n_functions(),
        );
        let unbounded = Runtime::new(trace.clone(), fams.clone(), RuntimeConfig::default())
            .run(&mut OpenWhiskFixed::new(&fams));
        let capped = Runtime::new(
            trace,
            fams.clone(),
            RuntimeConfig { max_concurrency: Some(cap), ..Default::default() },
        )
        .run(&mut OpenWhiskFixed::new(&fams));
        prop_assert_eq!(unbounded.warm_starts(), capped.warm_starts());
        prop_assert_eq!(unbounded.cold_starts(), capped.cold_starts());
        prop_assert!((unbounded.keepalive_cost_usd - capped.keepalive_cost_usd).abs() < 1e-12);
        prop_assert!(capped.service_time_s() >= unbounded.service_time_s() - 1e-9);
    }

    /// Two fault injectors built from the same plan (same seed, same rates)
    /// make identical draws, call for call — the replay-determinism
    /// foundation every chaos experiment rests on.
    #[test]
    fn same_seed_injectors_draw_identically(
        seed in 0u64..1_000,
        provision in 0.0f64..1.0,
        variant_load in 0.0f64..1.0,
        exec_crash in 0.0f64..1.0,
        calls in proptest::collection::vec((0usize..4, 0usize..3, 0u8..4), 1..200),
    ) {
        let plan = FaultPlan::uniform(provision, variant_load, exec_crash, seed);
        let mut a = FaultInjector::new(&plan);
        let mut b = FaultInjector::new(&plan);
        for &(func, variant, kind) in &calls {
            match kind {
                0 => prop_assert_eq!(
                    a.provision_fails(func, variant),
                    b.provision_fails(func, variant)
                ),
                1 => prop_assert_eq!(
                    a.variant_load_fails(func, variant),
                    b.variant_load_fails(func, variant)
                ),
                2 => prop_assert_eq!(
                    a.exec_crashes(func, variant),
                    b.exec_crashes(func, variant)
                ),
                _ => prop_assert_eq!(
                    a.crash_point_ms(1 + func as u64 * 997),
                    b.crash_point_ms(1 + func as u64 * 997)
                ),
            }
        }
        // And the backoff schedules agree too.
        for attempt in 1..8u32 {
            prop_assert_eq!(a.backoff_ms(attempt), b.backoff_ms(attempt));
        }
    }

    /// The node-capacity enforcer is a hard invariant, not a heuristic: the
    /// billed keep-alive footprint never exceeds the cap at any minute, for
    /// any workload, fault plan, policy, or cap level.
    #[test]
    fn keepalive_memory_never_exceeds_node_cap(
        trace in arb_trace(),
        cap_frac in 0.05f64..1.0,
        seed in 0u64..100,
        faulty in 0u8..2,
        use_pulse in 0u8..2,
    ) {
        let (faulty, use_pulse) = (faulty == 1, use_pulse == 1);
        let fams = round_robin_assignment(
            &pulse_models::zoo::standard(),
            trace.n_functions(),
        );
        let all_high: f64 = fams.iter().map(|f| f.highest().memory_mb).sum();
        let cap = all_high * cap_frac;
        let rt = Runtime::new(trace, fams.clone(), RuntimeConfig::default());
        let plan = if faulty {
            FaultPlan::uniform(0.2, 0.1, 0.05, seed)
        } else {
            FaultPlan::none()
        };
        let cluster = ClusterConfig {
            capacity: NodeCapacity::mb(cap),
            ..ClusterConfig::unlimited()
        };
        let mut fixed;
        let mut pulse;
        let policy: &mut dyn pulse_sim::KeepAlivePolicy = if use_pulse {
            pulse = PulsePolicy::new(fams.clone(), Default::default());
            &mut pulse
        } else {
            fixed = OpenWhiskFixed::new(&fams);
            &mut fixed
        };
        let s = rt.run_with_cluster(policy, &plan, &cluster);
        for (t, &mb) in s.memory_at_tick_mb.iter().enumerate() {
            prop_assert!(
                mb <= cap + 1e-9,
                "minute {}: {} MB kept alive over the {} MB cap",
                t, mb, cap
            );
        }
    }

    /// Per-node capacity enforcement survives arbitrary node-fault plans:
    /// no node ever bills over its own cap, the fleet never bills over the
    /// sum of the caps, and the fleet-wide memory series is exactly the sum
    /// of the per-node series (containers are conserved — a migrated
    /// container is never billed on two nodes, and warm state is never
    /// silently dropped from the ledger).
    #[test]
    fn fleet_keepalive_respects_node_caps_under_any_fault_plan(
        (trace, node_faults) in arb_faulted_fleet_trace(),
        cap_frac in 0.1f64..0.9,
        use_pulse in 0u8..2,
    ) {
        let fams = round_robin_assignment(
            &pulse_models::zoo::standard(),
            trace.n_functions(),
        );
        let all_high: f64 = fams.iter().map(|f| f.highest().memory_mb).sum();
        let cap = all_high * cap_frac;
        let fleet = FleetConfig::uniform(3, NodeCapacity::mb(cap))
            .with_node_faults(node_faults);
        let rt = Runtime::new(trace, fams.clone(), RuntimeConfig::default());
        let mut fixed;
        let mut pulse;
        let policy: &mut dyn pulse_sim::KeepAlivePolicy = if use_pulse == 1 {
            pulse = PulsePolicy::new(fams.clone(), Default::default());
            &mut pulse
        } else {
            fixed = OpenWhiskFixed::new(&fams);
            &mut fixed
        };
        let s = rt.run_with_fleet(policy, &FaultPlan::none(), &fleet);
        prop_assert_eq!(s.node_summaries.len(), 3);
        for n in &s.node_summaries {
            prop_assert_eq!(n.memory_at_tick_mb.len(), s.memory_at_tick_mb.len());
            for (t, &mb) in n.memory_at_tick_mb.iter().enumerate() {
                prop_assert!(
                    mb <= cap + 1e-9,
                    "node {} minute {}: {} MB over its {} MB cap",
                    &n.name, t, mb, cap
                );
            }
        }
        for (t, &mb) in s.memory_at_tick_mb.iter().enumerate() {
            prop_assert!(
                mb <= 3.0 * cap + 1e-9,
                "minute {}: fleet kept {} MB alive over the {} MB cap sum",
                t, mb, 3.0 * cap
            );
            let node_sum: f64 = s
                .node_summaries
                .iter()
                .map(|n| n.memory_at_tick_mb[t])
                .sum();
            prop_assert_eq!(
                mb.to_bits(), node_sum.to_bits(),
                "minute {}: fleet series {} != per-node sum {}",
                t, mb, node_sum
            );
        }
    }

    /// Under arbitrary node faults (with request-level faults layered on
    /// top) every request still reaches a terminal state, migration flows
    /// balance exactly (every container that left a node arrived at
    /// another), and the fleet bill is the sum of the per-node bills.
    #[test]
    fn node_faults_never_strand_requests_and_migrations_balance(
        (trace, node_faults) in arb_faulted_fleet_trace(),
        cap_frac in 0.2f64..0.9,
        seed in 0u64..100,
    ) {
        let fams = round_robin_assignment(
            &pulse_models::zoo::standard(),
            trace.n_functions(),
        );
        let all_high: f64 = fams.iter().map(|f| f.highest().memory_mb).sum();
        let total = trace.total_invocations();
        let fleet = FleetConfig::uniform(3, NodeCapacity::mb(all_high * cap_frac))
            .with_node_faults(node_faults);
        let rt = Runtime::new(trace, fams.clone(), RuntimeConfig::default());
        let plan = FaultPlan::uniform(0.05, 0.02, 0.02, seed);
        let s = rt.run_with_fleet(&mut OpenWhiskFixed::new(&fams), &plan, &fleet);
        prop_assert_eq!(s.requests(), total);
        prop_assert_eq!(s.records.len() as u64, total);
        for rec in &s.records {
            prop_assert!(rec.done_ms >= rec.arrival_ms);
        }
        let inflow: u64 = s.node_summaries.iter().map(|n| n.migrations_in).sum();
        let outflow: u64 = s.node_summaries.iter().map(|n| n.migrations_out).sum();
        prop_assert_eq!(inflow, s.migrations, "inflow != migration count");
        prop_assert_eq!(outflow, s.migrations, "outflow != migration count");
        let node_cost: f64 = s
            .node_summaries
            .iter()
            .map(|n| n.keepalive_cost_usd)
            .sum();
        prop_assert!(
            (s.keepalive_cost_usd - node_cost).abs()
                <= 1e-9 * (1.0 + s.keepalive_cost_usd.abs()),
            "fleet bill {} != per-node sum {}",
            s.keepalive_cost_usd, node_cost
        );
    }

    /// Spreading an unconstrained workload across more identical unlimited
    /// nodes changes nothing: the global placer keeps the plan where it was
    /// and the run is bit-identical to the classic single-node cluster.
    #[test]
    fn unlimited_homogeneous_fleet_is_bitwise_transparent(
        trace in arb_trace(),
        n_nodes in 1usize..5,
    ) {
        let fams = round_robin_assignment(
            &pulse_models::zoo::standard(),
            trace.n_functions(),
        );
        let rt = Runtime::new(trace, fams.clone(), RuntimeConfig::default());
        let base = rt.run_with_cluster(
            &mut OpenWhiskFixed::new(&fams),
            &FaultPlan::none(),
            &ClusterConfig::unlimited(),
        );
        let fleet = FleetConfig::uniform(n_nodes, NodeCapacity::unlimited());
        let f = rt.run_with_fleet(
            &mut OpenWhiskFixed::new(&fams),
            &FaultPlan::none(),
            &fleet,
        );
        prop_assert_eq!(base.warm_starts(), f.warm_starts());
        prop_assert_eq!(base.cold_starts(), f.cold_starts());
        prop_assert_eq!(base.requests(), f.requests());
        prop_assert_eq!(
            base.keepalive_cost_usd.to_bits(),
            f.keepalive_cost_usd.to_bits()
        );
        for (a, b) in base.memory_at_tick_mb.iter().zip(&f.memory_at_tick_mb) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        prop_assert_eq!(f.migrations, 0);
        prop_assert_eq!(f.placement_failures, 0);
    }
}

//! Property tests for the event-driven runtime, including the strongest
//! invariant we have: cost/count equality with the independently implemented
//! minute-resolution engine on arbitrary workloads.

use proptest::prelude::*;
use pulse_runtime::{Runtime, RuntimeConfig};
use pulse_sim::assignment::round_robin_assignment;
use pulse_sim::policies::OpenWhiskFixed;
use pulse_sim::Simulator;
use pulse_trace::{FunctionTrace, Trace};

fn arb_trace() -> impl Strategy<Value = Trace> {
    (1usize..4, 30usize..120).prop_flat_map(|(nf, minutes)| {
        proptest::collection::vec(
            proptest::collection::vec(0u32..3, minutes..=minutes),
            nf..=nf,
        )
        .prop_map(|rows| {
            Trace::new(
                rows.into_iter()
                    .enumerate()
                    .map(|(i, counts)| FunctionTrace::new(format!("f{i}"), counts))
                    .collect(),
            )
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The two engines agree exactly for the deterministic fixed policy on
    /// arbitrary workloads.
    #[test]
    fn engines_agree_on_fixed_policy(trace in arb_trace()) {
        let fams = round_robin_assignment(
            &pulse_models::zoo::standard(),
            trace.n_functions(),
        );
        let sim = Simulator::new(trace.clone(), fams.clone());
        let rt = Runtime::new(trace, fams.clone(), RuntimeConfig::default());
        let s = sim.run(&mut OpenWhiskFixed::new(&fams));
        let r = rt.run(&mut OpenWhiskFixed::new(&fams));
        prop_assert_eq!(s.warm_starts, r.warm_starts());
        prop_assert_eq!(s.cold_starts, r.cold_starts());
        prop_assert!((s.keepalive_cost_usd - r.keepalive_cost_usd).abs() < 1e-9);
        prop_assert!((s.avg_accuracy_pct() - r.avg_accuracy_pct()).abs() < 1e-9);
    }

    /// Runtime bookkeeping invariants on arbitrary workloads: every request
    /// completes, no request finishes before its arrival, warm requests are
    /// at least as fast as any cold request of the same function.
    #[test]
    fn runtime_accounting_invariants(trace in arb_trace()) {
        let fams = round_robin_assignment(
            &pulse_models::zoo::standard(),
            trace.n_functions(),
        );
        let rt = Runtime::new(trace.clone(), fams.clone(), RuntimeConfig::default());
        let r = rt.run(&mut OpenWhiskFixed::new(&fams));
        prop_assert_eq!(r.requests(), trace.total_invocations());
        for rec in &r.records {
            prop_assert!(rec.done_ms >= rec.arrival_ms);
            prop_assert!(rec.accuracy_pct > 0.0);
        }
        prop_assert_eq!(r.memory_at_tick_mb.len(), trace.minutes());
        prop_assert!(r.keepalive_cost_usd >= 0.0);
    }

    /// A concurrency cap never changes warm/cold accounting or billing —
    /// only latency.
    #[test]
    fn concurrency_cap_only_affects_latency(trace in arb_trace(), cap in 1u32..4) {
        let fams = round_robin_assignment(
            &pulse_models::zoo::standard(),
            trace.n_functions(),
        );
        let unbounded = Runtime::new(trace.clone(), fams.clone(), RuntimeConfig::default())
            .run(&mut OpenWhiskFixed::new(&fams));
        let capped = Runtime::new(
            trace,
            fams.clone(),
            RuntimeConfig { max_concurrency: Some(cap), ..Default::default() },
        )
        .run(&mut OpenWhiskFixed::new(&fams));
        prop_assert_eq!(unbounded.warm_starts(), capped.warm_starts());
        prop_assert_eq!(unbounded.cold_starts(), capped.cold_starts());
        prop_assert!((unbounded.keepalive_cost_usd - capped.keepalive_cost_usd).abs() < 1e-12);
        prop_assert!(capped.service_time_s() >= unbounded.service_time_s() - 1e-9);
    }
}

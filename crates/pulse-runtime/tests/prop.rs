//! Property tests for the event-driven runtime, including the strongest
//! invariant we have: cost/count equality with the independently implemented
//! minute-resolution engine on arbitrary workloads.

use proptest::prelude::*;
use pulse_runtime::{
    ClusterConfig, FaultInjector, FaultPlan, NodeCapacity, Runtime, RuntimeConfig,
};
use pulse_sim::assignment::round_robin_assignment;
use pulse_sim::policies::{OpenWhiskFixed, PulsePolicy};
use pulse_sim::Simulator;
use pulse_trace::{FunctionTrace, Trace};

fn arb_trace() -> impl Strategy<Value = Trace> {
    (1usize..4, 30usize..120).prop_flat_map(|(nf, minutes)| {
        proptest::collection::vec(
            proptest::collection::vec(0u32..3, minutes..=minutes),
            nf..=nf,
        )
        .prop_map(|rows| {
            Trace::new(
                rows.into_iter()
                    .enumerate()
                    .map(|(i, counts)| FunctionTrace::new(format!("f{i}"), counts))
                    .collect(),
            )
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The two engines agree exactly for the deterministic fixed policy on
    /// arbitrary workloads.
    #[test]
    fn engines_agree_on_fixed_policy(trace in arb_trace()) {
        let fams = round_robin_assignment(
            &pulse_models::zoo::standard(),
            trace.n_functions(),
        );
        let sim = Simulator::new(trace.clone(), fams.clone());
        let rt = Runtime::new(trace, fams.clone(), RuntimeConfig::default());
        let s = sim.run(&mut OpenWhiskFixed::new(&fams));
        let r = rt.run(&mut OpenWhiskFixed::new(&fams));
        prop_assert_eq!(s.warm_starts, r.warm_starts());
        prop_assert_eq!(s.cold_starts, r.cold_starts());
        prop_assert!((s.keepalive_cost_usd - r.keepalive_cost_usd).abs() < 1e-9);
        prop_assert!((s.avg_accuracy_pct() - r.avg_accuracy_pct()).abs() < 1e-9);
    }

    /// Runtime bookkeeping invariants on arbitrary workloads: every request
    /// completes, no request finishes before its arrival, warm requests are
    /// at least as fast as any cold request of the same function.
    #[test]
    fn runtime_accounting_invariants(trace in arb_trace()) {
        let fams = round_robin_assignment(
            &pulse_models::zoo::standard(),
            trace.n_functions(),
        );
        let rt = Runtime::new(trace.clone(), fams.clone(), RuntimeConfig::default());
        let r = rt.run(&mut OpenWhiskFixed::new(&fams));
        prop_assert_eq!(r.requests(), trace.total_invocations());
        for rec in &r.records {
            prop_assert!(rec.done_ms >= rec.arrival_ms);
            prop_assert!(rec.accuracy_pct > 0.0);
        }
        prop_assert_eq!(r.memory_at_tick_mb.len(), trace.minutes());
        prop_assert!(r.keepalive_cost_usd >= 0.0);
    }

    /// A concurrency cap never changes warm/cold accounting or billing —
    /// only latency.
    #[test]
    fn concurrency_cap_only_affects_latency(trace in arb_trace(), cap in 1u32..4) {
        let fams = round_robin_assignment(
            &pulse_models::zoo::standard(),
            trace.n_functions(),
        );
        let unbounded = Runtime::new(trace.clone(), fams.clone(), RuntimeConfig::default())
            .run(&mut OpenWhiskFixed::new(&fams));
        let capped = Runtime::new(
            trace,
            fams.clone(),
            RuntimeConfig { max_concurrency: Some(cap), ..Default::default() },
        )
        .run(&mut OpenWhiskFixed::new(&fams));
        prop_assert_eq!(unbounded.warm_starts(), capped.warm_starts());
        prop_assert_eq!(unbounded.cold_starts(), capped.cold_starts());
        prop_assert!((unbounded.keepalive_cost_usd - capped.keepalive_cost_usd).abs() < 1e-12);
        prop_assert!(capped.service_time_s() >= unbounded.service_time_s() - 1e-9);
    }

    /// Two fault injectors built from the same plan (same seed, same rates)
    /// make identical draws, call for call — the replay-determinism
    /// foundation every chaos experiment rests on.
    #[test]
    fn same_seed_injectors_draw_identically(
        seed in 0u64..1_000,
        provision in 0.0f64..1.0,
        variant_load in 0.0f64..1.0,
        exec_crash in 0.0f64..1.0,
        calls in proptest::collection::vec((0usize..4, 0usize..3, 0u8..4), 1..200),
    ) {
        let plan = FaultPlan::uniform(provision, variant_load, exec_crash, seed);
        let mut a = FaultInjector::new(&plan);
        let mut b = FaultInjector::new(&plan);
        for &(func, variant, kind) in &calls {
            match kind {
                0 => prop_assert_eq!(
                    a.provision_fails(func, variant),
                    b.provision_fails(func, variant)
                ),
                1 => prop_assert_eq!(
                    a.variant_load_fails(func, variant),
                    b.variant_load_fails(func, variant)
                ),
                2 => prop_assert_eq!(
                    a.exec_crashes(func, variant),
                    b.exec_crashes(func, variant)
                ),
                _ => prop_assert_eq!(
                    a.crash_point_ms(1 + func as u64 * 997),
                    b.crash_point_ms(1 + func as u64 * 997)
                ),
            }
        }
        // And the backoff schedules agree too.
        for attempt in 1..8u32 {
            prop_assert_eq!(a.backoff_ms(attempt), b.backoff_ms(attempt));
        }
    }

    /// The node-capacity enforcer is a hard invariant, not a heuristic: the
    /// billed keep-alive footprint never exceeds the cap at any minute, for
    /// any workload, fault plan, policy, or cap level.
    #[test]
    fn keepalive_memory_never_exceeds_node_cap(
        trace in arb_trace(),
        cap_frac in 0.05f64..1.0,
        seed in 0u64..100,
        faulty in 0u8..2,
        use_pulse in 0u8..2,
    ) {
        let (faulty, use_pulse) = (faulty == 1, use_pulse == 1);
        let fams = round_robin_assignment(
            &pulse_models::zoo::standard(),
            trace.n_functions(),
        );
        let all_high: f64 = fams.iter().map(|f| f.highest().memory_mb).sum();
        let cap = all_high * cap_frac;
        let rt = Runtime::new(trace, fams.clone(), RuntimeConfig::default());
        let plan = if faulty {
            FaultPlan::uniform(0.2, 0.1, 0.05, seed)
        } else {
            FaultPlan::none()
        };
        let cluster = ClusterConfig {
            capacity: NodeCapacity::mb(cap),
            ..ClusterConfig::unlimited()
        };
        let mut fixed;
        let mut pulse;
        let policy: &mut dyn pulse_sim::KeepAlivePolicy = if use_pulse {
            pulse = PulsePolicy::new(fams.clone(), Default::default());
            &mut pulse
        } else {
            fixed = OpenWhiskFixed::new(&fams);
            &mut fixed
        };
        let s = rt.run_with_cluster(policy, &plan, &cluster);
        for (t, &mb) in s.memory_at_tick_mb.iter().enumerate() {
            prop_assert!(
                mb <= cap + 1e-9,
                "minute {}: {} MB kept alive over the {} MB cap",
                t, mb, cap
            );
        }
    }
}

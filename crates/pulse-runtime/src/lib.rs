//! # pulse-runtime — an event-driven container-runtime simulator
//!
//! The paper's experimental platform is real: Docker images in ECR executed
//! by AWS Lambda, with cold starts measured via a memory-resize trick. The
//! reproduction's primary engine (`pulse-sim`) abstracts that platform at
//! *minute* resolution — the resolution PULSE itself operates at. This crate
//! provides the layer below: a **millisecond-resolution, event-driven
//! container runtime** with an explicit container lifecycle
//!
//! ```text
//! Provisioning ──► Loading ──► Warm ⇄ Executing ──► Reaped
//! ```
//!
//! request queueing with configurable per-container concurrency, proactive
//! variant swaps at minute boundaries, and GB-millisecond billing.
//!
//! Its purpose is two-fold:
//!
//! 1. **Validation** — driving the *same* keep-alive policy over the same
//!    trace through both engines and checking that warm/cold counts agree
//!    exactly and costs agree to within minute-boundary rounding. This is
//!    the evidence that the minute-level abstraction used for all paper
//!    experiments is sound (see `pulse-exp validate`).
//! 2. **Fidelity experiments** the minute engine cannot express: queueing
//!    delay under bounded container concurrency, sub-minute latency
//!    percentiles, cold-start tail behaviour.
//! 3. **Resilience experiments** — a seeded, deterministic fault-injection
//!    layer ([`fault`]) with retry/backoff, per-request SLO timeouts, and
//!    graceful ladder degradation (see `Runtime::run_with_faults` and
//!    `pulse-exp chaos`).
//! 4. **Overload-robustness experiments** — a cluster layer ([`cluster`])
//!    with a hard per-node keep-alive memory cap (overage flattened by
//!    utility-ordered pressure downgrades), bounded-backlog admission
//!    control (excess arrivals shed, not queued forever), and support for
//!    the `pulse_sim::watchdog` policy fallback (see
//!    `Runtime::run_with_cluster` and `pulse-exp overload`).
//! 5. **Fleet-robustness experiments** — a multi-node generalization
//!    ([`fleet`] + [`node`]): heterogeneous nodes behind a net-utility
//!    global placer, deterministic node-level faults (crash / straggler /
//!    partition with heal times), warm-container migration off pressured
//!    nodes, and two-tier admission (see `Runtime::run_with_fleet` and
//!    `pulse-exp fleet`). A 1-node fleet with no node faults is
//!    bit-identical to `run_with_cluster`.
//!
//! ```
//! use pulse_runtime::{Runtime, RuntimeConfig};
//! use pulse_sim::policies::OpenWhiskFixed;
//! use pulse_sim::assignment::round_robin_assignment;
//!
//! let trace = pulse_trace::synth::azure_like_12_with_horizon(7, 240);
//! let fams = round_robin_assignment(&pulse_models::zoo::standard(), trace.n_functions());
//! let runtime = Runtime::new(trace, fams.clone(), RuntimeConfig::default());
//! let summary = runtime.run(&mut OpenWhiskFixed::new(&fams));
//! assert!(summary.requests() > 0);
//! assert!(summary.latency_p50_ms() > 0.0);
//! ```

pub mod cluster;
pub mod container;
pub mod event;
pub mod fault;
pub mod fleet;
pub mod metrics;
pub mod node;
pub mod runtime;

pub use cluster::{AdmissionControl, ClusterConfig, NodeCapacity, OpsEvent};
pub use container::{ContainerState, LiveContainer};
pub use event::{Event, EventQueue};
pub use fault::{FaultInjector, FaultPlan, FaultRates, RetryPolicy};
pub use fleet::{FleetConfig, MigrationConfig};
pub use metrics::{NodeSummary, RequestRecord, RuntimeSummary};
pub use node::{NodeFault, NodeFaultKind, NodeFaultPlan, NodeHealth, NodeSpec};
pub use runtime::{arrival_times_in_minute, Runtime, RuntimeConfig, RuntimeSession};

/// Milliseconds per simulated minute.
pub const MS_PER_MINUTE: u64 = 60_000;

//! Cluster-level robustness configuration: node capacity and admission
//! control.
//!
//! The fault layer ([`crate::fault`]) makes individual operations fail; this
//! module makes the *node itself* finite. Two independent knobs, both off by
//! default ([`ClusterConfig::unlimited`] — bit-identical to running without
//! a cluster layer):
//!
//! * [`NodeCapacity`] — a hard cap on total kept-alive memory. When a
//!   policy's plan exceeds it at a minute tick, the runtime flattens the
//!   overage with Algorithm 2's utility-ordered downgrade loop (the same
//!   `Uv` machinery PULSE uses for peaks), emitting
//!   [`OpsEvent::PressureDowngrade`]/[`OpsEvent::Evicted`] instead of
//!   failing provisioning;
//! * [`AdmissionControl`] — a bound on the global pending queue (requests
//!   waiting for provisioning or a concurrency slot). Arrivals that cannot
//!   start immediately once the backlog is full are shed with
//!   [`OpsEvent::Overloaded`] instead of queueing forever.
//!
//! [`OpsEvent`] also records the policy watchdog's fallback transitions
//! (see `pulse_sim::watchdog`), giving one ordered operational log per run
//! in `RuntimeSummary::ops_events`.

use pulse_models::VariantId;

/// Megabytes per gigabyte (keep-alive footprints are tracked in MB).
const MB_PER_GB: f64 = 1024.0;

/// Per-node keep-alive memory capacity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeCapacity {
    /// Hard cap on total kept-alive memory, MB; `None` = unlimited (the
    /// infinitely large node every prior experiment assumed).
    pub keepalive_mb: Option<f64>,
}

impl NodeCapacity {
    /// No cap.
    pub fn unlimited() -> Self {
        Self { keepalive_mb: None }
    }

    /// Cap at `mb` megabytes.
    pub fn mb(mb: f64) -> Self {
        Self {
            keepalive_mb: Some(mb),
        }
    }

    /// Cap at `gb` gigabytes (the unit operators size nodes in).
    pub fn gb(gb: f64) -> Self {
        Self::mb(gb * MB_PER_GB)
    }
}

impl Default for NodeCapacity {
    fn default() -> Self {
        Self::unlimited()
    }
}

/// Global admission control for the pending queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionControl {
    /// Max requests waiting (for provisioning or a concurrency slot) across
    /// all functions before new arrivals are shed; `None` = unbounded.
    pub max_pending: Option<usize>,
}

impl AdmissionControl {
    /// No backlog limit.
    pub fn unbounded() -> Self {
        Self { max_pending: None }
    }

    /// Shed arrivals once `max_pending` requests are already waiting.
    pub fn bounded(max_pending: usize) -> Self {
        Self {
            max_pending: Some(max_pending),
        }
    }
}

impl Default for AdmissionControl {
    fn default() -> Self {
        Self::unbounded()
    }
}

/// The cluster-level robustness knobs, combined.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClusterConfig {
    /// Keep-alive memory cap.
    pub capacity: NodeCapacity,
    /// Pending-queue bound.
    pub admission: AdmissionControl,
}

impl ClusterConfig {
    /// Unlimited capacity and unbounded admission: running under this
    /// configuration is bit-identical to `Runtime::run_with_faults`.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// True when neither knob can ever act.
    pub fn is_unlimited(&self) -> bool {
        self.capacity.keepalive_mb.is_none() && self.admission.max_pending.is_none()
    }
}

/// One operational event logged by the robustness layer, in event order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OpsEvent {
    /// Capacity pressure downgraded a kept-alive model one rung.
    PressureDowngrade {
        /// Minute tick at which the enforcer ran.
        minute: u64,
        /// Affected function.
        func: usize,
        /// Variant before the downgrade.
        from: VariantId,
        /// Variant after the downgrade.
        to: VariantId,
    },
    /// Capacity pressure evicted a kept-alive model entirely.
    Evicted {
        /// Minute tick at which the enforcer ran.
        minute: u64,
        /// Affected function.
        func: usize,
        /// Variant that was evicted.
        from: VariantId,
    },
    /// An arrival was shed by admission control.
    Overloaded {
        /// Arrival time, ms.
        at_ms: u64,
        /// The function the request targeted.
        func: usize,
        /// The shed request's index in `RuntimeSummary::records`.
        req: usize,
    },
    /// The policy watchdog switched to its safe fallback.
    WatchdogFallback {
        /// Minute tick at which the switch was observed.
        minute: u64,
    },
    /// The policy watchdog recovered to the inner policy.
    WatchdogRecover {
        /// Minute tick at which the recovery was observed.
        minute: u64,
    },
    /// A node-level fault struck (fleet runs only).
    NodeDown {
        /// Minute at which the fault struck.
        minute: u64,
        /// Affected node.
        node: usize,
        /// What kind of fault.
        kind: crate::node::NodeFaultKind,
    },
    /// A node healed fully (no fault window covers it anymore).
    NodeRecovered {
        /// Minute at which the node came back up.
        minute: u64,
        /// Affected node.
        node: usize,
    },
    /// The rebalancer migrated a warm container between nodes.
    Migrated {
        /// Minute tick at which the rebalancer ran.
        minute: u64,
        /// Owning function.
        func: usize,
        /// Source node.
        from_node: usize,
        /// Destination node.
        to_node: usize,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_is_the_default_and_inert() {
        let c = ClusterConfig::default();
        assert!(c.is_unlimited());
        assert_eq!(c, ClusterConfig::unlimited());
        assert_eq!(c.capacity, NodeCapacity::unlimited());
        assert_eq!(c.admission, AdmissionControl::unbounded());
    }

    #[test]
    fn gb_converts_to_mb() {
        let c = NodeCapacity::gb(8.0);
        assert_eq!(c.keepalive_mb, Some(8192.0));
        assert_eq!(NodeCapacity::mb(512.0).keepalive_mb, Some(512.0));
    }

    #[test]
    fn any_knob_makes_it_limited() {
        let capped = ClusterConfig {
            capacity: NodeCapacity::gb(4.0),
            ..ClusterConfig::unlimited()
        };
        assert!(!capped.is_unlimited());
        let bounded = ClusterConfig {
            admission: AdmissionControl::bounded(64),
            ..ClusterConfig::unlimited()
        };
        assert!(!bounded.is_unlimited());
        assert_eq!(bounded.admission.max_pending, Some(64));
    }
}

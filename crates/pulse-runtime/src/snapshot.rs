//! Crash-consistent checkpointing of the event-driven runtime.
//!
//! [`RuntimeSession::snapshot`] captures the *complete* resumable state of a
//! run — pending event queue (keys and sequence counter), per-function
//! container/queue state, the schedule ledger, per-request tables, RNG
//! cursors of both the duration sampler and the fault injector, per-node
//! fleet state, accumulated summary counters and the policy's learned state
//! — as a versioned multi-line flat-record document.
//! [`Runtime::restore_fleet_session`] rebuilds a session from it such that
//! stepping the restored session to completion is **bit-identical** to the
//! uninterrupted run, for any kill point.
//!
//! The snapshot never stores the workload, fault plan or fleet themselves;
//! it stamps their fingerprints and the restore call must supply equal
//! configurations (same trace, same seeds). Mismatches, version skew and
//! corruption all fail soft with a typed
//! [`RecoverError`](pulse_sim::recover::RecoverError).

use super::{DurationSampler, FnState, NodeRt, RunState, Runtime, RuntimeSession};
use crate::cluster::OpsEvent;
use crate::container::{ContainerState, LiveContainer};
use crate::event::{Event, EventQueue};
use crate::fault::{FaultInjector, FaultPlan};
use crate::fleet::FleetConfig;
use crate::metrics::{RequestRecord, RuntimeSummary};
use crate::node::{NodeFaultKind, NodeHealth};
use pulse_core::global::FlattenScratch;
use pulse_core::priority::PriorityStructure;
use pulse_core::schedule::{MinuteFootprint, ScheduleLedger};
use pulse_models::Profiler;
use pulse_obs::{Record, RecordBuilder, TraceSink};
use pulse_sim::policy::KeepAlivePolicy;
use pulse_sim::recover::{
    check_fingerprint, decode_ledger_row, encode_ledger, fingerprint_of, RecoverError,
    SNAPSHOT_VERSION,
};
use rand::rngs::SmallRng;
use std::collections::VecDeque;

/// Encode one queued [`Event`] as `(kind code, 4 packed args)`.
fn encode_event(e: &Event) -> (u64, [u64; 4]) {
    match *e {
        Event::Arrival { func, req } => (0, [func as u64, req as u64, 0, 0]),
        Event::ProvisionDone { func, epoch } => (1, [func as u64, epoch, 0, 0]),
        Event::ExecDone { func, req, gen } => (2, [func as u64, req as u64, gen, 0]),
        Event::ProvisionFailed { func, epoch } => (3, [func as u64, epoch, 0, 0]),
        Event::ExecFailed {
            func,
            req,
            epoch,
            gen,
        } => (4, [func as u64, req as u64, epoch, gen]),
        Event::RequestTimeout { func, req } => (5, [func as u64, req as u64, 0, 0]),
        Event::RetryRequest { func, req } => (6, [func as u64, req as u64, 0, 0]),
        Event::MinuteTick { minute } => (7, [minute, 0, 0, 0]),
        Event::NodeDown { node, fault } => (8, [node as u64, fault as u64, 0, 0]),
        Event::NodeRecovered { node, fault } => (9, [node as u64, fault as u64, 0, 0]),
        Event::MigrationDone { func, epoch } => (10, [func as u64, epoch, 0, 0]),
    }
}

/// Decode an event written by [`encode_event`].
fn decode_event(kind: u64, a: [u64; 4]) -> Result<Event, RecoverError> {
    let [x, y, z, w] = a;
    Ok(match kind {
        0 => Event::Arrival {
            func: x as usize,
            req: y as usize,
        },
        1 => Event::ProvisionDone {
            func: x as usize,
            epoch: y,
        },
        2 => Event::ExecDone {
            func: x as usize,
            req: y as usize,
            gen: z,
        },
        3 => Event::ProvisionFailed {
            func: x as usize,
            epoch: y,
        },
        4 => Event::ExecFailed {
            func: x as usize,
            req: y as usize,
            epoch: z,
            gen: w,
        },
        5 => Event::RequestTimeout {
            func: x as usize,
            req: y as usize,
        },
        6 => Event::RetryRequest {
            func: x as usize,
            req: y as usize,
        },
        7 => Event::MinuteTick { minute: x },
        8 => Event::NodeDown {
            node: x as usize,
            fault: y as usize,
        },
        9 => Event::NodeRecovered {
            node: x as usize,
            fault: y as usize,
        },
        10 => Event::MigrationDone {
            func: x as usize,
            epoch: y,
        },
        other => {
            return Err(RecoverError::corrupt(format!(
                "unknown event kind code {other}"
            )))
        }
    })
}

/// Encode an [`OpsEvent`] as `(code, 4 packed u64 args, 1 f64 arg)`.
fn encode_ops(e: &OpsEvent) -> (u64, [u64; 4], f64) {
    match *e {
        OpsEvent::PressureDowngrade {
            minute,
            func,
            from,
            to,
        } => (0, [minute, func as u64, from as u64, to as u64], 0.0),
        OpsEvent::Evicted { minute, func, from } => (1, [minute, func as u64, from as u64, 0], 0.0),
        OpsEvent::Overloaded { at_ms, func, req } => (2, [at_ms, func as u64, req as u64, 0], 0.0),
        OpsEvent::WatchdogFallback { minute } => (3, [minute, 0, 0, 0], 0.0),
        OpsEvent::WatchdogRecover { minute } => (4, [minute, 0, 0, 0], 0.0),
        OpsEvent::NodeDown { minute, node, kind } => {
            let (k, slow) = encode_fault_kind(kind);
            (5, [minute, node as u64, k, 0], slow)
        }
        OpsEvent::NodeRecovered { minute, node } => (6, [minute, node as u64, 0, 0], 0.0),
        OpsEvent::Migrated {
            minute,
            func,
            from_node,
            to_node,
        } => (
            7,
            [minute, func as u64, from_node as u64, to_node as u64],
            0.0,
        ),
    }
}

/// Decode an ops event written by [`encode_ops`].
fn decode_ops(code: u64, a: [u64; 4], x: f64) -> Result<OpsEvent, RecoverError> {
    let [p, q, r, s] = a;
    Ok(match code {
        0 => OpsEvent::PressureDowngrade {
            minute: p,
            func: q as usize,
            from: r as usize,
            to: s as usize,
        },
        1 => OpsEvent::Evicted {
            minute: p,
            func: q as usize,
            from: r as usize,
        },
        2 => OpsEvent::Overloaded {
            at_ms: p,
            func: q as usize,
            req: r as usize,
        },
        3 => OpsEvent::WatchdogFallback { minute: p },
        4 => OpsEvent::WatchdogRecover { minute: p },
        5 => OpsEvent::NodeDown {
            minute: p,
            node: q as usize,
            kind: decode_fault_kind(r, x)?,
        },
        6 => OpsEvent::NodeRecovered {
            minute: p,
            node: q as usize,
        },
        7 => OpsEvent::Migrated {
            minute: p,
            func: q as usize,
            from_node: r as usize,
            to_node: s as usize,
        },
        other => {
            return Err(RecoverError::corrupt(format!(
                "unknown ops event code {other}"
            )))
        }
    })
}

fn encode_fault_kind(kind: NodeFaultKind) -> (u64, f64) {
    match kind {
        NodeFaultKind::Crash => (0, 0.0),
        NodeFaultKind::Partition => (1, 0.0),
        NodeFaultKind::Degraded { slowdown } => (2, slowdown),
    }
}

fn decode_fault_kind(code: u64, slowdown: f64) -> Result<NodeFaultKind, RecoverError> {
    Ok(match code {
        0 => NodeFaultKind::Crash,
        1 => NodeFaultKind::Partition,
        2 => NodeFaultKind::Degraded { slowdown },
        other => {
            return Err(RecoverError::corrupt(format!(
                "unknown fault kind code {other}"
            )))
        }
    })
}

fn encode_health(h: &NodeHealth) -> (u64, f64) {
    match *h {
        NodeHealth::Up => (0, 0.0),
        NodeHealth::Degraded { slowdown } => (1, slowdown),
        NodeHealth::Crashed => (2, 0.0),
        NodeHealth::Partitioned => (3, 0.0),
    }
}

fn decode_health(code: u64, slowdown: f64) -> Result<NodeHealth, RecoverError> {
    Ok(match code {
        0 => NodeHealth::Up,
        1 => NodeHealth::Degraded { slowdown },
        2 => NodeHealth::Crashed,
        3 => NodeHealth::Partitioned,
        other => {
            return Err(RecoverError::corrupt(format!(
                "unknown node health code {other}"
            )))
        }
    })
}

fn encode_container_state(s: ContainerState) -> u64 {
    match s {
        ContainerState::Provisioning => 0,
        ContainerState::Warm => 1,
        ContainerState::Executing => 2,
        ContainerState::Reaped => 3,
    }
}

fn decode_container_state(code: u64) -> Result<ContainerState, RecoverError> {
    Ok(match code {
        0 => ContainerState::Provisioning,
        1 => ContainerState::Warm,
        2 => ContainerState::Executing,
        3 => ContainerState::Reaped,
        other => {
            return Err(RecoverError::corrupt(format!(
                "unknown container state code {other}"
            )))
        }
    })
}

fn summary_row(s: &RuntimeSummary) -> String {
    RecordBuilder::new("summary")
        .f64("cost", s.keepalive_cost_usd)
        .f64_list("mem", &s.memory_at_tick_mb)
        .u64("downgrades", s.downgrades)
        .u64("prov_fail", s.provision_failures)
        .u64("prov_retry", s.provision_retries)
        .u64("vload_fail", s.variant_load_failures)
        .u64("exec_crash", s.exec_crashes)
        .u64("req_retry", s.request_retries)
        .u64("degradations", s.degradations)
        .u64("degraded_reqs", s.degraded_requests)
        .f64("acc_penalty", s.accuracy_penalty_pct)
        .u64("timeouts", s.timeouts)
        .u64("reaped", s.reaped)
        .u64("shed", s.shed_requests)
        .u64("evictions", s.evictions)
        .u64("pressure_down", s.pressure_downgrades)
        .u64("pressure_min", s.pressure_minutes)
        .u64("fallback_min", s.fallback_minutes)
        .u64("migrations", s.migrations)
        .u64("migration_pause", s.migration_pause_ms)
        .u64("node_crashes", s.node_crashes)
        .u64("node_partitions", s.node_partitions)
        .u64("node_stragglers", s.node_stragglers)
        .u64("node_recoveries", s.node_recoveries)
        .u64("redispatched", s.redispatched_requests)
        .u64("node_loss_evictions", s.node_loss_evictions)
        .u64("placement_fail", s.placement_failures)
        .u64("node_shed", s.node_shed_requests)
        .finish()
}

fn decode_summary(rec: &Record) -> Result<RuntimeSummary, RecoverError> {
    let c = RecoverError::corrupt;
    Ok(RuntimeSummary {
        records: Vec::new(),
        keepalive_cost_usd: rec.f64("cost").map_err(c)?,
        memory_at_tick_mb: rec.f64_list("mem").map_err(c)?,
        downgrades: rec.u64("downgrades").map_err(c)?,
        provision_failures: rec.u64("prov_fail").map_err(c)?,
        provision_retries: rec.u64("prov_retry").map_err(c)?,
        variant_load_failures: rec.u64("vload_fail").map_err(c)?,
        exec_crashes: rec.u64("exec_crash").map_err(c)?,
        request_retries: rec.u64("req_retry").map_err(c)?,
        degradations: rec.u64("degradations").map_err(c)?,
        degraded_requests: rec.u64("degraded_reqs").map_err(c)?,
        accuracy_penalty_pct: rec.f64("acc_penalty").map_err(c)?,
        timeouts: rec.u64("timeouts").map_err(c)?,
        reaped: rec.u64("reaped").map_err(c)?,
        shed_requests: rec.u64("shed").map_err(c)?,
        evictions: rec.u64("evictions").map_err(c)?,
        pressure_downgrades: rec.u64("pressure_down").map_err(c)?,
        pressure_minutes: rec.u64("pressure_min").map_err(c)?,
        fallback_minutes: rec.u64("fallback_min").map_err(c)?,
        ops_events: Vec::new(),
        migrations: rec.u64("migrations").map_err(c)?,
        migration_pause_ms: rec.u64("migration_pause").map_err(c)?,
        node_crashes: rec.u64("node_crashes").map_err(c)?,
        node_partitions: rec.u64("node_partitions").map_err(c)?,
        node_stragglers: rec.u64("node_stragglers").map_err(c)?,
        node_recoveries: rec.u64("node_recoveries").map_err(c)?,
        redispatched_requests: rec.u64("redispatched").map_err(c)?,
        node_loss_evictions: rec.u64("node_loss_evictions").map_err(c)?,
        placement_failures: rec.u64("placement_fail").map_err(c)?,
        node_shed_requests: rec.u64("node_shed").map_err(c)?,
        node_summaries: Vec::new(),
    })
}

impl RuntimeSession<'_> {
    /// Capture the full resumable state of this run as a versioned snapshot
    /// document. Restoring it with [`Runtime::restore_fleet_session`] (same
    /// workload/plan/fleet, a fresh same-seeded policy) and stepping to
    /// completion is bit-identical to never having stopped — counters, cost,
    /// per-request records, ops events and the emitted observability stream
    /// all included. Fails with
    /// [`RecoverError::NotCheckpointable`] when the policy cannot export its
    /// state.
    pub fn snapshot(&self) -> Result<String, RecoverError> {
        let state =
            self.policy
                .checkpoint_state()
                .ok_or_else(|| RecoverError::NotCheckpointable {
                    policy: self.policy.name().to_string(),
                })?;
        let rs = &self.rs;
        let mut doc = RecordBuilder::new("snapshot")
            .u64("version", SNAPSHOT_VERSION)
            .str("engine", "rt")
            .u64("workload", self.rt.workload_fingerprint())
            .u64("plan", fingerprint_of(rs.injector.plan()))
            .u64("fleet", fingerprint_of(&self.fleet))
            .str("policy", self.policy.name())
            .bool("invoked", self.invoked_this_minute)
            .bool("fallback", rs.prev_fallback)
            .u64("minute_requests", rs.minute_requests)
            .u64("minute_violations", rs.minute_violations)
            .f64("last_billed", rs.last_billed_mb)
            .u64("next_seq", rs.queue.next_seq())
            .finish();
        let push = |doc: &mut String, row: String| {
            doc.push('\n');
            doc.push_str(&row);
        };

        let sampler_words = rs.sampler.rng.as_ref().map(SmallRng::state);
        push(
            &mut doc,
            RecordBuilder::new("rng")
                .bool("sampler_set", sampler_words.is_some())
                .u64_list(
                    "sampler",
                    sampler_words.as_ref().map_or(&[][..], |w| &w[..]),
                )
                .u64_list("injector", &rs.injector.rng_state())
                .finish(),
        );
        push(
            &mut doc,
            RecordBuilder::new("policy").str("state", &state).finish(),
        );
        push(
            &mut doc,
            RecordBuilder::new("demand")
                .f64_list("history", &self.demand_history)
                .finish(),
        );
        push(&mut doc, summary_row(&rs.summary));

        let (mut code, mut oa, mut ob, mut oc, mut od, mut ox) = (
            Vec::new(),
            Vec::new(),
            Vec::new(),
            Vec::new(),
            Vec::new(),
            Vec::new(),
        );
        for e in &rs.summary.ops_events {
            let (k, [p, q, r, s], x) = encode_ops(e);
            code.push(k);
            oa.push(p);
            ob.push(q);
            oc.push(r);
            od.push(s);
            ox.push(x);
        }
        push(
            &mut doc,
            RecordBuilder::new("ops")
                .u64_list("code", &code)
                .u64_list("a", &oa)
                .u64_list("b", &ob)
                .u64_list("c", &oc)
                .u64_list("d", &od)
                .f64_list("x", &ox)
                .finish(),
        );

        push(
            &mut doc,
            RecordBuilder::new("reqs")
                .u64_list(
                    "arrival",
                    &rs.records.iter().map(|r| r.arrival_ms).collect::<Vec<_>>(),
                )
                .u64_list(
                    "done",
                    &rs.records.iter().map(|r| r.done_ms).collect::<Vec<_>>(),
                )
                .u64_list(
                    "warm",
                    &rs.records
                        .iter()
                        .map(|r| u64::from(r.warm))
                        .collect::<Vec<_>>(),
                )
                .f64_list(
                    "acc",
                    &rs.records
                        .iter()
                        .map(|r| r.accuracy_pct)
                        .collect::<Vec<_>>(),
                )
                .u64_list(
                    "failed",
                    &rs.records
                        .iter()
                        .map(|r| u64::from(r.failed))
                        .collect::<Vec<_>>(),
                )
                .u64_list(
                    "variant",
                    &rs.req_warm_variant
                        .iter()
                        .map(|&v| v as u64)
                        .collect::<Vec<_>>(),
                )
                .u64_list(
                    "retries",
                    &rs.req_retries
                        .iter()
                        .map(|&r| u64::from(r))
                        .collect::<Vec<_>>(),
                )
                .u64_list(
                    "terminal",
                    &rs.req_done
                        .iter()
                        .map(|&d| u64::from(d))
                        .collect::<Vec<_>>(),
                )
                .u64_list("gen", &rs.req_gen)
                .finish(),
        );

        let entries = rs.queue.snapshot_entries();
        let (mut qt, mut qs, mut qk, mut qa, mut qb, mut qc, mut qd) = (
            Vec::with_capacity(entries.len()),
            Vec::with_capacity(entries.len()),
            Vec::with_capacity(entries.len()),
            Vec::with_capacity(entries.len()),
            Vec::with_capacity(entries.len()),
            Vec::with_capacity(entries.len()),
            Vec::with_capacity(entries.len()),
        );
        for (t, s, e) in &entries {
            let (k, [p, q, r, w]) = encode_event(e);
            qt.push(*t);
            qs.push(*s);
            qk.push(k);
            qa.push(p);
            qb.push(q);
            qc.push(r);
            qd.push(w);
        }
        push(
            &mut doc,
            RecordBuilder::new("queue")
                .u64_list("t", &qt)
                .u64_list("s", &qs)
                .u64_list("kind", &qk)
                .u64_list("a", &qa)
                .u64_list("b", &qb)
                .u64_list("c", &qc)
                .u64_list("d", &qd)
                .finish(),
        );

        for (f, st) in rs.fns.iter().enumerate() {
            let mut row = RecordBuilder::new("fn")
                .usize("func", f)
                .usize("node", st.node)
                .u64("in_flight", u64::from(st.in_flight))
                .u64("epoch", st.epoch)
                .u64("attempts", u64::from(st.provision_attempts))
                .bool("sched_set", st.scheduled_minute.is_some())
                .u64("sched", st.scheduled_minute.unwrap_or(0))
                .u64_list(
                    "waiting",
                    &st.waiting.iter().map(|&r| r as u64).collect::<Vec<_>>(),
                )
                .u64_list(
                    "executing",
                    &st.executing.iter().map(|&r| r as u64).collect::<Vec<_>>(),
                )
                .bool("cont", st.container.is_some());
            if let Some(cont) = &st.container {
                row = row
                    .u64("cvariant", cont.variant as u64)
                    .u64("cstate", encode_container_state(cont.state))
                    .u64("cbusy", u64::from(cont.busy))
                    .u64("cwarm", cont.warm_since_ms)
                    .u64("cepoch", cont.epoch);
            }
            push(&mut doc, row.finish());
        }

        for (k, nd) in rs.nodes.iter().enumerate() {
            let (hc, slow) = encode_health(&nd.health);
            push(
                &mut doc,
                RecordBuilder::new("node")
                    .usize("idx", k)
                    .u64("health", hc)
                    .f64("slow", slow)
                    .f64("cost", nd.cost_usd)
                    .f64_list("billed", &nd.billed_series)
                    .u64("down", nd.minutes_down)
                    .u64("migr_in", nd.migrations_in)
                    .u64("migr_out", nd.migrations_out)
                    .u64_list("pressure", rs.pressure_priority[k].counts())
                    .finish(),
            );
        }

        encode_ledger(&mut doc, &rs.ledger);
        Ok(doc)
    }
}

impl Runtime {
    /// Fingerprint of this runtime's workload identity (trace + families +
    /// config) — stamped into snapshots and checked on restore.
    fn workload_fingerprint(&self) -> u64 {
        fingerprint_of(&(&self.trace, &self.families, &self.config))
    }

    /// Resume a fleet run killed after [`RuntimeSession::snapshot`]: rebuild
    /// the session so that stepping it to completion is bit-identical to the
    /// uninterrupted run. `plan` and `fleet` must equal the snapshotted
    /// configuration (checked by fingerprint) and `policy` must be freshly
    /// constructed with the same arguments; its learned state is re-injected
    /// through [`KeepAlivePolicy::restore_state`]. Fails soft with a typed
    /// [`RecoverError`] on skew, corruption, or any mismatch.
    pub fn restore_fleet_session<'a>(
        &'a self,
        policy: &'a mut dyn KeepAlivePolicy,
        plan: &FaultPlan,
        fleet: FleetConfig,
        snapshot: &str,
    ) -> Result<RuntimeSession<'a>, RecoverError> {
        self.restore_impl(policy, plan, fleet, snapshot, None)
    }

    /// [`Self::restore_fleet_session`] with a [`TraceSink`] attached: events
    /// re-emitted by the resumed run continue the stream exactly where the
    /// killed run's journal left off.
    pub fn restore_fleet_session_traced<'a>(
        &'a self,
        policy: &'a mut dyn KeepAlivePolicy,
        plan: &FaultPlan,
        fleet: FleetConfig,
        snapshot: &str,
        sink: &'a mut dyn TraceSink,
    ) -> Result<RuntimeSession<'a>, RecoverError> {
        self.restore_impl(policy, plan, fleet, snapshot, Some(sink))
    }

    fn restore_impl<'a>(
        &'a self,
        policy: &'a mut dyn KeepAlivePolicy,
        plan: &FaultPlan,
        fleet: FleetConfig,
        snapshot: &str,
        sink: Option<&'a mut dyn TraceSink>,
    ) -> Result<RuntimeSession<'a>, RecoverError> {
        let c = |e: pulse_obs::ParseError| RecoverError::corrupt(e);
        let n = self.families.len();
        let mut lines = snapshot.lines().filter(|l| !l.trim().is_empty());
        let head = lines
            .next()
            .ok_or_else(|| RecoverError::corrupt("empty snapshot"))?;
        let head = Record::parse(head).map_err(c)?;
        if head.kind() != "snapshot" {
            return Err(RecoverError::corrupt(format!(
                "expected a snapshot header, got {:?}",
                head.kind()
            )));
        }
        let version = head.u64("version").map_err(c)?;
        if version != SNAPSHOT_VERSION {
            return Err(RecoverError::VersionSkew {
                found: version,
                supported: SNAPSHOT_VERSION,
            });
        }
        let engine = head.str("engine").map_err(c)?;
        if engine != "rt" {
            return Err(RecoverError::corrupt(format!(
                "snapshot is for the {engine:?} engine, not \"rt\""
            )));
        }
        check_fingerprint(
            "workload",
            head.u64("workload").map_err(c)?,
            self.workload_fingerprint(),
        )?;
        check_fingerprint("plan", head.u64("plan").map_err(c)?, fingerprint_of(plan))?;
        check_fingerprint(
            "fleet",
            head.u64("fleet").map_err(c)?,
            fingerprint_of(&fleet),
        )?;
        let expected_policy = head.str("policy").map_err(c)?;
        if expected_policy != policy.name() {
            return Err(RecoverError::PolicyMismatch {
                expected: expected_policy.to_string(),
                found: policy.name().to_string(),
            });
        }

        let mut sampler_rng = None;
        let mut injector = None;
        let mut policy_state = None;
        let mut demand_history = None;
        let mut summary = None;
        let mut ops = None;
        let mut reqs = None;
        let mut queue = None;
        let mut fns: Vec<Option<FnState>> = (0..n).map(|_| None).collect();
        let mut nodes: Vec<Option<(NodeRt, PriorityStructure)>> =
            (0..fleet.nodes.len()).map(|_| None).collect();
        // `for_families` so the rebuilt ledger carries the same incremental
        // index as a fresh session's; decoded rows repopulate it via
        // `replace`, deterministically rebuilding every cached total.
        let mut ledger = ScheduleLedger::for_families(&self.families);

        for line in lines {
            let rec = Record::parse(line).map_err(c)?;
            match rec.kind() {
                "rng" => {
                    if rec.bool("sampler_set").map_err(c)? {
                        let words: [u64; 4] = rec
                            .u64_list("sampler")
                            .map_err(c)?
                            .try_into()
                            .map_err(|_| RecoverError::corrupt("sampler cursor must be 4 words"))?;
                        sampler_rng = Some(SmallRng::from_state(words));
                    } else if self.config.stochastic_seed.is_some() {
                        return Err(RecoverError::corrupt(
                            "snapshot has no sampler cursor but the config is stochastic",
                        ));
                    }
                    let words: [u64; 4] = rec
                        .u64_list("injector")
                        .map_err(c)?
                        .try_into()
                        .map_err(|_| RecoverError::corrupt("injector cursor must be 4 words"))?;
                    injector = Some(FaultInjector::from_state(plan, words));
                }
                "policy" => policy_state = Some(rec.str("state").map_err(c)?.to_string()),
                "demand" => demand_history = Some(rec.f64_list("history").map_err(c)?),
                "summary" => summary = Some(decode_summary(&rec)?),
                "ops" => {
                    let code = rec.u64_list("code").map_err(c)?;
                    let a = rec.u64_list("a").map_err(c)?;
                    let b = rec.u64_list("b").map_err(c)?;
                    let d2 = rec.u64_list("c").map_err(c)?;
                    let d3 = rec.u64_list("d").map_err(c)?;
                    let x = rec.f64_list("x").map_err(c)?;
                    if [a.len(), b.len(), d2.len(), d3.len(), x.len()]
                        .iter()
                        .any(|&l| l != code.len())
                    {
                        return Err(RecoverError::corrupt("ops row lists disagree in length"));
                    }
                    let mut events = Vec::with_capacity(code.len());
                    for i in 0..code.len() {
                        events.push(decode_ops(code[i], [a[i], b[i], d2[i], d3[i]], x[i])?);
                    }
                    ops = Some(events);
                }
                "reqs" => reqs = Some(rec),
                "queue" => queue = Some(rec),
                "fn" => {
                    let f = rec.usize("func").map_err(c)?;
                    if f >= n {
                        return Err(RecoverError::corrupt(format!(
                            "fn row targets function {f} of {n}"
                        )));
                    }
                    let container = if rec.bool("cont").map_err(c)? {
                        Some(LiveContainer {
                            variant: rec.u64("cvariant").map_err(c)? as usize,
                            state: decode_container_state(rec.u64("cstate").map_err(c)?)?,
                            busy: u32::try_from(rec.u64("cbusy").map_err(c)?)
                                .map_err(RecoverError::corrupt)?,
                            warm_since_ms: rec.u64("cwarm").map_err(c)?,
                            epoch: rec.u64("cepoch").map_err(c)?,
                        })
                    } else {
                        None
                    };
                    fns[f] = Some(FnState {
                        container,
                        waiting: rec
                            .u64_list("waiting")
                            .map_err(c)?
                            .into_iter()
                            .map(|r| r as usize)
                            .collect::<VecDeque<usize>>(),
                        in_flight: u32::try_from(rec.u64("in_flight").map_err(c)?)
                            .map_err(RecoverError::corrupt)?,
                        executing: rec
                            .u64_list("executing")
                            .map_err(c)?
                            .into_iter()
                            .map(|r| r as usize)
                            .collect(),
                        node: rec.usize("node").map_err(c)?,
                        scheduled_minute: rec
                            .bool("sched_set")
                            .map_err(c)?
                            .then(|| rec.u64("sched").map_err(c))
                            .transpose()?,
                        epoch: rec.u64("epoch").map_err(c)?,
                        provision_attempts: u32::try_from(rec.u64("attempts").map_err(c)?)
                            .map_err(RecoverError::corrupt)?,
                    });
                }
                "node" => {
                    let k = rec.usize("idx").map_err(c)?;
                    if k >= fleet.nodes.len() {
                        return Err(RecoverError::corrupt(format!(
                            "node row targets node {k} of {}",
                            fleet.nodes.len()
                        )));
                    }
                    let pressure = rec.u64_list("pressure").map_err(c)?;
                    if pressure.len() != n {
                        return Err(RecoverError::corrupt(format!(
                            "node {k} carries {} pressure counts for {n} functions",
                            pressure.len()
                        )));
                    }
                    let mut nd = NodeRt::new(fleet.nodes[k].clone());
                    nd.health =
                        decode_health(rec.u64("health").map_err(c)?, rec.f64("slow").map_err(c)?)?;
                    nd.cost_usd = rec.f64("cost").map_err(c)?;
                    nd.billed_series = rec.f64_list("billed").map_err(c)?;
                    nd.minutes_down = rec.u64("down").map_err(c)?;
                    nd.migrations_in = rec.u64("migr_in").map_err(c)?;
                    nd.migrations_out = rec.u64("migr_out").map_err(c)?;
                    nodes[k] = Some((nd, PriorityStructure::from_counts(pressure)));
                }
                "sched" => decode_ledger_row(&mut ledger, &rec)?,
                other => {
                    return Err(RecoverError::corrupt(format!(
                        "unknown snapshot row kind {other:?}"
                    )))
                }
            }
        }

        let injector =
            injector.ok_or_else(|| RecoverError::corrupt("snapshot lacks an rng row"))?;
        let state =
            policy_state.ok_or_else(|| RecoverError::corrupt("snapshot lacks a policy row"))?;
        let demand_history =
            demand_history.ok_or_else(|| RecoverError::corrupt("snapshot lacks a demand row"))?;
        let mut summary =
            summary.ok_or_else(|| RecoverError::corrupt("snapshot lacks a summary row"))?;
        summary.ops_events =
            ops.ok_or_else(|| RecoverError::corrupt("snapshot lacks an ops row"))?;
        let reqs = reqs.ok_or_else(|| RecoverError::corrupt("snapshot lacks a reqs row"))?;
        let queue_rec = queue.ok_or_else(|| RecoverError::corrupt("snapshot lacks a queue row"))?;

        let arrival = reqs.u64_list("arrival").map_err(c)?;
        let done = reqs.u64_list("done").map_err(c)?;
        let warm = reqs.u64_list("warm").map_err(c)?;
        let acc = reqs.f64_list("acc").map_err(c)?;
        let failed = reqs.u64_list("failed").map_err(c)?;
        let variant = reqs.u64_list("variant").map_err(c)?;
        let retries = reqs.u64_list("retries").map_err(c)?;
        let terminal = reqs.u64_list("terminal").map_err(c)?;
        let gen = reqs.u64_list("gen").map_err(c)?;
        let len = arrival.len();
        if [
            done.len(),
            warm.len(),
            acc.len(),
            failed.len(),
            variant.len(),
            retries.len(),
            terminal.len(),
            gen.len(),
        ]
        .iter()
        .any(|&l| l != len)
        {
            return Err(RecoverError::corrupt("reqs row lists disagree in length"));
        }
        let records: Vec<RequestRecord> = (0..len)
            .map(|i| RequestRecord {
                arrival_ms: arrival[i],
                done_ms: done[i],
                warm: warm[i] != 0,
                accuracy_pct: acc[i],
                failed: failed[i] != 0,
            })
            .collect();
        let req_retries: Vec<u32> = retries
            .into_iter()
            .map(u32::try_from)
            .collect::<Result<_, _>>()
            .map_err(RecoverError::corrupt)?;

        let qt = queue_rec.u64_list("t").map_err(c)?;
        let qs = queue_rec.u64_list("s").map_err(c)?;
        let qk = queue_rec.u64_list("kind").map_err(c)?;
        let qa = queue_rec.u64_list("a").map_err(c)?;
        let qb = queue_rec.u64_list("b").map_err(c)?;
        let qc = queue_rec.u64_list("c").map_err(c)?;
        let qd = queue_rec.u64_list("d").map_err(c)?;
        if [qs.len(), qk.len(), qa.len(), qb.len(), qc.len(), qd.len()]
            .iter()
            .any(|&l| l != qt.len())
        {
            return Err(RecoverError::corrupt("queue row lists disagree in length"));
        }
        let mut entries = Vec::with_capacity(qt.len());
        for i in 0..qt.len() {
            entries.push((
                qt[i],
                qs[i],
                decode_event(qk[i], [qa[i], qb[i], qc[i], qd[i]])?,
            ));
        }
        let queue = EventQueue::from_parts(entries, head.u64("next_seq").map_err(c)?);

        let fns: Vec<FnState> = fns
            .into_iter()
            .enumerate()
            .map(|(f, st)| {
                st.ok_or_else(|| RecoverError::corrupt(format!("snapshot lacks the fn row of {f}")))
            })
            .collect::<Result<_, _>>()?;
        let (nodes, pressure_priority): (Vec<NodeRt>, Vec<PriorityStructure>) = nodes
            .into_iter()
            .enumerate()
            .map(|(k, nd)| {
                nd.ok_or_else(|| {
                    RecoverError::corrupt(format!("snapshot lacks the node row of {k}"))
                })
            })
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .unzip();
        let pending = fns.iter().map(|st| st.waiting.len()).sum();

        policy
            .restore_state(&state)
            .map_err(RecoverError::corrupt)?;

        let rs = RunState {
            queue,
            fns,
            ledger,
            records,
            req_warm_variant: variant.into_iter().map(|v| v as usize).collect(),
            req_retries,
            req_done: terminal.into_iter().map(|d| d != 0).collect(),
            req_gen: gen,
            summary,
            sampler: DurationSampler {
                rng: sampler_rng,
                profiler: Profiler::default(),
            },
            injector,
            cap: self.config.max_concurrency.unwrap_or(u32::MAX),
            pending,
            pressure_priority,
            nodes,
            minute_requests: head.u64("minute_requests").map_err(c)?,
            minute_violations: head.u64("minute_violations").map_err(c)?,
            last_billed_mb: head.f64("last_billed").map_err(c)?,
            prev_fallback: head.bool("fallback").map_err(c)?,
            sink,
        };
        Ok(RuntimeSession {
            rt: self,
            policy,
            fleet,
            rs,
            demand_history,
            invoked_this_minute: head.bool("invoked").map_err(c)?,
            fp: MinuteFootprint::default(),
            alive_scratch: Vec::new(),
            flatten_scratch: FlattenScratch::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::super::{Runtime, RuntimeConfig};
    use crate::cluster::NodeCapacity;
    use crate::fault::FaultPlan;
    use crate::fleet::FleetConfig;
    use crate::node::NodeFaultPlan;
    use pulse_core::types::PulseConfig;
    use pulse_sim::assignment::round_robin_assignment;
    use pulse_sim::policies::{OpenWhiskFixed, PulsePolicy};
    use pulse_sim::recover::RecoverError;

    const HORIZON: usize = 240;

    fn fixture() -> (
        Runtime,
        Vec<pulse_models::ModelFamily>,
        FaultPlan,
        FleetConfig,
    ) {
        let trace = pulse_trace::synth::azure_like_12_with_horizon(23, HORIZON);
        let fams = round_robin_assignment(&pulse_models::zoo::standard(), 12);
        let rt = Runtime::new(
            trace,
            fams.clone(),
            RuntimeConfig {
                stochastic_seed: Some(5),
                ..Default::default()
            },
        );
        let plan = FaultPlan::uniform(0.05, 0.05, 0.03, 42);
        let fleet = FleetConfig::uniform(3, NodeCapacity::gb(6.0))
            .with_node_faults(NodeFaultPlan::rolling_crashes(3, 10, 6, 30, HORIZON as u64));
        (rt, fams, plan, fleet)
    }

    fn pulse(fams: &[pulse_models::ModelFamily]) -> PulsePolicy {
        PulsePolicy::new(fams.to_vec(), PulseConfig::default())
    }

    #[test]
    fn kill_restore_resume_is_bit_identical_under_fleet_faults() {
        let (rt, fams, plan, fleet) = fixture();
        let mut whole_policy = pulse(&fams);
        let whole = rt.run_with_fleet(&mut whole_policy, &plan, &fleet);

        let mut probe_policy = pulse(&fams);
        let mut probe = rt.fleet_session(&mut probe_policy, &plan, fleet.clone());
        let mut total = 0usize;
        while probe.step().is_some() {
            total += 1;
        }
        drop(probe);

        for kill_after in [total / 7, (total * 4) / 5] {
            let mut p1 = pulse(&fams);
            let mut sess = rt.fleet_session(&mut p1, &plan, fleet.clone());
            for _ in 0..kill_after {
                assert!(sess.step().is_some(), "kill point beyond the run");
            }
            let snap = sess.snapshot().unwrap();
            drop(sess);

            let mut p2 = pulse(&fams);
            let mut resumed = rt
                .restore_fleet_session(&mut p2, &plan, fleet.clone(), &snap)
                .unwrap();
            while resumed.step().is_some() {}
            let resumed = resumed.finish();
            assert_eq!(
                whole.keepalive_cost_usd.to_bits(),
                resumed.keepalive_cost_usd.to_bits(),
                "cost diverged for kill point {kill_after}"
            );
            assert_eq!(
                format!("{whole:?}"),
                format!("{resumed:?}"),
                "summary diverged for kill point {kill_after}"
            );
        }
    }

    #[test]
    fn restore_fails_soft_on_skew_mismatch_and_garbage() {
        let (rt, fams, plan, fleet) = fixture();
        let mut p = pulse(&fams);
        let mut sess = rt.fleet_session(&mut p, &plan, fleet.clone());
        for _ in 0..200 {
            sess.step();
        }
        let snap = sess.snapshot().unwrap();
        drop(sess);

        let skewed = snap.replacen("\"version\":1", "\"version\":9", 1);
        let mut p2 = pulse(&fams);
        assert!(matches!(
            rt.restore_fleet_session(&mut p2, &plan, fleet.clone(), &skewed),
            Err(RecoverError::VersionSkew { found: 9, .. })
        ));

        let mut other = OpenWhiskFixed::new(&fams);
        assert!(matches!(
            rt.restore_fleet_session(&mut other, &plan, fleet.clone(), &snap),
            Err(RecoverError::PolicyMismatch { .. })
        ));

        let mut p3 = pulse(&fams);
        let other_plan = FaultPlan::uniform(0.05, 0.05, 0.03, 43);
        assert!(matches!(
            rt.restore_fleet_session(&mut p3, &other_plan, fleet.clone(), &snap),
            Err(RecoverError::ConfigMismatch { what: "plan", .. })
        ));

        let mut p4 = pulse(&fams);
        let other_fleet = FleetConfig::uniform(2, NodeCapacity::gb(6.0));
        assert!(matches!(
            rt.restore_fleet_session(&mut p4, &plan, other_fleet, &snap),
            Err(RecoverError::ConfigMismatch { what: "fleet", .. })
        ));

        for garbage in ["", "nonsense", "{\"type\":\"snapshot\"}"] {
            let mut p5 = pulse(&fams);
            assert!(
                rt.restore_fleet_session(&mut p5, &plan, fleet.clone(), garbage)
                    .is_err(),
                "garbage {garbage:?} must fail soft"
            );
        }
    }
}

//! Millisecond-resolution accounting: per-request latency records,
//! warm/cold counts, GB-millisecond keep-alive billing, and — under fault
//! injection — failure/retry/degradation/timeout counters with availability
//! and goodput. Under a cluster configuration (capacity / admission /
//! watchdog, see [`crate::cluster`]) the summary additionally counts shed
//! requests, pressure evictions/downgrades and fallback minutes, and carries
//! the ordered [`OpsEvent`] log.

use crate::cluster::OpsEvent;
use pulse_models::stats;

/// One served (or failed) request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestRecord {
    /// Arrival time, ms.
    pub arrival_ms: u64,
    /// Completion time, ms (time of final failure for failed requests).
    pub done_ms: u64,
    /// Whether the request hit a warm container *at arrival* (requests that
    /// later fail keep their arrival classification).
    pub warm: bool,
    /// Accuracy (percent) of the variant that served it. Reflects the
    /// delivered rung after any fault-driven ladder degradation.
    pub accuracy_pct: f64,
    /// The request never completed: provisioning exhausted the quality
    /// ladder, its execution crashed past the retry budget, or it timed out.
    pub failed: bool,
}

impl RequestRecord {
    /// End-to-end latency, ms (arrival → completion or final failure).
    pub fn latency_ms(&self) -> u64 {
        self.done_ms - self.arrival_ms
    }
}

/// Summary of one runtime execution.
#[derive(Debug, Clone, Default)]
pub struct RuntimeSummary {
    /// All requests, completion-ordered.
    pub records: Vec<RequestRecord>,
    /// Keep-alive cost, USD (billed per GB-ms of warm container time).
    pub keepalive_cost_usd: f64,
    /// Keep-alive memory sampled at each minute tick, MB.
    pub memory_at_tick_mb: Vec<f64>,
    /// Downgrade/evict actions taken by the policy's global layer.
    pub downgrades: u64,
    /// Provisioning attempts that failed (fault injection), including
    /// attempts that started as minute-boundary variant loads.
    pub provision_failures: u64,
    /// Provisioning retries scheduled after a failure (capped backoff).
    pub provision_retries: u64,
    /// Proactive minute-boundary variant loads that failed and fell back to
    /// the provisioning path.
    pub variant_load_failures: u64,
    /// Executions whose container crashed partway through.
    pub exec_crashes: u64,
    /// Request re-executions scheduled after a crash.
    pub request_retries: u64,
    /// Fault-driven ladder degradations: a variant's provisioning exhausted
    /// its retry budget and the runtime fell one rung (distinct from the
    /// policy-initiated `downgrades`).
    pub degradations: u64,
    /// Waiting requests re-pointed to a lower rung by a degradation.
    pub degraded_requests: u64,
    /// Accuracy given up by degradations, summed over re-pointed requests
    /// (percentage points).
    pub accuracy_penalty_pct: f64,
    /// Requests failed by the per-request SLO timeout.
    pub timeouts: u64,
    /// Containers reaped because the *cheapest* variant also failed to
    /// provision (the ladder offered no further fallback).
    pub reaped: u64,
    /// Arrivals shed by admission control (they count as failed requests in
    /// [`Self::availability`] and [`Self::goodput`] via their records).
    pub shed_requests: u64,
    /// Kept-alive models evicted by node-capacity pressure.
    pub evictions: u64,
    /// Kept-alive models downgraded one rung by node-capacity pressure
    /// (distinct from the policy-initiated `downgrades`).
    pub pressure_downgrades: u64,
    /// Minute ticks at which the keep-alive plan exceeded the node capacity
    /// and the enforcer had to act.
    pub pressure_minutes: u64,
    /// Minute ticks spent with the policy watchdog in its safe fallback.
    pub fallback_minutes: u64,
    /// Ordered operational log: capacity evictions/downgrades, sheds,
    /// watchdog transitions, and — under a fleet — node faults/recoveries
    /// and migrations.
    pub ops_events: Vec<OpsEvent>,
    /// Warm-container migrations performed by the fleet rebalancer.
    pub migrations: u64,
    /// Total charged migration pause, ms (each migration pauses its
    /// container for `MigrationConfig::pause_ms`).
    pub migration_pause_ms: u64,
    /// Node-crash fault windows that struck.
    pub node_crashes: u64,
    /// Node-partition fault windows that struck.
    pub node_partitions: u64,
    /// Node-straggler (degraded) fault windows that struck.
    pub node_stragglers: u64,
    /// Nodes that healed fully (no fault window covering them anymore).
    pub node_recoveries: u64,
    /// In-flight executions aborted by a node crash and re-dispatched
    /// through the retry ladder (or failed once the budget was spent).
    pub redispatched_requests: u64,
    /// Ledger slots evicted because no live node could host the function.
    pub node_loss_evictions: u64,
    /// Cold starts that failed outright because no live node could take the
    /// placement (counted as failed requests).
    pub placement_failures: u64,
    /// Arrivals shed by the per-node admission bound (tier 2); also counted
    /// in [`Self::shed_requests`].
    pub node_shed_requests: u64,
    /// Per-node accounting, in node order. Always one entry per fleet node
    /// (a plain cluster run has exactly one, the implicit `node0`).
    pub node_summaries: Vec<NodeSummary>,
}

/// Per-node slice of a fleet run's accounting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeSummary {
    /// Node name (from its [`crate::node::NodeSpec`]).
    pub name: String,
    /// Keep-alive cost billed for memory held on this node, USD (already
    /// scaled by the node's price factor).
    pub keepalive_cost_usd: f64,
    /// This node's keep-alive memory at each minute tick, MB. Summing these
    /// across nodes reproduces `RuntimeSummary::memory_at_tick_mb` exactly.
    pub memory_at_tick_mb: Vec<f64>,
    /// Minute ticks this node spent crashed or partitioned.
    pub minutes_down: u64,
    /// Warm containers migrated onto this node.
    pub migrations_in: u64,
    /// Warm containers migrated off this node.
    pub migrations_out: u64,
}

impl NodeSummary {
    /// Peak keep-alive memory billed on this node, MB.
    pub fn peak_memory_mb(&self) -> f64 {
        stats::max(&self.memory_at_tick_mb)
    }
}

impl RuntimeSummary {
    /// Number of requests (served and failed).
    pub fn requests(&self) -> u64 {
        self.records.len() as u64
    }

    /// Warm-classified request count (classification at arrival).
    pub fn warm_starts(&self) -> u64 {
        self.records.iter().filter(|r| r.warm).count() as u64
    }

    /// Cold-started request count.
    pub fn cold_starts(&self) -> u64 {
        self.requests() - self.warm_starts()
    }

    /// Requests that completed successfully.
    pub fn successful_requests(&self) -> u64 {
        self.records.iter().filter(|r| !r.failed).count() as u64
    }

    /// Requests that never completed (ladder exhausted, crash-retry budget
    /// exhausted, or timed out).
    pub fn failed_requests(&self) -> u64 {
        self.requests() - self.successful_requests()
    }

    /// Fraction of requests that completed successfully; 1.0 with no
    /// traffic (an idle platform is trivially available).
    pub fn availability(&self) -> f64 {
        if self.records.is_empty() {
            1.0
        } else {
            self.successful_requests() as f64 / self.requests() as f64
        }
    }

    /// Fraction of *all* requests that completed successfully within
    /// `slo_ms` of arrival — the delivered-under-SLO share. 1.0 with no
    /// traffic.
    pub fn goodput(&self, slo_ms: u64) -> f64 {
        if self.records.is_empty() {
            return 1.0;
        }
        let good = self
            .records
            .iter()
            .filter(|r| !r.failed && r.latency_ms() <= slo_ms)
            .count();
        good as f64 / self.records.len() as f64
    }

    /// Total service time across successful requests, seconds (the minute
    /// engine's metric, for cross-validation).
    pub fn service_time_s(&self) -> f64 {
        self.records
            .iter()
            .filter(|r| !r.failed)
            .map(|r| r.latency_ms() as f64 / 1000.0)
            .sum()
    }

    /// Mean delivered accuracy over successful requests, percent.
    pub fn avg_accuracy_pct(&self) -> f64 {
        let ok: Vec<f64> = self
            .records
            .iter()
            .filter(|r| !r.failed)
            .map(|r| r.accuracy_pct)
            .collect();
        stats::mean(&ok)
    }

    /// Latencies of successful requests (failed requests have no meaningful
    /// completion latency).
    fn latencies(&self) -> Vec<f64> {
        self.records
            .iter()
            .filter(|r| !r.failed)
            .map(|r| r.latency_ms() as f64)
            .collect()
    }

    /// Median request latency over successful requests, ms. Explicitly 0.0
    /// when no request completed (no reliance on empty-slice behaviour of
    /// the percentile helper).
    pub fn latency_p50_ms(&self) -> f64 {
        self.latency_percentile_ms(50.0)
    }

    /// Tail (p99) request latency over successful requests, ms; 0.0 when no
    /// request completed.
    pub fn latency_p99_ms(&self) -> f64 {
        self.latency_percentile_ms(99.0)
    }

    /// Latency percentile `p` in `[0, 100]` over successful requests; 0.0
    /// when no request completed. An out-of-range `p` is a caller bug
    /// (asserted in debug builds) and is clamped into range in release so
    /// the helper's silent index-clamp can never be reached with a
    /// nonsensical rank.
    pub fn latency_percentile_ms(&self, p: f64) -> f64 {
        debug_assert!(
            (0.0..=100.0).contains(&p),
            "percentile {p} outside [0, 100]"
        );
        let p = p.clamp(0.0, 100.0);
        let xs = self.latencies();
        if xs.is_empty() {
            return 0.0;
        }
        stats::percentile(&xs, p)
    }

    /// Peak sampled keep-alive memory, MB.
    pub fn peak_memory_mb(&self) -> f64 {
        stats::max(&self.memory_at_tick_mb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary() -> RuntimeSummary {
        RuntimeSummary {
            records: vec![
                RequestRecord {
                    arrival_ms: 0,
                    done_ms: 1000,
                    warm: false,
                    accuracy_pct: 80.0,
                    failed: false,
                },
                RequestRecord {
                    arrival_ms: 500,
                    done_ms: 700,
                    warm: true,
                    accuracy_pct: 90.0,
                    failed: false,
                },
                RequestRecord {
                    arrival_ms: 900,
                    done_ms: 1100,
                    warm: true,
                    accuracy_pct: 90.0,
                    failed: false,
                },
            ],
            keepalive_cost_usd: 0.5,
            memory_at_tick_mb: vec![100.0, 300.0, 200.0],
            downgrades: 2,
            ..Default::default()
        }
    }

    #[test]
    fn counts_and_sums() {
        let s = summary();
        assert_eq!(s.requests(), 3);
        assert_eq!(s.warm_starts(), 2);
        assert_eq!(s.cold_starts(), 1);
        assert!((s.service_time_s() - (1.0 + 0.2 + 0.2)).abs() < 1e-12);
        assert!((s.avg_accuracy_pct() - (80.0 + 90.0 + 90.0) / 3.0).abs() < 1e-12);
        assert_eq!(s.peak_memory_mb(), 300.0);
        assert_eq!(s.failed_requests(), 0);
        assert_eq!(s.availability(), 1.0);
    }

    #[test]
    fn latency_percentiles_ordered() {
        let s = summary();
        assert!(s.latency_p50_ms() <= s.latency_p99_ms());
        assert!(s.latency_p50_ms() >= 200.0);
    }

    #[test]
    fn out_of_range_percentile_is_rejected_or_clamped() {
        let s = summary();
        for p in [-1.0, 150.0] {
            if cfg!(debug_assertions) {
                // Debug builds call the bug out.
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    s.latency_percentile_ms(p)
                }));
                assert!(r.is_err(), "p={p} must trip the debug assertion");
            } else {
                // Release builds clamp to the nearest valid rank.
                let clamped = s.latency_percentile_ms(p);
                let expected = s.latency_percentile_ms(p.clamp(0.0, 100.0));
                assert_eq!(clamped.to_bits(), expected.to_bits(), "p={p}");
            }
        }
    }

    #[test]
    fn boundary_percentiles_are_valid() {
        let s = summary();
        assert_eq!(s.latency_percentile_ms(0.0), 200.0);
        assert_eq!(s.latency_percentile_ms(100.0), 1000.0);
    }

    #[test]
    fn empty_summary_is_zero() {
        let s = RuntimeSummary::default();
        assert_eq!(s.requests(), 0);
        assert_eq!(s.avg_accuracy_pct(), 0.0);
        assert_eq!(s.latency_p50_ms(), 0.0);
        assert_eq!(s.peak_memory_mb(), 0.0);
    }

    #[test]
    fn zero_request_percentiles_are_explicitly_zero() {
        // The zero-request case must not depend on the stats helper's
        // empty-slice convention: p50/p99/any-p all report 0.0 directly.
        let s = RuntimeSummary::default();
        assert_eq!(s.latency_p50_ms(), 0.0);
        assert_eq!(s.latency_p99_ms(), 0.0);
        assert_eq!(s.latency_percentile_ms(0.0), 0.0);
        assert_eq!(s.latency_percentile_ms(100.0), 0.0);
        assert_eq!(s.availability(), 1.0, "idle platform is available");
        assert_eq!(s.goodput(1), 1.0);
    }

    #[test]
    fn all_failed_percentiles_are_zero_too() {
        // Records exist but none completed: latency percentiles must be 0.0
        // (only successful requests have completion latencies), while
        // availability reports the outage.
        let s = RuntimeSummary {
            records: vec![RequestRecord {
                arrival_ms: 0,
                done_ms: 9_000,
                warm: false,
                accuracy_pct: 80.0,
                failed: true,
            }],
            ..Default::default()
        };
        assert_eq!(s.latency_p50_ms(), 0.0);
        assert_eq!(s.latency_p99_ms(), 0.0);
        assert_eq!(s.availability(), 0.0);
        assert_eq!(s.successful_requests(), 0);
        assert_eq!(s.failed_requests(), 1);
        assert_eq!(s.avg_accuracy_pct(), 0.0);
        assert_eq!(s.service_time_s(), 0.0);
    }

    #[test]
    fn failed_and_slow_requests_reduce_goodput() {
        let mut s = summary();
        s.records.push(RequestRecord {
            arrival_ms: 0,
            done_ms: 60_000,
            warm: true,
            accuracy_pct: 90.0,
            failed: true,
        });
        assert!((s.availability() - 0.75).abs() < 1e-12);
        // SLO 500 ms: of the three successes, only the 200 ms ones qualify.
        assert!((s.goodput(500) - 0.5).abs() < 1e-12);
        // SLO 1 s: all three successes qualify.
        assert!((s.goodput(1_000) - 0.75).abs() < 1e-12);
    }
}

//! Millisecond-resolution accounting: per-request latency records,
//! warm/cold counts, GB-millisecond keep-alive billing.

use pulse_models::stats;

/// One served request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestRecord {
    /// Arrival time, ms.
    pub arrival_ms: u64,
    /// Completion time, ms.
    pub done_ms: u64,
    /// Whether the request hit a warm container.
    pub warm: bool,
    /// Accuracy (percent) of the variant that served it.
    pub accuracy_pct: f64,
}

impl RequestRecord {
    /// End-to-end latency, ms.
    pub fn latency_ms(&self) -> u64 {
        self.done_ms - self.arrival_ms
    }
}

/// Summary of one runtime execution.
#[derive(Debug, Clone, Default)]
pub struct RuntimeSummary {
    /// All served requests, completion-ordered.
    pub records: Vec<RequestRecord>,
    /// Keep-alive cost, USD (billed per GB-ms of warm container time).
    pub keepalive_cost_usd: f64,
    /// Keep-alive memory sampled at each minute tick, MB.
    pub memory_at_tick_mb: Vec<f64>,
    /// Downgrade/evict actions taken by the policy's global layer.
    pub downgrades: u64,
}

impl RuntimeSummary {
    /// Number of requests served.
    pub fn requests(&self) -> u64 {
        self.records.len() as u64
    }

    /// Warm-served request count.
    pub fn warm_starts(&self) -> u64 {
        self.records.iter().filter(|r| r.warm).count() as u64
    }

    /// Cold-started request count.
    pub fn cold_starts(&self) -> u64 {
        self.requests() - self.warm_starts()
    }

    /// Total service time across requests, seconds (the minute engine's
    /// metric, for cross-validation).
    pub fn service_time_s(&self) -> f64 {
        self.records
            .iter()
            .map(|r| r.latency_ms() as f64 / 1000.0)
            .sum()
    }

    /// Mean delivered accuracy, percent.
    pub fn avg_accuracy_pct(&self) -> f64 {
        if self.records.is_empty() {
            0.0
        } else {
            self.records.iter().map(|r| r.accuracy_pct).sum::<f64>() / self.records.len() as f64
        }
    }

    fn latencies(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.latency_ms() as f64).collect()
    }

    /// Median request latency, ms.
    pub fn latency_p50_ms(&self) -> f64 {
        stats::percentile(&self.latencies(), 50.0)
    }

    /// Tail (p99) request latency, ms.
    pub fn latency_p99_ms(&self) -> f64 {
        stats::percentile(&self.latencies(), 99.0)
    }

    /// Peak sampled keep-alive memory, MB.
    pub fn peak_memory_mb(&self) -> f64 {
        self.memory_at_tick_mb
            .iter()
            .copied()
            .fold(0.0f64, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary() -> RuntimeSummary {
        RuntimeSummary {
            records: vec![
                RequestRecord {
                    arrival_ms: 0,
                    done_ms: 1000,
                    warm: false,
                    accuracy_pct: 80.0,
                },
                RequestRecord {
                    arrival_ms: 500,
                    done_ms: 700,
                    warm: true,
                    accuracy_pct: 90.0,
                },
                RequestRecord {
                    arrival_ms: 900,
                    done_ms: 1100,
                    warm: true,
                    accuracy_pct: 90.0,
                },
            ],
            keepalive_cost_usd: 0.5,
            memory_at_tick_mb: vec![100.0, 300.0, 200.0],
            downgrades: 2,
        }
    }

    #[test]
    fn counts_and_sums() {
        let s = summary();
        assert_eq!(s.requests(), 3);
        assert_eq!(s.warm_starts(), 2);
        assert_eq!(s.cold_starts(), 1);
        assert!((s.service_time_s() - (1.0 + 0.2 + 0.2)).abs() < 1e-12);
        assert!((s.avg_accuracy_pct() - (80.0 + 90.0 + 90.0) / 3.0).abs() < 1e-12);
        assert_eq!(s.peak_memory_mb(), 300.0);
    }

    #[test]
    fn latency_percentiles_ordered() {
        let s = summary();
        assert!(s.latency_p50_ms() <= s.latency_p99_ms());
        assert!(s.latency_p50_ms() >= 200.0);
    }

    #[test]
    fn empty_summary_is_zero() {
        let s = RuntimeSummary::default();
        assert_eq!(s.requests(), 0);
        assert_eq!(s.avg_accuracy_pct(), 0.0);
        assert_eq!(s.latency_p50_ms(), 0.0);
        assert_eq!(s.peak_memory_mb(), 0.0);
    }
}

//! The discrete-event core: a time-ordered event queue.
//!
//! A binary heap keyed by `(time_ms, sequence)` — the sequence number makes
//! event ordering fully deterministic when timestamps tie (heaps are not
//! stable), which the validation experiments rely on.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Runtime events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A request for `func` arrives (its id indexes the request table).
    Arrival {
        /// Target function.
        func: usize,
        /// Request id.
        req: usize,
    },
    /// A cold-started container of `func` finished provisioning + loading.
    ProvisionDone {
        /// Owning function.
        func: usize,
        /// Provisioning epoch — stale completions (the container was
        /// cancelled and re-provisioned meanwhile) are ignored.
        epoch: u64,
    },
    /// A request finished executing.
    ExecDone {
        /// Owning function.
        func: usize,
        /// Request id.
        req: usize,
        /// Execution generation of the request when it was started — a node
        /// crash aborts in-flight work by bumping the generation, so stale
        /// completions are ignored. Always `0` outside node-fault runs.
        gen: u64,
    },
    /// A provisioning attempt failed (fault injection). Same staleness
    /// semantics as [`Event::ProvisionDone`].
    ProvisionFailed {
        /// Owning function.
        func: usize,
        /// Provisioning epoch of the failed attempt.
        epoch: u64,
    },
    /// The container crashed partway through executing `req` (fault
    /// injection).
    ExecFailed {
        /// Owning function.
        func: usize,
        /// Request whose execution was aborted.
        req: usize,
        /// Epoch of the container that was executing — if the function has
        /// since swapped containers, the replacement is not reaped.
        epoch: u64,
        /// Execution generation (see [`Event::ExecDone::gen`]).
        gen: u64,
    },
    /// `req` exceeded its per-request SLO budget (fault plans with a
    /// timeout). Ignored when the request already completed.
    RequestTimeout {
        /// Owning function.
        func: usize,
        /// Request id.
        req: usize,
    },
    /// Re-attempt `req` after a crash-retry backoff.
    RetryRequest {
        /// Owning function.
        func: usize,
        /// Request id.
        req: usize,
    },
    /// A minute boundary: apply keep-alive schedules, run the policy's
    /// cross-function adjustment, meter memory.
    MinuteTick {
        /// The minute that begins at this tick.
        minute: u64,
    },
    /// A node-level fault strikes (fleet runs only). Scheduled right after
    /// the tick of its minute, before that minute's arrivals.
    NodeDown {
        /// Affected node.
        node: usize,
        /// Index of the fault window in the fleet's `NodeFaultPlan`.
        fault: usize,
    },
    /// A node-level fault window ends (fleet runs only). The node's health
    /// is recomputed from the plan — overlapping windows may keep it down.
    NodeRecovered {
        /// Affected node.
        node: usize,
        /// Index of the fault window that just expired.
        fault: usize,
    },
    /// A warm-container migration's charged pause elapsed: the container is
    /// serving again on its new node. Same staleness semantics as
    /// [`Event::ProvisionDone`].
    MigrationDone {
        /// Owning function.
        func: usize,
        /// Epoch stamped when the migration began.
        epoch: u64,
    },
}

/// Deterministic time-ordered queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<(u64, u64, EventKeyed)>>,
    seq: u64,
}

/// Wrapper giving `Event` a total order for the heap (order among equal
/// timestamps is by insertion sequence; the event payload order is never
/// consulted, but `Ord` must exist).
#[derive(Debug, Clone, PartialEq, Eq)]
struct EventKeyed(Event);

impl PartialOrd for EventKeyed {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for EventKeyed {
    fn cmp(&self, _other: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl EventQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `event` at absolute time `at_ms`.
    pub fn push(&mut self, at_ms: u64, event: Event) {
        self.heap
            .push(Reverse((at_ms, self.seq, EventKeyed(event))));
        self.seq += 1;
    }

    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<(u64, Event)> {
        self.heap.pop().map(|Reverse((t, _, e))| (t, e.0))
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse((t, ..))| *t)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The pending events as `(time_ms, seq, event)` triples sorted by the
    /// heap's total order, for checkpointing. Together with
    /// [`Self::next_seq`] and [`Self::from_parts`] this round-trips the
    /// queue: the key multiset and sequence counter fully determine every
    /// future pop.
    pub fn snapshot_entries(&self) -> Vec<(u64, u64, Event)> {
        let mut entries: Vec<(u64, u64, Event)> = self
            .heap
            .iter()
            .map(|Reverse((t, s, e))| (*t, *s, e.0.clone()))
            .collect();
        entries.sort_by_key(|&(t, s, _)| (t, s));
        entries
    }

    /// The sequence number the next [`Self::push`] will stamp.
    pub fn next_seq(&self) -> u64 {
        self.seq
    }

    /// Rebuild a queue from a previously captured [`Self::snapshot_entries`]
    /// list and [`Self::next_seq`] counter.
    pub fn from_parts(entries: Vec<(u64, u64, Event)>, next_seq: u64) -> Self {
        Self {
            heap: entries
                .into_iter()
                .map(|(t, s, e)| Reverse((t, s, EventKeyed(e))))
                .collect(),
            seq: next_seq,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, Event::MinuteTick { minute: 0 });
        q.push(10, Event::Arrival { func: 0, req: 0 });
        q.push(
            20,
            Event::ExecDone {
                func: 0,
                req: 0,
                gen: 0,
            },
        );
        let times: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(5, Event::Arrival { func: 1, req: 1 });
        q.push(5, Event::Arrival { func: 2, req: 2 });
        q.push(5, Event::Arrival { func: 3, req: 3 });
        let funcs: Vec<usize> = std::iter::from_fn(|| {
            q.pop().map(|(_, e)| match e {
                Event::Arrival { func, .. } => func,
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(funcs, vec![1, 2, 3]);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(7, Event::MinuteTick { minute: 0 });
        assert_eq!(q.peek_time(), Some(7));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn snapshot_round_trip_preserves_pop_order() {
        let mut q = EventQueue::new();
        q.push(5, Event::Arrival { func: 1, req: 1 });
        q.push(5, Event::Arrival { func: 2, req: 2 });
        q.push(3, Event::MinuteTick { minute: 0 });
        q.push(9, Event::NodeDown { node: 1, fault: 0 });
        q.pop(); // drop the tick so seq and contents diverge
        let entries = q.snapshot_entries();
        assert_eq!(entries.len(), 3);
        let mut rebuilt = EventQueue::from_parts(entries, q.next_seq());
        rebuilt.push(5, Event::Arrival { func: 9, req: 9 });
        q.push(5, Event::Arrival { func: 9, req: 9 });
        loop {
            let (a, b) = (q.pop(), rebuilt.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::new();
        q.push(10, Event::MinuteTick { minute: 1 });
        q.push(5, Event::MinuteTick { minute: 0 });
        assert_eq!(q.pop().unwrap().0, 5);
        q.push(7, Event::MinuteTick { minute: 2 });
        assert_eq!(q.pop().unwrap().0, 7);
        assert_eq!(q.pop().unwrap().0, 10);
    }
}

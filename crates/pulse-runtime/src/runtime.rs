//! The event-driven runtime loop.
//!
//! The loop is a steppable pipeline: [`Runtime::session`] builds a
//! [`RuntimeSession`] whose [`RuntimeSession::step`] processes exactly one
//! event (a minute tick runs observe → adjust → capacity-enforcement →
//! materialize/bill, in that order), and [`Runtime::run`] /
//! [`Runtime::run_with_faults`] / [`Runtime::run_with_cluster`] are all the
//! same `while step()` loop over one implementation. Schedule state lives in
//! the shared [`pulse_core::schedule::ScheduleLedger`] — the same substrate
//! the minute engine drives — so downgrade application, footprint metering
//! and billing are defined once for both engines.
//!
//! Semantics are aligned with `pulse_sim::Simulator` so the two engines can
//! be cross-validated (see the `validation` integration tests and
//! `pulse-exp validate`):
//!
//! * a **minute tick** fires at each minute boundary *before* that minute's
//!   arrivals: keep-alive schedules decide which container (if any) each
//!   function holds during the minute, the policy's cross-function layer may
//!   downgrade/evict (applied to this minute only), and keep-alive memory is
//!   billed from the post-adjustment schedule footprint;
//! * an **arrival** is served warm when its function holds a container
//!   (warm, executing, or still provisioning from an earlier cold start —
//!   in the last case the request queues until the container is ready, and
//!   only the request that *triggered* the provisioning counts as cold);
//! * each function's **schedule** is replaced by the policy's plan at the
//!   first arrival of every active minute, exactly as in the minute engine;
//! * variant swaps at minute boundaries are **proactive**: the plan is known
//!   a minute ahead, so the incoming variant is warm at the tick (the same
//!   assumption the minute engine — and the paper's accounting — makes).
//!
//! What this engine adds over the minute engine: millisecond latency
//! accounting (queueing behind provisioning, optional per-container
//! concurrency limits), a per-request record stream, and — via
//! [`Runtime::run_with_faults`] — a fault-injection and resilience layer.
//!
//! # Fault semantics
//!
//! Under a non-trivial [`FaultPlan`]:
//!
//! * a **provisioning attempt** (cold start, retry, or a failed proactive
//!   variant load) may fail after its full provisioning duration; failed
//!   attempts are retried with capped exponential backoff + jitter, and
//!   after `max_retries` retries the runtime **degrades one ladder rung**
//!   (re-pointing queued requests at the lower variant and recording the
//!   accuracy penalty). Only when the cheapest variant also exhausts its
//!   retries is the container reaped and its queued requests failed;
//! * a **proactive variant load** at a minute tick may fail, demoting the
//!   pre-warm to the provisioning path above (the minute is still billed
//!   from the schedule footprint, exactly as in the fault-free engine —
//!   billing is schedule-driven and crashes can never double-bill);
//! * an **execution** may crash its container partway through: the
//!   container is reaped, sibling in-flight executions run to completion
//!   (their results were already materialized), queued requests wait for a
//!   replacement container provisioned on the spot, and the crashed request
//!   is retried with backoff up to `max_retries` times before failing;
//! * with a **request timeout** configured, a request that has not
//!   completed within its budget is failed and counted as a timeout; an
//!   execution already in flight runs on (billing is unaffected) but its
//!   record keeps the timeout classification.
//!
//! Faults draw from a dedicated seeded RNG ([`FaultInjector`]) that never
//! touches the duration sampler's stream, so the same
//! `RuntimeConfig.stochastic_seed` + `FaultPlan` reproduce identical
//! failure sequences, retry schedules and summary counters; and
//! [`FaultPlan::none`] consumes no randomness and schedules no extra
//! events, making `run_with_faults(policy, &FaultPlan::none())`
//! bit-identical to [`Runtime::run`].

use crate::cluster::{ClusterConfig, OpsEvent};
use crate::container::{ContainerState, LiveContainer};
use crate::event::{Event, EventQueue};
use crate::fault::{FaultInjector, FaultPlan};
use crate::fleet::FleetConfig;
use crate::metrics::{NodeSummary, RequestRecord, RuntimeSummary};
use crate::node::{NodeFaultKind, NodeHealth, NodeSpec};
use crate::MS_PER_MINUTE;
use pulse_core::global::{flatten_peak_scratch, AliveModel, DowngradeAction, FlattenScratch};
use pulse_core::priority::PriorityStructure;
use pulse_core::schedule::{begins_keepalive_period, MinuteFootprint, ScheduleLedger};
use pulse_models::{CostModel, ModelFamily, VariantId};
use pulse_obs::{emit, ActionSource, ObsEvent, TraceSink};
use pulse_sim::policy::{KeepAlivePolicy, MinuteObservation};
use pulse_trace::Trace;
use std::collections::VecDeque;

// Checkpoint/restore lives in a child module so it can reach the private run
// state without widening any visibility (`src/snapshot.rs`, remapped here).
#[path = "snapshot.rs"]
mod snapshot;

/// Runtime tunables.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Max in-flight requests per container; `None` = unbounded (the
    /// minute engine's implicit assumption).
    pub max_concurrency: Option<u32>,
    /// Cost model for keep-alive billing.
    pub cost: CostModel,
    /// When set, execution and provisioning durations are drawn from the
    /// calibrated lognormal profiler (seeded here) instead of being
    /// deterministic means — the measured-style jitter of real Lambda runs.
    pub stochastic_seed: Option<u64>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            max_concurrency: None,
            cost: CostModel::aws_lambda(),
            stochastic_seed: None,
        }
    }
}

/// The millisecond-resolution platform.
#[derive(Debug, Clone)]
pub struct Runtime {
    trace: Trace,
    families: Vec<ModelFamily>,
    config: RuntimeConfig,
}

/// Draws execution/provisioning durations — deterministic means, or the
/// calibrated lognormal jitter when a seed is configured.
struct DurationSampler {
    rng: Option<rand::rngs::SmallRng>,
    profiler: pulse_models::Profiler,
}

impl DurationSampler {
    fn new(seed: Option<u64>) -> Self {
        use rand::SeedableRng;
        Self {
            rng: seed.map(rand::rngs::SmallRng::seed_from_u64),
            profiler: pulse_models::Profiler::default(),
        }
    }

    fn warm_ms(&mut self, spec: &pulse_models::VariantSpec) -> u64 {
        let s = match self.rng.as_mut() {
            Some(rng) => self.profiler.sample_warm(spec, rng),
            None => spec.warm_service_time_s,
        };
        ((s * 1000.0).round() as u64).max(1)
    }

    fn provision_ms(&mut self, spec: &pulse_models::VariantSpec) -> u64 {
        let s = match self.rng.as_mut() {
            Some(rng) => self.profiler.sample_cold_start(spec, rng),
            None => spec.cold_start_s,
        };
        (s * 1000.0).round() as u64
    }
}

struct FnState {
    container: Option<LiveContainer>,
    /// Requests waiting for provisioning or a concurrency slot.
    waiting: VecDeque<usize>,
    /// In-flight request count (for the concurrency cap).
    in_flight: u32,
    /// Requests currently executing (so a node crash can abort them).
    executing: Vec<usize>,
    /// Node hosting this function's container (index into the fleet).
    node: usize,
    /// Last minute for which the policy was asked for a schedule.
    scheduled_minute: Option<u64>,
    epoch: u64,
    /// Failed provisioning attempts of the current rung (fault injection).
    provision_attempts: u32,
}

/// Live per-node state of a fleet run.
struct NodeRt {
    spec: NodeSpec,
    health: NodeHealth,
    /// Keep-alive cost billed to this node (price-factor scaled), USD.
    cost_usd: f64,
    /// This node's billed footprint per minute tick, MB.
    billed_series: Vec<f64>,
    /// Ticks spent crashed or partitioned.
    minutes_down: u64,
    migrations_in: u64,
    migrations_out: u64,
}

impl NodeRt {
    fn new(spec: NodeSpec) -> Self {
        Self {
            spec,
            health: NodeHealth::Up,
            cost_usd: 0.0,
            billed_series: Vec::new(),
            minutes_down: 0,
            migrations_in: 0,
            migrations_out: 0,
        }
    }

    /// Combined duration multiplier currently in force on this node.
    fn time_factor(&self) -> f64 {
        self.spec.speed_factor * self.health.time_scale()
    }
}

/// Scale a sampled duration by a node's time factor. Exactly the identity
/// when the factor is exactly `1.0` (the nominal-node fast path the 1-node
/// bit-identity contract relies on).
fn scale_ms(ms: u64, factor: f64) -> u64 {
    if factor.to_bits() == 1.0f64.to_bits() {
        ms
    } else {
        ((ms as f64) * factor).round().max(1.0) as u64
    }
}

/// Millisecond timestamps at which `count` same-minute invocations of a
/// function are admitted: spread evenly across the minute with a fixed
/// stride, offset ≥ 1 ms so the minute tick always precedes them. This is
/// the *only* trace-to-timestamp expansion in the repo — [`Runtime`] seeds
/// its sessions with it, and external admitters (the `pulse-serve` load
/// generator) reuse it so a binned trace and its expanded stream describe
/// the same run bit-for-bit.
pub fn arrival_times_in_minute(minute: u64, count: u64) -> impl Iterator<Item = u64> {
    let stride = (MS_PER_MINUTE - 2).checked_div(count).unwrap_or(0);
    (0..count).map(move |k| minute * MS_PER_MINUTE + 1 + k * stride)
}

/// The mutable machinery of one execution: event queue, per-function and
/// per-request state, samplers, and the summary being accumulated. Grouping
/// it lets the fault handlers be methods instead of 10-argument functions.
struct RunState<'a> {
    queue: EventQueue,
    fns: Vec<FnState>,
    /// Keep-alive schedules, one per function — the shared billing/downgrade
    /// substrate (same semantics as the minute engine's ledger).
    ledger: ScheduleLedger,
    records: Vec<RequestRecord>,
    /// Variant serving each request (re-pointed on ladder degradation).
    req_warm_variant: Vec<VariantId>,
    /// Crash retries consumed per request.
    req_retries: Vec<u32>,
    /// Whether each request reached a terminal state (done or failed).
    req_done: Vec<bool>,
    /// Execution generation per request: bumped when a node crash aborts the
    /// in-flight execution, so its already-queued completion is ignored.
    /// Never bumped outside node-fault runs (bit-identity contract).
    req_gen: Vec<u64>,
    summary: RuntimeSummary,
    sampler: DurationSampler,
    injector: FaultInjector,
    cap: u32,
    /// Requests currently waiting across all functions (for provisioning or
    /// a concurrency slot) — the backlog admission control bounds.
    pending: usize,
    /// Downgrade counts of the capacity enforcer, one structure per node
    /// (shields repeat victims, exactly as Algorithm 2's priority term does
    /// for policy peaks).
    pressure_priority: Vec<PriorityStructure>,
    /// Live node state, indexed like `FleetConfig::nodes`.
    nodes: Vec<NodeRt>,
    /// Arrivals observed since the last minute tick.
    minute_requests: u64,
    /// SLO violations (cold arrivals, terminal failures, sheds) since the
    /// last minute tick.
    minute_violations: u64,
    /// Keep-alive memory billed at the last minute tick, MB.
    last_billed_mb: f64,
    /// Watchdog state at the last tick (for transition events).
    prev_fallback: bool,
    /// Attached observer, if any. Disabled/absent sinks cost one branch per
    /// emission point and change nothing else (the transparency contract).
    sink: Option<&'a mut dyn TraceSink>,
}

impl RunState<'_> {
    /// Combined duration multiplier of the node hosting `func`.
    fn node_time_factor(&self, func: usize) -> f64 {
        self.nodes[self.fns[func].node].time_factor()
    }

    /// Can the node currently hosting `func` accept new work?
    fn node_ok(&self, func: usize) -> bool {
        self.nodes[self.fns[func].node].health.accepts_work()
    }

    /// Requests waiting across the functions hosted on `node` (the per-node
    /// backlog the tier-2 admission bound applies to).
    fn node_waiting(&self, node: usize) -> usize {
        self.fns
            .iter()
            .filter(|st| st.node == node)
            .map(|st| st.waiting.len())
            .sum()
    }

    /// Place a cold start needing `needed_mb` MB: the live node with the
    /// best net utility — capacity headroom (after the placement) discounted
    /// by the node's price and speed factors, ties to the lowest index.
    /// `None` only when no node accepts work.
    fn place_for(&self, families: &[ModelFamily], needed_mb: f64) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (k, node) in self.nodes.iter().enumerate() {
            if !node.health.accepts_work() {
                continue;
            }
            let headroom = match node.spec.capacity.keepalive_mb {
                Some(cap) if cap > 0.0 => {
                    let used = self.node_used_mb(families, k);
                    ((cap - used - needed_mb) / cap).max(0.0)
                }
                Some(_) => 0.0,
                None => 1.0,
            };
            let utility = (1.0 + headroom) / (node.spec.price_factor * node.spec.speed_factor);
            if best.is_none_or(|(_, bu)| utility > bu) {
                best = Some((k, utility));
            }
        }
        best.map(|(k, _)| k)
    }

    /// Best live node other than `exclude` with actual room for a
    /// `needed_mb` container (same net-utility score as
    /// [`Self::place_for`], but a node that would immediately be over its
    /// own cap is not a valid migration target — that would just move the
    /// pressure). `None` when nowhere fits.
    fn migration_target(
        &self,
        families: &[ModelFamily],
        needed_mb: f64,
        exclude: usize,
    ) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (k, node) in self.nodes.iter().enumerate() {
            if k == exclude || !node.health.accepts_work() {
                continue;
            }
            let headroom = match node.spec.capacity.keepalive_mb {
                Some(cap) if cap > 0.0 => {
                    let h = (cap - self.node_used_mb(families, k) - needed_mb) / cap;
                    if h < 0.0 {
                        continue;
                    }
                    h
                }
                Some(_) => continue,
                None => 1.0,
            };
            let utility = (1.0 + headroom) / (node.spec.price_factor * node.spec.speed_factor);
            if best.is_none_or(|(_, bu)| utility > bu) {
                best = Some((k, utility));
            }
        }
        best.map(|(k, _)| k)
    }

    /// Total footprint of the live containers currently hosted on `node`,
    /// MB.
    fn node_used_mb(&self, families: &[ModelFamily], node: usize) -> f64 {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, st)| st.node == node)
            .filter_map(|(f, st)| st.container.as_ref().map(|c| (f, c)))
            .map(|(f, c)| families[f].variant(c.variant).memory_mb)
            .sum()
    }

    /// Begin executing `req` on `func`'s warm container, drawing the
    /// execution duration and (under faults) a possible mid-execution crash.
    fn start_exec(&mut self, fam: &ModelFamily, func: usize, req: usize, now: u64) {
        self.fns[func].in_flight += 1;
        self.fns[func].executing.push(req);
        let mut epoch = 0;
        if let Some(c) = self.fns[func].container.as_mut() {
            c.begin_exec();
            epoch = c.epoch;
        }
        let v = self.req_warm_variant[req];
        let exec = scale_ms(
            self.sampler.warm_ms(fam.variant(v)),
            self.node_time_factor(func),
        );
        let gen = self.req_gen[req];
        if self.injector.exec_crashes(func, v) {
            let at = now + self.injector.crash_point_ms(exec);
            self.queue.push(
                at,
                Event::ExecFailed {
                    func,
                    req,
                    epoch,
                    gen,
                },
            );
        } else {
            self.queue
                .push(now + exec, Event::ExecDone { func, req, gen });
        }
    }

    /// Start provisioning variant `v` for `func` after `delay_ms` of
    /// backoff, drawing the provisioning duration and (under faults) the
    /// attempt's outcome. Bumps the epoch so stale completions are ignored.
    fn begin_provision(
        &mut self,
        fam: &ModelFamily,
        func: usize,
        v: VariantId,
        now: u64,
        delay_ms: u64,
    ) {
        let dur = scale_ms(
            self.sampler.provision_ms(fam.variant(v)),
            self.node_time_factor(func),
        );
        let ready = now + delay_ms + dur;
        let st = &mut self.fns[func];
        st.epoch += 1;
        st.container = Some(LiveContainer::provisioning(v, ready, st.epoch));
        let epoch = st.epoch;
        if self.injector.provision_fails(func, v) {
            self.queue
                .push(ready, Event::ProvisionFailed { func, epoch });
        } else {
            self.queue.push(ready, Event::ProvisionDone { func, epoch });
        }
    }

    /// Start as many waiting requests as the concurrency cap allows.
    fn drain_waiting(&mut self, fam: &ModelFamily, func: usize, now: u64) {
        let can_serve = self.fns[func]
            .container
            .as_ref()
            .is_some_and(|c| c.is_warm());
        if !can_serve {
            return;
        }
        while self.fns[func].in_flight < self.cap {
            let Some(req) = self.fns[func].waiting.pop_front() else {
                break;
            };
            self.pending -= 1;
            self.start_exec(fam, func, req, now);
        }
    }

    /// Mark `req` as terminally failed at `now`.
    fn fail_request(&mut self, req: usize, now: u64) {
        if self.req_done[req] {
            return;
        }
        self.req_done[req] = true;
        self.records[req].failed = true;
        self.records[req].done_ms = now;
        self.minute_violations += 1;
    }

    /// A provisioning attempt failed: retry with backoff, or — once the
    /// rung's retry budget is spent — degrade one ladder rung, reaping the
    /// container only when the cheapest variant is also out of retries.
    fn on_provision_failed(&mut self, fam: &ModelFamily, func: usize, epoch: u64, now: u64) {
        let Some(c) = self.fns[func].container.as_ref() else {
            return;
        };
        if c.epoch != epoch || c.state != ContainerState::Provisioning {
            return;
        }
        let v = c.variant;
        self.summary.provision_failures += 1;
        self.fns[func].provision_attempts += 1;
        let attempts = self.fns[func].provision_attempts;
        if attempts <= self.injector.plan().retry.max_retries {
            self.summary.provision_retries += 1;
            let backoff = self.injector.backoff_ms(attempts);
            self.begin_provision(fam, func, v, now, backoff);
        } else if let Some(lower) = fam.next_lower(v) {
            // Graceful degradation: Algorithm 2's downgrade move, applied as
            // a failure response — one rung down instead of failing requests.
            self.summary.degradations += 1;
            emit(&mut self.sink, || ObsEvent::Degrade {
                at_ms: now,
                func,
                from: v,
                to: lower,
            });
            let new_acc = fam.variant(lower).accuracy_pct;
            let waiting: Vec<usize> = self.fns[func].waiting.iter().copied().collect();
            for r in waiting {
                if self.req_warm_variant[r] != lower {
                    self.summary.degraded_requests += 1;
                    self.summary.accuracy_penalty_pct +=
                        (self.records[r].accuracy_pct - new_acc).max(0.0);
                    self.records[r].accuracy_pct = new_acc;
                    self.req_warm_variant[r] = lower;
                }
            }
            self.fns[func].provision_attempts = 0;
            self.begin_provision(fam, func, lower, now, 0);
        } else {
            // The cheapest variant failed too: the ladder is exhausted.
            self.summary.reaped += 1;
            emit(&mut self.sink, || ObsEvent::Reap { at_ms: now, func });
            if let Some(c) = self.fns[func].container.as_mut() {
                c.state = ContainerState::Reaped;
            }
            self.fns[func].container = None;
            self.fns[func].provision_attempts = 0;
            while let Some(r) = self.fns[func].waiting.pop_front() {
                self.pending -= 1;
                self.fail_request(r, now);
            }
        }
    }

    /// A container crashed mid-execution: reap it (unless already
    /// replaced), retry the aborted request with backoff, and re-provision
    /// for any queued requests.
    fn on_exec_failed(
        &mut self,
        fam: &ModelFamily,
        func: usize,
        req: usize,
        epoch: u64,
        gen: u64,
        now: u64,
    ) {
        if gen != self.req_gen[req] {
            return; // aborted by a node crash; the re-dispatch owns it now
        }
        self.summary.exec_crashes += 1;
        // A live-generation crash event implies an execution this function
        // started and never completed, so the slot count must be positive —
        // a zero here means a completion was double-counted somewhere
        // (crash-abort paths bump `req_gen`, so their stale events return
        // above). Assert in debug; saturate in release so a production run
        // degrades to a slot leak instead of a panic.
        debug_assert!(
            self.fns[func].in_flight > 0,
            "exec-crash completion for function {func} (request {req}) with no in-flight work — duplicate completion?"
        );
        self.fns[func].in_flight = self.fns[func].in_flight.saturating_sub(1);
        if let Some(pos) = self.fns[func].executing.iter().position(|&r| r == req) {
            self.fns[func].executing.swap_remove(pos);
        }
        let same_container = self.fns[func]
            .container
            .as_ref()
            .is_some_and(|c| c.epoch == epoch);
        if same_container {
            if let Some(c) = self.fns[func].container.as_mut() {
                c.state = ContainerState::Reaped;
            }
            self.fns[func].container = None;
        }
        if !self.req_done[req] {
            self.req_retries[req] += 1;
            if self.req_retries[req] <= self.injector.plan().retry.max_retries {
                self.summary.request_retries += 1;
                let backoff = self.injector.backoff_ms(self.req_retries[req]);
                self.queue
                    .push(now + backoff, Event::RetryRequest { func, req });
            } else {
                self.fail_request(req, now);
            }
        }
        // Queued requests lost their container: provision a replacement at
        // the rung they are assigned to.
        if self.fns[func].container.is_none() {
            if let Some(&front) = self.fns[func].waiting.front() {
                let v = self.req_warm_variant[front];
                self.fns[func].provision_attempts = 0;
                self.begin_provision(fam, func, v, now, 0);
            }
        }
    }

    /// Re-attempt a crashed request after its backoff.
    fn on_retry_request(&mut self, families: &[ModelFamily], func: usize, req: usize, now: u64) {
        if self.req_done[req] {
            return;
        }
        let fam = &families[func];
        let warm_variant = self.fns[func]
            .container
            .as_ref()
            .and_then(|c| c.is_warm().then_some(c.variant));
        match (warm_variant, self.fns[func].container.is_some()) {
            (Some(v), _) => {
                // The retried execution runs on whatever rung is now live.
                if self.req_warm_variant[req] != v {
                    self.records[req].accuracy_pct = fam.variant(v).accuracy_pct;
                    self.req_warm_variant[req] = v;
                }
                if self.fns[func].in_flight < self.cap {
                    self.start_exec(fam, func, req, now);
                } else {
                    self.pending += 1;
                    self.fns[func].waiting.push_back(req);
                }
            }
            (None, true) => {
                self.pending += 1;
                self.fns[func].waiting.push_back(req);
            }
            (None, false) => {
                let v = self.req_warm_variant[req];
                if !self.node_ok(func) {
                    // The assigned node is down: re-place before
                    // provisioning, or fail the retry if no node is live.
                    match self.place_for(families, fam.variant(v).memory_mb) {
                        Some(k) => self.fns[func].node = k,
                        None => {
                            self.summary.placement_failures += 1;
                            self.fail_request(req, now);
                            return;
                        }
                    }
                }
                self.pending += 1;
                self.fns[func].waiting.push_back(req);
                self.fns[func].provision_attempts = 0;
                self.begin_provision(fam, func, v, now, 0);
            }
        }
    }

    /// A request blew its SLO budget: fail it and drop it from the waiting
    /// queue. An execution already in flight runs on; its completion event
    /// only does container bookkeeping.
    fn on_timeout(&mut self, func: usize, req: usize, now: u64) {
        if self.req_done[req] {
            return;
        }
        self.summary.timeouts += 1;
        self.fail_request(req, now);
        if let Some(pos) = self.fns[func].waiting.iter().position(|&r| r == req) {
            self.fns[func].waiting.remove(pos);
            self.pending -= 1;
        }
    }
}

impl Runtime {
    /// Build over a trace and a per-function family assignment.
    pub fn new(trace: Trace, families: Vec<ModelFamily>, config: RuntimeConfig) -> Self {
        assert_eq!(trace.n_functions(), families.len());
        Self {
            trace,
            families,
            config,
        }
    }

    /// Execute the whole trace under `policy` on a perfectly reliable
    /// platform (equivalent to [`Self::run_with_faults`] with
    /// [`FaultPlan::none`]).
    pub fn run(&self, policy: &mut dyn KeepAlivePolicy) -> RuntimeSummary {
        self.run_with_faults(policy, &FaultPlan::none())
    }

    /// Execute the whole trace under `policy` with faults injected per
    /// `plan`. See the module docs for the fault semantics; with
    /// [`FaultPlan::none`] this is bit-identical to [`Self::run`].
    pub fn run_with_faults(
        &self,
        policy: &mut dyn KeepAlivePolicy,
        plan: &FaultPlan,
    ) -> RuntimeSummary {
        self.run_with_cluster(policy, plan, &ClusterConfig::unlimited())
    }

    /// Execute the whole trace under `policy` with faults per `plan` on a
    /// *finite* node: keep-alive memory is capped by
    /// [`ClusterConfig::capacity`] (overage flattened by utility-ordered
    /// pressure downgrades/evictions) and the pending backlog is bounded by
    /// [`ClusterConfig::admission`] (excess arrivals shed). With
    /// [`ClusterConfig::unlimited`] this is bit-identical to
    /// [`Self::run_with_faults`].
    pub fn run_with_cluster(
        &self,
        policy: &mut dyn KeepAlivePolicy,
        plan: &FaultPlan,
        cluster: &ClusterConfig,
    ) -> RuntimeSummary {
        self.run_with_fleet(policy, plan, &FleetConfig::from_cluster(*cluster))
    }

    /// Execute the whole trace under `policy` with faults per `plan` on a
    /// multi-node *fleet*: cold starts placed by net utility across
    /// heterogeneous nodes, per-node capacity enforcement, warm-container
    /// migration off pressured nodes, two-tier admission, and deterministic
    /// node-level faults (see [`crate::fleet`]). With
    /// [`FleetConfig::from_cluster`] this is bit-identical to
    /// [`Self::run_with_cluster`].
    pub fn run_with_fleet(
        &self,
        policy: &mut dyn KeepAlivePolicy,
        plan: &FaultPlan,
        fleet: &FleetConfig,
    ) -> RuntimeSummary {
        let mut session = self.fleet_session(policy, plan, fleet.clone());
        while session.step().is_some() {}
        session.finish()
    }

    /// [`Self::run`] with a [`TraceSink`] attached (see
    /// [`Self::session_traced`] for the event contract).
    pub fn run_traced(
        &self,
        policy: &mut dyn KeepAlivePolicy,
        sink: &mut dyn TraceSink,
    ) -> RuntimeSummary {
        self.run_with_faults_traced(policy, &FaultPlan::none(), sink)
    }

    /// [`Self::run_with_faults`] with a [`TraceSink`] attached.
    pub fn run_with_faults_traced(
        &self,
        policy: &mut dyn KeepAlivePolicy,
        plan: &FaultPlan,
        sink: &mut dyn TraceSink,
    ) -> RuntimeSummary {
        self.run_with_cluster_traced(policy, plan, &ClusterConfig::unlimited(), sink)
    }

    /// [`Self::run_with_cluster`] with a [`TraceSink`] attached.
    pub fn run_with_cluster_traced(
        &self,
        policy: &mut dyn KeepAlivePolicy,
        plan: &FaultPlan,
        cluster: &ClusterConfig,
        sink: &mut dyn TraceSink,
    ) -> RuntimeSummary {
        self.run_with_fleet_traced(policy, plan, &FleetConfig::from_cluster(*cluster), sink)
    }

    /// [`Self::run_with_fleet`] with a [`TraceSink`] attached (adds node
    /// lifecycle and migration events to the stream).
    pub fn run_with_fleet_traced(
        &self,
        policy: &mut dyn KeepAlivePolicy,
        plan: &FaultPlan,
        fleet: &FleetConfig,
        sink: &mut dyn TraceSink,
    ) -> RuntimeSummary {
        let mut session = self.fleet_session_traced(policy, plan, fleet.clone(), sink);
        while session.step().is_some() {}
        session.finish()
    }

    /// Begin a steppable run: all events (minute ticks, arrivals, optional
    /// SLO timers) are seeded up front, and each [`RuntimeSession::step`]
    /// call processes exactly one. [`Self::run_with_cluster`] is precisely
    /// `while session.step().is_some() {}` + [`RuntimeSession::finish`];
    /// callers that need to interleave the run with other work (online
    /// serving shims, co-simulation, the cross-engine equivalence tests)
    /// drive the same loop by hand.
    pub fn session<'a>(
        &'a self,
        policy: &'a mut dyn KeepAlivePolicy,
        plan: &FaultPlan,
        cluster: ClusterConfig,
    ) -> RuntimeSession<'a> {
        self.session_impl(policy, plan, FleetConfig::from_cluster(cluster), None)
    }

    /// [`Self::session`] with a [`TraceSink`] attached: every adjust, bill,
    /// downgrade/eviction (policy- and pressure-sourced), arrival, shed,
    /// fault degradation/reap and watchdog transition is emitted as a typed
    /// [`ObsEvent`]. With a disabled sink (e.g. [`pulse_obs::NullSink`]) the
    /// run is bit-identical to the un-traced one — sinks observe, they
    /// never steer.
    pub fn session_traced<'a>(
        &'a self,
        policy: &'a mut dyn KeepAlivePolicy,
        plan: &FaultPlan,
        cluster: ClusterConfig,
        sink: &'a mut dyn TraceSink,
    ) -> RuntimeSession<'a> {
        self.session_impl(policy, plan, FleetConfig::from_cluster(cluster), Some(sink))
    }

    /// [`Self::session`] over a multi-node fleet (see
    /// [`Self::run_with_fleet`] for the semantics).
    pub fn fleet_session<'a>(
        &'a self,
        policy: &'a mut dyn KeepAlivePolicy,
        plan: &FaultPlan,
        fleet: FleetConfig,
    ) -> RuntimeSession<'a> {
        self.session_impl(policy, plan, fleet, None)
    }

    /// [`Self::fleet_session`] with a [`TraceSink`] attached.
    pub fn fleet_session_traced<'a>(
        &'a self,
        policy: &'a mut dyn KeepAlivePolicy,
        plan: &FaultPlan,
        fleet: FleetConfig,
        sink: &'a mut dyn TraceSink,
    ) -> RuntimeSession<'a> {
        self.session_impl(policy, plan, fleet, Some(sink))
    }

    fn session_impl<'a>(
        &'a self,
        policy: &'a mut dyn KeepAlivePolicy,
        plan: &FaultPlan,
        fleet: FleetConfig,
        sink: Option<&'a mut dyn TraceSink>,
    ) -> RuntimeSession<'a> {
        assert!(!fleet.nodes.is_empty(), "a fleet needs at least one node");
        let n = self.families.len();
        let minutes = self.trace.minutes() as u64;
        let mut rs = RunState {
            queue: EventQueue::new(),
            fns: (0..n)
                .map(|_| FnState {
                    container: None,
                    waiting: VecDeque::new(),
                    in_flight: 0,
                    executing: Vec::new(),
                    node: 0,
                    scheduled_minute: None,
                    epoch: 0,
                    provision_attempts: 0,
                })
                .collect(),
            ledger: ScheduleLedger::for_families(&self.families),
            records: Vec::new(),
            req_warm_variant: Vec::new(),
            req_retries: Vec::new(),
            req_done: Vec::new(),
            req_gen: Vec::new(),
            summary: RuntimeSummary::default(),
            sampler: DurationSampler::new(self.config.stochastic_seed),
            injector: FaultInjector::new(plan),
            cap: self.config.max_concurrency.unwrap_or(u32::MAX),
            pending: 0,
            pressure_priority: (0..fleet.nodes.len())
                .map(|_| PriorityStructure::new(n))
                .collect(),
            nodes: fleet.nodes.iter().cloned().map(NodeRt::new).collect(),
            minute_requests: 0,
            minute_violations: 0,
            last_billed_mb: 0.0,
            prev_fallback: false,
            sink,
        };
        let mut req_func: Vec<usize> = Vec::new();

        // Minute ticks.
        for m in 0..minutes {
            rs.queue
                .push(m * MS_PER_MINUTE, Event::MinuteTick { minute: m });
        }
        // Node fault windows (fleet runs only; an empty plan pushes nothing,
        // preserving event sequence numbers — the bit-identity contract).
        // Scheduled after the ticks so that at equal timestamps the minute
        // tick bills first, and before that minute's arrivals.
        for (i, f) in fleet.node_faults.faults.iter().enumerate() {
            assert!(
                f.node < fleet.nodes.len(),
                "fault targets node {} but the fleet has {} nodes",
                f.node,
                fleet.nodes.len()
            );
            rs.queue.push(
                f.at_minute * MS_PER_MINUTE,
                Event::NodeDown {
                    node: f.node,
                    fault: i,
                },
            );
            rs.queue.push(
                (f.at_minute + f.duration_minutes) * MS_PER_MINUTE,
                Event::NodeRecovered {
                    node: f.node,
                    fault: i,
                },
            );
        }
        // Arrivals, spread across each active minute (offset ≥ 1 ms so the
        // tick always precedes them).
        for m in 0..minutes {
            for f in 0..n {
                let count = self.trace.function(f).at(m) as u64;
                for at in arrival_times_in_minute(m, count) {
                    let req = rs.records.len();
                    rs.records.push(RequestRecord {
                        arrival_ms: at,
                        done_ms: at,
                        warm: false,
                        accuracy_pct: 0.0,
                        failed: false,
                    });
                    req_func.push(f);
                    rs.req_warm_variant.push(0);
                    rs.req_retries.push(0);
                    rs.req_done.push(false);
                    rs.req_gen.push(0);
                    rs.queue.push(at, Event::Arrival { func: f, req });
                }
            }
        }
        // SLO timers (only when the plan configures a timeout, so fault-free
        // runs schedule no extra events).
        if let Some(t) = plan.request_timeout_ms {
            for (req, (rec, &func)) in rs.records.iter().zip(req_func.iter()).enumerate() {
                let at = rec.arrival_ms.saturating_add(t);
                rs.queue.push(at, Event::RequestTimeout { func, req });
            }
        }

        RuntimeSession {
            rt: self,
            policy,
            fleet,
            rs,
            demand_history: Vec::with_capacity(minutes as usize),
            invoked_this_minute: false,
            fp: MinuteFootprint::default(),
            alive_scratch: Vec::new(),
            flatten_scratch: FlattenScratch::default(),
        }
    }
}

/// An in-flight runtime execution: one event per [`Self::step`] call, over
/// the shared [`ScheduleLedger`] substrate. Built by [`Runtime::session`].
pub struct RuntimeSession<'a> {
    rt: &'a Runtime,
    policy: &'a mut dyn KeepAlivePolicy,
    fleet: FleetConfig,
    rs: RunState<'a>,
    demand_history: Vec<f64>,
    invoked_this_minute: bool,
    /// Session-owned footprint buffer, kept in sync with the ledger's dirty
    /// set each tick (no per-minute `Vec` churn on the hot path).
    fp: MinuteFootprint,
    /// Session-owned copy of the alive set handed to the policy (which may
    /// mutate it arbitrarily while selecting victims).
    alive_scratch: Vec<AliveModel>,
    /// Victim-heap scratch for the capacity enforcer. Pure scratch: carries
    /// no state across calls, so it is deliberately absent from checkpoints.
    flatten_scratch: FlattenScratch,
}

impl RuntimeSession<'_> {
    /// The ledger's current schedule state.
    pub fn ledger(&self) -> &ScheduleLedger {
        &self.rs.ledger
    }

    /// Events still queued (the run completes when this reaches zero).
    pub fn pending_events(&self) -> usize {
        self.rs.queue.len()
    }

    /// Timestamp (ms) of the next queued event, `None` once drained. Lets a
    /// caller co-stepping this session with another engine advance exactly
    /// through one minute's events without processing the next minute tick.
    pub fn peek_time(&self) -> Option<u64> {
        self.rs.queue.peek_time()
    }

    /// Arrivals shed by admission control so far (tiers 1 and 2). The live
    /// serving front door reports this mid-run, per minute tick, without
    /// waiting for [`Self::finish`].
    pub fn shed_so_far(&self) -> u64 {
        self.rs.summary.shed_requests
    }

    /// Admit one externally sourced request for `func` at absolute time
    /// `at_ms`, returning its request id. The request joins the same
    /// machinery trace-seeded arrivals use: it is a queued
    /// [`Event::Arrival`] processed by [`Self::step`], subject to admission
    /// control, warm/cold dispatch and the policy's schedule refresh — and,
    /// when the fault plan configures a per-request SLO budget, a matching
    /// [`Event::RequestTimeout`] is scheduled alongside it.
    ///
    /// This is the online-serving hook: a session built over an all-zero
    /// trace has only minute ticks queued, and a caller (e.g.
    /// `pulse-serve`) feeds arrivals in as they happen. Admitting the full
    /// stream up front in `(minute, func, k)` order with
    /// [`arrival_times_in_minute`] timestamps reproduces the exact event
    /// sequence numbers of a trace-seeded run, which is what makes the
    /// simulated-clock serve mode bit-identical to
    /// [`Runtime::run_with_cluster`] on the binned trace (with a request
    /// timeout configured, timeout timers interleave with later admissions
    /// instead of following the whole arrival block, so exact-tie ordering
    /// may differ there).
    pub fn admit_at(&mut self, at_ms: u64, func: usize) -> usize {
        assert!(
            func < self.rt.families.len(),
            "admit_at targets function {func} but the runtime has {}",
            self.rt.families.len()
        );
        let rs = &mut self.rs;
        let req = rs.records.len();
        rs.records.push(RequestRecord {
            arrival_ms: at_ms,
            done_ms: at_ms,
            warm: false,
            accuracy_pct: 0.0,
            failed: false,
        });
        rs.req_warm_variant.push(0);
        rs.req_retries.push(0);
        rs.req_done.push(false);
        rs.req_gen.push(0);
        rs.queue.push(at_ms, Event::Arrival { func, req });
        if let Some(t) = rs.injector.plan().request_timeout_ms {
            rs.queue
                .push(at_ms.saturating_add(t), Event::RequestTimeout { func, req });
        }
        req
    }

    /// Process the next event. A minute tick runs the full pipeline
    /// (observe previous minute → policy adjustment → capacity enforcement
    /// → materialize containers and bill); every other event advances the
    /// arrival/service machinery. Returns the `(time_ms, event)` processed,
    /// or `None` once the queue is drained.
    pub fn step(&mut self) -> Option<(u64, Event)> {
        let (now, event) = self.rs.queue.pop()?;
        match &event {
            Event::MinuteTick { minute } => self.on_minute_tick(now, *minute),
            Event::Arrival { func, req } => self.on_arrival(now, *func, *req),
            Event::ProvisionDone { func, epoch } => self.on_provision_done(now, *func, *epoch),
            Event::ProvisionFailed { func, epoch } => {
                self.rs
                    .on_provision_failed(&self.rt.families[*func], *func, *epoch, now);
            }
            Event::ExecDone { func, req, gen } => self.on_exec_done(now, *func, *req, *gen),
            Event::ExecFailed {
                func,
                req,
                epoch,
                gen,
            } => {
                self.rs
                    .on_exec_failed(&self.rt.families[*func], *func, *req, *epoch, *gen, now);
            }
            Event::RequestTimeout { func, req } => self.rs.on_timeout(*func, *req, now),
            Event::RetryRequest { func, req } => {
                self.rs
                    .on_retry_request(&self.rt.families, *func, *req, now);
            }
            Event::NodeDown { node, fault } => self.on_node_down(now, *node, *fault),
            Event::NodeRecovered { node, fault } => self.on_node_recovered(now, *node, *fault),
            // A migration pause elapsing is exactly a provisioning attempt
            // succeeding: warm the container (unless stale) and drain.
            Event::MigrationDone { func, epoch } => self.on_provision_done(now, *func, *epoch),
        }
        Some((now, event))
    }

    /// Drain any remaining events and return the summary
    /// ([`Runtime::run_with_cluster`] without the loop already run).
    pub fn finish(self) -> RuntimeSummary {
        let mut summary = self.rs.summary;
        summary.records = self.rs.records;
        summary.node_summaries = self
            .rs
            .nodes
            .into_iter()
            .map(|nd| NodeSummary {
                name: nd.spec.name,
                keepalive_cost_usd: nd.cost_usd,
                memory_at_tick_mb: nd.billed_series,
                minutes_down: nd.minutes_down,
                migrations_in: nd.migrations_in,
                migrations_out: nd.migrations_out,
            })
            .collect();
        summary
    }

    /// The minute-tick pipeline, in billing-significant order. The two
    /// fleet stages (node health, rebalance) are no-ops on a single healthy
    /// node, keeping cluster-compatible runs bit-identical.
    fn on_minute_tick(&mut self, now: u64, minute: u64) {
        self.stage_observe_previous(minute);
        self.stage_adjust(minute);
        self.stage_node_health(minute);
        self.stage_rebalance(now, minute);
        self.stage_enforce_capacity(minute);
        self.stage_materialize_and_bill(now, minute);
        // Minutes strictly before this one are fully billed; drop their
        // per-minute index state. Mid-minute events still read minute
        // `minute` (arrivals query `alive_variant_at`), which stays live.
        self.rs.ledger.retire_minutes_before(minute);
    }

    /// Tick stage 1: close out the previous minute for the policy's
    /// self-monitoring (a no-op for plain policies; the watchdog wrapper may
    /// flip its fallback state here, before this minute's planning).
    fn stage_observe_previous(&mut self, minute: u64) {
        if minute == 0 {
            return;
        }
        let obs = MinuteObservation {
            minute: minute - 1,
            requests: std::mem::take(&mut self.rs.minute_requests),
            slo_violations: std::mem::take(&mut self.rs.minute_violations),
            keepalive_mb: self.rs.last_billed_mb,
        };
        self.policy.observe_minute(&obs);
        let fb = self.policy.in_fallback();
        if fb {
            self.rs.summary.fallback_minutes += 1;
        }
        if fb != self.rs.prev_fallback {
            self.rs.prev_fallback = fb;
            self.rs.summary.ops_events.push(if fb {
                OpsEvent::WatchdogFallback { minute }
            } else {
                OpsEvent::WatchdogRecover { minute }
            });
            emit(&mut self.rs.sink, || ObsEvent::Watchdog {
                minute,
                fallback: fb,
            });
        }
    }

    /// Tick stage 2: the policy's cross-function adjustment against the
    /// schedule demand, applied to this minute of the ledger only.
    fn stage_adjust(&mut self, minute: u64) {
        let invoked_last_minute = std::mem::take(&mut self.invoked_this_minute);
        self.rs
            .ledger
            .fill_minute_footprint(&self.rt.families, minute, &mut self.fp);
        self.alive_scratch.clone_from(&self.fp.alive);
        let kam = self.fp.total_mb;
        let first_minute = begins_keepalive_period(invoked_last_minute, kam, &self.demand_history);
        let actions = self.policy.adjust_minute(
            minute,
            &self.demand_history,
            first_minute,
            kam,
            &mut self.alive_scratch,
        );
        self.demand_history.push(kam);
        self.rs.summary.downgrades += actions.len() as u64;
        // Apply action-by-action (the exact loop `apply_actions` runs) so
        // each one's applied/ignored outcome can be reported.
        let mut applied = 0usize;
        for a in &actions {
            let moved = self.rs.ledger.apply_action(minute, a);
            applied += usize::from(moved);
            emit(&mut self.rs.sink, || match *a {
                DowngradeAction::Downgrade { func, from, to } => ObsEvent::Downgrade {
                    minute,
                    func,
                    from,
                    to,
                    source: ActionSource::Policy,
                    applied: moved,
                },
                DowngradeAction::Evict { func, from } => ObsEvent::Evict {
                    minute,
                    func,
                    from,
                    source: ActionSource::Policy,
                    applied: moved,
                },
            });
        }
        emit(&mut self.rs.sink, || ObsEvent::Adjust {
            minute,
            requested: actions.len(),
            applied,
            keepalive_mb: kam,
        });
    }

    /// Tick stage 3 (fleet): account downtime and move scheduled functions
    /// off nodes that cannot accept work — each is re-placed on the best
    /// live node, or evicted from the ledger when the whole fleet is down.
    /// A no-op when every node is up, in particular in every
    /// cluster-compatible run without node faults.
    fn stage_node_health(&mut self, minute: u64) {
        if self
            .rs
            .nodes
            .iter()
            .all(|nd| matches!(nd.health, NodeHealth::Up))
        {
            return;
        }
        for nd in &mut self.rs.nodes {
            if !nd.health.accepts_work() {
                nd.minutes_down += 1;
            }
        }
        for f in 0..self.rt.families.len() {
            if self.rs.node_ok(f) {
                continue;
            }
            let Some(v) = self.rs.ledger.alive_variant_at(f, minute) else {
                continue;
            };
            let mem = self.rt.families[f].variant(v).memory_mb;
            match self.rs.place_for(&self.rt.families, mem) {
                Some(k) => self.rs.fns[f].node = k,
                None => {
                    self.rs.ledger.apply_eviction(f, minute);
                    self.rs.summary.node_loss_evictions += 1;
                }
            }
        }
    }

    /// Tick stage 4 (fleet): migrate idle warm containers off nodes whose
    /// planned keep-alive footprint exceeds their capacity, before the
    /// pressure enforcer starts downgrading. A migration is a charged pause
    /// ([`crate::fleet::MigrationConfig::pause_ms`] during which the
    /// container queues arrivals like a provisioning one) — much cheaper
    /// than the cold start an eviction would cause. Single-node fleets skip
    /// this stage entirely.
    fn stage_rebalance(&mut self, now: u64, minute: u64) {
        if self.rs.nodes.len() < 2 {
            return;
        }
        // Re-sync the session footprint with whatever the adjustment and
        // node-health stages dirtied, then detach it so the loop below can
        // borrow `self.rs` mutably (migrations never touch the ledger, so
        // the snapshot stays valid for the whole stage).
        self.rs
            .ledger
            .patch_minute_footprint(&self.rt.families, minute, &mut self.fp);
        let footprint = std::mem::take(&mut self.fp);
        let pause = self.fleet.migration.pause_ms;
        for k in 0..self.rs.nodes.len() {
            let Some(cap) = self.rs.nodes[k].spec.capacity.keepalive_mb else {
                continue;
            };
            let on_node: Vec<(usize, VariantId)> = footprint
                .alive
                .iter()
                .filter(|a| self.rs.fns[a.func].node == k)
                .map(|a| (a.func, a.variant))
                .collect();
            let mut planned: f64 = on_node
                .iter()
                .map(|&(f, v)| self.rt.families[f].variant(v).memory_mb)
                .sum();
            if planned <= cap {
                continue;
            }
            for (f, v) in on_node {
                if planned <= cap {
                    break;
                }
                // Only idle warm containers move: in-flight work and queued
                // requests pin a container to its node.
                let movable = self.rs.fns[f]
                    .container
                    .as_ref()
                    .is_some_and(|c| c.is_warm() && c.busy == 0)
                    && self.rs.fns[f].waiting.is_empty();
                if !movable {
                    continue;
                }
                let mem = self.rt.families[f].variant(v).memory_mb;
                let Some(to) = self.rs.migration_target(&self.rt.families, mem, k) else {
                    continue;
                };
                let st = &mut self.rs.fns[f];
                st.node = to;
                st.epoch += 1;
                let epoch = st.epoch;
                if let Some(c) = st.container.as_mut() {
                    c.state = ContainerState::Provisioning;
                    c.epoch = epoch;
                }
                self.rs
                    .queue
                    .push(now + pause, Event::MigrationDone { func: f, epoch });
                planned -= mem;
                self.rs.summary.migrations += 1;
                self.rs.summary.migration_pause_ms += pause;
                self.rs.nodes[k].migrations_out += 1;
                self.rs.nodes[to].migrations_in += 1;
                self.rs.summary.ops_events.push(OpsEvent::Migrated {
                    minute,
                    func: f,
                    from_node: k,
                    to_node: to,
                });
                emit(&mut self.rs.sink, || ObsEvent::Migrate {
                    minute,
                    func: f,
                    from_node: k,
                    to_node: to,
                });
            }
        }
        self.fp = footprint;
    }

    /// Tick stage 5: per-node capacity enforcement — when a node's
    /// post-adjustment plan still exceeds its hard cap, flatten the overage
    /// with Algorithm 2's utility-ordered downgrade loop (lowest `Uv`
    /// first; each node's pressure priority structure shields repeat
    /// victims across ticks). Applied before billing, so no node's billed
    /// footprint can exceed its cap.
    fn stage_enforce_capacity(&mut self, minute: u64) {
        if self
            .rs
            .nodes
            .iter()
            .all(|nd| nd.spec.capacity.keepalive_mb.is_none())
        {
            return;
        }
        // Catch up on any dirt left by the earlier stages (policy actions,
        // node-loss evictions); rebalance migrations never touch the ledger,
        // so after this patch the footprint is exactly this minute's plan.
        self.rs
            .ledger
            .patch_minute_footprint(&self.rt.families, minute, &mut self.fp);
        let footprint = std::mem::take(&mut self.fp);
        let mut pressured = false;
        // Nodes partition functions, so flattening node k's plan never
        // touches a model counted for node k+1 — the shared footprint
        // snapshot stays valid across the loop.
        for k in 0..self.rs.nodes.len() {
            let Some(cap_mb) = self.rs.nodes[k].spec.capacity.keepalive_mb else {
                continue;
            };
            let mut planned: Vec<_> = footprint
                .alive
                .iter()
                .filter(|a| self.rs.fns[a.func].node == k)
                .cloned()
                .collect();
            // The whole-fleet case reuses the footprint's own sum so a
            // 1-node fleet stays bitwise identical to the cluster path.
            let planned_mb = if planned.len() == footprint.alive.len() {
                footprint.total_mb
            } else {
                planned
                    .iter()
                    .map(|a| self.rt.families[a.func].variant(a.variant).memory_mb)
                    .sum()
            };
            if planned_mb <= cap_mb {
                continue;
            }
            pressured = true;
            let outcome = flatten_peak_scratch(
                &mut self.flatten_scratch,
                &mut planned,
                &self.rt.families,
                &mut self.rs.pressure_priority[k],
                planned_mb,
                cap_mb,
            );
            self.apply_pressure_actions(minute, &outcome.actions);
        }
        self.fp = footprint;
        if pressured {
            self.rs.summary.pressure_minutes += 1;
        }
    }

    /// Record and apply one node's pressure-flattening actions.
    fn apply_pressure_actions(&mut self, minute: u64, actions: &[DowngradeAction]) {
        for a in actions {
            let moved = self.rs.ledger.apply_action(minute, a);
            match *a {
                DowngradeAction::Downgrade { func, from, to } => {
                    self.rs.summary.pressure_downgrades += 1;
                    self.rs
                        .summary
                        .ops_events
                        .push(OpsEvent::PressureDowngrade {
                            minute,
                            func,
                            from,
                            to,
                        });
                    emit(&mut self.rs.sink, || ObsEvent::Downgrade {
                        minute,
                        func,
                        from,
                        to,
                        source: ActionSource::Pressure,
                        applied: moved,
                    });
                }
                DowngradeAction::Evict { func, from } => {
                    self.rs.summary.evictions += 1;
                    self.rs
                        .summary
                        .ops_events
                        .push(OpsEvent::Evicted { minute, func, from });
                    emit(&mut self.rs.sink, || ObsEvent::Evict {
                        minute,
                        func,
                        from,
                        source: ActionSource::Pressure,
                        applied: moved,
                    });
                }
            }
        }
    }

    /// Tick stage 6: materialize containers per the post-adjustment plan
    /// and bill the minute, per node (each node's footprint priced by its
    /// own price factor). Billing is schedule-driven: fault outcomes below
    /// never change what this minute costs. With one nominal node the sums
    /// collapse bitwise to the single-node cluster accounting.
    #[allow(clippy::needless_range_loop)] // parallel per-function tables
    fn stage_materialize_and_bill(&mut self, now: u64, minute: u64) {
        let rs = &mut self.rs;
        let mut billed_node = vec![0.0f64; rs.nodes.len()];
        for f in 0..self.rt.families.len() {
            let desired = rs.ledger.alive_variant_at(f, minute);
            if let Some(v) = desired {
                billed_node[rs.fns[f].node] += self.rt.families[f].variant(v).memory_mb;
            }
            let held = rs.fns[f]
                .container
                .as_ref()
                .map(|c| (c.is_warm(), c.variant));
            match (held, desired) {
                (Some((true, cur)), Some(v)) if cur != v => {
                    // Proactive variant swap: warm by assumption, unless the
                    // variant load fails.
                    if rs.injector.variant_load_fails(f, v) {
                        rs.summary.variant_load_failures += 1;
                        rs.fns[f].provision_attempts = 0;
                        rs.begin_provision(&self.rt.families[f], f, v, now, 0);
                    } else {
                        let st = &mut rs.fns[f];
                        st.epoch += 1;
                        st.container = Some(LiveContainer::warm(v, now, st.epoch));
                    }
                }
                (Some((true, _)), None) => {
                    rs.fns[f].container = None;
                }
                (Some(_), _) => {
                    // Provisioning containers are left alone: the pending
                    // cold start completes first. A warm container at the
                    // desired variant stays.
                }
                (None, Some(v)) => {
                    // Proactive pre-warm.
                    if rs.injector.variant_load_fails(f, v) {
                        rs.summary.variant_load_failures += 1;
                        rs.fns[f].provision_attempts = 0;
                        rs.begin_provision(&self.rt.families[f], f, v, now, 0);
                    } else {
                        let st = &mut rs.fns[f];
                        st.epoch += 1;
                        st.container = Some(LiveContainer::warm(v, now, st.epoch));
                    }
                }
                (None, None) => {}
            }
        }
        let mut billed = 0.0f64;
        let mut minute_cost = 0.0f64;
        for (k, nd) in rs.nodes.iter_mut().enumerate() {
            billed += billed_node[k];
            // Multiplying by the price factor is exact (IEEE) so the
            // nominal factor of 1.0 cannot perturb the cluster-compatible
            // cost stream.
            let node_cost = self
                .rt
                .config
                .cost
                .keepalive_cost_usd_per_minutes(billed_node[k], 1.0)
                * nd.spec.price_factor;
            nd.cost_usd += node_cost;
            nd.billed_series.push(billed_node[k]);
            minute_cost += node_cost;
        }
        rs.summary.keepalive_cost_usd += minute_cost;
        rs.summary.memory_at_tick_mb.push(billed);
        rs.last_billed_mb = billed;
        emit(&mut rs.sink, || ObsEvent::Bill {
            minute,
            keepalive_mb: billed,
            cost_usd: minute_cost,
        });
    }

    /// Arrival stage: admission check, then warm / queued-behind-provisioning
    /// / cold-start service, then (once per active minute) a schedule
    /// refresh from the policy.
    fn on_arrival(&mut self, now: u64, func: usize, req: usize) {
        let rs = &mut self.rs;
        let minute = now / MS_PER_MINUTE;
        let fam = &self.rt.families[func];
        rs.minute_requests += 1;

        let held = rs.fns[func]
            .container
            .as_ref()
            .map(|c| (c.is_warm(), c.variant));

        // Admission control, tier 1 (global front door): an arrival that
        // cannot start executing immediately joins the pending backlog; once
        // the backlog is full it is shed — no schedule refresh, no
        // provisioning, the policy never hears about it.
        let starts_now = matches!(held, Some((true, _))) && rs.fns[func].in_flight < rs.cap;
        if let Some(max_pending) = self.fleet.admission.max_pending {
            if !starts_now && rs.pending >= max_pending {
                rs.summary.shed_requests += 1;
                rs.summary.ops_events.push(OpsEvent::Overloaded {
                    at_ms: now,
                    func,
                    req,
                });
                emit(&mut rs.sink, || ObsEvent::Shed { at_ms: now, func });
                rs.fail_request(req, now);
                return;
            }
        }
        // Admission control, tier 2 (per-node backlog): the bound applies to
        // the node currently hosting the function, keeping one pressured
        // node's queue from absorbing the whole fleet's arrivals.
        if let Some(max_node) = self.fleet.node_admission {
            if !starts_now && rs.node_waiting(rs.fns[func].node) >= max_node {
                rs.summary.node_shed_requests += 1;
                rs.summary.ops_events.push(OpsEvent::Overloaded {
                    at_ms: now,
                    func,
                    req,
                });
                emit(&mut rs.sink, || ObsEvent::Shed { at_ms: now, func });
                rs.fail_request(req, now);
                return;
            }
        }

        self.invoked_this_minute = true;
        emit(&mut rs.sink, || ObsEvent::Arrival {
            at_ms: now,
            func,
            warm: held.is_some(),
        });
        let need_schedule = rs.fns[func].scheduled_minute != Some(minute);
        match held {
            Some((true, v)) => {
                rs.records[req].warm = true;
                rs.records[req].accuracy_pct = fam.variant(v).accuracy_pct;
                rs.req_warm_variant[req] = v;
                if rs.fns[func].in_flight < rs.cap {
                    rs.start_exec(fam, func, req, now);
                } else {
                    rs.pending += 1;
                    rs.fns[func].waiting.push_back(req);
                }
            }
            Some((false, v)) => {
                // Provisioning: queue behind the pending cold start. Counts
                // as warm (the container exists), matching the minute engine.
                rs.records[req].warm = true;
                rs.records[req].accuracy_pct = fam.variant(v).accuracy_pct;
                rs.req_warm_variant[req] = v;
                rs.pending += 1;
                rs.fns[func].waiting.push_back(req);
            }
            None => {
                // Cold start (the runtime's SLO violation).
                let v = self.policy.cold_start_variant(func, minute);
                rs.minute_violations += 1;
                rs.records[req].warm = false;
                rs.records[req].accuracy_pct = fam.variant(v).accuracy_pct;
                rs.req_warm_variant[req] = v;
                // Fleet placement: pick the host before provisioning. A
                // single always-up node resolves to node 0 without running
                // the placer, so cluster-compatible runs never touch it.
                if rs.nodes.len() > 1 || !rs.node_ok(func) {
                    match rs.place_for(&self.rt.families, fam.variant(v).memory_mb) {
                        Some(k) => rs.fns[func].node = k,
                        None => {
                            rs.summary.placement_failures += 1;
                            rs.fail_request(req, now);
                            return;
                        }
                    }
                }
                rs.fns[func].provision_attempts = 0;
                rs.begin_provision(fam, func, v, now, 0);
                rs.pending += 1;
                rs.fns[func].waiting.push_back(req);
            }
        }

        if need_schedule {
            rs.fns[func].scheduled_minute = Some(minute);
            rs.ledger
                .replace(func, self.policy.schedule_on_invocation(func, minute));
        }
    }

    /// A provisioning attempt completed: warm the container (unless stale)
    /// and start waiting work.
    fn on_provision_done(&mut self, now: u64, func: usize, epoch: u64) {
        let rs = &mut self.rs;
        let stale = rs.fns[func]
            .container
            .as_ref()
            .is_none_or(|c| c.epoch != epoch);
        if stale {
            return;
        }
        if let Some(c) = rs.fns[func].container.as_mut() {
            c.state = ContainerState::Warm;
        }
        rs.fns[func].provision_attempts = 0;
        rs.drain_waiting(&self.rt.families[func], func, now);
        // If the schedule does not cover the current minute, the container
        // exists only for the in-flight work: drop it once idle so later
        // arrivals cold-start (as the minute engine would count them).
        let minute = now / MS_PER_MINUTE;
        if rs.ledger.alive_variant_at(func, minute).is_none() {
            if let Some(c) = &rs.fns[func].container {
                if c.busy == 0 && rs.fns[func].waiting.is_empty() {
                    rs.fns[func].container = None;
                }
            }
        }
    }

    /// An execution finished: record it, free the slot, start waiting work.
    /// Completions whose generation was bumped by a node crash are stale —
    /// the re-dispatch owns the request now.
    fn on_exec_done(&mut self, now: u64, func: usize, req: usize, gen: u64) {
        let rs = &mut self.rs;
        if gen != rs.req_gen[req] {
            return;
        }
        if !rs.req_done[req] {
            rs.records[req].done_ms = now;
            rs.req_done[req] = true;
        }
        rs.fns[func].in_flight -= 1;
        if let Some(pos) = rs.fns[func].executing.iter().position(|&r| r == req) {
            rs.fns[func].executing.swap_remove(pos);
        }
        if let Some(c) = rs.fns[func].container.as_mut() {
            if c.busy > 0 {
                c.end_exec();
            }
        }
        rs.drain_waiting(&self.rt.families[func], func, now);
    }

    /// A node-level fault window opened. Health is recomputed from the
    /// whole plan (overlap precedence: crash > partition > straggler). A
    /// crash reaps the node's containers and aborts its in-flight
    /// executions (each re-dispatched through the retry ladder); a
    /// partition drops the containers but lets in-flight executions finish;
    /// a straggler only stretches durations drawn from now on.
    fn on_node_down(&mut self, now: u64, node: usize, fault: usize) {
        let minute = now / MS_PER_MINUTE;
        let kind = self.fleet.node_faults.faults[fault].kind;
        match kind {
            NodeFaultKind::Crash => self.rs.summary.node_crashes += 1,
            NodeFaultKind::Partition => self.rs.summary.node_partitions += 1,
            NodeFaultKind::Degraded { .. } => self.rs.summary.node_stragglers += 1,
        }
        self.rs.nodes[node].health =
            NodeHealth::from_active(self.fleet.node_faults.active_kind(node, minute));
        self.rs
            .summary
            .ops_events
            .push(OpsEvent::NodeDown { minute, node, kind });
        emit(&mut self.rs.sink, || ObsEvent::NodeDown {
            minute,
            node,
            kind: obs_fault_class(kind),
        });
        match kind {
            NodeFaultKind::Degraded { .. } => {}
            NodeFaultKind::Crash => self.evacuate_node(now, node, true),
            NodeFaultKind::Partition => self.evacuate_node(now, node, false),
        }
    }

    /// Strip a lost node of its containers. With `abort_in_flight` (crash)
    /// the node's executing requests are aborted and re-dispatched; without
    /// it (partition) they run to completion. Queued requests are re-placed
    /// behind a fresh cold start on the best live node, or failed when the
    /// whole fleet is down.
    fn evacuate_node(&mut self, now: u64, node: usize, abort_in_flight: bool) {
        for f in 0..self.rt.families.len() {
            if self.rs.fns[f].node != node {
                continue;
            }
            // The container is gone either way; pending ProvisionDone /
            // MigrationDone events for it are neutralized by the
            // container-is-none staleness checks.
            self.rs.fns[f].container = None;
            if abort_in_flight {
                let aborted = std::mem::take(&mut self.rs.fns[f].executing);
                self.rs.fns[f].in_flight = 0;
                for r in aborted {
                    self.rs.req_gen[r] += 1; // the queued completion is now stale
                    if self.rs.req_done[r] {
                        continue;
                    }
                    self.rs.summary.redispatched_requests += 1;
                    self.rs.req_retries[r] += 1;
                    if self.rs.req_retries[r] <= self.rs.injector.plan().retry.max_retries {
                        self.rs.summary.request_retries += 1;
                        let backoff = self.rs.injector.backoff_ms(self.rs.req_retries[r]);
                        self.rs
                            .queue
                            .push(now + backoff, Event::RetryRequest { func: f, req: r });
                    } else {
                        self.rs.fail_request(r, now);
                    }
                }
            }
            if self.rs.fns[f].waiting.is_empty() {
                continue;
            }
            let front = *self.rs.fns[f].waiting.front().expect("checked non-empty");
            let v = self.rs.req_warm_variant[front];
            let mem = self.rt.families[f].variant(v).memory_mb;
            match self.rs.place_for(&self.rt.families, mem) {
                Some(k) => {
                    self.rs.fns[f].node = k;
                    self.rs.fns[f].provision_attempts = 0;
                    self.rs.begin_provision(&self.rt.families[f], f, v, now, 0);
                }
                None => {
                    self.rs.summary.placement_failures += 1;
                    while let Some(r) = self.rs.fns[f].waiting.pop_front() {
                        self.rs.pending -= 1;
                        self.rs.fail_request(r, now);
                    }
                }
            }
        }
    }

    /// A node-level fault window closed: recompute health from the plan
    /// (overlapping windows may keep the node impaired) and log the
    /// recovery only on a transition back to fully up.
    fn on_node_recovered(&mut self, now: u64, node: usize, _fault: usize) {
        let minute = now / MS_PER_MINUTE;
        let was_up = matches!(self.rs.nodes[node].health, NodeHealth::Up);
        let health = NodeHealth::from_active(self.fleet.node_faults.active_kind(node, minute));
        self.rs.nodes[node].health = health;
        if !was_up && matches!(health, NodeHealth::Up) {
            self.rs.summary.node_recoveries += 1;
            self.rs
                .summary
                .ops_events
                .push(OpsEvent::NodeRecovered { minute, node });
            emit(&mut self.rs.sink, || ObsEvent::NodeRecovered {
                minute,
                node,
            });
        }
    }
}

/// Map the runtime's fault kind onto the observability taxonomy (pulse-obs
/// cannot depend on this crate).
fn obs_fault_class(kind: NodeFaultKind) -> pulse_obs::NodeFaultClass {
    match kind {
        NodeFaultKind::Crash => pulse_obs::NodeFaultClass::Crash,
        NodeFaultKind::Degraded { .. } => pulse_obs::NodeFaultClass::Straggler,
        NodeFaultKind::Partition => pulse_obs::NodeFaultClass::Partition,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultRates, RetryPolicy};
    use pulse_core::types::PulseConfig;
    use pulse_sim::assignment::round_robin_assignment;
    use pulse_sim::policies::{OpenWhiskFixed, PulsePolicy};
    use pulse_trace::FunctionTrace;

    fn one_func(counts: &[u32]) -> (Trace, Vec<ModelFamily>) {
        let trace = Trace::new(vec![FunctionTrace::new("f", counts.to_vec())]);
        (trace, vec![pulse_models::zoo::bert()])
    }

    #[test]
    fn single_cold_start_latency_includes_provisioning() {
        let (trace, fams) = one_func(&[1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        let rt = Runtime::new(trace, fams.clone(), RuntimeConfig::default());
        let s = rt.run(&mut OpenWhiskFixed::new(&fams));
        assert_eq!(s.requests(), 1);
        assert_eq!(s.cold_starts(), 1);
        let expected_ms = (fams[0].highest().cold_service_time_s() * 1000.0).round();
        assert!(
            (s.records[0].latency_ms() as f64 - expected_ms).abs() <= 2.0,
            "{} vs {expected_ms}",
            s.records[0].latency_ms()
        );
    }

    #[test]
    fn second_invocation_is_warm_and_fast() {
        let (trace, fams) = one_func(&[1, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        let rt = Runtime::new(trace, fams.clone(), RuntimeConfig::default());
        let s = rt.run(&mut OpenWhiskFixed::new(&fams));
        assert_eq!(s.warm_starts(), 1);
        assert_eq!(s.cold_starts(), 1);
        let warm = s.records.iter().find(|r| r.warm).unwrap();
        let expected = (fams[0].highest().warm_service_time_s * 1000.0).round();
        assert!((warm.latency_ms() as f64 - expected).abs() <= 2.0);
    }

    #[test]
    fn same_minute_burst_queues_behind_provisioning() {
        let (trace, fams) = one_func(&[3, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        let rt = Runtime::new(trace, fams.clone(), RuntimeConfig::default());
        let s = rt.run(&mut OpenWhiskFixed::new(&fams));
        assert_eq!(s.cold_starts(), 1);
        assert_eq!(s.warm_starts(), 2);
        // The queued "warm" requests still waited for provisioning: their
        // latency exceeds a pure warm execution.
        let warm_exec = fams[0].highest().warm_service_time_s * 1000.0;
        for r in s.records.iter().filter(|r| r.warm) {
            assert!(r.latency_ms() as f64 > warm_exec * 0.9);
        }
    }

    #[test]
    fn keepalive_cost_matches_minute_engine_for_fixed_policy() {
        let trace = pulse_trace::synth::azure_like_12_with_horizon(13, 300);
        let fams = round_robin_assignment(&pulse_models::zoo::standard(), 12);
        let rt = Runtime::new(trace.clone(), fams.clone(), RuntimeConfig::default());
        let sim = pulse_sim::Simulator::new(trace, fams.clone());
        let rt_s = rt.run(&mut OpenWhiskFixed::new(&fams));
        let sim_s = sim.run(&mut OpenWhiskFixed::new(&fams));
        assert!(
            (rt_s.keepalive_cost_usd - sim_s.keepalive_cost_usd).abs() < 1e-9,
            "runtime {} vs sim {}",
            rt_s.keepalive_cost_usd,
            sim_s.keepalive_cost_usd
        );
        assert_eq!(rt_s.warm_starts(), sim_s.warm_starts);
        assert_eq!(rt_s.cold_starts(), sim_s.cold_starts);
    }

    #[test]
    fn pulse_policy_counts_match_minute_engine() {
        let trace = pulse_trace::synth::azure_like_12_with_horizon(19, 400);
        let fams = round_robin_assignment(&pulse_models::zoo::standard(), 12);
        let rt = Runtime::new(trace.clone(), fams.clone(), RuntimeConfig::default());
        let sim = pulse_sim::Simulator::new(trace, fams.clone());
        let rt_s = rt.run(&mut PulsePolicy::new(fams.clone(), PulseConfig::default()));
        let sim_s = sim.run(&mut PulsePolicy::new(fams, PulseConfig::default()));
        // Stateful policy + different call orders within a minute can shift
        // a handful of borderline decisions; the engines must agree closely.
        let warm_delta = (rt_s.warm_starts() as f64 - sim_s.warm_starts as f64).abs();
        let warm_rel = warm_delta / (sim_s.warm_starts.max(1) as f64);
        assert!(
            warm_rel < 0.02,
            "runtime {} vs sim {}",
            rt_s.warm_starts(),
            sim_s.warm_starts
        );
        let cost_ratio = rt_s.keepalive_cost_usd / sim_s.keepalive_cost_usd;
        assert!((0.9..1.1).contains(&cost_ratio), "cost ratio {cost_ratio}");
    }

    #[test]
    fn concurrency_cap_adds_queueing_delay() {
        // 40 same-minute requests (≈1.5 s apart, 2.2 s executions), cap 1:
        // they serialize and queueing delay accumulates.
        let (trace, fams) = one_func(&[0, 40, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        let unbounded = Runtime::new(trace.clone(), fams.clone(), RuntimeConfig::default())
            .run(&mut OpenWhiskFixed::new(&fams));
        let capped = Runtime::new(
            trace,
            fams.clone(),
            RuntimeConfig {
                max_concurrency: Some(1),
                ..Default::default()
            },
        )
        .run(&mut OpenWhiskFixed::new(&fams));
        assert!(capped.latency_p99_ms() > unbounded.latency_p99_ms());
        assert_eq!(capped.requests(), unbounded.requests());
        assert_eq!(capped.warm_starts(), unbounded.warm_starts());
    }

    #[test]
    fn no_invocations_costs_nothing() {
        let (trace, fams) = one_func(&[0; 30]);
        let rt = Runtime::new(trace, fams.clone(), RuntimeConfig::default());
        let s = rt.run(&mut OpenWhiskFixed::new(&fams));
        assert_eq!(s.requests(), 0);
        assert_eq!(s.keepalive_cost_usd, 0.0);
        assert_eq!(s.memory_at_tick_mb.len(), 30);
        assert!(s.memory_at_tick_mb.iter().all(|&m| m == 0.0));
    }

    #[test]
    fn stochastic_mode_jitters_but_preserves_counts() {
        let trace = pulse_trace::synth::azure_like_12_with_horizon(29, 200);
        let fams = round_robin_assignment(&pulse_models::zoo::standard(), 12);
        let det = Runtime::new(trace.clone(), fams.clone(), RuntimeConfig::default())
            .run(&mut OpenWhiskFixed::new(&fams));
        let sto = Runtime::new(
            trace.clone(),
            fams.clone(),
            RuntimeConfig {
                stochastic_seed: Some(7),
                ..Default::default()
            },
        )
        .run(&mut OpenWhiskFixed::new(&fams));
        // Warm/cold accounting is schedule-driven — jitter must not move it.
        assert_eq!(det.warm_starts(), sto.warm_starts());
        assert_eq!(det.cold_starts(), sto.cold_starts());
        assert_eq!(det.keepalive_cost_usd, sto.keepalive_cost_usd);
        // Latencies differ, but only by the lognormal spread.
        assert_ne!(
            det.records
                .iter()
                .map(|r| r.latency_ms())
                .collect::<Vec<_>>(),
            sto.records
                .iter()
                .map(|r| r.latency_ms())
                .collect::<Vec<_>>()
        );
        let ratio = sto.service_time_s() / det.service_time_s();
        assert!((0.8..1.2).contains(&ratio), "ratio {ratio}");
        // Same seed reproduces exactly.
        let sto2 = Runtime::new(
            trace,
            fams.clone(),
            RuntimeConfig {
                stochastic_seed: Some(7),
                ..Default::default()
            },
        )
        .run(&mut OpenWhiskFixed::new(&fams));
        assert_eq!(sto.records, sto2.records);
    }

    #[test]
    fn runtime_is_deterministic() {
        let trace = pulse_trace::synth::azure_like_12_with_horizon(23, 200);
        let fams = round_robin_assignment(&pulse_models::zoo::standard(), 12);
        let rt = Runtime::new(trace, fams.clone(), RuntimeConfig::default());
        let a = rt.run(&mut PulsePolicy::new(fams.clone(), PulseConfig::default()));
        let b = rt.run(&mut PulsePolicy::new(fams.clone(), PulseConfig::default()));
        assert_eq!(a.records, b.records);
        assert_eq!(a.keepalive_cost_usd, b.keepalive_cost_usd);
    }

    #[test]
    fn none_plan_is_bit_identical_to_plain_run() {
        let trace = pulse_trace::synth::azure_like_12_with_horizon(31, 240);
        let fams = round_robin_assignment(&pulse_models::zoo::standard(), 12);
        let rt = Runtime::new(
            trace,
            fams.clone(),
            RuntimeConfig {
                stochastic_seed: Some(5),
                ..Default::default()
            },
        );
        let plain = rt.run(&mut PulsePolicy::new(fams.clone(), PulseConfig::default()));
        let faulted = rt.run_with_faults(
            &mut PulsePolicy::new(fams.clone(), PulseConfig::default()),
            &FaultPlan::none(),
        );
        assert_eq!(plain.records, faulted.records);
        assert_eq!(plain.keepalive_cost_usd, faulted.keepalive_cost_usd);
        assert_eq!(faulted.provision_failures, 0);
        assert_eq!(faulted.exec_crashes, 0);
        assert_eq!(faulted.timeouts, 0);
        assert_eq!(faulted.degradations, 0);
    }

    #[test]
    fn provisioning_failure_retries_then_degrades_one_rung() {
        // bert has 2 rungs; faults scoped to the top rung only.
        let (trace, fams) = one_func(&[1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        let top = fams[0].highest_id();
        let plan = FaultPlan {
            default_rates: FaultRates {
                provision_failure: 1.0,
                variant_load_failure: 1.0,
                exec_crash: 0.0,
                min_faulty_variant: Some(top),
            },
            retry: RetryPolicy {
                max_retries: 2,
                ..RetryPolicy::default()
            },
            ..FaultPlan::none()
        };
        let rt = Runtime::new(trace, fams.clone(), RuntimeConfig::default());
        let s = rt.run_with_faults(&mut OpenWhiskFixed::new(&fams), &plan);
        assert_eq!(s.requests(), 1);
        assert_eq!(s.failed_requests(), 0, "one rung down, not failed");
        // Every cycle at the faulty top rung is 1 initial attempt + 2
        // retries, then a degradation (the keep-alive schedule re-demands
        // the top variant each minute, so the cycle repeats per tick).
        assert!(s.degradations >= 1);
        assert_eq!(s.provision_failures, 3 * s.degradations);
        assert_eq!(s.provision_retries, 2 * s.degradations);
        assert_eq!(s.degraded_requests, 1);
        let lower_acc = fams[0].variant(top - 1).accuracy_pct;
        assert_eq!(s.records[0].accuracy_pct, lower_acc);
        assert!(s.accuracy_penalty_pct > 0.0);
        // Latency absorbed the retries: slower than a clean cold start.
        let clean = (fams[0].highest().cold_service_time_s() * 1000.0) as u64;
        assert!(s.records[0].latency_ms() > clean);
    }

    #[test]
    fn whole_ladder_failure_reaps_and_fails_requests() {
        let (trace, fams) = one_func(&[2, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        let plan = FaultPlan {
            default_rates: FaultRates {
                provision_failure: 1.0,
                variant_load_failure: 1.0,
                exec_crash: 0.0,
                min_faulty_variant: None,
            },
            retry: RetryPolicy {
                max_retries: 1,
                ..RetryPolicy::default()
            },
            ..FaultPlan::none()
        };
        let rt = Runtime::new(trace, fams.clone(), RuntimeConfig::default());
        let s = rt.run_with_faults(&mut OpenWhiskFixed::new(&fams), &plan);
        assert_eq!(s.requests(), 2);
        assert_eq!(s.failed_requests(), 2, "no rung could provision");
        assert!(s.reaped >= 1);
        assert_eq!(s.availability(), 0.0);
        // Every rung was tried: (1 initial + 1 retry) × 2 rungs at least.
        assert!(s.provision_failures >= 4);
    }

    #[test]
    fn exec_crashes_retry_and_eventually_serve() {
        let (trace, fams) = one_func(&[1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        // Crash the first execution attempt ~always at rate 1.0 would loop
        // past the budget; use a seeded intermediate rate instead.
        let plan = FaultPlan::uniform(0.0, 0.0, 0.5, 11);
        let rt = Runtime::new(trace, fams.clone(), RuntimeConfig::default());
        let s = rt.run_with_faults(&mut OpenWhiskFixed::new(&fams), &plan);
        assert_eq!(s.requests(), 1);
        // Either it crashed (and retried) or it ran clean — both must leave
        // coherent accounting.
        assert_eq!(s.exec_crashes, s.request_retries + s.failed_requests());
        if s.exec_crashes == 0 {
            assert_eq!(s.failed_requests(), 0);
        }
    }

    #[test]
    fn request_timeout_fails_slow_requests() {
        let (trace, fams) = one_func(&[1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        // bert cold start is seconds; a 10 ms budget must time out.
        let plan = FaultPlan::none().with_timeout_ms(10);
        let rt = Runtime::new(trace, fams.clone(), RuntimeConfig::default());
        let s = rt.run_with_faults(&mut OpenWhiskFixed::new(&fams), &plan);
        assert_eq!(s.timeouts, 1);
        assert_eq!(s.failed_requests(), 1);
        assert_eq!(s.records[0].latency_ms(), 10);
        assert_eq!(s.availability(), 0.0);
        assert_eq!(s.goodput(10_000), 0.0);
    }

    #[test]
    fn node_capacity_caps_every_minute_and_logs_pressure() {
        use crate::cluster::{ClusterConfig, NodeCapacity};
        let trace = pulse_trace::synth::azure_like_12_with_horizon(41, 300);
        let fams = round_robin_assignment(&pulse_models::zoo::standard(), 12);
        let rt = Runtime::new(trace, fams.clone(), RuntimeConfig::default());
        // Cap well below the all-high footprint OpenWhisk wants to keep.
        let all_high: f64 = fams.iter().map(|f| f.highest().memory_mb).sum();
        let cap = all_high * 0.3;
        let cluster = ClusterConfig {
            capacity: NodeCapacity::mb(cap),
            ..ClusterConfig::unlimited()
        };
        let s = rt.run_with_cluster(
            &mut OpenWhiskFixed::new(&fams),
            &FaultPlan::none(),
            &cluster,
        );
        for (t, &mb) in s.memory_at_tick_mb.iter().enumerate() {
            assert!(mb <= cap + 1e-9, "minute {t}: {mb} MB over cap {cap}");
        }
        assert!(
            s.pressure_minutes > 0,
            "the cap must have been under pressure"
        );
        assert!(s.evictions + s.pressure_downgrades > 0);
        assert!(!s.ops_events.is_empty());
        // The uncapped run exceeds the cap somewhere (the cap was binding).
        let free = rt.run(&mut OpenWhiskFixed::new(&fams));
        assert!(free.peak_memory_mb() > cap);
    }

    #[test]
    fn admission_bound_sheds_backlogged_arrivals() {
        use crate::cluster::{AdmissionControl, ClusterConfig, OpsEvent};
        // A synchronized burst against a single-slot container: arrivals come
        // every ~1.2 s while BERT-Large serves one request per ~2.2 s, so the
        // backlog grows without bound unless admission sheds.
        let (trace, fams) = one_func(&[50, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        let rt = Runtime::new(
            trace,
            fams.clone(),
            RuntimeConfig {
                max_concurrency: Some(1),
                ..Default::default()
            },
        );
        let cluster = ClusterConfig {
            admission: AdmissionControl::bounded(8),
            ..ClusterConfig::unlimited()
        };
        let s = rt.run_with_cluster(
            &mut OpenWhiskFixed::new(&fams),
            &FaultPlan::none(),
            &cluster,
        );
        assert!(s.shed_requests > 0, "burst must overflow an 8-deep backlog");
        assert_eq!(s.failed_requests(), s.shed_requests);
        assert!(s.availability() < 1.0);
        let shed_events = s
            .ops_events
            .iter()
            .filter(|e| matches!(e, OpsEvent::Overloaded { .. }))
            .count() as u64;
        assert_eq!(shed_events, s.shed_requests);
        // Unbounded admission serves everything.
        let free = rt.run(&mut OpenWhiskFixed::new(&fams));
        assert_eq!(free.failed_requests(), 0);
        assert_eq!(free.shed_requests, 0);
        assert_eq!(s.requests(), free.requests());
    }

    #[test]
    fn unlimited_cluster_is_bit_identical_to_run_with_faults() {
        use crate::cluster::ClusterConfig;
        let trace = pulse_trace::synth::azure_like_12_with_horizon(43, 240);
        let fams = round_robin_assignment(&pulse_models::zoo::standard(), 12);
        let rt = Runtime::new(
            trace,
            fams.clone(),
            RuntimeConfig {
                stochastic_seed: Some(9),
                ..Default::default()
            },
        );
        let plan = FaultPlan::uniform(0.2, 0.1, 0.05, 17).with_timeout_ms(120_000);
        let a = rt.run_with_faults(
            &mut PulsePolicy::new(fams.clone(), PulseConfig::default()),
            &plan,
        );
        let b = rt.run_with_cluster(
            &mut PulsePolicy::new(fams.clone(), PulseConfig::default()),
            &plan,
            &ClusterConfig::unlimited(),
        );
        assert_eq!(a.records, b.records);
        assert_eq!(
            a.keepalive_cost_usd.to_bits(),
            b.keepalive_cost_usd.to_bits()
        );
        assert_eq!(b.shed_requests, 0);
        assert_eq!(b.evictions, 0);
        assert_eq!(b.pressure_minutes, 0);
        assert_eq!(b.fallback_minutes, 0);
        assert!(b.ops_events.is_empty());
    }

    #[test]
    fn watchdog_falls_back_in_the_runtime_and_is_logged() {
        use crate::cluster::{ClusterConfig, OpsEvent};
        use pulse_sim::watchdog::{Watchdog, WatchdogConfig};

        // A policy that never keeps anything alive: every arrival is a cold
        // start, so the violation rate pins at 1.0 and the watchdog must
        // bench it in favour of the fixed baseline.
        struct NeverKeep;
        impl KeepAlivePolicy for NeverKeep {
            fn name(&self) -> &str {
                "never-keep"
            }
            fn schedule_on_invocation(
                &mut self,
                _f: usize,
                t: u64,
            ) -> pulse_core::individual::KeepAliveSchedule {
                pulse_core::individual::KeepAliveSchedule::new(t, Vec::new())
            }
            fn cold_start_variant(&mut self, _f: usize, _t: u64) -> usize {
                0
            }
        }

        let (trace, fams) = one_func(&[1; 60]);
        let rt = Runtime::new(trace, fams.clone(), RuntimeConfig::default());
        let cfg = WatchdogConfig {
            window: 5,
            enter_after: 3,
            exit_after: 10,
            max_violation_rate: 0.5,
            ..WatchdogConfig::default()
        };
        let mut wd = Watchdog::new(NeverKeep, &fams, cfg);
        let s = rt.run_with_cluster(&mut wd, &FaultPlan::none(), &ClusterConfig::unlimited());
        assert!(
            s.fallback_minutes > 0,
            "sustained cold storm must fall back"
        );
        assert!(s
            .ops_events
            .iter()
            .any(|e| matches!(e, OpsEvent::WatchdogFallback { .. })));
        assert!(wd.fallback_minutes() > 0);
        // Once benched, the fixed baseline keeps the container warm: far
        // fewer cold starts than never keeping anything.
        let bare = rt.run(&mut NeverKeep);
        assert!(s.cold_starts() < bare.cold_starts());
        // The fixed baseline stays healthy, so it eventually recovers.
        assert!(wd.transitions().iter().any(|tr| !tr.to_fallback) || wd.in_fallback());
    }

    #[test]
    fn stepped_session_matches_run_bitwise() {
        let trace = pulse_trace::synth::azure_like_12_with_horizon(47, 240);
        let fams = round_robin_assignment(&pulse_models::zoo::standard(), 12);
        let rt = Runtime::new(
            trace,
            fams.clone(),
            RuntimeConfig {
                stochastic_seed: Some(13),
                ..Default::default()
            },
        );
        let whole = rt.run(&mut PulsePolicy::new(fams.clone(), PulseConfig::default()));

        let mut policy = PulsePolicy::new(fams.clone(), PulseConfig::default());
        let mut session = rt.session(&mut policy, &FaultPlan::none(), ClusterConfig::unlimited());
        let mut ticks = 0u64;
        while let Some((_, ev)) = session.step() {
            if matches!(ev, Event::MinuteTick { .. }) {
                ticks += 1;
            }
        }
        assert_eq!(session.pending_events(), 0);
        let stepped = session.finish();
        assert_eq!(ticks, 240);
        assert_eq!(stepped.records, whole.records);
        assert_eq!(
            stepped.keepalive_cost_usd.to_bits(),
            whole.keepalive_cost_usd.to_bits()
        );
        assert_eq!(stepped.downgrades, whole.downgrades);
    }

    #[test]
    fn session_exposes_ledger_state() {
        let (trace, fams) = one_func(&[1, 0, 0, 0]);
        let rt = Runtime::new(trace, fams.clone(), RuntimeConfig::default());
        let mut policy = OpenWhiskFixed::new(&fams);
        let mut session = rt.session(&mut policy, &FaultPlan::none(), ClusterConfig::unlimited());
        assert!(session.ledger().schedule(0).is_none());
        // Tick 0, then the arrival that installs the schedule.
        session.step();
        session.step();
        assert_eq!(session.ledger().alive_variant_at(0, 1), Some(1));
    }

    #[test]
    fn traced_cluster_run_event_counts_match_summary_counters() {
        use crate::cluster::NodeCapacity;
        use pulse_obs::{ActionSource, MemorySink, ObsEvent};
        let trace = pulse_trace::synth::azure_like_12_with_horizon(41, 300);
        let fams = round_robin_assignment(&pulse_models::zoo::standard(), 12);
        let rt = Runtime::new(trace, fams.clone(), RuntimeConfig::default());
        let all_high: f64 = fams.iter().map(|f| f.highest().memory_mb).sum();
        let cluster = ClusterConfig {
            capacity: NodeCapacity::mb(all_high * 0.3),
            ..ClusterConfig::unlimited()
        };
        let mut mem = MemorySink::new();
        let s = rt.run_with_cluster_traced(
            &mut PulsePolicy::new(fams.clone(), PulseConfig::default()),
            &FaultPlan::none(),
            &cluster,
            &mut mem,
        );
        // Downgrade/eviction event counts equal the summary counters, per
        // source: policy actions → `downgrades`, pressure actions →
        // `pressure_downgrades` / `evictions`.
        let policy_actions = mem.count(|e| {
            matches!(
                e,
                ObsEvent::Downgrade {
                    source: ActionSource::Policy,
                    ..
                } | ObsEvent::Evict {
                    source: ActionSource::Policy,
                    ..
                }
            )
        });
        assert_eq!(policy_actions as u64, s.downgrades);
        let pressure_downgrades = mem.count(|e| {
            matches!(
                e,
                ObsEvent::Downgrade {
                    source: ActionSource::Pressure,
                    ..
                }
            )
        });
        assert_eq!(pressure_downgrades as u64, s.pressure_downgrades);
        let pressure_evicts = mem.count(|e| {
            matches!(
                e,
                ObsEvent::Evict {
                    source: ActionSource::Pressure,
                    ..
                }
            )
        });
        assert_eq!(pressure_evicts as u64, s.evictions);
        assert!(pressure_downgrades + pressure_evicts > 0, "cap must bind");
        // Arrivals cover every request; one bill per minute tick.
        assert_eq!(
            mem.count(|e| matches!(e, ObsEvent::Arrival { .. })) as u64,
            s.requests()
        );
        assert_eq!(
            mem.count(|e| matches!(e, ObsEvent::Bill { .. })),
            s.memory_at_tick_mb.len()
        );
        // Every emitted event survives the JSONL round trip.
        for ev in mem.events() {
            assert_eq!(&ObsEvent::from_json(&ev.to_json()).unwrap(), ev);
        }
    }

    #[test]
    fn fault_runs_replay_bit_identically() {
        let trace = pulse_trace::synth::azure_like_12_with_horizon(37, 180);
        let fams = round_robin_assignment(&pulse_models::zoo::standard(), 12);
        let plan = FaultPlan::uniform(0.3, 0.2, 0.1, 99).with_timeout_ms(90_000);
        let rt = Runtime::new(
            trace,
            fams.clone(),
            RuntimeConfig {
                stochastic_seed: Some(3),
                ..Default::default()
            },
        );
        let a = rt.run_with_faults(&mut OpenWhiskFixed::new(&fams), &plan);
        let b = rt.run_with_faults(&mut OpenWhiskFixed::new(&fams), &plan);
        assert_eq!(a.records, b.records);
        assert_eq!(a.provision_failures, b.provision_failures);
        assert_eq!(a.provision_retries, b.provision_retries);
        assert_eq!(a.variant_load_failures, b.variant_load_failures);
        assert_eq!(a.exec_crashes, b.exec_crashes);
        assert_eq!(a.request_retries, b.request_retries);
        assert_eq!(a.degradations, b.degradations);
        assert_eq!(a.timeouts, b.timeouts);
        assert_eq!(a.reaped, b.reaped);
        assert_eq!(a.keepalive_cost_usd, b.keepalive_cost_usd);
    }

    #[test]
    fn arrival_times_match_the_trace_seeded_layout() {
        // Offsets start 1 ms after the tick and never spill into the next
        // minute, matching the seeding loop this helper was lifted from.
        assert_eq!(arrival_times_in_minute(0, 0).count(), 0);
        assert_eq!(arrival_times_in_minute(0, 1).collect::<Vec<_>>(), vec![1]);
        let ts: Vec<u64> = arrival_times_in_minute(3, 4).collect();
        assert_eq!(ts.len(), 4);
        assert!(ts.windows(2).all(|w| w[0] < w[1]));
        assert!(ts
            .iter()
            .all(|&t| { t > 3 * MS_PER_MINUTE && t < 4 * MS_PER_MINUTE }));
        // Heavy minutes stay in-minute too.
        let dense: Vec<u64> = arrival_times_in_minute(1, 100_000).collect();
        assert!(dense
            .iter()
            .all(|&t| (MS_PER_MINUTE + 1..2 * MS_PER_MINUTE).contains(&t)));
    }

    #[test]
    fn admitted_stream_is_bit_identical_to_trace_seeded_run() {
        // A zero-trace session fed the expanded stream up front must be the
        // trace-seeded run, event sequence numbers and all.
        let trace = pulse_trace::synth::azure_like_12_with_horizon(11, 180);
        let fams = round_robin_assignment(&pulse_models::zoo::standard(), 12);
        let seeded = Runtime::new(trace.clone(), fams.clone(), RuntimeConfig::default())
            .run(&mut PulsePolicy::new(fams.clone(), PulseConfig::default()));

        let zeros = Trace::new(
            trace
                .functions()
                .iter()
                .map(|f| FunctionTrace::new(f.name.clone(), vec![0; trace.minutes()]))
                .collect(),
        );
        let rt = Runtime::new(zeros, fams.clone(), RuntimeConfig::default());
        let mut policy = PulsePolicy::new(fams.clone(), PulseConfig::default());
        let mut session = rt.session(&mut policy, &FaultPlan::none(), ClusterConfig::unlimited());
        for m in 0..trace.minutes() as u64 {
            for f in 0..trace.n_functions() {
                for at in arrival_times_in_minute(m, trace.function(f).at(m) as u64) {
                    session.admit_at(at, f);
                }
            }
        }
        while session.step().is_some() {}
        let admitted = session.finish();
        assert_eq!(admitted.records, seeded.records);
        assert_eq!(
            admitted.keepalive_cost_usd.to_bits(),
            seeded.keepalive_cost_usd.to_bits()
        );
        assert_eq!(admitted.memory_at_tick_mb, seeded.memory_at_tick_mb);
    }

    #[test]
    fn admit_at_schedules_the_timeout_timer() {
        let (trace, fams) = one_func(&[0; 5]);
        let plan = FaultPlan::none().with_timeout_ms(10);
        let rt = Runtime::new(trace, fams.clone(), RuntimeConfig::default());
        let mut policy = OpenWhiskFixed::new(&fams);
        let mut session = rt.session(&mut policy, &plan, ClusterConfig::unlimited());
        let before = session.pending_events();
        session.admit_at(1, 0);
        assert_eq!(session.pending_events(), before + 2, "arrival + timeout");
        while session.step().is_some() {}
        let s = session.finish();
        // A cold start cannot finish inside a 10 ms budget.
        assert_eq!(s.timeouts, 1);
        assert_eq!(s.failed_requests(), 1);
    }

    #[test]
    fn node_crash_abort_ignores_the_stale_crash_completion() {
        // Regression for the in-flight accounting: serialize a long backlog
        // through one container (cap 1) with every execution fated to crash,
        // then crash the node at minute 1 while an execution is in flight.
        // The node crash zeroes `in_flight` and bumps the request's
        // generation, so the already-queued ExecFailed for that execution is
        // a *duplicate* completion — it must be dropped by the generation
        // check before the (debug-asserted) decrement, and the run must
        // complete with the accounting intact.
        // Seed 4 is pinned: the fault RNG's crash points leave request 8's
        // crashing execution straddling the minute-1 tick, so the node crash
        // aborts it (`redispatched_requests` below witnesses the abort).
        let (trace, fams) = one_func(&[40, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        let plan = FaultPlan {
            seed: 4,
            default_rates: FaultRates {
                provision_failure: 0.0,
                variant_load_failure: 0.0,
                exec_crash: 1.0,
                min_faulty_variant: None,
            },
            retry: RetryPolicy {
                max_retries: 1,
                ..RetryPolicy::default()
            },
            ..FaultPlan::none()
        };
        let fleet = FleetConfig::single(NodeSpec::nominal(
            "n0",
            crate::cluster::NodeCapacity::unlimited(),
        ))
        .with_node_faults(crate::node::NodeFaultPlan::none().with(
            crate::node::NodeFault {
                node: 0,
                kind: NodeFaultKind::Crash,
                at_minute: 1,
                duration_minutes: 1,
            },
        ));
        let rt = Runtime::new(
            trace,
            fams.clone(),
            RuntimeConfig {
                max_concurrency: Some(1),
                ..Default::default()
            },
        );
        let s = rt.run_with_fleet(&mut OpenWhiskFixed::new(&fams), &plan, &fleet);
        assert_eq!(s.requests(), 40);
        assert!(s.exec_crashes > 0, "executions crashed before the node did");
        assert!(
            s.redispatched_requests > 0,
            "the node crash aborted in-flight work"
        );
        // Every request reached a terminal state exactly once.
        assert_eq!(
            s.records.iter().filter(|r| r.failed).count() as u64,
            s.failed_requests()
        );
    }
}

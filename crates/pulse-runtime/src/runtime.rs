//! The event-driven runtime loop.
//!
//! The loop is a steppable pipeline: [`Runtime::session`] builds a
//! [`RuntimeSession`] whose [`RuntimeSession::step`] processes exactly one
//! event (a minute tick runs observe → adjust → capacity-enforcement →
//! materialize/bill, in that order), and [`Runtime::run`] /
//! [`Runtime::run_with_faults`] / [`Runtime::run_with_cluster`] are all the
//! same `while step()` loop over one implementation. Schedule state lives in
//! the shared [`pulse_core::schedule::ScheduleLedger`] — the same substrate
//! the minute engine drives — so downgrade application, footprint metering
//! and billing are defined once for both engines.
//!
//! Semantics are aligned with `pulse_sim::Simulator` so the two engines can
//! be cross-validated (see the `validation` integration tests and
//! `pulse-exp validate`):
//!
//! * a **minute tick** fires at each minute boundary *before* that minute's
//!   arrivals: keep-alive schedules decide which container (if any) each
//!   function holds during the minute, the policy's cross-function layer may
//!   downgrade/evict (applied to this minute only), and keep-alive memory is
//!   billed from the post-adjustment schedule footprint;
//! * an **arrival** is served warm when its function holds a container
//!   (warm, executing, or still provisioning from an earlier cold start —
//!   in the last case the request queues until the container is ready, and
//!   only the request that *triggered* the provisioning counts as cold);
//! * each function's **schedule** is replaced by the policy's plan at the
//!   first arrival of every active minute, exactly as in the minute engine;
//! * variant swaps at minute boundaries are **proactive**: the plan is known
//!   a minute ahead, so the incoming variant is warm at the tick (the same
//!   assumption the minute engine — and the paper's accounting — makes).
//!
//! What this engine adds over the minute engine: millisecond latency
//! accounting (queueing behind provisioning, optional per-container
//! concurrency limits), a per-request record stream, and — via
//! [`Runtime::run_with_faults`] — a fault-injection and resilience layer.
//!
//! # Fault semantics
//!
//! Under a non-trivial [`FaultPlan`]:
//!
//! * a **provisioning attempt** (cold start, retry, or a failed proactive
//!   variant load) may fail after its full provisioning duration; failed
//!   attempts are retried with capped exponential backoff + jitter, and
//!   after `max_retries` retries the runtime **degrades one ladder rung**
//!   (re-pointing queued requests at the lower variant and recording the
//!   accuracy penalty). Only when the cheapest variant also exhausts its
//!   retries is the container reaped and its queued requests failed;
//! * a **proactive variant load** at a minute tick may fail, demoting the
//!   pre-warm to the provisioning path above (the minute is still billed
//!   from the schedule footprint, exactly as in the fault-free engine —
//!   billing is schedule-driven and crashes can never double-bill);
//! * an **execution** may crash its container partway through: the
//!   container is reaped, sibling in-flight executions run to completion
//!   (their results were already materialized), queued requests wait for a
//!   replacement container provisioned on the spot, and the crashed request
//!   is retried with backoff up to `max_retries` times before failing;
//! * with a **request timeout** configured, a request that has not
//!   completed within its budget is failed and counted as a timeout; an
//!   execution already in flight runs on (billing is unaffected) but its
//!   record keeps the timeout classification.
//!
//! Faults draw from a dedicated seeded RNG ([`FaultInjector`]) that never
//! touches the duration sampler's stream, so the same
//! `RuntimeConfig.stochastic_seed` + `FaultPlan` reproduce identical
//! failure sequences, retry schedules and summary counters; and
//! [`FaultPlan::none`] consumes no randomness and schedules no extra
//! events, making `run_with_faults(policy, &FaultPlan::none())`
//! bit-identical to [`Runtime::run`].

use crate::cluster::{ClusterConfig, OpsEvent};
use crate::container::{ContainerState, LiveContainer};
use crate::event::{Event, EventQueue};
use crate::fault::{FaultInjector, FaultPlan};
use crate::metrics::{RequestRecord, RuntimeSummary};
use crate::MS_PER_MINUTE;
use pulse_core::global::{flatten_peak, DowngradeAction};
use pulse_core::priority::PriorityStructure;
use pulse_core::schedule::{begins_keepalive_period, ScheduleLedger};
use pulse_models::{CostModel, ModelFamily, VariantId};
use pulse_obs::{emit, ActionSource, ObsEvent, TraceSink};
use pulse_sim::policy::{KeepAlivePolicy, MinuteObservation};
use pulse_trace::Trace;
use std::collections::VecDeque;

/// Runtime tunables.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Max in-flight requests per container; `None` = unbounded (the
    /// minute engine's implicit assumption).
    pub max_concurrency: Option<u32>,
    /// Cost model for keep-alive billing.
    pub cost: CostModel,
    /// When set, execution and provisioning durations are drawn from the
    /// calibrated lognormal profiler (seeded here) instead of being
    /// deterministic means — the measured-style jitter of real Lambda runs.
    pub stochastic_seed: Option<u64>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            max_concurrency: None,
            cost: CostModel::aws_lambda(),
            stochastic_seed: None,
        }
    }
}

/// The millisecond-resolution platform.
#[derive(Debug, Clone)]
pub struct Runtime {
    trace: Trace,
    families: Vec<ModelFamily>,
    config: RuntimeConfig,
}

/// Draws execution/provisioning durations — deterministic means, or the
/// calibrated lognormal jitter when a seed is configured.
struct DurationSampler {
    rng: Option<rand::rngs::SmallRng>,
    profiler: pulse_models::Profiler,
}

impl DurationSampler {
    fn new(seed: Option<u64>) -> Self {
        use rand::SeedableRng;
        Self {
            rng: seed.map(rand::rngs::SmallRng::seed_from_u64),
            profiler: pulse_models::Profiler::default(),
        }
    }

    fn warm_ms(&mut self, spec: &pulse_models::VariantSpec) -> u64 {
        let s = match self.rng.as_mut() {
            Some(rng) => self.profiler.sample_warm(spec, rng),
            None => spec.warm_service_time_s,
        };
        ((s * 1000.0).round() as u64).max(1)
    }

    fn provision_ms(&mut self, spec: &pulse_models::VariantSpec) -> u64 {
        let s = match self.rng.as_mut() {
            Some(rng) => self.profiler.sample_cold_start(spec, rng),
            None => spec.cold_start_s,
        };
        (s * 1000.0).round() as u64
    }
}

struct FnState {
    container: Option<LiveContainer>,
    /// Requests waiting for provisioning or a concurrency slot.
    waiting: VecDeque<usize>,
    /// In-flight request count (for the concurrency cap).
    in_flight: u32,
    /// Last minute for which the policy was asked for a schedule.
    scheduled_minute: Option<u64>,
    epoch: u64,
    /// Failed provisioning attempts of the current rung (fault injection).
    provision_attempts: u32,
}

/// The mutable machinery of one execution: event queue, per-function and
/// per-request state, samplers, and the summary being accumulated. Grouping
/// it lets the fault handlers be methods instead of 10-argument functions.
struct RunState<'a> {
    queue: EventQueue,
    fns: Vec<FnState>,
    /// Keep-alive schedules, one per function — the shared billing/downgrade
    /// substrate (same semantics as the minute engine's ledger).
    ledger: ScheduleLedger,
    records: Vec<RequestRecord>,
    /// Variant serving each request (re-pointed on ladder degradation).
    req_warm_variant: Vec<VariantId>,
    /// Crash retries consumed per request.
    req_retries: Vec<u32>,
    /// Whether each request reached a terminal state (done or failed).
    req_done: Vec<bool>,
    summary: RuntimeSummary,
    sampler: DurationSampler,
    injector: FaultInjector,
    cap: u32,
    /// Requests currently waiting across all functions (for provisioning or
    /// a concurrency slot) — the backlog admission control bounds.
    pending: usize,
    /// Downgrade counts of the capacity enforcer (shields repeat victims,
    /// exactly as Algorithm 2's priority term does for policy peaks).
    pressure_priority: PriorityStructure,
    /// Arrivals observed since the last minute tick.
    minute_requests: u64,
    /// SLO violations (cold arrivals, terminal failures, sheds) since the
    /// last minute tick.
    minute_violations: u64,
    /// Keep-alive memory billed at the last minute tick, MB.
    last_billed_mb: f64,
    /// Watchdog state at the last tick (for transition events).
    prev_fallback: bool,
    /// Attached observer, if any. Disabled/absent sinks cost one branch per
    /// emission point and change nothing else (the transparency contract).
    sink: Option<&'a mut dyn TraceSink>,
}

impl RunState<'_> {
    /// Begin executing `req` on `func`'s warm container, drawing the
    /// execution duration and (under faults) a possible mid-execution crash.
    fn start_exec(&mut self, fam: &ModelFamily, func: usize, req: usize, now: u64) {
        self.fns[func].in_flight += 1;
        let mut epoch = 0;
        if let Some(c) = self.fns[func].container.as_mut() {
            c.begin_exec();
            epoch = c.epoch;
        }
        let v = self.req_warm_variant[req];
        let exec = self.sampler.warm_ms(fam.variant(v));
        if self.injector.exec_crashes(func, v) {
            let at = now + self.injector.crash_point_ms(exec);
            self.queue.push(at, Event::ExecFailed { func, req, epoch });
        } else {
            self.queue.push(now + exec, Event::ExecDone { func, req });
        }
    }

    /// Start provisioning variant `v` for `func` after `delay_ms` of
    /// backoff, drawing the provisioning duration and (under faults) the
    /// attempt's outcome. Bumps the epoch so stale completions are ignored.
    fn begin_provision(
        &mut self,
        fam: &ModelFamily,
        func: usize,
        v: VariantId,
        now: u64,
        delay_ms: u64,
    ) {
        let dur = self.sampler.provision_ms(fam.variant(v));
        let ready = now + delay_ms + dur;
        let st = &mut self.fns[func];
        st.epoch += 1;
        st.container = Some(LiveContainer::provisioning(v, ready, st.epoch));
        let epoch = st.epoch;
        if self.injector.provision_fails(func, v) {
            self.queue
                .push(ready, Event::ProvisionFailed { func, epoch });
        } else {
            self.queue.push(ready, Event::ProvisionDone { func, epoch });
        }
    }

    /// Start as many waiting requests as the concurrency cap allows.
    fn drain_waiting(&mut self, fam: &ModelFamily, func: usize, now: u64) {
        let can_serve = self.fns[func]
            .container
            .as_ref()
            .is_some_and(|c| c.is_warm());
        if !can_serve {
            return;
        }
        while self.fns[func].in_flight < self.cap {
            let Some(req) = self.fns[func].waiting.pop_front() else {
                break;
            };
            self.pending -= 1;
            self.start_exec(fam, func, req, now);
        }
    }

    /// Mark `req` as terminally failed at `now`.
    fn fail_request(&mut self, req: usize, now: u64) {
        if self.req_done[req] {
            return;
        }
        self.req_done[req] = true;
        self.records[req].failed = true;
        self.records[req].done_ms = now;
        self.minute_violations += 1;
    }

    /// A provisioning attempt failed: retry with backoff, or — once the
    /// rung's retry budget is spent — degrade one ladder rung, reaping the
    /// container only when the cheapest variant is also out of retries.
    fn on_provision_failed(&mut self, fam: &ModelFamily, func: usize, epoch: u64, now: u64) {
        let Some(c) = self.fns[func].container.as_ref() else {
            return;
        };
        if c.epoch != epoch || c.state != ContainerState::Provisioning {
            return;
        }
        let v = c.variant;
        self.summary.provision_failures += 1;
        self.fns[func].provision_attempts += 1;
        let attempts = self.fns[func].provision_attempts;
        if attempts <= self.injector.plan().retry.max_retries {
            self.summary.provision_retries += 1;
            let backoff = self.injector.backoff_ms(attempts);
            self.begin_provision(fam, func, v, now, backoff);
        } else if let Some(lower) = fam.next_lower(v) {
            // Graceful degradation: Algorithm 2's downgrade move, applied as
            // a failure response — one rung down instead of failing requests.
            self.summary.degradations += 1;
            emit(&mut self.sink, || ObsEvent::Degrade {
                at_ms: now,
                func,
                from: v,
                to: lower,
            });
            let new_acc = fam.variant(lower).accuracy_pct;
            let waiting: Vec<usize> = self.fns[func].waiting.iter().copied().collect();
            for r in waiting {
                if self.req_warm_variant[r] != lower {
                    self.summary.degraded_requests += 1;
                    self.summary.accuracy_penalty_pct +=
                        (self.records[r].accuracy_pct - new_acc).max(0.0);
                    self.records[r].accuracy_pct = new_acc;
                    self.req_warm_variant[r] = lower;
                }
            }
            self.fns[func].provision_attempts = 0;
            self.begin_provision(fam, func, lower, now, 0);
        } else {
            // The cheapest variant failed too: the ladder is exhausted.
            self.summary.reaped += 1;
            emit(&mut self.sink, || ObsEvent::Reap { at_ms: now, func });
            if let Some(c) = self.fns[func].container.as_mut() {
                c.state = ContainerState::Reaped;
            }
            self.fns[func].container = None;
            self.fns[func].provision_attempts = 0;
            while let Some(r) = self.fns[func].waiting.pop_front() {
                self.pending -= 1;
                self.fail_request(r, now);
            }
        }
    }

    /// A container crashed mid-execution: reap it (unless already
    /// replaced), retry the aborted request with backoff, and re-provision
    /// for any queued requests.
    fn on_exec_failed(&mut self, fam: &ModelFamily, func: usize, req: usize, epoch: u64, now: u64) {
        self.summary.exec_crashes += 1;
        self.fns[func].in_flight = self.fns[func].in_flight.saturating_sub(1);
        let same_container = self.fns[func]
            .container
            .as_ref()
            .is_some_and(|c| c.epoch == epoch);
        if same_container {
            if let Some(c) = self.fns[func].container.as_mut() {
                c.state = ContainerState::Reaped;
            }
            self.fns[func].container = None;
        }
        if !self.req_done[req] {
            self.req_retries[req] += 1;
            if self.req_retries[req] <= self.injector.plan().retry.max_retries {
                self.summary.request_retries += 1;
                let backoff = self.injector.backoff_ms(self.req_retries[req]);
                self.queue
                    .push(now + backoff, Event::RetryRequest { func, req });
            } else {
                self.fail_request(req, now);
            }
        }
        // Queued requests lost their container: provision a replacement at
        // the rung they are assigned to.
        if self.fns[func].container.is_none() {
            if let Some(&front) = self.fns[func].waiting.front() {
                let v = self.req_warm_variant[front];
                self.fns[func].provision_attempts = 0;
                self.begin_provision(fam, func, v, now, 0);
            }
        }
    }

    /// Re-attempt a crashed request after its backoff.
    fn on_retry_request(&mut self, fam: &ModelFamily, func: usize, req: usize, now: u64) {
        if self.req_done[req] {
            return;
        }
        let warm_variant = self.fns[func]
            .container
            .as_ref()
            .and_then(|c| c.is_warm().then_some(c.variant));
        match (warm_variant, self.fns[func].container.is_some()) {
            (Some(v), _) => {
                // The retried execution runs on whatever rung is now live.
                if self.req_warm_variant[req] != v {
                    self.records[req].accuracy_pct = fam.variant(v).accuracy_pct;
                    self.req_warm_variant[req] = v;
                }
                if self.fns[func].in_flight < self.cap {
                    self.start_exec(fam, func, req, now);
                } else {
                    self.pending += 1;
                    self.fns[func].waiting.push_back(req);
                }
            }
            (None, true) => {
                self.pending += 1;
                self.fns[func].waiting.push_back(req);
            }
            (None, false) => {
                let v = self.req_warm_variant[req];
                self.pending += 1;
                self.fns[func].waiting.push_back(req);
                self.fns[func].provision_attempts = 0;
                self.begin_provision(fam, func, v, now, 0);
            }
        }
    }

    /// A request blew its SLO budget: fail it and drop it from the waiting
    /// queue. An execution already in flight runs on; its completion event
    /// only does container bookkeeping.
    fn on_timeout(&mut self, func: usize, req: usize, now: u64) {
        if self.req_done[req] {
            return;
        }
        self.summary.timeouts += 1;
        self.fail_request(req, now);
        if let Some(pos) = self.fns[func].waiting.iter().position(|&r| r == req) {
            self.fns[func].waiting.remove(pos);
            self.pending -= 1;
        }
    }
}

impl Runtime {
    /// Build over a trace and a per-function family assignment.
    pub fn new(trace: Trace, families: Vec<ModelFamily>, config: RuntimeConfig) -> Self {
        assert_eq!(trace.n_functions(), families.len());
        Self {
            trace,
            families,
            config,
        }
    }

    /// Execute the whole trace under `policy` on a perfectly reliable
    /// platform (equivalent to [`Self::run_with_faults`] with
    /// [`FaultPlan::none`]).
    pub fn run(&self, policy: &mut dyn KeepAlivePolicy) -> RuntimeSummary {
        self.run_with_faults(policy, &FaultPlan::none())
    }

    /// Execute the whole trace under `policy` with faults injected per
    /// `plan`. See the module docs for the fault semantics; with
    /// [`FaultPlan::none`] this is bit-identical to [`Self::run`].
    pub fn run_with_faults(
        &self,
        policy: &mut dyn KeepAlivePolicy,
        plan: &FaultPlan,
    ) -> RuntimeSummary {
        self.run_with_cluster(policy, plan, &ClusterConfig::unlimited())
    }

    /// Execute the whole trace under `policy` with faults per `plan` on a
    /// *finite* node: keep-alive memory is capped by
    /// [`ClusterConfig::capacity`] (overage flattened by utility-ordered
    /// pressure downgrades/evictions) and the pending backlog is bounded by
    /// [`ClusterConfig::admission`] (excess arrivals shed). With
    /// [`ClusterConfig::unlimited`] this is bit-identical to
    /// [`Self::run_with_faults`].
    pub fn run_with_cluster(
        &self,
        policy: &mut dyn KeepAlivePolicy,
        plan: &FaultPlan,
        cluster: &ClusterConfig,
    ) -> RuntimeSummary {
        let mut session = self.session(policy, plan, *cluster);
        while session.step().is_some() {}
        session.finish()
    }

    /// [`Self::run`] with a [`TraceSink`] attached (see
    /// [`Self::session_traced`] for the event contract).
    pub fn run_traced(
        &self,
        policy: &mut dyn KeepAlivePolicy,
        sink: &mut dyn TraceSink,
    ) -> RuntimeSummary {
        self.run_with_faults_traced(policy, &FaultPlan::none(), sink)
    }

    /// [`Self::run_with_faults`] with a [`TraceSink`] attached.
    pub fn run_with_faults_traced(
        &self,
        policy: &mut dyn KeepAlivePolicy,
        plan: &FaultPlan,
        sink: &mut dyn TraceSink,
    ) -> RuntimeSummary {
        self.run_with_cluster_traced(policy, plan, &ClusterConfig::unlimited(), sink)
    }

    /// [`Self::run_with_cluster`] with a [`TraceSink`] attached.
    pub fn run_with_cluster_traced(
        &self,
        policy: &mut dyn KeepAlivePolicy,
        plan: &FaultPlan,
        cluster: &ClusterConfig,
        sink: &mut dyn TraceSink,
    ) -> RuntimeSummary {
        let mut session = self.session_traced(policy, plan, *cluster, sink);
        while session.step().is_some() {}
        session.finish()
    }

    /// Begin a steppable run: all events (minute ticks, arrivals, optional
    /// SLO timers) are seeded up front, and each [`RuntimeSession::step`]
    /// call processes exactly one. [`Self::run_with_cluster`] is precisely
    /// `while session.step().is_some() {}` + [`RuntimeSession::finish`];
    /// callers that need to interleave the run with other work (online
    /// serving shims, co-simulation, the cross-engine equivalence tests)
    /// drive the same loop by hand.
    pub fn session<'a>(
        &'a self,
        policy: &'a mut dyn KeepAlivePolicy,
        plan: &FaultPlan,
        cluster: ClusterConfig,
    ) -> RuntimeSession<'a> {
        self.session_impl(policy, plan, cluster, None)
    }

    /// [`Self::session`] with a [`TraceSink`] attached: every adjust, bill,
    /// downgrade/eviction (policy- and pressure-sourced), arrival, shed,
    /// fault degradation/reap and watchdog transition is emitted as a typed
    /// [`ObsEvent`]. With a disabled sink (e.g. [`pulse_obs::NullSink`]) the
    /// run is bit-identical to the un-traced one — sinks observe, they
    /// never steer.
    pub fn session_traced<'a>(
        &'a self,
        policy: &'a mut dyn KeepAlivePolicy,
        plan: &FaultPlan,
        cluster: ClusterConfig,
        sink: &'a mut dyn TraceSink,
    ) -> RuntimeSession<'a> {
        self.session_impl(policy, plan, cluster, Some(sink))
    }

    fn session_impl<'a>(
        &'a self,
        policy: &'a mut dyn KeepAlivePolicy,
        plan: &FaultPlan,
        cluster: ClusterConfig,
        sink: Option<&'a mut dyn TraceSink>,
    ) -> RuntimeSession<'a> {
        let n = self.families.len();
        let minutes = self.trace.minutes() as u64;
        let mut rs = RunState {
            queue: EventQueue::new(),
            fns: (0..n)
                .map(|_| FnState {
                    container: None,
                    waiting: VecDeque::new(),
                    in_flight: 0,
                    scheduled_minute: None,
                    epoch: 0,
                    provision_attempts: 0,
                })
                .collect(),
            ledger: ScheduleLedger::new(n),
            records: Vec::new(),
            req_warm_variant: Vec::new(),
            req_retries: Vec::new(),
            req_done: Vec::new(),
            summary: RuntimeSummary::default(),
            sampler: DurationSampler::new(self.config.stochastic_seed),
            injector: FaultInjector::new(plan),
            cap: self.config.max_concurrency.unwrap_or(u32::MAX),
            pending: 0,
            pressure_priority: PriorityStructure::new(n),
            minute_requests: 0,
            minute_violations: 0,
            last_billed_mb: 0.0,
            prev_fallback: false,
            sink,
        };
        let mut req_func: Vec<usize> = Vec::new();

        // Minute ticks.
        for m in 0..minutes {
            rs.queue
                .push(m * MS_PER_MINUTE, Event::MinuteTick { minute: m });
        }
        // Arrivals, spread across each active minute (offset ≥ 1 ms so the
        // tick always precedes them).
        for m in 0..minutes {
            for f in 0..n {
                let count = self.trace.function(f).at(m) as u64;
                if count == 0 {
                    continue;
                }
                let stride = (MS_PER_MINUTE - 2) / count;
                for k in 0..count {
                    let at = m * MS_PER_MINUTE + 1 + k * stride;
                    let req = rs.records.len();
                    rs.records.push(RequestRecord {
                        arrival_ms: at,
                        done_ms: at,
                        warm: false,
                        accuracy_pct: 0.0,
                        failed: false,
                    });
                    req_func.push(f);
                    rs.req_warm_variant.push(0);
                    rs.req_retries.push(0);
                    rs.req_done.push(false);
                    rs.queue.push(at, Event::Arrival { func: f, req });
                }
            }
        }
        // SLO timers (only when the plan configures a timeout, so fault-free
        // runs schedule no extra events).
        if let Some(t) = plan.request_timeout_ms {
            for (req, (rec, &func)) in rs.records.iter().zip(req_func.iter()).enumerate() {
                let at = rec.arrival_ms.saturating_add(t);
                rs.queue.push(at, Event::RequestTimeout { func, req });
            }
        }

        RuntimeSession {
            rt: self,
            policy,
            cluster,
            rs,
            demand_history: Vec::with_capacity(minutes as usize),
            invoked_this_minute: false,
        }
    }
}

/// An in-flight runtime execution: one event per [`Self::step`] call, over
/// the shared [`ScheduleLedger`] substrate. Built by [`Runtime::session`].
pub struct RuntimeSession<'a> {
    rt: &'a Runtime,
    policy: &'a mut dyn KeepAlivePolicy,
    cluster: ClusterConfig,
    rs: RunState<'a>,
    demand_history: Vec<f64>,
    invoked_this_minute: bool,
}

impl RuntimeSession<'_> {
    /// The ledger's current schedule state.
    pub fn ledger(&self) -> &ScheduleLedger {
        &self.rs.ledger
    }

    /// Events still queued (the run completes when this reaches zero).
    pub fn pending_events(&self) -> usize {
        self.rs.queue.len()
    }

    /// Timestamp (ms) of the next queued event, `None` once drained. Lets a
    /// caller co-stepping this session with another engine advance exactly
    /// through one minute's events without processing the next minute tick.
    pub fn peek_time(&self) -> Option<u64> {
        self.rs.queue.peek_time()
    }

    /// Process the next event. A minute tick runs the full pipeline
    /// (observe previous minute → policy adjustment → capacity enforcement
    /// → materialize containers and bill); every other event advances the
    /// arrival/service machinery. Returns the `(time_ms, event)` processed,
    /// or `None` once the queue is drained.
    pub fn step(&mut self) -> Option<(u64, Event)> {
        let (now, event) = self.rs.queue.pop()?;
        match &event {
            Event::MinuteTick { minute } => self.on_minute_tick(now, *minute),
            Event::Arrival { func, req } => self.on_arrival(now, *func, *req),
            Event::ProvisionDone { func, epoch } => self.on_provision_done(now, *func, *epoch),
            Event::ProvisionFailed { func, epoch } => {
                self.rs
                    .on_provision_failed(&self.rt.families[*func], *func, *epoch, now);
            }
            Event::ExecDone { func, req } => self.on_exec_done(now, *func, *req),
            Event::ExecFailed { func, req, epoch } => {
                self.rs
                    .on_exec_failed(&self.rt.families[*func], *func, *req, *epoch, now);
            }
            Event::RequestTimeout { func, req } => self.rs.on_timeout(*func, *req, now),
            Event::RetryRequest { func, req } => {
                self.rs
                    .on_retry_request(&self.rt.families[*func], *func, *req, now);
            }
        }
        Some((now, event))
    }

    /// Drain any remaining events and return the summary
    /// ([`Runtime::run_with_cluster`] without the loop already run).
    pub fn finish(self) -> RuntimeSummary {
        let mut summary = self.rs.summary;
        summary.records = self.rs.records;
        summary
    }

    /// The minute-tick pipeline, in billing-significant order.
    fn on_minute_tick(&mut self, now: u64, minute: u64) {
        self.stage_observe_previous(minute);
        self.stage_adjust(minute);
        self.stage_enforce_capacity(minute);
        self.stage_materialize_and_bill(now, minute);
    }

    /// Tick stage 1: close out the previous minute for the policy's
    /// self-monitoring (a no-op for plain policies; the watchdog wrapper may
    /// flip its fallback state here, before this minute's planning).
    fn stage_observe_previous(&mut self, minute: u64) {
        if minute == 0 {
            return;
        }
        let obs = MinuteObservation {
            minute: minute - 1,
            requests: std::mem::take(&mut self.rs.minute_requests),
            slo_violations: std::mem::take(&mut self.rs.minute_violations),
            keepalive_mb: self.rs.last_billed_mb,
        };
        self.policy.observe_minute(&obs);
        let fb = self.policy.in_fallback();
        if fb {
            self.rs.summary.fallback_minutes += 1;
        }
        if fb != self.rs.prev_fallback {
            self.rs.prev_fallback = fb;
            self.rs.summary.ops_events.push(if fb {
                OpsEvent::WatchdogFallback { minute }
            } else {
                OpsEvent::WatchdogRecover { minute }
            });
            emit(&mut self.rs.sink, || ObsEvent::Watchdog {
                minute,
                fallback: fb,
            });
        }
    }

    /// Tick stage 2: the policy's cross-function adjustment against the
    /// schedule demand, applied to this minute of the ledger only.
    fn stage_adjust(&mut self, minute: u64) {
        let invoked_last_minute = std::mem::take(&mut self.invoked_this_minute);
        let footprint = self.rs.ledger.minute_footprint(&self.rt.families, minute);
        let mut alive = footprint.alive;
        let kam = footprint.total_mb;
        let first_minute = begins_keepalive_period(invoked_last_minute, kam, &self.demand_history);
        let actions =
            self.policy
                .adjust_minute(minute, &self.demand_history, first_minute, kam, &mut alive);
        self.demand_history.push(kam);
        self.rs.summary.downgrades += actions.len() as u64;
        // Apply action-by-action (the exact loop `apply_actions` runs) so
        // each one's applied/ignored outcome can be reported.
        let mut applied = 0usize;
        for a in &actions {
            let moved = self.rs.ledger.apply_action(minute, a);
            applied += usize::from(moved);
            emit(&mut self.rs.sink, || match *a {
                DowngradeAction::Downgrade { func, from, to } => ObsEvent::Downgrade {
                    minute,
                    func,
                    from,
                    to,
                    source: ActionSource::Policy,
                    applied: moved,
                },
                DowngradeAction::Evict { func, from } => ObsEvent::Evict {
                    minute,
                    func,
                    from,
                    source: ActionSource::Policy,
                    applied: moved,
                },
            });
        }
        emit(&mut self.rs.sink, || ObsEvent::Adjust {
            minute,
            requested: actions.len(),
            applied,
            keepalive_mb: kam,
        });
    }

    /// Tick stage 3: node-capacity enforcement — when the post-adjustment
    /// plan still exceeds the hard cap, flatten the overage with Algorithm
    /// 2's utility-ordered downgrade loop (lowest `Uv` first; the pressure
    /// priority structure shields repeat victims across ticks). Applied
    /// before billing, so the billed footprint can never exceed the cap.
    fn stage_enforce_capacity(&mut self, minute: u64) {
        let Some(cap_mb) = self.cluster.capacity.keepalive_mb else {
            return;
        };
        let footprint = self.rs.ledger.minute_footprint(&self.rt.families, minute);
        let mut planned = footprint.alive;
        let planned_mb = footprint.total_mb;
        if planned_mb <= cap_mb {
            return;
        }
        self.rs.summary.pressure_minutes += 1;
        let outcome = flatten_peak(
            &mut planned,
            &self.rt.families,
            &mut self.rs.pressure_priority,
            planned_mb,
            cap_mb,
        );
        for a in &outcome.actions {
            let moved = self.rs.ledger.apply_action(minute, a);
            match *a {
                DowngradeAction::Downgrade { func, from, to } => {
                    self.rs.summary.pressure_downgrades += 1;
                    self.rs
                        .summary
                        .ops_events
                        .push(OpsEvent::PressureDowngrade {
                            minute,
                            func,
                            from,
                            to,
                        });
                    emit(&mut self.rs.sink, || ObsEvent::Downgrade {
                        minute,
                        func,
                        from,
                        to,
                        source: ActionSource::Pressure,
                        applied: moved,
                    });
                }
                DowngradeAction::Evict { func, from } => {
                    self.rs.summary.evictions += 1;
                    self.rs
                        .summary
                        .ops_events
                        .push(OpsEvent::Evicted { minute, func, from });
                    emit(&mut self.rs.sink, || ObsEvent::Evict {
                        minute,
                        func,
                        from,
                        source: ActionSource::Pressure,
                        applied: moved,
                    });
                }
            }
        }
    }

    /// Tick stage 4: materialize containers per the post-adjustment plan
    /// and bill the minute. Billing is schedule-driven: fault outcomes below
    /// never change what this minute costs.
    #[allow(clippy::needless_range_loop)] // parallel per-function tables
    fn stage_materialize_and_bill(&mut self, now: u64, minute: u64) {
        let rs = &mut self.rs;
        let mut billed = 0.0f64;
        for f in 0..self.rt.families.len() {
            let desired = rs.ledger.alive_variant_at(f, minute);
            if let Some(v) = desired {
                billed += self.rt.families[f].variant(v).memory_mb;
            }
            let held = rs.fns[f]
                .container
                .as_ref()
                .map(|c| (c.is_warm(), c.variant));
            match (held, desired) {
                (Some((true, cur)), Some(v)) if cur != v => {
                    // Proactive variant swap: warm by assumption, unless the
                    // variant load fails.
                    if rs.injector.variant_load_fails(f, v) {
                        rs.summary.variant_load_failures += 1;
                        rs.fns[f].provision_attempts = 0;
                        rs.begin_provision(&self.rt.families[f], f, v, now, 0);
                    } else {
                        let st = &mut rs.fns[f];
                        st.epoch += 1;
                        st.container = Some(LiveContainer::warm(v, now, st.epoch));
                    }
                }
                (Some((true, _)), None) => {
                    rs.fns[f].container = None;
                }
                (Some(_), _) => {
                    // Provisioning containers are left alone: the pending
                    // cold start completes first. A warm container at the
                    // desired variant stays.
                }
                (None, Some(v)) => {
                    // Proactive pre-warm.
                    if rs.injector.variant_load_fails(f, v) {
                        rs.summary.variant_load_failures += 1;
                        rs.fns[f].provision_attempts = 0;
                        rs.begin_provision(&self.rt.families[f], f, v, now, 0);
                    } else {
                        let st = &mut rs.fns[f];
                        st.epoch += 1;
                        st.container = Some(LiveContainer::warm(v, now, st.epoch));
                    }
                }
                (None, None) => {}
            }
        }
        let minute_cost = self
            .rt
            .config
            .cost
            .keepalive_cost_usd_per_minutes(billed, 1.0);
        rs.summary.keepalive_cost_usd += minute_cost;
        rs.summary.memory_at_tick_mb.push(billed);
        rs.last_billed_mb = billed;
        emit(&mut rs.sink, || ObsEvent::Bill {
            minute,
            keepalive_mb: billed,
            cost_usd: minute_cost,
        });
    }

    /// Arrival stage: admission check, then warm / queued-behind-provisioning
    /// / cold-start service, then (once per active minute) a schedule
    /// refresh from the policy.
    fn on_arrival(&mut self, now: u64, func: usize, req: usize) {
        let rs = &mut self.rs;
        let minute = now / MS_PER_MINUTE;
        let fam = &self.rt.families[func];
        rs.minute_requests += 1;

        let held = rs.fns[func]
            .container
            .as_ref()
            .map(|c| (c.is_warm(), c.variant));

        // Admission control: an arrival that cannot start executing
        // immediately joins the pending backlog; once the backlog is full it
        // is shed at the front door — no schedule refresh, no provisioning,
        // the policy never hears about it.
        if let Some(max_pending) = self.cluster.admission.max_pending {
            let starts_now = matches!(held, Some((true, _))) && rs.fns[func].in_flight < rs.cap;
            if !starts_now && rs.pending >= max_pending {
                rs.summary.shed_requests += 1;
                rs.summary.ops_events.push(OpsEvent::Overloaded {
                    at_ms: now,
                    func,
                    req,
                });
                emit(&mut rs.sink, || ObsEvent::Shed { at_ms: now, func });
                rs.fail_request(req, now);
                return;
            }
        }

        self.invoked_this_minute = true;
        emit(&mut rs.sink, || ObsEvent::Arrival {
            at_ms: now,
            func,
            warm: held.is_some(),
        });
        let need_schedule = rs.fns[func].scheduled_minute != Some(minute);
        match held {
            Some((true, v)) => {
                rs.records[req].warm = true;
                rs.records[req].accuracy_pct = fam.variant(v).accuracy_pct;
                rs.req_warm_variant[req] = v;
                if rs.fns[func].in_flight < rs.cap {
                    rs.start_exec(fam, func, req, now);
                } else {
                    rs.pending += 1;
                    rs.fns[func].waiting.push_back(req);
                }
            }
            Some((false, v)) => {
                // Provisioning: queue behind the pending cold start. Counts
                // as warm (the container exists), matching the minute engine.
                rs.records[req].warm = true;
                rs.records[req].accuracy_pct = fam.variant(v).accuracy_pct;
                rs.req_warm_variant[req] = v;
                rs.pending += 1;
                rs.fns[func].waiting.push_back(req);
            }
            None => {
                // Cold start (the runtime's SLO violation).
                let v = self.policy.cold_start_variant(func, minute);
                rs.minute_violations += 1;
                rs.records[req].warm = false;
                rs.records[req].accuracy_pct = fam.variant(v).accuracy_pct;
                rs.req_warm_variant[req] = v;
                rs.fns[func].provision_attempts = 0;
                rs.begin_provision(fam, func, v, now, 0);
                rs.pending += 1;
                rs.fns[func].waiting.push_back(req);
            }
        }

        if need_schedule {
            rs.fns[func].scheduled_minute = Some(minute);
            rs.ledger
                .replace(func, self.policy.schedule_on_invocation(func, minute));
        }
    }

    /// A provisioning attempt completed: warm the container (unless stale)
    /// and start waiting work.
    fn on_provision_done(&mut self, now: u64, func: usize, epoch: u64) {
        let rs = &mut self.rs;
        let stale = rs.fns[func]
            .container
            .as_ref()
            .is_none_or(|c| c.epoch != epoch);
        if stale {
            return;
        }
        if let Some(c) = rs.fns[func].container.as_mut() {
            c.state = ContainerState::Warm;
        }
        rs.fns[func].provision_attempts = 0;
        rs.drain_waiting(&self.rt.families[func], func, now);
        // If the schedule does not cover the current minute, the container
        // exists only for the in-flight work: drop it once idle so later
        // arrivals cold-start (as the minute engine would count them).
        let minute = now / MS_PER_MINUTE;
        if rs.ledger.alive_variant_at(func, minute).is_none() {
            if let Some(c) = &rs.fns[func].container {
                if c.busy == 0 && rs.fns[func].waiting.is_empty() {
                    rs.fns[func].container = None;
                }
            }
        }
    }

    /// An execution finished: record it, free the slot, start waiting work.
    fn on_exec_done(&mut self, now: u64, func: usize, req: usize) {
        let rs = &mut self.rs;
        if !rs.req_done[req] {
            rs.records[req].done_ms = now;
            rs.req_done[req] = true;
        }
        rs.fns[func].in_flight -= 1;
        if let Some(c) = rs.fns[func].container.as_mut() {
            if c.busy > 0 {
                c.end_exec();
            }
        }
        rs.drain_waiting(&self.rt.families[func], func, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultRates, RetryPolicy};
    use pulse_core::types::PulseConfig;
    use pulse_sim::assignment::round_robin_assignment;
    use pulse_sim::policies::{OpenWhiskFixed, PulsePolicy};
    use pulse_trace::FunctionTrace;

    fn one_func(counts: &[u32]) -> (Trace, Vec<ModelFamily>) {
        let trace = Trace::new(vec![FunctionTrace::new("f", counts.to_vec())]);
        (trace, vec![pulse_models::zoo::bert()])
    }

    #[test]
    fn single_cold_start_latency_includes_provisioning() {
        let (trace, fams) = one_func(&[1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        let rt = Runtime::new(trace, fams.clone(), RuntimeConfig::default());
        let s = rt.run(&mut OpenWhiskFixed::new(&fams));
        assert_eq!(s.requests(), 1);
        assert_eq!(s.cold_starts(), 1);
        let expected_ms = (fams[0].highest().cold_service_time_s() * 1000.0).round();
        assert!(
            (s.records[0].latency_ms() as f64 - expected_ms).abs() <= 2.0,
            "{} vs {expected_ms}",
            s.records[0].latency_ms()
        );
    }

    #[test]
    fn second_invocation_is_warm_and_fast() {
        let (trace, fams) = one_func(&[1, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        let rt = Runtime::new(trace, fams.clone(), RuntimeConfig::default());
        let s = rt.run(&mut OpenWhiskFixed::new(&fams));
        assert_eq!(s.warm_starts(), 1);
        assert_eq!(s.cold_starts(), 1);
        let warm = s.records.iter().find(|r| r.warm).unwrap();
        let expected = (fams[0].highest().warm_service_time_s * 1000.0).round();
        assert!((warm.latency_ms() as f64 - expected).abs() <= 2.0);
    }

    #[test]
    fn same_minute_burst_queues_behind_provisioning() {
        let (trace, fams) = one_func(&[3, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        let rt = Runtime::new(trace, fams.clone(), RuntimeConfig::default());
        let s = rt.run(&mut OpenWhiskFixed::new(&fams));
        assert_eq!(s.cold_starts(), 1);
        assert_eq!(s.warm_starts(), 2);
        // The queued "warm" requests still waited for provisioning: their
        // latency exceeds a pure warm execution.
        let warm_exec = fams[0].highest().warm_service_time_s * 1000.0;
        for r in s.records.iter().filter(|r| r.warm) {
            assert!(r.latency_ms() as f64 > warm_exec * 0.9);
        }
    }

    #[test]
    fn keepalive_cost_matches_minute_engine_for_fixed_policy() {
        let trace = pulse_trace::synth::azure_like_12_with_horizon(13, 300);
        let fams = round_robin_assignment(&pulse_models::zoo::standard(), 12);
        let rt = Runtime::new(trace.clone(), fams.clone(), RuntimeConfig::default());
        let sim = pulse_sim::Simulator::new(trace, fams.clone());
        let rt_s = rt.run(&mut OpenWhiskFixed::new(&fams));
        let sim_s = sim.run(&mut OpenWhiskFixed::new(&fams));
        assert!(
            (rt_s.keepalive_cost_usd - sim_s.keepalive_cost_usd).abs() < 1e-9,
            "runtime {} vs sim {}",
            rt_s.keepalive_cost_usd,
            sim_s.keepalive_cost_usd
        );
        assert_eq!(rt_s.warm_starts(), sim_s.warm_starts);
        assert_eq!(rt_s.cold_starts(), sim_s.cold_starts);
    }

    #[test]
    fn pulse_policy_counts_match_minute_engine() {
        let trace = pulse_trace::synth::azure_like_12_with_horizon(19, 400);
        let fams = round_robin_assignment(&pulse_models::zoo::standard(), 12);
        let rt = Runtime::new(trace.clone(), fams.clone(), RuntimeConfig::default());
        let sim = pulse_sim::Simulator::new(trace, fams.clone());
        let rt_s = rt.run(&mut PulsePolicy::new(fams.clone(), PulseConfig::default()));
        let sim_s = sim.run(&mut PulsePolicy::new(fams, PulseConfig::default()));
        // Stateful policy + different call orders within a minute can shift
        // a handful of borderline decisions; the engines must agree closely.
        let warm_delta = (rt_s.warm_starts() as f64 - sim_s.warm_starts as f64).abs();
        let warm_rel = warm_delta / (sim_s.warm_starts.max(1) as f64);
        assert!(
            warm_rel < 0.02,
            "runtime {} vs sim {}",
            rt_s.warm_starts(),
            sim_s.warm_starts
        );
        let cost_ratio = rt_s.keepalive_cost_usd / sim_s.keepalive_cost_usd;
        assert!((0.9..1.1).contains(&cost_ratio), "cost ratio {cost_ratio}");
    }

    #[test]
    fn concurrency_cap_adds_queueing_delay() {
        // 40 same-minute requests (≈1.5 s apart, 2.2 s executions), cap 1:
        // they serialize and queueing delay accumulates.
        let (trace, fams) = one_func(&[0, 40, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        let unbounded = Runtime::new(trace.clone(), fams.clone(), RuntimeConfig::default())
            .run(&mut OpenWhiskFixed::new(&fams));
        let capped = Runtime::new(
            trace,
            fams.clone(),
            RuntimeConfig {
                max_concurrency: Some(1),
                ..Default::default()
            },
        )
        .run(&mut OpenWhiskFixed::new(&fams));
        assert!(capped.latency_p99_ms() > unbounded.latency_p99_ms());
        assert_eq!(capped.requests(), unbounded.requests());
        assert_eq!(capped.warm_starts(), unbounded.warm_starts());
    }

    #[test]
    fn no_invocations_costs_nothing() {
        let (trace, fams) = one_func(&[0; 30]);
        let rt = Runtime::new(trace, fams.clone(), RuntimeConfig::default());
        let s = rt.run(&mut OpenWhiskFixed::new(&fams));
        assert_eq!(s.requests(), 0);
        assert_eq!(s.keepalive_cost_usd, 0.0);
        assert_eq!(s.memory_at_tick_mb.len(), 30);
        assert!(s.memory_at_tick_mb.iter().all(|&m| m == 0.0));
    }

    #[test]
    fn stochastic_mode_jitters_but_preserves_counts() {
        let trace = pulse_trace::synth::azure_like_12_with_horizon(29, 200);
        let fams = round_robin_assignment(&pulse_models::zoo::standard(), 12);
        let det = Runtime::new(trace.clone(), fams.clone(), RuntimeConfig::default())
            .run(&mut OpenWhiskFixed::new(&fams));
        let sto = Runtime::new(
            trace.clone(),
            fams.clone(),
            RuntimeConfig {
                stochastic_seed: Some(7),
                ..Default::default()
            },
        )
        .run(&mut OpenWhiskFixed::new(&fams));
        // Warm/cold accounting is schedule-driven — jitter must not move it.
        assert_eq!(det.warm_starts(), sto.warm_starts());
        assert_eq!(det.cold_starts(), sto.cold_starts());
        assert_eq!(det.keepalive_cost_usd, sto.keepalive_cost_usd);
        // Latencies differ, but only by the lognormal spread.
        assert_ne!(
            det.records
                .iter()
                .map(|r| r.latency_ms())
                .collect::<Vec<_>>(),
            sto.records
                .iter()
                .map(|r| r.latency_ms())
                .collect::<Vec<_>>()
        );
        let ratio = sto.service_time_s() / det.service_time_s();
        assert!((0.8..1.2).contains(&ratio), "ratio {ratio}");
        // Same seed reproduces exactly.
        let sto2 = Runtime::new(
            trace,
            fams.clone(),
            RuntimeConfig {
                stochastic_seed: Some(7),
                ..Default::default()
            },
        )
        .run(&mut OpenWhiskFixed::new(&fams));
        assert_eq!(sto.records, sto2.records);
    }

    #[test]
    fn runtime_is_deterministic() {
        let trace = pulse_trace::synth::azure_like_12_with_horizon(23, 200);
        let fams = round_robin_assignment(&pulse_models::zoo::standard(), 12);
        let rt = Runtime::new(trace, fams.clone(), RuntimeConfig::default());
        let a = rt.run(&mut PulsePolicy::new(fams.clone(), PulseConfig::default()));
        let b = rt.run(&mut PulsePolicy::new(fams.clone(), PulseConfig::default()));
        assert_eq!(a.records, b.records);
        assert_eq!(a.keepalive_cost_usd, b.keepalive_cost_usd);
    }

    #[test]
    fn none_plan_is_bit_identical_to_plain_run() {
        let trace = pulse_trace::synth::azure_like_12_with_horizon(31, 240);
        let fams = round_robin_assignment(&pulse_models::zoo::standard(), 12);
        let rt = Runtime::new(
            trace,
            fams.clone(),
            RuntimeConfig {
                stochastic_seed: Some(5),
                ..Default::default()
            },
        );
        let plain = rt.run(&mut PulsePolicy::new(fams.clone(), PulseConfig::default()));
        let faulted = rt.run_with_faults(
            &mut PulsePolicy::new(fams.clone(), PulseConfig::default()),
            &FaultPlan::none(),
        );
        assert_eq!(plain.records, faulted.records);
        assert_eq!(plain.keepalive_cost_usd, faulted.keepalive_cost_usd);
        assert_eq!(faulted.provision_failures, 0);
        assert_eq!(faulted.exec_crashes, 0);
        assert_eq!(faulted.timeouts, 0);
        assert_eq!(faulted.degradations, 0);
    }

    #[test]
    fn provisioning_failure_retries_then_degrades_one_rung() {
        // bert has 2 rungs; faults scoped to the top rung only.
        let (trace, fams) = one_func(&[1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        let top = fams[0].highest_id();
        let plan = FaultPlan {
            default_rates: FaultRates {
                provision_failure: 1.0,
                variant_load_failure: 1.0,
                exec_crash: 0.0,
                min_faulty_variant: Some(top),
            },
            retry: RetryPolicy {
                max_retries: 2,
                ..RetryPolicy::default()
            },
            ..FaultPlan::none()
        };
        let rt = Runtime::new(trace, fams.clone(), RuntimeConfig::default());
        let s = rt.run_with_faults(&mut OpenWhiskFixed::new(&fams), &plan);
        assert_eq!(s.requests(), 1);
        assert_eq!(s.failed_requests(), 0, "one rung down, not failed");
        // Every cycle at the faulty top rung is 1 initial attempt + 2
        // retries, then a degradation (the keep-alive schedule re-demands
        // the top variant each minute, so the cycle repeats per tick).
        assert!(s.degradations >= 1);
        assert_eq!(s.provision_failures, 3 * s.degradations);
        assert_eq!(s.provision_retries, 2 * s.degradations);
        assert_eq!(s.degraded_requests, 1);
        let lower_acc = fams[0].variant(top - 1).accuracy_pct;
        assert_eq!(s.records[0].accuracy_pct, lower_acc);
        assert!(s.accuracy_penalty_pct > 0.0);
        // Latency absorbed the retries: slower than a clean cold start.
        let clean = (fams[0].highest().cold_service_time_s() * 1000.0) as u64;
        assert!(s.records[0].latency_ms() > clean);
    }

    #[test]
    fn whole_ladder_failure_reaps_and_fails_requests() {
        let (trace, fams) = one_func(&[2, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        let plan = FaultPlan {
            default_rates: FaultRates {
                provision_failure: 1.0,
                variant_load_failure: 1.0,
                exec_crash: 0.0,
                min_faulty_variant: None,
            },
            retry: RetryPolicy {
                max_retries: 1,
                ..RetryPolicy::default()
            },
            ..FaultPlan::none()
        };
        let rt = Runtime::new(trace, fams.clone(), RuntimeConfig::default());
        let s = rt.run_with_faults(&mut OpenWhiskFixed::new(&fams), &plan);
        assert_eq!(s.requests(), 2);
        assert_eq!(s.failed_requests(), 2, "no rung could provision");
        assert!(s.reaped >= 1);
        assert_eq!(s.availability(), 0.0);
        // Every rung was tried: (1 initial + 1 retry) × 2 rungs at least.
        assert!(s.provision_failures >= 4);
    }

    #[test]
    fn exec_crashes_retry_and_eventually_serve() {
        let (trace, fams) = one_func(&[1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        // Crash the first execution attempt ~always at rate 1.0 would loop
        // past the budget; use a seeded intermediate rate instead.
        let plan = FaultPlan::uniform(0.0, 0.0, 0.5, 11);
        let rt = Runtime::new(trace, fams.clone(), RuntimeConfig::default());
        let s = rt.run_with_faults(&mut OpenWhiskFixed::new(&fams), &plan);
        assert_eq!(s.requests(), 1);
        // Either it crashed (and retried) or it ran clean — both must leave
        // coherent accounting.
        assert_eq!(s.exec_crashes, s.request_retries + s.failed_requests());
        if s.exec_crashes == 0 {
            assert_eq!(s.failed_requests(), 0);
        }
    }

    #[test]
    fn request_timeout_fails_slow_requests() {
        let (trace, fams) = one_func(&[1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        // bert cold start is seconds; a 10 ms budget must time out.
        let plan = FaultPlan::none().with_timeout_ms(10);
        let rt = Runtime::new(trace, fams.clone(), RuntimeConfig::default());
        let s = rt.run_with_faults(&mut OpenWhiskFixed::new(&fams), &plan);
        assert_eq!(s.timeouts, 1);
        assert_eq!(s.failed_requests(), 1);
        assert_eq!(s.records[0].latency_ms(), 10);
        assert_eq!(s.availability(), 0.0);
        assert_eq!(s.goodput(10_000), 0.0);
    }

    #[test]
    fn node_capacity_caps_every_minute_and_logs_pressure() {
        use crate::cluster::{ClusterConfig, NodeCapacity};
        let trace = pulse_trace::synth::azure_like_12_with_horizon(41, 300);
        let fams = round_robin_assignment(&pulse_models::zoo::standard(), 12);
        let rt = Runtime::new(trace, fams.clone(), RuntimeConfig::default());
        // Cap well below the all-high footprint OpenWhisk wants to keep.
        let all_high: f64 = fams.iter().map(|f| f.highest().memory_mb).sum();
        let cap = all_high * 0.3;
        let cluster = ClusterConfig {
            capacity: NodeCapacity::mb(cap),
            ..ClusterConfig::unlimited()
        };
        let s = rt.run_with_cluster(
            &mut OpenWhiskFixed::new(&fams),
            &FaultPlan::none(),
            &cluster,
        );
        for (t, &mb) in s.memory_at_tick_mb.iter().enumerate() {
            assert!(mb <= cap + 1e-9, "minute {t}: {mb} MB over cap {cap}");
        }
        assert!(
            s.pressure_minutes > 0,
            "the cap must have been under pressure"
        );
        assert!(s.evictions + s.pressure_downgrades > 0);
        assert!(!s.ops_events.is_empty());
        // The uncapped run exceeds the cap somewhere (the cap was binding).
        let free = rt.run(&mut OpenWhiskFixed::new(&fams));
        assert!(free.peak_memory_mb() > cap);
    }

    #[test]
    fn admission_bound_sheds_backlogged_arrivals() {
        use crate::cluster::{AdmissionControl, ClusterConfig, OpsEvent};
        // A synchronized burst against a single-slot container: arrivals come
        // every ~1.2 s while BERT-Large serves one request per ~2.2 s, so the
        // backlog grows without bound unless admission sheds.
        let (trace, fams) = one_func(&[50, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        let rt = Runtime::new(
            trace,
            fams.clone(),
            RuntimeConfig {
                max_concurrency: Some(1),
                ..Default::default()
            },
        );
        let cluster = ClusterConfig {
            admission: AdmissionControl::bounded(8),
            ..ClusterConfig::unlimited()
        };
        let s = rt.run_with_cluster(
            &mut OpenWhiskFixed::new(&fams),
            &FaultPlan::none(),
            &cluster,
        );
        assert!(s.shed_requests > 0, "burst must overflow an 8-deep backlog");
        assert_eq!(s.failed_requests(), s.shed_requests);
        assert!(s.availability() < 1.0);
        let shed_events = s
            .ops_events
            .iter()
            .filter(|e| matches!(e, OpsEvent::Overloaded { .. }))
            .count() as u64;
        assert_eq!(shed_events, s.shed_requests);
        // Unbounded admission serves everything.
        let free = rt.run(&mut OpenWhiskFixed::new(&fams));
        assert_eq!(free.failed_requests(), 0);
        assert_eq!(free.shed_requests, 0);
        assert_eq!(s.requests(), free.requests());
    }

    #[test]
    fn unlimited_cluster_is_bit_identical_to_run_with_faults() {
        use crate::cluster::ClusterConfig;
        let trace = pulse_trace::synth::azure_like_12_with_horizon(43, 240);
        let fams = round_robin_assignment(&pulse_models::zoo::standard(), 12);
        let rt = Runtime::new(
            trace,
            fams.clone(),
            RuntimeConfig {
                stochastic_seed: Some(9),
                ..Default::default()
            },
        );
        let plan = FaultPlan::uniform(0.2, 0.1, 0.05, 17).with_timeout_ms(120_000);
        let a = rt.run_with_faults(
            &mut PulsePolicy::new(fams.clone(), PulseConfig::default()),
            &plan,
        );
        let b = rt.run_with_cluster(
            &mut PulsePolicy::new(fams.clone(), PulseConfig::default()),
            &plan,
            &ClusterConfig::unlimited(),
        );
        assert_eq!(a.records, b.records);
        assert_eq!(
            a.keepalive_cost_usd.to_bits(),
            b.keepalive_cost_usd.to_bits()
        );
        assert_eq!(b.shed_requests, 0);
        assert_eq!(b.evictions, 0);
        assert_eq!(b.pressure_minutes, 0);
        assert_eq!(b.fallback_minutes, 0);
        assert!(b.ops_events.is_empty());
    }

    #[test]
    fn watchdog_falls_back_in_the_runtime_and_is_logged() {
        use crate::cluster::{ClusterConfig, OpsEvent};
        use pulse_sim::watchdog::{Watchdog, WatchdogConfig};

        // A policy that never keeps anything alive: every arrival is a cold
        // start, so the violation rate pins at 1.0 and the watchdog must
        // bench it in favour of the fixed baseline.
        struct NeverKeep;
        impl KeepAlivePolicy for NeverKeep {
            fn name(&self) -> &str {
                "never-keep"
            }
            fn schedule_on_invocation(
                &mut self,
                _f: usize,
                t: u64,
            ) -> pulse_core::individual::KeepAliveSchedule {
                pulse_core::individual::KeepAliveSchedule::new(t, Vec::new())
            }
            fn cold_start_variant(&mut self, _f: usize, _t: u64) -> usize {
                0
            }
        }

        let (trace, fams) = one_func(&[1; 60]);
        let rt = Runtime::new(trace, fams.clone(), RuntimeConfig::default());
        let cfg = WatchdogConfig {
            window: 5,
            enter_after: 3,
            exit_after: 10,
            max_violation_rate: 0.5,
            ..WatchdogConfig::default()
        };
        let mut wd = Watchdog::new(NeverKeep, &fams, cfg);
        let s = rt.run_with_cluster(&mut wd, &FaultPlan::none(), &ClusterConfig::unlimited());
        assert!(
            s.fallback_minutes > 0,
            "sustained cold storm must fall back"
        );
        assert!(s
            .ops_events
            .iter()
            .any(|e| matches!(e, OpsEvent::WatchdogFallback { .. })));
        assert!(wd.fallback_minutes() > 0);
        // Once benched, the fixed baseline keeps the container warm: far
        // fewer cold starts than never keeping anything.
        let bare = rt.run(&mut NeverKeep);
        assert!(s.cold_starts() < bare.cold_starts());
        // The fixed baseline stays healthy, so it eventually recovers.
        assert!(wd.transitions().iter().any(|tr| !tr.to_fallback) || wd.in_fallback());
    }

    #[test]
    fn stepped_session_matches_run_bitwise() {
        let trace = pulse_trace::synth::azure_like_12_with_horizon(47, 240);
        let fams = round_robin_assignment(&pulse_models::zoo::standard(), 12);
        let rt = Runtime::new(
            trace,
            fams.clone(),
            RuntimeConfig {
                stochastic_seed: Some(13),
                ..Default::default()
            },
        );
        let whole = rt.run(&mut PulsePolicy::new(fams.clone(), PulseConfig::default()));

        let mut policy = PulsePolicy::new(fams.clone(), PulseConfig::default());
        let mut session = rt.session(&mut policy, &FaultPlan::none(), ClusterConfig::unlimited());
        let mut ticks = 0u64;
        while let Some((_, ev)) = session.step() {
            if matches!(ev, Event::MinuteTick { .. }) {
                ticks += 1;
            }
        }
        assert_eq!(session.pending_events(), 0);
        let stepped = session.finish();
        assert_eq!(ticks, 240);
        assert_eq!(stepped.records, whole.records);
        assert_eq!(
            stepped.keepalive_cost_usd.to_bits(),
            whole.keepalive_cost_usd.to_bits()
        );
        assert_eq!(stepped.downgrades, whole.downgrades);
    }

    #[test]
    fn session_exposes_ledger_state() {
        let (trace, fams) = one_func(&[1, 0, 0, 0]);
        let rt = Runtime::new(trace, fams.clone(), RuntimeConfig::default());
        let mut policy = OpenWhiskFixed::new(&fams);
        let mut session = rt.session(&mut policy, &FaultPlan::none(), ClusterConfig::unlimited());
        assert!(session.ledger().schedule(0).is_none());
        // Tick 0, then the arrival that installs the schedule.
        session.step();
        session.step();
        assert_eq!(session.ledger().alive_variant_at(0, 1), Some(1));
    }

    #[test]
    fn traced_cluster_run_event_counts_match_summary_counters() {
        use crate::cluster::NodeCapacity;
        use pulse_obs::{ActionSource, MemorySink, ObsEvent};
        let trace = pulse_trace::synth::azure_like_12_with_horizon(41, 300);
        let fams = round_robin_assignment(&pulse_models::zoo::standard(), 12);
        let rt = Runtime::new(trace, fams.clone(), RuntimeConfig::default());
        let all_high: f64 = fams.iter().map(|f| f.highest().memory_mb).sum();
        let cluster = ClusterConfig {
            capacity: NodeCapacity::mb(all_high * 0.3),
            ..ClusterConfig::unlimited()
        };
        let mut mem = MemorySink::new();
        let s = rt.run_with_cluster_traced(
            &mut PulsePolicy::new(fams.clone(), PulseConfig::default()),
            &FaultPlan::none(),
            &cluster,
            &mut mem,
        );
        // Downgrade/eviction event counts equal the summary counters, per
        // source: policy actions → `downgrades`, pressure actions →
        // `pressure_downgrades` / `evictions`.
        let policy_actions = mem.count(|e| {
            matches!(
                e,
                ObsEvent::Downgrade {
                    source: ActionSource::Policy,
                    ..
                } | ObsEvent::Evict {
                    source: ActionSource::Policy,
                    ..
                }
            )
        });
        assert_eq!(policy_actions as u64, s.downgrades);
        let pressure_downgrades = mem.count(|e| {
            matches!(
                e,
                ObsEvent::Downgrade {
                    source: ActionSource::Pressure,
                    ..
                }
            )
        });
        assert_eq!(pressure_downgrades as u64, s.pressure_downgrades);
        let pressure_evicts = mem.count(|e| {
            matches!(
                e,
                ObsEvent::Evict {
                    source: ActionSource::Pressure,
                    ..
                }
            )
        });
        assert_eq!(pressure_evicts as u64, s.evictions);
        assert!(pressure_downgrades + pressure_evicts > 0, "cap must bind");
        // Arrivals cover every request; one bill per minute tick.
        assert_eq!(
            mem.count(|e| matches!(e, ObsEvent::Arrival { .. })) as u64,
            s.requests()
        );
        assert_eq!(
            mem.count(|e| matches!(e, ObsEvent::Bill { .. })),
            s.memory_at_tick_mb.len()
        );
        // Every emitted event survives the JSONL round trip.
        for ev in mem.events() {
            assert_eq!(&ObsEvent::from_json(&ev.to_json()).unwrap(), ev);
        }
    }

    #[test]
    fn fault_runs_replay_bit_identically() {
        let trace = pulse_trace::synth::azure_like_12_with_horizon(37, 180);
        let fams = round_robin_assignment(&pulse_models::zoo::standard(), 12);
        let plan = FaultPlan::uniform(0.3, 0.2, 0.1, 99).with_timeout_ms(90_000);
        let rt = Runtime::new(
            trace,
            fams.clone(),
            RuntimeConfig {
                stochastic_seed: Some(3),
                ..Default::default()
            },
        );
        let a = rt.run_with_faults(&mut OpenWhiskFixed::new(&fams), &plan);
        let b = rt.run_with_faults(&mut OpenWhiskFixed::new(&fams), &plan);
        assert_eq!(a.records, b.records);
        assert_eq!(a.provision_failures, b.provision_failures);
        assert_eq!(a.provision_retries, b.provision_retries);
        assert_eq!(a.variant_load_failures, b.variant_load_failures);
        assert_eq!(a.exec_crashes, b.exec_crashes);
        assert_eq!(a.request_retries, b.request_retries);
        assert_eq!(a.degradations, b.degradations);
        assert_eq!(a.timeouts, b.timeouts);
        assert_eq!(a.reaped, b.reaped);
        assert_eq!(a.keepalive_cost_usd, b.keepalive_cost_usd);
    }
}

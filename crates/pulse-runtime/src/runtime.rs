//! The event-driven runtime loop.
//!
//! Semantics are aligned with `pulse_sim::Simulator` so the two engines can
//! be cross-validated (see the `validation` integration tests and
//! `pulse-exp validate`):
//!
//! * a **minute tick** fires at each minute boundary *before* that minute's
//!   arrivals: keep-alive schedules decide which container (if any) each
//!   function holds during the minute, the policy's cross-function layer may
//!   downgrade/evict (applied to this minute only), and keep-alive memory is
//!   billed from the post-adjustment schedule footprint;
//! * an **arrival** is served warm when its function holds a container
//!   (warm, executing, or still provisioning from an earlier cold start —
//!   in the last case the request queues until the container is ready, and
//!   only the request that *triggered* the provisioning counts as cold);
//! * each function's **schedule** is replaced by the policy's plan at the
//!   first arrival of every active minute, exactly as in the minute engine;
//! * variant swaps at minute boundaries are **proactive**: the plan is known
//!   a minute ahead, so the incoming variant is warm at the tick (the same
//!   assumption the minute engine — and the paper's accounting — makes).
//!
//! What this engine adds over the minute engine: millisecond latency
//! accounting (queueing behind provisioning, optional per-container
//! concurrency limits) and a per-request record stream.

use crate::container::LiveContainer;
use crate::event::{Event, EventQueue};
use crate::metrics::{RequestRecord, RuntimeSummary};
use crate::MS_PER_MINUTE;
use pulse_core::global::{AliveModel, DowngradeAction};
use pulse_core::individual::KeepAliveSchedule;
use pulse_models::{CostModel, ModelFamily, VariantId};
use pulse_sim::engine::HOLE;
use pulse_sim::policy::KeepAlivePolicy;
use pulse_trace::Trace;
use std::collections::VecDeque;

/// Runtime tunables.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Max in-flight requests per container; `None` = unbounded (the
    /// minute engine's implicit assumption).
    pub max_concurrency: Option<u32>,
    /// Cost model for keep-alive billing.
    pub cost: CostModel,
    /// When set, execution and provisioning durations are drawn from the
    /// calibrated lognormal profiler (seeded here) instead of being
    /// deterministic means — the measured-style jitter of real Lambda runs.
    pub stochastic_seed: Option<u64>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            max_concurrency: None,
            cost: CostModel::aws_lambda(),
            stochastic_seed: None,
        }
    }
}

/// The millisecond-resolution platform.
#[derive(Debug, Clone)]
pub struct Runtime {
    trace: Trace,
    families: Vec<ModelFamily>,
    config: RuntimeConfig,
}

/// Draws execution/provisioning durations — deterministic means, or the
/// calibrated lognormal jitter when a seed is configured.
struct DurationSampler {
    rng: Option<rand::rngs::SmallRng>,
    profiler: pulse_models::Profiler,
}

impl DurationSampler {
    fn new(seed: Option<u64>) -> Self {
        use rand::SeedableRng;
        Self {
            rng: seed.map(rand::rngs::SmallRng::seed_from_u64),
            profiler: pulse_models::Profiler::default(),
        }
    }

    fn warm_ms(&mut self, spec: &pulse_models::VariantSpec) -> u64 {
        let s = match self.rng.as_mut() {
            Some(rng) => self.profiler.sample_warm(spec, rng),
            None => spec.warm_service_time_s,
        };
        ((s * 1000.0).round() as u64).max(1)
    }

    fn provision_ms(&mut self, spec: &pulse_models::VariantSpec) -> u64 {
        let s = match self.rng.as_mut() {
            Some(rng) => self.profiler.sample_cold_start(spec, rng),
            None => spec.cold_start_s,
        };
        (s * 1000.0).round() as u64
    }
}

struct FnState {
    container: Option<LiveContainer>,
    schedule: Option<KeepAliveSchedule>,
    /// Requests waiting for provisioning or a concurrency slot.
    waiting: VecDeque<usize>,
    /// In-flight request count (for the concurrency cap).
    in_flight: u32,
    /// Last minute for which the policy was asked for a schedule.
    scheduled_minute: Option<u64>,
    epoch: u64,
}

impl Runtime {
    /// Build over a trace and a per-function family assignment.
    pub fn new(trace: Trace, families: Vec<ModelFamily>, config: RuntimeConfig) -> Self {
        assert_eq!(trace.n_functions(), families.len());
        Self {
            trace,
            families,
            config,
        }
    }

    fn schedule_variant(s: &Option<KeepAliveSchedule>, minute: u64) -> Option<VariantId> {
        s.as_ref()
            .and_then(|s| s.variant_at(minute))
            .filter(|&v| v != HOLE)
    }

    /// Execute the whole trace under `policy`.
    #[allow(clippy::needless_range_loop)] // parallel per-function tables
    pub fn run(&self, policy: &mut dyn KeepAlivePolicy) -> RuntimeSummary {
        let n = self.families.len();
        let minutes = self.trace.minutes() as u64;
        let mut queue = EventQueue::new();
        let mut records: Vec<RequestRecord> = Vec::new();
        let mut req_func: Vec<usize> = Vec::new();
        let mut req_warm_variant: Vec<VariantId> = Vec::new(); // variant serving each request

        // Minute ticks.
        for m in 0..minutes {
            queue.push(m * MS_PER_MINUTE, Event::MinuteTick { minute: m });
        }
        // Arrivals, spread across each active minute (offset ≥ 1 ms so the
        // tick always precedes them).
        for m in 0..minutes {
            for f in 0..n {
                let count = self.trace.function(f).at(m) as u64;
                if count == 0 {
                    continue;
                }
                let stride = (MS_PER_MINUTE - 2) / count;
                for k in 0..count {
                    let at = m * MS_PER_MINUTE + 1 + k * stride;
                    let req = records.len();
                    records.push(RequestRecord {
                        arrival_ms: at,
                        done_ms: at,
                        warm: false,
                        accuracy_pct: 0.0,
                    });
                    req_func.push(f);
                    req_warm_variant.push(0);
                    queue.push(at, Event::Arrival { func: f, req });
                }
            }
        }

        let mut fns: Vec<FnState> = (0..n)
            .map(|_| FnState {
                container: None,
                schedule: None,
                waiting: VecDeque::new(),
                in_flight: 0,
                scheduled_minute: None,
                epoch: 0,
            })
            .collect();
        let mut demand_history: Vec<f64> = Vec::with_capacity(minutes as usize);
        let mut invoked_this_minute = false;
        let mut summary = RuntimeSummary::default();
        let cap = self.config.max_concurrency.unwrap_or(u32::MAX);
        let mut sampler = DurationSampler::new(self.config.stochastic_seed);

        while let Some((now, event)) = queue.pop() {
            match event {
                Event::MinuteTick { minute } => {
                    let invoked_last_minute = std::mem::take(&mut invoked_this_minute);

                    // Demand from schedules.
                    let mut alive: Vec<AliveModel> = Vec::new();
                    let mut kam = 0.0f64;
                    for (f, st) in fns.iter().enumerate() {
                        if let Some(v) = Self::schedule_variant(&st.schedule, minute) {
                            kam += self.families[f].variant(v).memory_mb;
                            alive.push(AliveModel {
                                func: f,
                                variant: v,
                                invocation_probability: 0.0,
                            });
                        }
                    }
                    let first_minute = invoked_last_minute
                        || (kam > 0.0 && demand_history.last().is_none_or(|&m| m == 0.0));
                    let actions = policy.adjust_minute(
                        minute,
                        &demand_history,
                        first_minute,
                        kam,
                        &mut alive,
                    );
                    demand_history.push(kam);
                    summary.downgrades += actions.len() as u64;
                    for a in &actions {
                        match *a {
                            DowngradeAction::Downgrade { func, to, .. } => {
                                if let Some(s) = fns[func].schedule.as_mut() {
                                    if let Some(v) = s.variant_at(minute) {
                                        if v != HOLE && v > to {
                                            s.set_variant_at(minute, to);
                                        }
                                    }
                                }
                            }
                            DowngradeAction::Evict { func, .. } => {
                                if let Some(s) = fns[func].schedule.as_mut() {
                                    s.set_variant_at(minute, HOLE);
                                }
                            }
                        }
                    }

                    // Materialize containers per the post-adjustment plan and
                    // bill the minute.
                    let mut billed = 0.0f64;
                    for f in 0..n {
                        let desired = Self::schedule_variant(&fns[f].schedule, minute);
                        if let Some(v) = desired {
                            billed += self.families[f].variant(v).memory_mb;
                        }
                        let st = &mut fns[f];
                        match (&mut st.container, desired) {
                            (Some(c), Some(v)) => {
                                if c.is_warm() && c.variant != v {
                                    st.epoch += 1;
                                    st.container = Some(LiveContainer::warm(v, now, st.epoch));
                                }
                                // Provisioning containers are left alone: the
                                // pending cold start completes first.
                            }
                            (Some(c), None) => {
                                if c.is_warm() {
                                    st.container = None;
                                }
                            }
                            (None, Some(v)) => {
                                st.epoch += 1;
                                st.container = Some(LiveContainer::warm(v, now, st.epoch));
                            }
                            (None, None) => {}
                        }
                    }
                    summary.keepalive_cost_usd +=
                        self.config.cost.keepalive_cost_usd_per_minutes(billed, 1.0);
                    summary.memory_at_tick_mb.push(billed);
                }

                Event::Arrival { func, req } => {
                    invoked_this_minute = true;
                    let minute = now / MS_PER_MINUTE;
                    let fam = &self.families[func];
                    let need_schedule = fns[func].scheduled_minute != Some(minute);

                    match &mut fns[func].container {
                        Some(c) if c.is_warm() => {
                            let v = c.variant;
                            records[req].warm = true;
                            records[req].accuracy_pct = fam.variant(v).accuracy_pct;
                            req_warm_variant[req] = v;
                            if fns[func].in_flight < cap {
                                fns[func].in_flight += 1;
                                if let Some(c) = fns[func].container.as_mut() {
                                    c.begin_exec();
                                }
                                let exec = sampler.warm_ms(fam.variant(v));
                                queue.push(now + exec, Event::ExecDone { func, req });
                            } else {
                                fns[func].waiting.push_back(req);
                            }
                        }
                        Some(c) => {
                            // Provisioning: queue behind the pending cold
                            // start. Counts as warm (the container exists),
                            // matching the minute engine.
                            let v = c.variant;
                            records[req].warm = true;
                            records[req].accuracy_pct = fam.variant(v).accuracy_pct;
                            req_warm_variant[req] = v;
                            fns[func].waiting.push_back(req);
                        }
                        None => {
                            // Cold start.
                            let v = policy.cold_start_variant(func, minute);
                            records[req].warm = false;
                            records[req].accuracy_pct = fam.variant(v).accuracy_pct;
                            req_warm_variant[req] = v;
                            let ready = now + sampler.provision_ms(fam.variant(v));
                            let st = &mut fns[func];
                            st.epoch += 1;
                            st.container = Some(LiveContainer::provisioning(v, ready, st.epoch));
                            st.waiting.push_back(req);
                            queue.push(
                                ready,
                                Event::ProvisionDone {
                                    func,
                                    epoch: st.epoch,
                                },
                            );
                        }
                    }

                    if need_schedule {
                        fns[func].scheduled_minute = Some(minute);
                        fns[func].schedule = Some(policy.schedule_on_invocation(func, minute));
                    }
                }

                Event::ProvisionDone { func, epoch } => {
                    let stale = fns[func]
                        .container
                        .as_ref()
                        .is_none_or(|c| c.epoch != epoch);
                    if stale {
                        continue;
                    }
                    if let Some(c) = fns[func].container.as_mut() {
                        c.state = crate::container::ContainerState::Warm;
                    }
                    self.drain_waiting(
                        func,
                        now,
                        &mut fns,
                        &mut queue,
                        &req_warm_variant,
                        cap,
                        &mut sampler,
                    );
                    // If the schedule does not cover the current minute, the
                    // container exists only for the in-flight work: drop it
                    // once idle so later arrivals cold-start (as the minute
                    // engine would count them).
                    let minute = now / MS_PER_MINUTE;
                    if Self::schedule_variant(&fns[func].schedule, minute).is_none() {
                        if let Some(c) = &fns[func].container {
                            if c.busy == 0 && fns[func].waiting.is_empty() {
                                fns[func].container = None;
                            }
                        }
                    }
                }

                Event::ExecDone { func, req } => {
                    records[req].done_ms = now;
                    fns[func].in_flight -= 1;
                    if let Some(c) = fns[func].container.as_mut() {
                        if c.busy > 0 {
                            c.end_exec();
                        }
                    }
                    self.drain_waiting(
                        func,
                        now,
                        &mut fns,
                        &mut queue,
                        &req_warm_variant,
                        cap,
                        &mut sampler,
                    );
                }
            }
        }

        summary.records = records;
        summary
    }

    /// Start as many waiting requests as the concurrency cap allows.
    #[allow(clippy::too_many_arguments)]
    fn drain_waiting(
        &self,
        func: usize,
        now: u64,
        fns: &mut [FnState],
        queue: &mut EventQueue,
        req_warm_variant: &[VariantId],
        cap: u32,
        sampler: &mut DurationSampler,
    ) {
        let can_serve = fns[func].container.as_ref().is_some_and(|c| c.is_warm());
        if !can_serve {
            return;
        }
        while fns[func].in_flight < cap {
            let Some(req) = fns[func].waiting.pop_front() else {
                break;
            };
            fns[func].in_flight += 1;
            if let Some(c) = fns[func].container.as_mut() {
                c.begin_exec();
            }
            let v = req_warm_variant[req];
            let exec = sampler.warm_ms(self.families[func].variant(v));
            queue.push(now + exec, Event::ExecDone { func, req });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pulse_core::types::PulseConfig;
    use pulse_sim::assignment::round_robin_assignment;
    use pulse_sim::policies::{OpenWhiskFixed, PulsePolicy};
    use pulse_trace::FunctionTrace;

    fn one_func(counts: &[u32]) -> (Trace, Vec<ModelFamily>) {
        let trace = Trace::new(vec![FunctionTrace::new("f", counts.to_vec())]);
        (trace, vec![pulse_models::zoo::bert()])
    }

    #[test]
    fn single_cold_start_latency_includes_provisioning() {
        let (trace, fams) = one_func(&[1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        let rt = Runtime::new(trace, fams.clone(), RuntimeConfig::default());
        let s = rt.run(&mut OpenWhiskFixed::new(&fams));
        assert_eq!(s.requests(), 1);
        assert_eq!(s.cold_starts(), 1);
        let expected_ms = (fams[0].highest().cold_service_time_s() * 1000.0).round();
        assert!(
            (s.records[0].latency_ms() as f64 - expected_ms).abs() <= 2.0,
            "{} vs {expected_ms}",
            s.records[0].latency_ms()
        );
    }

    #[test]
    fn second_invocation_is_warm_and_fast() {
        let (trace, fams) = one_func(&[1, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        let rt = Runtime::new(trace, fams.clone(), RuntimeConfig::default());
        let s = rt.run(&mut OpenWhiskFixed::new(&fams));
        assert_eq!(s.warm_starts(), 1);
        assert_eq!(s.cold_starts(), 1);
        let warm = s.records.iter().find(|r| r.warm).unwrap();
        let expected = (fams[0].highest().warm_service_time_s * 1000.0).round();
        assert!((warm.latency_ms() as f64 - expected).abs() <= 2.0);
    }

    #[test]
    fn same_minute_burst_queues_behind_provisioning() {
        let (trace, fams) = one_func(&[3, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        let rt = Runtime::new(trace, fams.clone(), RuntimeConfig::default());
        let s = rt.run(&mut OpenWhiskFixed::new(&fams));
        assert_eq!(s.cold_starts(), 1);
        assert_eq!(s.warm_starts(), 2);
        // The queued "warm" requests still waited for provisioning: their
        // latency exceeds a pure warm execution.
        let warm_exec = fams[0].highest().warm_service_time_s * 1000.0;
        for r in s.records.iter().filter(|r| r.warm) {
            assert!(r.latency_ms() as f64 > warm_exec * 0.9);
        }
    }

    #[test]
    fn keepalive_cost_matches_minute_engine_for_fixed_policy() {
        let trace = pulse_trace::synth::azure_like_12_with_horizon(13, 300);
        let fams = round_robin_assignment(&pulse_models::zoo::standard(), 12);
        let rt = Runtime::new(trace.clone(), fams.clone(), RuntimeConfig::default());
        let sim = pulse_sim::Simulator::new(trace, fams.clone());
        let rt_s = rt.run(&mut OpenWhiskFixed::new(&fams));
        let sim_s = sim.run(&mut OpenWhiskFixed::new(&fams));
        assert!(
            (rt_s.keepalive_cost_usd - sim_s.keepalive_cost_usd).abs() < 1e-9,
            "runtime {} vs sim {}",
            rt_s.keepalive_cost_usd,
            sim_s.keepalive_cost_usd
        );
        assert_eq!(rt_s.warm_starts(), sim_s.warm_starts);
        assert_eq!(rt_s.cold_starts(), sim_s.cold_starts);
    }

    #[test]
    fn pulse_policy_counts_match_minute_engine() {
        let trace = pulse_trace::synth::azure_like_12_with_horizon(19, 400);
        let fams = round_robin_assignment(&pulse_models::zoo::standard(), 12);
        let rt = Runtime::new(trace.clone(), fams.clone(), RuntimeConfig::default());
        let sim = pulse_sim::Simulator::new(trace, fams.clone());
        let rt_s = rt.run(&mut PulsePolicy::new(fams.clone(), PulseConfig::default()));
        let sim_s = sim.run(&mut PulsePolicy::new(fams, PulseConfig::default()));
        // Stateful policy + different call orders within a minute can shift
        // a handful of borderline decisions; the engines must agree closely.
        let warm_delta = (rt_s.warm_starts() as f64 - sim_s.warm_starts as f64).abs();
        let warm_rel = warm_delta / (sim_s.warm_starts.max(1) as f64);
        assert!(
            warm_rel < 0.02,
            "runtime {} vs sim {}",
            rt_s.warm_starts(),
            sim_s.warm_starts
        );
        let cost_ratio = rt_s.keepalive_cost_usd / sim_s.keepalive_cost_usd;
        assert!((0.9..1.1).contains(&cost_ratio), "cost ratio {cost_ratio}");
    }

    #[test]
    fn concurrency_cap_adds_queueing_delay() {
        // 40 same-minute requests (≈1.5 s apart, 2.2 s executions), cap 1:
        // they serialize and queueing delay accumulates.
        let (trace, fams) = one_func(&[0, 40, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        let unbounded = Runtime::new(trace.clone(), fams.clone(), RuntimeConfig::default())
            .run(&mut OpenWhiskFixed::new(&fams));
        let capped = Runtime::new(
            trace,
            fams.clone(),
            RuntimeConfig {
                max_concurrency: Some(1),
                ..Default::default()
            },
        )
        .run(&mut OpenWhiskFixed::new(&fams));
        assert!(capped.latency_p99_ms() > unbounded.latency_p99_ms());
        assert_eq!(capped.requests(), unbounded.requests());
        assert_eq!(capped.warm_starts(), unbounded.warm_starts());
    }

    #[test]
    fn no_invocations_costs_nothing() {
        let (trace, fams) = one_func(&[0; 30]);
        let rt = Runtime::new(trace, fams.clone(), RuntimeConfig::default());
        let s = rt.run(&mut OpenWhiskFixed::new(&fams));
        assert_eq!(s.requests(), 0);
        assert_eq!(s.keepalive_cost_usd, 0.0);
        assert_eq!(s.memory_at_tick_mb.len(), 30);
        assert!(s.memory_at_tick_mb.iter().all(|&m| m == 0.0));
    }

    #[test]
    fn stochastic_mode_jitters_but_preserves_counts() {
        let trace = pulse_trace::synth::azure_like_12_with_horizon(29, 200);
        let fams = round_robin_assignment(&pulse_models::zoo::standard(), 12);
        let det = Runtime::new(trace.clone(), fams.clone(), RuntimeConfig::default())
            .run(&mut OpenWhiskFixed::new(&fams));
        let sto = Runtime::new(
            trace.clone(),
            fams.clone(),
            RuntimeConfig {
                stochastic_seed: Some(7),
                ..Default::default()
            },
        )
        .run(&mut OpenWhiskFixed::new(&fams));
        // Warm/cold accounting is schedule-driven — jitter must not move it.
        assert_eq!(det.warm_starts(), sto.warm_starts());
        assert_eq!(det.cold_starts(), sto.cold_starts());
        assert_eq!(det.keepalive_cost_usd, sto.keepalive_cost_usd);
        // Latencies differ, but only by the lognormal spread.
        assert_ne!(
            det.records
                .iter()
                .map(|r| r.latency_ms())
                .collect::<Vec<_>>(),
            sto.records
                .iter()
                .map(|r| r.latency_ms())
                .collect::<Vec<_>>()
        );
        let ratio = sto.service_time_s() / det.service_time_s();
        assert!((0.8..1.2).contains(&ratio), "ratio {ratio}");
        // Same seed reproduces exactly.
        let sto2 = Runtime::new(
            trace,
            fams.clone(),
            RuntimeConfig {
                stochastic_seed: Some(7),
                ..Default::default()
            },
        )
        .run(&mut OpenWhiskFixed::new(&fams));
        assert_eq!(sto.records, sto2.records);
    }

    #[test]
    fn runtime_is_deterministic() {
        let trace = pulse_trace::synth::azure_like_12_with_horizon(23, 200);
        let fams = round_robin_assignment(&pulse_models::zoo::standard(), 12);
        let rt = Runtime::new(trace, fams.clone(), RuntimeConfig::default());
        let a = rt.run(&mut PulsePolicy::new(fams.clone(), PulseConfig::default()));
        let b = rt.run(&mut PulsePolicy::new(fams.clone(), PulseConfig::default()));
        assert_eq!(a.records, b.records);
        assert_eq!(a.keepalive_cost_usd, b.keepalive_cost_usd);
    }
}

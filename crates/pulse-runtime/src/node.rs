//! Node modeling for the fleet layer: heterogeneous specs, health, and a
//! deterministic node-level fault plan.
//!
//! A [`NodeSpec`] describes one machine of the fleet — its keep-alive
//! capacity plus speed/price factors in the style of the IceBreaker node
//! types the placement experiments use (`exp_nodes`): a factor of `1.0` is
//! the nominal node the single-node engine always assumed, a speed factor
//! above `1.0` runs slower, a price factor above `1.0` bills keep-alive
//! memory at a premium.
//!
//! The [`NodeFaultPlan`] is the fleet-level analogue of
//! [`crate::fault::FaultPlan`], but deliberately *pure data*: every fault is
//! an explicit `(node, kind, at_minute, duration_minutes)` row, so a plan
//! consumes no randomness at run time and replays bit-identically. The
//! generators ([`NodeFaultPlan::rolling_crashes`],
//! [`NodeFaultPlan::correlated_outage`], [`NodeFaultPlan::stragglers`])
//! produce the scenario shapes the `pulse-exp fleet` sweep uses.

/// Heterogeneous node description.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    /// Display name (used in per-node summaries and the fleet sweep).
    pub name: String,
    /// Keep-alive memory cap of this node.
    pub capacity: crate::cluster::NodeCapacity,
    /// Duration multiplier for executions and provisioning on this node;
    /// `1.0` = nominal, `2.0` = twice as slow.
    pub speed_factor: f64,
    /// Keep-alive billing multiplier for memory held on this node; `1.0` =
    /// nominal price.
    pub price_factor: f64,
}

impl NodeSpec {
    /// A nominal node (`speed_factor == price_factor == 1.0`) with the given
    /// capacity — the shape `FleetConfig::from_cluster` builds, and therefore
    /// the shape whose behavior is bit-identical to the single-node engine.
    pub fn nominal(name: impl Into<String>, capacity: crate::cluster::NodeCapacity) -> Self {
        Self {
            name: name.into(),
            capacity,
            speed_factor: 1.0,
            price_factor: 1.0,
        }
    }

    /// Builder: set the speed factor.
    pub fn with_speed_factor(mut self, f: f64) -> Self {
        self.speed_factor = f;
        self
    }

    /// Builder: set the price factor.
    pub fn with_price_factor(mut self, f: f64) -> Self {
        self.price_factor = f;
        self
    }
}

/// What kind of node-level fault strikes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NodeFaultKind {
    /// The node dies: warm containers are reaped, in-flight executions
    /// abort and re-dispatch through the retry ladder.
    Crash,
    /// Straggler: the node stays up but every execution/provisioning
    /// duration is multiplied by `slowdown`.
    Degraded {
        /// Duration multiplier while the fault is active (`> 1.0` = slower).
        slowdown: f64,
    },
    /// The node is unreachable for new work: in-flight executions run to
    /// completion, but containers cannot accept further requests and new
    /// placements avoid the node.
    Partition,
}

impl NodeFaultKind {
    /// Severity order used when overlapping faults cover the same minute:
    /// a crash dominates a partition dominates a straggler.
    fn severity(self) -> u8 {
        match self {
            NodeFaultKind::Crash => 3,
            NodeFaultKind::Partition => 2,
            NodeFaultKind::Degraded { .. } => 1,
        }
    }
}

/// One scheduled node-level fault window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeFault {
    /// Target node index.
    pub node: usize,
    /// What happens.
    pub kind: NodeFaultKind,
    /// Minute at which the fault strikes (applied right after that minute's
    /// tick pipeline, before its arrivals).
    pub at_minute: u64,
    /// How many minutes the fault lasts; the node heals at
    /// `at_minute + duration_minutes`.
    pub duration_minutes: u64,
}

impl NodeFault {
    /// Is this fault active at `minute`?
    pub fn active_at(&self, minute: u64) -> bool {
        minute >= self.at_minute && minute < self.at_minute.saturating_add(self.duration_minutes)
    }
}

/// A deterministic schedule of node-level faults — pure data, no RNG.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeFaultPlan {
    /// Fault windows, in the order they were added.
    pub faults: Vec<NodeFault>,
}

impl NodeFaultPlan {
    /// No node faults ever: the fleet behaves like N reliable nodes.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when no fault can ever strike.
    pub fn is_none(&self) -> bool {
        self.faults.is_empty()
    }

    /// Builder: append one fault window.
    pub fn with(mut self, fault: NodeFault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Rolling single-node crashes: node `k` crashes for `down_minutes`
    /// starting at `first_at + k * period`, then the pattern repeats across
    /// the fleet every `n_nodes * period` minutes until `horizon_minutes`.
    pub fn rolling_crashes(
        n_nodes: usize,
        first_at: u64,
        down_minutes: u64,
        period: u64,
        horizon_minutes: u64,
    ) -> Self {
        let mut plan = Self::none();
        if n_nodes == 0 || period == 0 {
            return plan;
        }
        let mut at = first_at;
        let mut node = 0usize;
        while at < horizon_minutes {
            plan.faults.push(NodeFault {
                node,
                kind: NodeFaultKind::Crash,
                at_minute: at,
                duration_minutes: down_minutes.max(1),
            });
            node = (node + 1) % n_nodes;
            at += period;
        }
        plan
    }

    /// A correlated outage (AZ failure): every listed node is partitioned at
    /// the same minute for the same duration.
    pub fn correlated_outage(nodes: &[usize], at_minute: u64, duration_minutes: u64) -> Self {
        let mut plan = Self::none();
        for &node in nodes {
            plan.faults.push(NodeFault {
                node,
                kind: NodeFaultKind::Partition,
                at_minute,
                duration_minutes: duration_minutes.max(1),
            });
        }
        plan
    }

    /// Rotating stragglers: node `k` degrades (durations × `slowdown`) for
    /// `slow_minutes` starting at `first_at + k * period`, repeating across
    /// the fleet until `horizon_minutes`.
    pub fn stragglers(
        n_nodes: usize,
        first_at: u64,
        slow_minutes: u64,
        period: u64,
        slowdown: f64,
        horizon_minutes: u64,
    ) -> Self {
        let mut plan = Self::none();
        if n_nodes == 0 || period == 0 {
            return plan;
        }
        let mut at = first_at;
        let mut node = 0usize;
        while at < horizon_minutes {
            plan.faults.push(NodeFault {
                node,
                kind: NodeFaultKind::Degraded { slowdown },
                at_minute: at,
                duration_minutes: slow_minutes.max(1),
            });
            node = (node + 1) % n_nodes;
            at += period;
        }
        plan
    }

    /// The strongest fault kind covering `(node, minute)`, or `None` when
    /// the node is healthy there. Overlapping windows resolve by severity
    /// (crash > partition > degraded), ties by earliest start.
    pub fn active_kind(&self, node: usize, minute: u64) -> Option<NodeFaultKind> {
        self.faults
            .iter()
            .filter(|f| f.node == node && f.active_at(minute))
            .max_by_key(|f| (f.kind.severity(), std::cmp::Reverse(f.at_minute)))
            .map(|f| f.kind)
    }
}

/// Live health of one node, derived from the fault plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NodeHealth {
    /// Healthy: accepts placements, runs at nominal speed.
    Up,
    /// Straggling: accepts placements, durations multiplied by `slowdown`.
    Degraded {
        /// Active duration multiplier.
        slowdown: f64,
    },
    /// Crashed: containers reaped, no placements.
    Crashed,
    /// Partitioned: unreachable for new work, in-flight work completes.
    Partitioned,
}

impl NodeHealth {
    /// Health implied by an active fault kind (or its absence).
    pub fn from_active(kind: Option<NodeFaultKind>) -> Self {
        match kind {
            None => NodeHealth::Up,
            Some(NodeFaultKind::Crash) => NodeHealth::Crashed,
            Some(NodeFaultKind::Partition) => NodeHealth::Partitioned,
            Some(NodeFaultKind::Degraded { slowdown }) => NodeHealth::Degraded { slowdown },
        }
    }

    /// Can the node accept new placements and executions?
    pub fn accepts_work(&self) -> bool {
        matches!(self, NodeHealth::Up | NodeHealth::Degraded { .. })
    }

    /// Duration multiplier currently in force (`1.0` unless degraded).
    pub fn time_scale(&self) -> f64 {
        match self {
            NodeHealth::Degraded { slowdown } => *slowdown,
            _ => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::NodeCapacity;

    #[test]
    fn nominal_node_is_unit_factors() {
        let n = NodeSpec::nominal("n0", NodeCapacity::unlimited());
        assert_eq!(n.speed_factor, 1.0);
        assert_eq!(n.price_factor, 1.0);
        let slow = n.clone().with_speed_factor(2.0).with_price_factor(0.5);
        assert_eq!(slow.speed_factor, 2.0);
        assert_eq!(slow.price_factor, 0.5);
    }

    #[test]
    fn rolling_crashes_rotate_nodes() {
        let plan = NodeFaultPlan::rolling_crashes(3, 10, 5, 20, 100);
        assert_eq!(plan.faults.len(), 5); // at 10, 30, 50, 70, 90
        let nodes: Vec<usize> = plan.faults.iter().map(|f| f.node).collect();
        assert_eq!(nodes, vec![0, 1, 2, 0, 1]);
        assert!(plan
            .faults
            .iter()
            .all(|f| matches!(f.kind, NodeFaultKind::Crash) && f.duration_minutes == 5));
    }

    #[test]
    fn correlated_outage_partitions_all_listed() {
        let plan = NodeFaultPlan::correlated_outage(&[0, 2], 40, 10);
        assert_eq!(plan.faults.len(), 2);
        assert!(plan
            .faults
            .iter()
            .all(|f| matches!(f.kind, NodeFaultKind::Partition) && f.at_minute == 40));
    }

    #[test]
    fn active_kind_resolves_overlap_by_severity() {
        let plan = NodeFaultPlan::none()
            .with(NodeFault {
                node: 0,
                kind: NodeFaultKind::Degraded { slowdown: 2.0 },
                at_minute: 0,
                duration_minutes: 100,
            })
            .with(NodeFault {
                node: 0,
                kind: NodeFaultKind::Crash,
                at_minute: 10,
                duration_minutes: 5,
            });
        assert_eq!(
            plan.active_kind(0, 12),
            Some(NodeFaultKind::Crash),
            "crash dominates the straggler window"
        );
        assert_eq!(
            plan.active_kind(0, 20),
            Some(NodeFaultKind::Degraded { slowdown: 2.0 }),
            "after healing, the longer straggler window is back in force"
        );
        assert_eq!(plan.active_kind(0, 100), None);
        assert_eq!(plan.active_kind(1, 12), None, "other nodes unaffected");
    }

    #[test]
    fn health_from_active_kind() {
        assert_eq!(NodeHealth::from_active(None), NodeHealth::Up);
        assert!(NodeHealth::from_active(None).accepts_work());
        assert!(!NodeHealth::from_active(Some(NodeFaultKind::Crash)).accepts_work());
        assert!(!NodeHealth::from_active(Some(NodeFaultKind::Partition)).accepts_work());
        let degraded = NodeHealth::from_active(Some(NodeFaultKind::Degraded { slowdown: 3.0 }));
        assert!(degraded.accepts_work());
        assert_eq!(degraded.time_scale(), 3.0);
        assert_eq!(NodeHealth::Up.time_scale(), 1.0);
    }

    #[test]
    fn window_boundaries_are_half_open() {
        let f = NodeFault {
            node: 0,
            kind: NodeFaultKind::Crash,
            at_minute: 10,
            duration_minutes: 5,
        };
        assert!(!f.active_at(9));
        assert!(f.active_at(10));
        assert!(f.active_at(14));
        assert!(!f.active_at(15));
    }
}

//! Container lifecycle: the state machine underneath a keep-alive decision.

use pulse_models::VariantId;

/// Lifecycle states of a function container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContainerState {
    /// Being created and loading its model; not yet able to serve.
    Provisioning,
    /// Warm and idle: able to serve instantly; billed as keep-alive.
    Warm,
    /// Executing one or more requests (still warm for new arrivals).
    Executing,
    /// Dead: provisioning exhausted the family's whole quality ladder, or
    /// the container crashed. A reaped container never serves again; the
    /// runtime drops it from the function slot once recorded.
    Reaped,
}

/// A live (or in-flight) container of one function.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveContainer {
    /// Which quality variant it hosts.
    pub variant: VariantId,
    /// Lifecycle state.
    pub state: ContainerState,
    /// In-flight request count.
    pub busy: u32,
    /// Time (ms) at which the container became warm (finishes provisioning);
    /// used for billing from warm-time onward.
    pub warm_since_ms: u64,
    /// Provisioning epoch, to cancel stale `ProvisionDone` events.
    pub epoch: u64,
}

impl LiveContainer {
    /// A container that starts provisioning now and becomes warm at
    /// `ready_ms`.
    pub fn provisioning(variant: VariantId, ready_ms: u64, epoch: u64) -> Self {
        Self {
            variant,
            state: ContainerState::Provisioning,
            busy: 0,
            warm_since_ms: ready_ms,
            epoch,
        }
    }

    /// A container that is warm immediately (proactive pre-warm / variant
    /// swap planned a minute ahead).
    pub fn warm(variant: VariantId, now_ms: u64, epoch: u64) -> Self {
        Self {
            variant,
            state: ContainerState::Warm,
            busy: 0,
            warm_since_ms: now_ms,
            epoch,
        }
    }

    /// Whether the container can serve a request right now.
    pub fn is_warm(&self) -> bool {
        matches!(self.state, ContainerState::Warm | ContainerState::Executing)
    }

    /// Whether the container is dead (crashed or ladder-exhausted).
    pub fn is_reaped(&self) -> bool {
        matches!(self.state, ContainerState::Reaped)
    }

    /// Begin executing one request.
    pub fn begin_exec(&mut self) {
        debug_assert!(self.is_warm(), "cannot execute on a cold container");
        self.busy += 1;
        self.state = ContainerState::Executing;
    }

    /// Finish executing one request.
    pub fn end_exec(&mut self) {
        debug_assert!(self.busy > 0, "end_exec without begin_exec");
        self.busy -= 1;
        if self.busy == 0 {
            self.state = ContainerState::Warm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provisioning_is_not_warm() {
        let c = LiveContainer::provisioning(2, 5000, 1);
        assert!(!c.is_warm());
        assert_eq!(c.state, ContainerState::Provisioning);
        assert_eq!(c.warm_since_ms, 5000);
    }

    #[test]
    fn exec_transitions() {
        let mut c = LiveContainer::warm(1, 0, 1);
        assert!(c.is_warm());
        c.begin_exec();
        assert_eq!(c.state, ContainerState::Executing);
        assert!(c.is_warm(), "executing containers still serve new arrivals");
        c.begin_exec();
        assert_eq!(c.busy, 2);
        c.end_exec();
        assert_eq!(c.state, ContainerState::Executing);
        c.end_exec();
        assert_eq!(c.state, ContainerState::Warm);
        assert_eq!(c.busy, 0);
    }

    #[test]
    fn reaped_cannot_serve() {
        let mut c = LiveContainer::warm(1, 0, 1);
        c.state = ContainerState::Reaped;
        assert!(!c.is_warm());
        assert!(c.is_reaped());
    }

    #[test]
    #[should_panic(expected = "end_exec without begin_exec")]
    #[cfg(debug_assertions)]
    fn unbalanced_end_exec_panics_in_debug() {
        let mut c = LiveContainer::warm(0, 0, 1);
        c.end_exec();
    }
}

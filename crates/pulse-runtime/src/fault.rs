//! Seeded fault injection: the resilience layer's source of adversity.
//!
//! The paper's evaluation assumes a perfectly reliable platform. Real
//! serverless platforms are not: container provisioning fails (placement
//! races, image-pull errors), model loads fail (corrupt layers, OOM during
//! weight mapping), and containers crash mid-execution. PULSE's quality
//! ladder is a natural resilience mechanism — when the high-quality variant
//! cannot be provisioned, falling one rung is strictly better than failing
//! the request — and this module supplies the machinery to exercise it:
//!
//! * [`FaultPlan`] — a declarative, per-function fault configuration
//!   (provisioning-failure / variant-load-failure / mid-execution-crash
//!   rates, retry policy, optional per-request timeout) with its own seed;
//! * [`FaultInjector`] — the runtime-side sampler that draws fault outcomes
//!   and backoff jitter from a dedicated seeded RNG, so fault sequences
//!   replay bit-identically and never perturb the duration sampler's
//!   stream.
//!
//! **Zero-fault invariant:** every draw is guarded by its rate, so a plan
//! with all rates at zero ([`FaultPlan::none`]) consumes no randomness and
//! schedules no extra events — `Runtime::run_with_faults` with such a plan
//! is bit-identical to `Runtime::run`.

use pulse_models::VariantId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Per-function fault rates. All rates are probabilities in `[0, 1]`
/// (values outside the interval are clamped at draw time).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRates {
    /// Probability that one provisioning attempt (cold start or retry)
    /// fails after its full provisioning duration.
    pub provision_failure: f64,
    /// Probability that a proactive variant load at a minute boundary (a
    /// pre-warm or a planned variant swap) fails, demoting the container to
    /// the provisioning path with retries.
    pub variant_load_failure: f64,
    /// Probability that an execution crashes its container partway through.
    pub exec_crash: f64,
    /// When set, faults only strike variants at or above this ladder rung —
    /// e.g. `Some(family.highest_id())` makes only the top variant flaky,
    /// which exercises one-rung degradation in isolation.
    pub min_faulty_variant: Option<VariantId>,
}

impl FaultRates {
    /// No faults at all.
    pub fn none() -> Self {
        Self {
            provision_failure: 0.0,
            variant_load_failure: 0.0,
            exec_crash: 0.0,
            min_faulty_variant: None,
        }
    }

    /// Uniform rates across the three fault classes, all rungs faulty.
    pub fn uniform(provision: f64, variant_load: f64, exec_crash: f64) -> Self {
        Self {
            provision_failure: provision,
            variant_load_failure: variant_load,
            exec_crash,
            min_faulty_variant: None,
        }
    }

    /// Whether faults of this rate set strike variant `v`.
    pub fn applies_to(&self, v: VariantId) -> bool {
        self.min_faulty_variant.is_none_or(|m| v >= m)
    }

    fn is_none(&self) -> bool {
        self.provision_failure <= 0.0 && self.variant_load_failure <= 0.0 && self.exec_crash <= 0.0
    }
}

impl Default for FaultRates {
    fn default() -> Self {
        Self::none()
    }
}

/// Retry policy for failed provisioning attempts and crashed executions:
/// capped exponential backoff with seeded jitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retries after the initial failed attempt before falling one ladder
    /// rung (provisioning) or failing the request (execution).
    pub max_retries: u32,
    /// Backoff before retry 1; doubles per retry.
    pub base_backoff_ms: u64,
    /// Backoff ceiling.
    pub max_backoff_ms: u64,
    /// Jitter as a fraction of the computed backoff, drawn uniformly in
    /// `[0, jitter_frac · backoff]` from the fault RNG.
    pub jitter_frac: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            base_backoff_ms: 100,
            max_backoff_ms: 5_000,
            jitter_frac: 0.2,
        }
    }
}

/// A declarative fault-injection configuration: a default rate set, optional
/// per-function overrides, a retry policy, an optional per-request timeout,
/// and the seed of the dedicated fault RNG.
///
/// The plan is pure data; [`FaultInjector`] turns it into a deterministic
/// fault stream. Two runs with the same plan (and the same
/// `RuntimeConfig.stochastic_seed`) produce identical failure sequences,
/// retry schedules and summary counters.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the fault RNG (independent of the duration-jitter seed).
    pub seed: u64,
    /// Rates applied to functions without an override.
    pub default_rates: FaultRates,
    /// Per-function rate overrides, keyed by function index.
    pub overrides: BTreeMap<usize, FaultRates>,
    /// Retry/backoff parameters.
    pub retry: RetryPolicy,
    /// When set, a request that has not completed within this budget of its
    /// arrival is failed and counted as a timeout (SLO accounting).
    pub request_timeout_ms: Option<u64>,
}

impl FaultPlan {
    /// The no-fault plan: zero rates everywhere, no timeout. Running under
    /// this plan is bit-identical to running without a fault layer.
    pub fn none() -> Self {
        Self {
            seed: 0,
            default_rates: FaultRates::none(),
            overrides: BTreeMap::new(),
            retry: RetryPolicy::default(),
            request_timeout_ms: None,
        }
    }

    /// Uniform rates for every function, default retry policy.
    pub fn uniform(provision: f64, variant_load: f64, exec_crash: f64, seed: u64) -> Self {
        Self {
            seed,
            default_rates: FaultRates::uniform(provision, variant_load, exec_crash),
            ..Self::none()
        }
    }

    /// Override the rates of one function.
    #[must_use]
    pub fn with_function(mut self, func: usize, rates: FaultRates) -> Self {
        self.overrides.insert(func, rates);
        self
    }

    /// Set the per-request timeout.
    #[must_use]
    pub fn with_timeout_ms(mut self, timeout_ms: u64) -> Self {
        self.request_timeout_ms = Some(timeout_ms);
        self
    }

    /// Replace the retry policy.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The rates governing `func`.
    pub fn rates_for(&self, func: usize) -> &FaultRates {
        self.overrides.get(&func).unwrap_or(&self.default_rates)
    }

    /// True when the plan can never produce a fault or a timeout.
    pub fn is_none(&self) -> bool {
        self.request_timeout_ms.is_none()
            && self.default_rates.is_none()
            && self.overrides.values().all(FaultRates::is_none)
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

/// The runtime-side fault sampler: owns the plan and a dedicated seeded RNG.
///
/// Every boolean draw is guarded by its rate — a zero rate returns `false`
/// and a rate ≥ 1 returns `true` without consuming randomness — which is
/// what makes [`FaultPlan::none`] runs bit-identical to fault-free runs and
/// keeps degenerate plans (rate 1.0 chaos tests) deterministic.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: SmallRng,
}

impl FaultInjector {
    /// Injector over `plan`, seeded from `plan.seed`.
    pub fn new(plan: &FaultPlan) -> Self {
        Self {
            plan: plan.clone(),
            rng: SmallRng::seed_from_u64(plan.seed),
        }
    }

    /// The plan this injector draws from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The fault RNG's current cursor, for checkpointing.
    pub fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Rebuild an injector over `plan` with its RNG positioned at a
    /// previously captured [`Self::rng_state`] cursor.
    pub fn from_state(plan: &FaultPlan, rng_state: [u64; 4]) -> Self {
        Self {
            plan: plan.clone(),
            rng: SmallRng::from_state(rng_state),
        }
    }

    fn draw(&mut self, rate: f64) -> bool {
        if rate <= 0.0 {
            false
        } else if rate >= 1.0 {
            true
        } else {
            self.rng.gen::<f64>() < rate
        }
    }

    /// Does this provisioning attempt of `variant` for `func` fail?
    pub fn provision_fails(&mut self, func: usize, variant: VariantId) -> bool {
        let r = *self.plan.rates_for(func);
        r.applies_to(variant) && self.draw(r.provision_failure)
    }

    /// Does the proactive minute-boundary load of `variant` for `func` fail?
    pub fn variant_load_fails(&mut self, func: usize, variant: VariantId) -> bool {
        let r = *self.plan.rates_for(func);
        r.applies_to(variant) && self.draw(r.variant_load_failure)
    }

    /// Does this execution on `variant` crash its container?
    pub fn exec_crashes(&mut self, func: usize, variant: VariantId) -> bool {
        let r = *self.plan.rates_for(func);
        r.applies_to(variant) && self.draw(r.exec_crash)
    }

    /// Where within an `exec_ms`-long execution the crash manifests:
    /// uniform over `[1, exec_ms]` (never zero, so a crash always consumes
    /// simulated time).
    pub fn crash_point_ms(&mut self, exec_ms: u64) -> u64 {
        if exec_ms <= 1 {
            1
        } else {
            self.rng.gen_range(1..=exec_ms)
        }
    }

    /// Backoff before retry number `attempt` (1-based): capped exponential
    /// plus uniform jitter. All arithmetic is checked/saturating, so an
    /// arbitrarily large attempt count saturates at `max_backoff_ms` rather
    /// than overflowing `u64` before the cap applies.
    pub fn backoff_ms(&mut self, attempt: u32) -> u64 {
        let p = self.plan.retry;
        let exp = attempt.saturating_sub(1);
        let factor = 1u64.checked_shl(exp).unwrap_or(u64::MAX);
        let backoff = p
            .base_backoff_ms
            .saturating_mul(factor)
            .min(p.max_backoff_ms);
        let jitter_cap = (backoff as f64 * p.jitter_frac.clamp(0.0, 1.0)) as u64;
        if jitter_cap == 0 {
            backoff
        } else {
            backoff.saturating_add(self.rng.gen_range(0..=jitter_cap))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_is_none_and_draws_nothing() {
        let plan = FaultPlan::none();
        assert!(plan.is_none());
        let mut inj = FaultInjector::new(&plan);
        let before = inj.rng.clone();
        for f in 0..8 {
            assert!(!inj.provision_fails(f, 2));
            assert!(!inj.variant_load_fails(f, 0));
            assert!(!inj.exec_crashes(f, 1));
        }
        assert_eq!(inj.rng, before, "zero rates must not consume randomness");
    }

    #[test]
    fn rate_one_always_fails_without_randomness() {
        let plan = FaultPlan::uniform(1.0, 1.0, 1.0, 9);
        let mut inj = FaultInjector::new(&plan);
        let before = inj.rng.clone();
        assert!(inj.provision_fails(0, 0));
        assert!(inj.variant_load_fails(1, 3));
        assert!(inj.exec_crashes(2, 1));
        assert_eq!(inj.rng, before);
    }

    #[test]
    fn variant_scope_gates_faults() {
        let rates = FaultRates {
            provision_failure: 1.0,
            variant_load_failure: 1.0,
            exec_crash: 1.0,
            min_faulty_variant: Some(2),
        };
        let plan = FaultPlan {
            default_rates: rates,
            ..FaultPlan::none()
        };
        let mut inj = FaultInjector::new(&plan);
        assert!(!inj.provision_fails(0, 0));
        assert!(!inj.provision_fails(0, 1));
        assert!(inj.provision_fails(0, 2));
        assert!(inj.exec_crashes(0, 5));
        assert!(!inj.exec_crashes(0, 1));
    }

    #[test]
    fn per_function_overrides_take_precedence() {
        let plan = FaultPlan::uniform(1.0, 0.0, 0.0, 1).with_function(3, FaultRates::none());
        let mut inj = FaultInjector::new(&plan);
        assert!(inj.provision_fails(0, 0));
        assert!(!inj.provision_fails(3, 0));
        assert!(!plan.is_none());
    }

    #[test]
    fn intermediate_rates_replay_deterministically() {
        let plan = FaultPlan::uniform(0.3, 0.2, 0.1, 42);
        let mut a = FaultInjector::new(&plan);
        let mut b = FaultInjector::new(&plan);
        for f in 0..200 {
            assert_eq!(a.provision_fails(f % 5, 1), b.provision_fails(f % 5, 1));
            assert_eq!(a.exec_crashes(f % 5, 1), b.exec_crashes(f % 5, 1));
            assert_eq!(
                a.backoff_ms(f as u32 % 6 + 1),
                b.backoff_ms(f as u32 % 6 + 1)
            );
        }
    }

    #[test]
    fn intermediate_rates_hit_roughly_in_proportion() {
        let plan = FaultPlan::uniform(0.25, 0.0, 0.0, 7);
        let mut inj = FaultInjector::new(&plan);
        let hits = (0..10_000).filter(|_| inj.provision_fails(0, 0)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let plan = FaultPlan {
            retry: RetryPolicy {
                max_retries: 10,
                base_backoff_ms: 100,
                max_backoff_ms: 1_000,
                jitter_frac: 0.0,
            },
            ..FaultPlan::none()
        };
        let mut inj = FaultInjector::new(&plan);
        assert_eq!(inj.backoff_ms(1), 100);
        assert_eq!(inj.backoff_ms(2), 200);
        assert_eq!(inj.backoff_ms(3), 400);
        assert_eq!(inj.backoff_ms(4), 800);
        assert_eq!(inj.backoff_ms(5), 1_000);
        assert_eq!(inj.backoff_ms(9), 1_000, "cap holds");
    }

    #[test]
    fn huge_attempt_counts_saturate_at_the_cap_without_overflow() {
        let plan = FaultPlan {
            retry: RetryPolicy {
                max_retries: u32::MAX,
                base_backoff_ms: 100,
                max_backoff_ms: 5_000,
                jitter_frac: 0.0,
            },
            ..FaultPlan::none()
        };
        let mut inj = FaultInjector::new(&plan);
        // attempt = 63 → shift of 62: the exponential alone is ~4.6e20 ms
        // and must saturate, not wrap.
        assert_eq!(inj.backoff_ms(63), 5_000);
        assert_eq!(inj.backoff_ms(64), 5_000, "shift of exactly 63");
        assert_eq!(inj.backoff_ms(65), 5_000, "shift past the u64 width");
        assert_eq!(inj.backoff_ms(u32::MAX), 5_000);
        // Degenerate cap larger than any exponential: saturating, not
        // wrapping, even when the product overflows u64.
        let plan = FaultPlan {
            retry: RetryPolicy {
                max_retries: u32::MAX,
                base_backoff_ms: u64::MAX / 2,
                max_backoff_ms: u64::MAX,
                jitter_frac: 0.0,
            },
            ..FaultPlan::none()
        };
        let mut inj = FaultInjector::new(&plan);
        assert_eq!(inj.backoff_ms(63), u64::MAX);
    }

    #[test]
    fn backoff_jitter_stays_within_fraction() {
        let plan = FaultPlan {
            retry: RetryPolicy {
                jitter_frac: 0.5,
                ..RetryPolicy::default()
            },
            ..FaultPlan::none()
        };
        let mut inj = FaultInjector::new(&plan);
        for _ in 0..500 {
            let b = inj.backoff_ms(2); // nominal 200
            assert!((200..=300).contains(&b), "jittered backoff {b}");
        }
    }

    #[test]
    fn crash_point_is_within_execution() {
        let mut inj = FaultInjector::new(&FaultPlan::uniform(0.0, 0.0, 1.0, 3));
        for _ in 0..500 {
            let p = inj.crash_point_ms(2_200);
            assert!((1..=2_200).contains(&p));
        }
        assert_eq!(inj.crash_point_ms(0), 1);
        assert_eq!(inj.crash_point_ms(1), 1);
    }

    #[test]
    fn timeout_only_plan_is_not_none() {
        assert!(!FaultPlan::none().with_timeout_ms(60_000).is_none());
    }
}

//! Fleet configuration: N heterogeneous nodes behind one global scheduler.
//!
//! [`FleetConfig`] is the multi-node generalization of
//! [`crate::cluster::ClusterConfig`]. The runtime places every cold start on
//! the live node with the best net utility (capacity headroom discounted by
//! the node's price and speed factors — the IceBreaker-style signal seeded
//! in `exp_nodes`), enforces each node's keep-alive cap separately with
//! Algorithm 2's utility-ordered downgrade loop, and bills each node's
//! footprint at its own price factor.
//!
//! Robustness semantics layered on top:
//!
//! * **node faults** ([`crate::node::NodeFaultPlan`]) strike at minute
//!   ticks: a crash reaps the node's warm containers and re-dispatches its
//!   in-flight requests through the existing retry/degradation ladder; a
//!   partition lets in-flight work finish but moves the node's functions
//!   elsewhere; a straggler multiplies durations;
//! * **migration**: at each tick the rebalancer moves idle warm containers
//!   off nodes whose planned footprint exceeds their cap, onto the node with
//!   the most headroom. Per-node planned footprints come from the ledger's
//!   incrementally-patched minute footprint (DESIGN.md §16), so the tick
//!   cost scales with the functions that changed, not the fleet size. A
//!   migration is a charged pause
//!   ([`MigrationConfig::pause_ms`]) during which the container cannot
//!   serve — orders of magnitude cheaper than a cold start, and counted in
//!   `RuntimeSummary::migrations` / `migration_pause_ms`;
//! * **two-tier admission**: the global front door
//!   ([`FleetConfig::admission`]) sheds before per-function queues grow
//!   unbounded, and [`FleetConfig::node_admission`] bounds each node's
//!   waiting backlog separately.
//!
//! The transparency contract mirrors the cluster layer's:
//! [`FleetConfig::from_cluster`] (one nominal node, no node faults) is
//! bit-identical to `Runtime::run_with_cluster` — asserted for all policies
//! in `tests/robustness.rs`.

use crate::cluster::{AdmissionControl, ClusterConfig, NodeCapacity};
use crate::node::{NodeFaultPlan, NodeSpec};

/// Warm-container migration accounting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationConfig {
    /// Charged pause while a warm container moves between nodes, ms. The
    /// container keeps its variant and warm state but cannot serve until the
    /// pause elapses. Must be far below a cold start for migration to pay
    /// off (the default, 200 ms, is ~10–100× cheaper than the model zoo's
    /// cold starts).
    pub pause_ms: u64,
}

impl Default for MigrationConfig {
    fn default() -> Self {
        Self { pause_ms: 200 }
    }
}

/// A fleet of heterogeneous nodes plus its robustness knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// The nodes, indexed by position. Must be non-empty.
    pub nodes: Vec<NodeSpec>,
    /// Global front-door admission control (tier 1): bounds the total
    /// pending backlog across the whole fleet.
    pub admission: AdmissionControl,
    /// Per-node admission bound (tier 2): max requests waiting on any single
    /// node before its arrivals are shed; `None` = unbounded.
    pub node_admission: Option<usize>,
    /// Deterministic node-level fault schedule.
    pub node_faults: NodeFaultPlan,
    /// Migration cost accounting.
    pub migration: MigrationConfig,
}

impl FleetConfig {
    /// The single-node fleet equivalent to `cluster`: one nominal node with
    /// the cluster's capacity, the cluster's admission bound as the global
    /// front door, no per-node bound, no node faults. Running under this is
    /// bit-identical to `Runtime::run_with_cluster(policy, plan, &cluster)`.
    pub fn from_cluster(cluster: ClusterConfig) -> Self {
        Self::single(NodeSpec::nominal("node0", cluster.capacity)).with_admission(cluster.admission)
    }

    /// A one-node fleet over `spec`.
    pub fn single(spec: NodeSpec) -> Self {
        Self {
            nodes: vec![spec],
            admission: AdmissionControl::unbounded(),
            node_admission: None,
            node_faults: NodeFaultPlan::none(),
            migration: MigrationConfig::default(),
        }
    }

    /// `n` identical nominal nodes (`node0`, `node1`, …), each with
    /// `capacity`.
    pub fn uniform(n: usize, capacity: NodeCapacity) -> Self {
        assert!(n > 0, "a fleet needs at least one node");
        Self {
            nodes: (0..n)
                .map(|k| NodeSpec::nominal(format!("node{k}"), capacity))
                .collect(),
            admission: AdmissionControl::unbounded(),
            node_admission: None,
            node_faults: NodeFaultPlan::none(),
            migration: MigrationConfig::default(),
        }
    }

    /// A fleet over explicit node specs.
    pub fn heterogeneous(nodes: Vec<NodeSpec>) -> Self {
        assert!(!nodes.is_empty(), "a fleet needs at least one node");
        Self {
            nodes,
            admission: AdmissionControl::unbounded(),
            node_admission: None,
            node_faults: NodeFaultPlan::none(),
            migration: MigrationConfig::default(),
        }
    }

    /// Builder: set the global front-door admission control.
    pub fn with_admission(mut self, admission: AdmissionControl) -> Self {
        self.admission = admission;
        self
    }

    /// Builder: bound each node's waiting backlog.
    pub fn with_node_admission(mut self, max_waiting: usize) -> Self {
        self.node_admission = Some(max_waiting);
        self
    }

    /// Builder: attach a node-level fault schedule.
    pub fn with_node_faults(mut self, plan: NodeFaultPlan) -> Self {
        self.node_faults = plan;
        self
    }

    /// Builder: override migration accounting.
    pub fn with_migration(mut self, migration: MigrationConfig) -> Self {
        self.migration = migration;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{NodeFault, NodeFaultKind};

    #[test]
    fn from_cluster_is_one_nominal_node() {
        let cluster = ClusterConfig {
            capacity: NodeCapacity::gb(4.0),
            admission: AdmissionControl::bounded(64),
        };
        let fleet = FleetConfig::from_cluster(cluster);
        assert_eq!(fleet.nodes.len(), 1);
        assert_eq!(fleet.nodes[0].capacity, cluster.capacity);
        assert_eq!(fleet.nodes[0].speed_factor, 1.0);
        assert_eq!(fleet.nodes[0].price_factor, 1.0);
        assert_eq!(fleet.admission, cluster.admission);
        assert_eq!(fleet.node_admission, None);
        assert!(fleet.node_faults.is_none());
    }

    #[test]
    fn uniform_names_nodes_by_index() {
        let fleet = FleetConfig::uniform(3, NodeCapacity::mb(512.0));
        let names: Vec<&str> = fleet.nodes.iter().map(|n| n.name.as_str()).collect();
        assert_eq!(names, vec!["node0", "node1", "node2"]);
    }

    #[test]
    fn builders_compose() {
        let fleet = FleetConfig::uniform(2, NodeCapacity::unlimited())
            .with_admission(AdmissionControl::bounded(10))
            .with_node_admission(4)
            .with_node_faults(NodeFaultPlan::none().with(NodeFault {
                node: 1,
                kind: NodeFaultKind::Crash,
                at_minute: 5,
                duration_minutes: 2,
            }))
            .with_migration(MigrationConfig { pause_ms: 50 });
        assert_eq!(fleet.admission.max_pending, Some(10));
        assert_eq!(fleet.node_admission, Some(4));
        assert_eq!(fleet.node_faults.faults.len(), 1);
        assert_eq!(fleet.migration.pause_ms, 50);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_fleet_rejected() {
        let _ = FleetConfig::heterogeneous(Vec::new());
    }
}

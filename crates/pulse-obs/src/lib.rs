//! # pulse-obs — structured observability for the PULSE engines
//!
//! A dependency-free tracing and metrics layer shared by the minute-engine
//! (`pulse-sim`) and the event-driven runtime (`pulse-runtime`):
//!
//! * [`TraceSink`] — the event consumer contract, with [`NullSink`] (the
//!   zero-cost default), [`JsonlSink`] (structured JSON Lines over any
//!   `io::Write`), and [`MemorySink`] (typed in-memory capture for tests
//!   and programmatic consumers);
//! * [`ObsEvent`] — the typed taxonomy both engines emit: adjust, serve,
//!   bill, downgrade, evict, shed, degrade, reap, watchdog transitions, and
//!   the fleet lifecycle (node down/recovered, container migration), each
//!   timestamped in monotonic *simulation* time (never wall clock — the
//!   `obs-sim-time` audit rule enforces this);
//! * [`CounterRegistry`] / [`HistogramRegistry`] — cheap named metrics with
//!   commutative [`CounterRegistry::merge`], built for per-worker
//!   aggregation in the parallel campaign runner;
//! * [`JournalSink`] / [`replay_journal`] — the write-ahead journal for
//!   crash-consistent checkpointing: epoch headers, embedded snapshot
//!   records ([`RecordBuilder`]/[`Record`] is the open-schema flat-record
//!   codec snapshots are written in), torn-tail-tolerant replay, and
//!   [`first_divergence`] for pinpointing replay mismatches.
//!
//! The crate is deliberately free of dependencies (not even the vendored
//! stand-ins): the sink check sits on every engine hot path, and the JSONL
//! schema is hand-rolled so [`ObsEvent::to_json`]/[`ObsEvent::from_json`]
//! round-trip without a serializer (the vendored `serde` is an inert
//! marker-trait stand-in).
//!
//! ## Example
//!
//! ```
//! use pulse_obs::{JsonlSink, ObsEvent, TraceSink};
//!
//! let mut sink = JsonlSink::new(Vec::new());
//! sink.record(&ObsEvent::Bill { minute: 7, keepalive_mb: 512.0, cost_usd: 4.2e-5 });
//! let text = String::from_utf8(sink.into_inner()).unwrap();
//! let back = ObsEvent::from_json(text.lines().next().unwrap()).unwrap();
//! assert_eq!(back.kind(), "bill");
//! ```

mod event;
mod journal;
mod json;
mod record;
mod registry;
mod sink;

pub use event::{ActionSource, NodeFaultClass, ObsEvent};
pub use journal::{
    first_divergence, replay_journal, Divergence, JournalError, JournalReplay, JournalSink,
};
pub use json::ParseError;
pub use record::{Record, RecordBuilder};
pub use registry::{CounterId, CounterRegistry, Histogram, HistogramId, HistogramRegistry};
pub use sink::{emit, JsonlSink, MemorySink, NullSink, TraceSink};

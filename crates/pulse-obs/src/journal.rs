//! The write-ahead journal: crash-consistent event logging with embedded
//! snapshots.
//!
//! A journal is an ordinary [`crate::JsonlSink`] stream with two extra
//! record kinds threaded through it:
//!
//! * [`crate::ObsEvent::JournalEpoch`] headers — epoch 0 opens the file,
//!   and every checkpoint closes the current epoch and opens the next;
//! * [`crate::ObsEvent::Checkpoint`] records — a full serialized engine
//!   snapshot, flushed to the OS before the epoch advances.
//!
//! Recovery reads the journal back with [`replay_journal`], restores the
//! last intact snapshot, and replays the run from there; the *tail* (the
//! events recorded after that snapshot) is what the uninterrupted run
//! emitted between the checkpoint and the kill, so a resumed run must
//! re-emit exactly that sequence — [`first_divergence`] pinpoints the first
//! event where it does not.
//!
//! A process killed mid-write leaves a torn final line; replay tolerates it
//! (the event was not durably recorded, so it simply is not part of the
//! journal) and reports it via [`JournalReplay::torn_tail`]. A malformed
//! line *before* the end is real corruption and fails with a typed
//! [`JournalError`].

use crate::event::ObsEvent;
use crate::sink::{JsonlSink, TraceSink};
use std::fmt;
use std::io::Write;

/// Why a journal could not be replayed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// A line other than the final one failed to parse — the journal is
    /// corrupt beyond a torn tail.
    Corrupt {
        /// 1-based line number of the first malformed line.
        line: usize,
        /// The parse failure.
        message: String,
    },
    /// The journal contains no epoch header — it is not a journal stream.
    MissingHeader,
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Corrupt { line, message } => {
                write!(f, "journal corrupt at line {line}: {message}")
            }
            Self::MissingHeader => write!(f, "journal has no epoch header"),
        }
    }
}

impl std::error::Error for JournalError {}

/// A [`TraceSink`] that writes a write-ahead journal: the wrapped JSONL
/// stream plus epoch headers and checkpoint records.
///
/// The epoch-0 header is written on construction; [`Self::checkpoint`]
/// appends a snapshot record, flushes, and opens the next epoch. I/O errors
/// follow [`JsonlSink`] semantics: the first failure latches and later
/// writes are dropped rather than panicking the run.
#[derive(Debug)]
pub struct JournalSink<W: Write> {
    inner: JsonlSink<W>,
    epoch: u64,
    checkpoints: u64,
}

impl<W: Write> JournalSink<W> {
    /// Wrap a writer and emit the epoch-0 header.
    pub fn new(writer: W) -> Self {
        let mut inner = JsonlSink::new(writer);
        inner.record(&ObsEvent::JournalEpoch { epoch: 0 });
        Self {
            inner,
            epoch: 0,
            checkpoints: 0,
        }
    }

    /// The epoch currently being written.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Checkpoints written so far.
    pub fn checkpoints(&self) -> u64 {
        self.checkpoints
    }

    /// Lines successfully written so far (headers and checkpoints included).
    pub fn lines(&self) -> u64 {
        self.inner.lines()
    }

    /// Whether any write failed (subsequent records were dropped).
    pub fn had_error(&self) -> bool {
        self.inner.had_error()
    }

    /// Append a checkpoint: the snapshot record, an explicit flush (the
    /// durability point — everything up to and including the snapshot is
    /// handed to the OS), then the next epoch's header.
    pub fn checkpoint(&mut self, snapshot: &str) {
        self.inner.record(&ObsEvent::Checkpoint {
            seq: self.checkpoints,
            snapshot: snapshot.to_string(),
        });
        self.checkpoints += 1;
        let _ = self.inner.flush();
        self.epoch += 1;
        self.inner
            .record(&ObsEvent::JournalEpoch { epoch: self.epoch });
    }

    /// Flush the underlying writer.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }

    /// Unwrap the writer (callers flush/close it themselves).
    pub fn into_inner(self) -> W {
        self.inner.into_inner()
    }
}

impl<W: Write> TraceSink for JournalSink<W> {
    fn record(&mut self, event: &ObsEvent) {
        self.inner.record(event);
    }
}

/// The parsed content of a journal, as recovered by [`replay_journal`].
#[derive(Debug, Clone, PartialEq)]
pub struct JournalReplay {
    /// Epoch headers seen, in order.
    pub epochs: Vec<u64>,
    /// The last intact checkpoint, if any: `(seq, snapshot document)`.
    pub last_checkpoint: Option<(u64, String)>,
    /// Events recorded *after* the last checkpoint (or from the start when
    /// no checkpoint exists), epoch headers excluded — the tail a resumed
    /// run must re-emit.
    pub tail: Vec<ObsEvent>,
    /// Whether the final line was torn (truncated mid-write) and dropped.
    pub torn_tail: bool,
}

/// Parse a journal stream back. The final line may be torn — a process
/// killed mid-write never durably recorded that event, so it is dropped and
/// flagged; any earlier malformed line is corruption and fails typed.
pub fn replay_journal(text: &str) -> Result<JournalReplay, JournalError> {
    let lines: Vec<&str> = text.lines().collect();
    let mut epochs = Vec::new();
    let mut last_checkpoint = None;
    let mut tail = Vec::new();
    let mut torn_tail = false;
    let last = lines.len().saturating_sub(1);
    for (i, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match ObsEvent::from_json(line) {
            Ok(ObsEvent::JournalEpoch { epoch }) => epochs.push(epoch),
            Ok(ObsEvent::Checkpoint { seq, snapshot }) => {
                last_checkpoint = Some((seq, snapshot));
                tail.clear();
            }
            Ok(ev) => tail.push(ev),
            Err(e) if i == last => {
                // Torn final line: the write never completed, so the event
                // was never durably part of the journal.
                let _ = e;
                torn_tail = true;
            }
            Err(e) => {
                return Err(JournalError::Corrupt {
                    line: i + 1,
                    message: e.message,
                })
            }
        }
    }
    if epochs.is_empty() {
        return Err(JournalError::MissingHeader);
    }
    Ok(JournalReplay {
        epochs,
        last_checkpoint,
        tail,
        torn_tail,
    })
}

/// The first position where a resumed run's event stream differs from the
/// journal tail it must reproduce.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// 0-based index of the first mismatch.
    pub index: usize,
    /// What the journal recorded there (`None` when the resumed run emitted
    /// extra events past the recorded tail).
    pub expected: Option<ObsEvent>,
    /// What the resumed run emitted there (`None` when it stopped short).
    pub actual: Option<ObsEvent>,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "first divergence at event {}: expected {:?}, got {:?}",
            self.index, self.expected, self.actual
        )
    }
}

/// Compare a recorded event stream against a re-emitted one and report the
/// first mismatch, or `None` when they are identical.
pub fn first_divergence(expected: &[ObsEvent], actual: &[ObsEvent]) -> Option<Divergence> {
    let n = expected.len().max(actual.len());
    for i in 0..n {
        if expected.get(i) != actual.get(i) {
            return Some(Divergence {
                index: i,
                expected: expected.get(i).cloned(),
                actual: actual.get(i).cloned(),
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(minute: u64) -> ObsEvent {
        ObsEvent::Bill {
            minute,
            keepalive_mb: 100.0,
            cost_usd: 1.0e-6,
        }
    }

    #[test]
    fn journal_opens_with_epoch_zero_and_checkpoints_advance_epochs() {
        let mut j = JournalSink::new(Vec::new());
        j.record(&ev(0));
        j.checkpoint("{\"type\":\"snap\"}");
        j.record(&ev(1));
        assert_eq!(j.epoch(), 1);
        assert_eq!(j.checkpoints(), 1);
        assert!(!j.had_error());
        let text = String::from_utf8(j.into_inner()).unwrap();
        let replay = replay_journal(&text).unwrap();
        assert_eq!(replay.epochs, vec![0, 1]);
        assert_eq!(
            replay.last_checkpoint,
            Some((0, "{\"type\":\"snap\"}".to_string()))
        );
        assert_eq!(replay.tail, vec![ev(1)]);
        assert!(!replay.torn_tail);
    }

    #[test]
    fn tail_without_checkpoint_is_the_whole_stream() {
        let mut j = JournalSink::new(Vec::new());
        j.record(&ev(0));
        j.record(&ev(1));
        let text = String::from_utf8(j.into_inner()).unwrap();
        let replay = replay_journal(&text).unwrap();
        assert_eq!(replay.last_checkpoint, None);
        assert_eq!(replay.tail, vec![ev(0), ev(1)]);
    }

    #[test]
    fn torn_final_line_is_tolerated_and_flagged() {
        let mut j = JournalSink::new(Vec::new());
        j.record(&ev(0));
        j.checkpoint("{\"type\":\"snap\"}");
        j.record(&ev(1));
        j.record(&ev(2));
        let mut text = String::from_utf8(j.into_inner()).unwrap();
        // Simulate a crash mid-write: truncate the last line in half.
        let keep = text.len() - 20;
        text.truncate(keep);
        let replay = replay_journal(&text).unwrap();
        assert!(replay.torn_tail);
        assert_eq!(replay.tail, vec![ev(1)]);
        assert_eq!(replay.last_checkpoint.unwrap().0, 0);
    }

    #[test]
    fn mid_stream_corruption_is_a_typed_error() {
        let mut j = JournalSink::new(Vec::new());
        j.record(&ev(0));
        let mut text = String::from_utf8(j.into_inner()).unwrap();
        text = text.replacen("\"type\":\"bill\"", "\"type\":\"???\"", 1);
        text.push_str(&format!("{}\n", ev(1).to_json()));
        let err = replay_journal(&text).unwrap_err();
        match err {
            JournalError::Corrupt { line, .. } => assert_eq!(line, 2),
            other => panic!("wrong error {other:?}"),
        }
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn missing_header_is_a_typed_error() {
        let text = format!("{}\n", ev(0).to_json());
        assert_eq!(
            replay_journal(&text).unwrap_err(),
            JournalError::MissingHeader
        );
    }

    #[test]
    fn later_checkpoints_supersede_earlier_ones() {
        let mut j = JournalSink::new(Vec::new());
        j.record(&ev(0));
        j.checkpoint("first");
        j.record(&ev(1));
        j.checkpoint("second");
        j.record(&ev(2));
        let text = String::from_utf8(j.into_inner()).unwrap();
        let replay = replay_journal(&text).unwrap();
        assert_eq!(replay.last_checkpoint, Some((1, "second".to_string())));
        assert_eq!(replay.tail, vec![ev(2)]);
        assert_eq!(replay.epochs, vec![0, 1, 2]);
    }

    #[test]
    fn divergence_detector_reports_first_mismatch() {
        let a = vec![ev(0), ev(1), ev(2)];
        assert_eq!(first_divergence(&a, &a), None);

        let b = vec![ev(0), ev(9), ev(2)];
        let d = first_divergence(&a, &b).unwrap();
        assert_eq!(d.index, 1);
        assert_eq!(d.expected, Some(ev(1)));
        assert_eq!(d.actual, Some(ev(9)));

        // Short stream: mismatch at the missing position.
        let d = first_divergence(&a, &a[..2]).unwrap();
        assert_eq!(d.index, 2);
        assert_eq!(d.expected, Some(ev(2)));
        assert_eq!(d.actual, None);

        // Long stream: extra events flagged.
        let mut c = a.clone();
        c.push(ev(3));
        let d = first_divergence(&a, &c).unwrap();
        assert_eq!(d.index, 3);
        assert_eq!(d.expected, None);
        assert!(d.to_string().contains("first divergence at event 3"));
    }
}
